(* Selective dissemination of streams through unsecured channels (demo
   application 2, the push profile).

   A content provider broadcasts one encrypted feed. Every subscriber's
   terminal receives the same ciphertext stream; each personal card
   decrypts only the items its subscription authorizes — the skip index
   lets it discard the rest without even decrypting. The provider never
   re-encrypts per subscriber, and changing a subscription tier is a rule
   update, not a re-broadcast. Run with:

     dune exec examples/dissemination.exe
*)

module Rule = Sdds_core.Rule
module Card = Sdds_soe.Card
module Cost = Sdds_soe.Cost
module Pki = Sdds_dsp.Pki
module Publish = Sdds_dsp.Publish
module Store = Sdds_dsp.Store
module Proxy = Sdds_proxy.Proxy
module Drbg = Sdds_crypto.Drbg
module Rsa = Sdds_crypto.Rsa
module Rng = Sdds_util.Rng

let subscriptions =
  [
    (* Premium: everything except explicitly adult-rated items. *)
    ( "premium",
      [ Rule.allow ~subject:"premium" "//item";
        Rule.deny ~subject:"premium" {|//item[rating="R"]|} ] );
    (* Sports package: sports channel only. *)
    ( "sports-fan",
      [ Rule.allow ~subject:"sports-fan" {|//item[channel="sports"]|} ] );
    (* Regional teaser: European news items only. *)
    ( "eu-news",
      [ Rule.allow ~subject:"eu-news"
          {|//item[channel="news"][region="eu"]|} ] );
  ]

let () =
  let drbg = Drbg.create ~seed:"dissemination-example" in
  let rng = Rng.create 7L in

  print_endline "== One broadcast, three subscription profiles ==";
  let feed = Sdds_xml.Generator.feed rng ~events:150 in
  let stats = Sdds_xml.Stats.compute feed in
  Printf.printf "feed: %d items, %d bytes serialized\n\n"
    (List.length (Sdds_xml.Dom.children feed))
    stats.Sdds_xml.Stats.serialized_bytes;

  let provider = Rsa.generate drbg ~bits:512 in
  let published, doc_key =
    Publish.publish drbg ~publisher:provider ~doc_id:"feed-2026-07-05" feed
  in
  let store = Store.create () in
  Store.put_document store published;

  let pki = Pki.create () in
  let cards =
    List.map
      (fun (subject, rules) ->
        let kp = Rsa.generate drbg ~bits:512 in
        Pki.register pki ~name:subject kp.Rsa.public;
        Store.put_rules store ~doc_id:"feed-2026-07-05" ~subject
          (Publish.encrypt_rules_for drbg ~publisher:provider ~doc_key
             ~doc_id:"feed-2026-07-05" ~subject rules);
        Store.put_grant store ~doc_id:"feed-2026-07-05" ~subject
          (Publish.grant drbg ~doc_key ~doc_id:"feed-2026-07-05"
             ~recipient:kp.Rsa.public);
        (subject, Card.create ~profile:Cost.modern ~subject kp))
      subscriptions
  in

  Printf.printf "%-11s %8s %16s %14s %10s\n" "subscriber" "items"
    "decrypted/total" "transfer(B)" "time(ms)";
  List.iter
    (fun (subject, card) ->
      let proxy = Proxy.create ~store ~card in
      match Proxy.run proxy (Proxy.Request.make ~delivery:`Push "feed-2026-07-05") with
      | Error e -> Format.printf "%-11s ERROR: %a@." subject Proxy.pp_error e
      | Ok o ->
          let r = o.Proxy.card_report in
          let b = r.Card.breakdown in
          let items =
            match o.Proxy.view with
            | Some v ->
                List.length
                  (Sdds_xml.Dom.find_all
                     (fun _ n -> Sdds_xml.Dom.tag n = Some "item")
                     v)
            | None -> 0
          in
          Printf.printf "%-11s %8d %10d/%-5d %14d %10.1f\n" subject items
            r.Card.chunks_consumed r.Card.chunks_total
            b.Cost.bytes_transferred b.Cost.total_ms)
    cards;

  (* In push mode every card sees all the ciphertext (it is a broadcast),
     but decryption tracks the subscription: narrow subscribers decrypt a
     fraction of what premium does. *)
  print_endline "\n== A sports fan's view, first items ==";
  let _, sports_card = List.nth cards 1 in
  let proxy = Proxy.create ~store ~card:sports_card in
  match Proxy.run proxy (Proxy.Request.make ~delivery:`Push "feed-2026-07-05") with
  | Error e -> Format.printf "ERROR: %a@." Proxy.pp_error e
  | Ok { Proxy.view = Some v; _ } ->
      let items =
        Sdds_xml.Dom.find_all
          (fun _ n -> Sdds_xml.Dom.tag n = Some "item")
          v
      in
      List.iteri
        (fun i item ->
          if i < 3 then
            print_endline (Sdds_xml.Serializer.to_string ~indent:true item))
        items
  | Ok { Proxy.view = None; _ } -> print_endline "(nothing matched)"
