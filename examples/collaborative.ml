(* Collaborative work among a community of users (demo application 1).

   A medical team shares a patient database through an untrusted Data
   Service Provider. The full architecture runs: the publisher encrypts
   and signs the indexed document, deposits encrypted per-user rules and
   wrapped key grants on the DSP, and each user pulls their view through
   a terminal proxy driving their personal smart card. Then the sharing
   policy evolves — with no re-encryption of the dataset — and, for
   contrast, the same policy change is priced under a classic
   static-encryption scheme. Run with:

     dune exec examples/collaborative.exe
*)

module Rule = Sdds_core.Rule
module Card = Sdds_soe.Card
module Cost = Sdds_soe.Cost
module Pki = Sdds_dsp.Pki
module Publish = Sdds_dsp.Publish
module Store = Sdds_dsp.Store
module Proxy = Sdds_proxy.Proxy
module Static_enc = Sdds_baseline.Static_enc
module Drbg = Sdds_crypto.Drbg
module Rsa = Sdds_crypto.Rsa
module Rng = Sdds_util.Rng

let section title = Printf.printf "\n== %s ==\n" title

let () =
  let drbg = Drbg.create ~seed:"collaborative-example" in
  let rng = Rng.create 2025L in

  section "Setting: a hospital, three users, one untrusted DSP";
  let doc = Sdds_xml.Generator.hospital rng ~patients:12 in
  let stats = Sdds_xml.Stats.compute doc in
  Printf.printf "document: %d elements, %d bytes serialized, depth %d\n"
    stats.Sdds_xml.Stats.elements stats.Sdds_xml.Stats.serialized_bytes
    stats.Sdds_xml.Stats.max_depth;

  (* Identities. 512-bit RSA keeps the example fast; see DESIGN.md. *)
  let pki = Pki.create () in
  let publisher = Rsa.generate drbg ~bits:512 in
  let users =
    List.map
      (fun name ->
        let kp = Rsa.generate drbg ~bits:512 in
        Pki.register pki ~name kp.Rsa.public;
        (name, Card.create ~profile:Cost.egate ~subject:name kp))
      [ "doctor"; "nurse"; "researcher" ]
  in

  section "Publishing (compress, index, chunk, encrypt, sign)";
  (* 128-byte plaintext chunks: the e-gate card only has 1 KB of RAM, and
     the chunk buffer lives in it alongside the evaluator's token stack —
     a deployment-time trade-off between RAM and framing overhead. *)
  let published, doc_key =
    Publish.publish drbg ~publisher ~doc_id:"ward-db" ~chunk_bytes:128 doc
  in
  Printf.printf "chunks: %d x %dB plaintext, merkle root %s...\n"
    (Array.length published.Publish.chunks)
    published.Publish.chunk_plain_bytes
    (String.sub (Sdds_util.Hex.encode published.Publish.merkle_root) 0 16);

  let store = Store.create () in
  Store.put_document store published;

  (* Per-user policies: user-specific, dynamic, unpredictable — the
     motivating situation of the paper's introduction. *)
  let policies =
    [
      ( "doctor",
        [ Rule.allow ~subject:"doctor" "//patient";
          Rule.allow ~subject:"doctor" "//department/name" ] );
      ( "nurse",
        [ Rule.allow ~subject:"nurse" "//patient";
          Rule.deny ~subject:"nurse" "//folder";
          Rule.deny ~subject:"nurse" "//ssn" ] );
      ( "researcher",
        [ Rule.allow ~subject:"researcher" {|//patient[age>"60"]/folder|};
          Rule.deny ~subject:"researcher" "//comment" ] );
    ]
  in
  List.iter
    (fun (subject, rules) ->
      Store.put_rules store ~doc_id:"ward-db" ~subject
        (Publish.encrypt_rules_for drbg ~publisher ~doc_key ~doc_id:"ward-db"
           ~subject rules);
      Store.put_grant store ~doc_id:"ward-db" ~subject
        (Publish.grant drbg ~doc_key ~doc_id:"ward-db"
           ~recipient:(Option.get (Pki.lookup pki subject))))
    policies;

  section "Each user pulls their view through their card (e-gate profile)";
  List.iter
    (fun (name, card) ->
      let proxy = Proxy.create ~store ~card in
      match Proxy.run proxy (Proxy.Request.make "ward-db") with
      | Error e -> Format.printf "%-11s ERROR: %a@." name Proxy.pp_error e
      | Ok o ->
          let r = o.Proxy.card_report in
          let b = r.Card.breakdown in
          let view_elems =
            match o.Proxy.view with
            | Some v -> Sdds_xml.Dom.node_count v
            | None -> 0
          in
          Printf.printf
            "%-11s view=%4d elements | %2d/%2d chunks fetched | %6.0f ms \
             (transfer %5.0f, crypto %4.0f, cpu %4.0f) | RAM %4dB/%dB\n"
            name view_elems r.Card.chunks_consumed r.Card.chunks_total
            b.Cost.total_ms b.Cost.transfer_ms b.Cost.crypto_ms b.Cost.cpu_ms
            r.Card.ram_peak_bytes r.Card.ram_budget_bytes)
    users;

  section "A doctor asks a focused question (query composed on-card)";
  let doctor_card = List.assoc "doctor" users in
  let proxy = Proxy.create ~store ~card:doctor_card in
  (match
     Proxy.run proxy
       (Proxy.Request.make ~xpath:{|//patient[age>"60"]/name|} "ward-db")
   with
  | Error e -> Format.printf "ERROR: %a@." Proxy.pp_error e
  | Ok o -> (
      match o.Proxy.xml with
      | Some xml -> print_endline xml
      | None -> print_endline "(empty result)"));

  section "The policy evolves: the researcher loses prescriptions";
  let new_researcher_rules =
    [ Rule.allow ~subject:"researcher" {|//patient[age>"60"]/folder|};
      Rule.deny ~subject:"researcher" "//comment";
      Rule.deny ~subject:"researcher" "//prescription" ]
  in
  let blob =
    Publish.encrypt_rules_for drbg ~publisher ~doc_key ~doc_id:"ward-db"
      ~subject:"researcher" new_researcher_rules
  in
  Store.put_rules store ~doc_id:"ward-db" ~subject:"researcher" blob;
  Printf.printf
    "our scheme:        rewrote one %d-byte rule blob; the %d encrypted \
     chunks are untouched\n"
    (String.length blob)
    (Array.length published.Publish.chunks);

  (* The same change under static encryption. *)
  let subjects = List.map fst policies in
  let all_rules = List.concat_map snd policies in
  let static = Static_enc.build drbg ~subjects ~rules:all_rules doc in
  let all_rules_v2 =
    List.concat_map
      (fun (s, r) -> if s = "researcher" then new_researcher_rules else r)
      policies
  in
  let _, cost = Static_enc.update drbg static ~rules:all_rules_v2 in
  Format.printf "static encryption: %a@." Static_enc.pp_update_cost cost;

  (* Verify the new policy is enforced end to end. *)
  let researcher_card = List.assoc "researcher" users in
  let proxy = Proxy.create ~store ~card:researcher_card in
  match Proxy.run proxy (Proxy.Request.make ~xpath:"//prescription" "ward-db") with
  | Ok { Proxy.view = None; _ } ->
      print_endline "researcher now sees no prescriptions - policy enforced"
  | Ok _ -> print_endline "UNEXPECTED: prescriptions still visible"
  | Error e -> Format.printf "ERROR: %a@." Proxy.pp_error e
