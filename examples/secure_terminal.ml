(* The terminal <-> card wire, made visible.

   Everything between the proxy and the SOE crosses an ISO 7816 link in
   255-byte APDU frames; this example runs a pull query through the real
   framed protocol (Remote_card) with a tracing transport, printing every
   command and status word — the exchange the demo's Figure 3 labels
   "APDU". Run with:

     dune exec examples/secure_terminal.exe
*)

module Remote_card = Sdds_soe.Remote_card
module Card = Sdds_soe.Card
module Cost = Sdds_soe.Cost
module Apdu = Sdds_soe.Apdu
module Publish = Sdds_dsp.Publish
module Rule = Sdds_core.Rule
module Reassembler = Sdds_core.Reassembler
module Drbg = Sdds_crypto.Drbg
module Rsa = Sdds_crypto.Rsa
module Rng = Sdds_util.Rng

let ins_name ins =
  if ins = Remote_card.Ins.select then "SELECT "
  else if ins = Remote_card.Ins.grant then "GRANT  "
  else if ins = Remote_card.Ins.rules then "RULES  "
  else if ins = Remote_card.Ins.query then "QUERY  "
  else if ins = Remote_card.Ins.evaluate then "EVAL   "
  else if ins = Remote_card.Ins.get_response then "GETRESP"
  else Printf.sprintf "INS %02X" ins

let () =
  let drbg = Drbg.create ~seed:"secure-terminal" in
  let publisher = Rsa.generate drbg ~bits:512 in
  let user = Rsa.generate drbg ~bits:512 in
  let doc = Sdds_xml.Generator.hospital (Rng.create 5L) ~patients:3 in
  let published, doc_key =
    Publish.publish drbg ~publisher ~doc_id:"ward" doc
  in
  let rules =
    [ Rule.allow ~subject:"nurse" "//patient"; Rule.deny ~subject:"nurse" "//ssn" ]
  in
  let encrypted_rules =
    Publish.encrypt_rules_for drbg ~publisher ~doc_key ~doc_id:"ward"
      ~subject:"nurse" rules
  in
  let wrapped =
    Publish.grant drbg ~doc_key ~doc_id:"ward" ~recipient:user.Rsa.public
  in
  let card = Card.create ~profile:Cost.egate ~subject:"nurse" user in
  let host =
    Remote_card.Host.create ~card ~resolve:(fun id ->
        if id = "ward" then
          Some (Publish.to_source published ~delivery:`Pull)
        else None)
      ()
  in

  print_endline "== APDU trace (terminal -> card -> terminal) ==";
  let frame_no = ref 0 in
  let tracing cmd =
    incr frame_no;
    let resp = Remote_card.Host.process host cmd in
    Printf.printf "#%02d  > %s p1=%d p2=%3d | %3dB data\n" !frame_no
      (ins_name cmd.Apdu.ins) cmd.Apdu.p1 cmd.Apdu.p2
      (String.length cmd.Apdu.data);
    Printf.printf "     <          SW %02X%02X | %3dB payload\n"
      resp.Apdu.sw1 resp.Apdu.sw2
      (String.length resp.Apdu.payload);
    resp
  in
  match
    Remote_card.Client.evaluate tracing ~doc_id:"ward" ~wrapped_grant:wrapped
      ~encrypted_rules ~xpath:"//patient/name" ()
  with
  | Error e ->
      prerr_endline
        ("exchange failed: " ^ Remote_card.Client.string_of_error e)
  | Ok r ->
      Printf.printf
        "\n%d command frames, %d response frames, %d bytes on the wire\n"
        r.Remote_card.Client.command_frames
        r.Remote_card.Client.response_frames r.Remote_card.Client.wire_bytes;
      print_endline "\n== Reassembled view ==";
      (match
         Reassembler.run ~has_query:true r.Remote_card.Client.outputs
       with
      | Some view ->
          print_endline (Sdds_xml.Serializer.to_string ~indent:true view)
      | None -> print_endline "(nothing authorized)")
