(* Parental control (motivating application 3 of the paper's
   introduction).

   "Neither Web site nor Internet Service Provider can predict the
   diversity of access control rules that parents with different
   sensibility are willing to enforce." Here the same encrypted content
   feed reaches a family's devices; each child's card enforces the rules
   *their* parents chose — rating caps, channel blocks, a bedtime window —
   and a parent can tighten the policy locally at any time without asking
   the provider for anything. Run with:

     dune exec examples/parental_control.exe
*)

module Rule = Sdds_core.Rule
module Card = Sdds_soe.Card
module Cost = Sdds_soe.Cost
module Publish = Sdds_dsp.Publish
module Store = Sdds_dsp.Store
module Proxy = Sdds_proxy.Proxy
module Drbg = Sdds_crypto.Drbg
module Rsa = Sdds_crypto.Rsa
module Rng = Sdds_util.Rng

let count_items view =
  match view with
  | None -> 0
  | Some v ->
      List.length
        (Sdds_xml.Dom.find_all (fun _ n -> Sdds_xml.Dom.tag n = Some "item") v)

let show store card label =
  let proxy = Proxy.create ~store ~card in
  match Proxy.run proxy (Proxy.Request.make ~delivery:`Push "kids-feed") with
  | Error e -> Format.printf "%-18s ERROR: %a@." label Proxy.pp_error e
  | Ok o ->
      Printf.printf "%-18s sees %3d items (%d of %d chunks decrypted)\n" label
        (count_items o.Proxy.view) o.Proxy.card_report.Card.chunks_consumed
        o.Proxy.card_report.Card.chunks_total

let () =
  let drbg = Drbg.create ~seed:"parental-control" in
  let rng = Rng.create 99L in

  let feed = Sdds_xml.Generator.feed rng ~events:100 in
  let provider = Rsa.generate drbg ~bits:512 in
  let published, doc_key =
    Publish.publish drbg ~publisher:provider ~doc_id:"kids-feed" feed
  in
  let store = Store.create () in
  Store.put_document store published;

  (* Two families, very different sensibilities, one provider that knows
     nothing about either. *)
  let family =
    [
      ( "teen",
        [ Rule.allow ~subject:"teen" "//item";
          Rule.deny ~subject:"teen" {|//item[rating="R"]|} ] );
      ( "younger-child",
        [ Rule.allow ~subject:"younger-child" {|//item[rating="G"]|};
          Rule.deny ~subject:"younger-child" {|//item[channel="finance"]|} ] );
    ]
  in
  let cards =
    List.map
      (fun (subject, rules) ->
        let kp = Rsa.generate drbg ~bits:512 in
        Store.put_rules store ~doc_id:"kids-feed" ~subject
          (Publish.encrypt_rules_for drbg ~publisher:provider ~doc_key
             ~doc_id:"kids-feed" ~subject rules);
        Store.put_grant store ~doc_id:"kids-feed" ~subject
          (Publish.grant drbg ~doc_key ~doc_id:"kids-feed"
             ~recipient:kp.Rsa.public);
        (subject, Card.create ~profile:Cost.modern ~subject kp))
      family
  in

  print_endline "== Same broadcast, per-child enforcement ==";
  List.iter (fun (subject, card) -> show store card subject) cards;

  (* Exam week: the teen's parents cut everything but the news, by
     swapping one small encrypted rule blob. The provider is not
     involved; siblings are unaffected. *)
  print_endline "\n== Exam week: parents tighten the teen's policy ==";
  let strict =
    [ Rule.allow ~subject:"teen" {|//item[channel="news"]|};
      Rule.deny ~subject:"teen" {|//item[rating="R"]|} ]
  in
  Store.put_rules store ~doc_id:"kids-feed" ~subject:"teen"
    (Publish.encrypt_rules_for drbg ~publisher:provider ~doc_key
       ~doc_id:"kids-feed" ~subject:"teen" strict);
  List.iter (fun (subject, card) -> show store card subject) cards;

  (* The teen's terminal cannot cheat: the rules are MAC-protected under
     the document key that only the card holds, so doctoring the blob
     bricks the evaluation rather than widening the view. *)
  print_endline "\n== A doctored rule blob is rejected by the card ==";
  let blob =
    Option.get (Store.get_rules store ~doc_id:"kids-feed" ~subject:"teen")
  in
  let forged = Bytes.of_string blob in
  Bytes.set_uint8 forged 24 (Bytes.get_uint8 forged 24 lxor 0xff);
  Store.put_rules store ~doc_id:"kids-feed" ~subject:"teen"
    (Bytes.to_string forged);
  let teen_card = List.assoc "teen" cards in
  (match
     Proxy.run
     (Proxy.create ~store ~card:teen_card)
     (Proxy.Request.make ~delivery:`Push "kids-feed")
   with
  | Error e -> Format.printf "card says: %a@." Proxy.pp_error e
  | Ok _ -> print_endline "UNEXPECTED: forged rules accepted");

  (* Restore and confirm. *)
  Store.put_rules store ~doc_id:"kids-feed" ~subject:"teen" blob;
  show store teen_card "teen (restored)"
