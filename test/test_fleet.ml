(* Fleet-scale sharded serving, and the chain-protocol replay fixes it
   leans on: the exactly-once chain completion (duplicate final frames,
   including at the 256-frame sequence wraparound), the consistent-hash
   ring's resize stability, admission control, re-routing, and the fleet
   differential oracle (every fleet-served request equals the
   single-card golden view or a typed error, under per-card faults). *)

module Card = Sdds_soe.Card
module Cost = Sdds_soe.Cost
module Apdu = Sdds_soe.Apdu
module Remote = Sdds_soe.Remote_card
module Proxy = Sdds_proxy.Proxy
module Fleet = Sdds_proxy.Fleet
module Fault = Sdds_fault.Fault
module Publish = Sdds_dsp.Publish
module Store = Sdds_dsp.Store
module Rule = Sdds_core.Rule
module Generator = Sdds_xml.Generator
module Drbg = Sdds_crypto.Drbg
module Rsa = Sdds_crypto.Rsa
module Rng = Sdds_util.Rng
module Obs = Sdds_obs.Obs
module Json = Sdds_analysis.Json

(* ------------------------------------------------------------------ *)
(* Chain protocol: exactly-once completion under retransmission        *)
(* ------------------------------------------------------------------ *)

let chain_frame ?(p1 = 0) ?(p2 = 0) data =
  { Apdu.cla = Apdu.base_cla; ins = Remote.Ins.rules; p1; p2; data }

(* The replay hole this PR closes: a single-frame chain finishes at
   p2 = 0, which a p2-keyed completion marker cannot tell from a fresh
   chain opener — the duplicated final frame silently re-executed. *)
let test_chain_single_frame_duplicate () =
  let ch = Remote.Chain.create () in
  (match Remote.Chain.feed ch (chain_frame "abc") with
  | Remote.Chain.Completed p -> Alcotest.(check string) "payload" "abc" p
  | _ -> Alcotest.fail "single final frame must complete");
  match Remote.Chain.feed ch (chain_frame "abc") with
  | Remote.Chain.Duplicate -> ()
  | Remote.Chain.Completed _ ->
      Alcotest.fail "duplicated final frame re-executed the instruction"
  | _ -> Alcotest.fail "duplicated final frame must be re-acked"

(* The same hole one lap later: frame 257 carries p2 = 256 mod 256 = 0. *)
let test_chain_wraparound_duplicate () =
  let payload =
    String.init ((256 * 255) + 9) (fun i -> Char.chr ((i * 31) land 0xff))
  in
  let frames = Apdu.segment ~cla:Apdu.base_cla ~ins:Remote.Ins.rules payload in
  Alcotest.(check int) "spans the wraparound" 257 (List.length frames);
  let final = List.nth frames 256 in
  Alcotest.(check int) "final frame lands on p2 = 0" 0 final.Apdu.p2;
  let ch = Remote.Chain.create () in
  let completed = ref None in
  List.iter
    (fun f ->
      match Remote.Chain.feed ch f with
      | Remote.Chain.Completed p -> completed := Some p
      | Remote.Chain.Accepted -> ()
      | Remote.Chain.Duplicate | Remote.Chain.Rejected ->
          Alcotest.fail "clean chain must be accepted")
    frames;
  Alcotest.(check bool) "completed with the exact payload" true
    (!completed = Some payload);
  (match Remote.Chain.feed ch final with
  | Remote.Chain.Duplicate -> ()
  | Remote.Chain.Completed _ ->
      Alcotest.fail "retransmitted wraparound final started a fresh chain"
  | _ -> Alcotest.fail "retransmitted final must be re-acked");
  (* A stale mid-chain continuation after completion is a protocol
     error, not a silent restart. *)
  match Remote.Chain.feed ch (chain_frame ~p1:1 ~p2:5 "stale") with
  | Remote.Chain.Rejected -> ()
  | _ -> Alcotest.fail "stale continuation must be rejected"

(* [forget] exists for uploads refused for good (static admission): the
   marker is dropped, so the "same" frame executes afresh. *)
let test_chain_forget_clears_marker () =
  let ch = Remote.Chain.create () in
  (match Remote.Chain.feed ch (chain_frame "abc") with
  | Remote.Chain.Completed _ -> ()
  | _ -> Alcotest.fail "must complete");
  Remote.Chain.forget ch Remote.Ins.rules;
  match Remote.Chain.feed ch (chain_frame "abc") with
  | Remote.Chain.Completed p -> Alcotest.(check string) "payload" "abc" p
  | _ -> Alcotest.fail "forgotten marker must not re-ack"

(* The invariant, property-tested across the 256-frame boundary: feeding
   one [Apdu.segment] run with any frame retransmitted (adjacent
   duplicates, the link's failure mode) completes exactly once with the
   exact payload, and never rejects. *)
let qcheck_chain_exactly_once =
  QCheck2.Test.make
    ~name:"chain completes exactly once under duplicates (256 wraparound)"
    ~count:25
    QCheck2.Gen.(
      triple
        (oneofl [ 1; 2; 3; 254; 255; 256; 257; 258 ])
        (int_range 1 255) (int_bound 1_000_000))
    (fun (frames, last_len, seed) ->
      let len = ((frames - 1) * 255) + last_len in
      let payload =
        String.init len (fun i -> Char.chr ((i * 131 + seed) land 0xff))
      in
      let cmds =
        Apdu.segment ~cla:Apdu.base_cla ~ins:Remote.Ins.rules payload
      in
      assert (List.length cmds = frames);
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      let ch = Remote.Chain.create () in
      let completions = ref [] in
      let ok = ref true in
      List.iter
        (fun f ->
          let deliveries = 1 + (if Rng.int rng 100 < 30 then 1 else 0) in
          for _ = 1 to deliveries do
            match Remote.Chain.feed ch f with
            | Remote.Chain.Completed p -> completions := p :: !completions
            | Remote.Chain.Accepted | Remote.Chain.Duplicate -> ()
            | Remote.Chain.Rejected -> ok := false
          done)
        cmds;
      !ok && !completions = [ payload ])

(* ------------------------------------------------------------------ *)
(* End-to-end: duplicated final frames through the full APDU stack     *)
(* ------------------------------------------------------------------ *)

let run_eval ~store ~user ~grant ~blob schedule =
  let resolve id =
    Option.map
      (fun p -> Publish.to_source p ~delivery:`Pull)
      (Store.get_document store id)
  in
  let card = Card.create ~profile:Cost.modern ~subject:"u" user in
  let host = Remote.Host.create ~card ~resolve () in
  let link =
    Fault.Link.wrap ~schedule
      ~tear:(fun () -> Remote.Host.tear host)
      (Remote.Host.process host)
  in
  let r =
    Remote.Client.evaluate
      (Fault.Link.transport link)
      ~doc_id:"ward" ~wrapped_grant:grant ~encrypted_rules:blob ()
  in
  (r, link)

let outputs_of name = function
  | Ok r, _ -> r.Remote.Client.outputs
  | Error e, _ ->
      Alcotest.failf "%s failed: %s" name (Remote.Client.string_of_error e)

(* Satellite: a rules blob that fits one frame — the upload IS its own
   final frame (p1 = 0, p2 = 0) — duplicated on the wire. The view must
   equal the clean run's. *)
let test_single_frame_upload_duplicate_end_to_end () =
  let drbg = Drbg.create ~seed:"fleet-single-frame" in
  let publisher = Rsa.generate drbg ~bits:512 in
  let user = Rsa.generate drbg ~bits:512 in
  let store = Store.create () in
  let doc = Generator.hospital (Rng.create 7L) ~patients:2 in
  let published, doc_key = Publish.publish drbg ~publisher ~doc_id:"ward" doc in
  Store.put_document store published;
  let blob =
    Publish.encrypt_rules_for drbg ~publisher ~doc_key ~doc_id:"ward"
      ~subject:"u"
      [ Rule.allow ~subject:"u" "//patient" ]
  in
  Alcotest.(check int) "the upload fits one frame" 1
    (Apdu.frame_count ~payload_bytes:(String.length blob));
  let grant =
    Publish.grant drbg ~doc_key ~doc_id:"ward" ~recipient:user.Rsa.public
  in
  let clean =
    outputs_of "clean" (run_eval ~store ~user ~grant ~blob Fault.Schedule.none)
  in
  (* Frames 0–1 are SELECT and GRANT; frame 2 is the whole rules chain. *)
  let r, link =
    run_eval ~store ~user ~grant ~blob
      (Fault.Schedule.of_events
         [ { Fault.frame = 2; kind = Fault.Duplicate_command } ])
  in
  Alcotest.(check int) "the duplicate fired" 1 (Fault.Link.injected link);
  Alcotest.(check bool) "duplicated single-frame upload: exact view" true
    (outputs_of "duplicated" (r, link) = clean)

(* Satellite: a 257-frame upload, whose final frame lands on
   p2 = 256 mod 256 = 0, with that final frame duplicated. Pre-fix the
   duplicate opened a fresh one-frame "chain" whose garbage payload
   replaced the rules and the evaluation failed; post-fix it is re-acked
   and the view is exact. *)
let test_wraparound_upload_duplicate_end_to_end () =
  let drbg = Drbg.create ~seed:"fleet-wraparound" in
  let publisher = Rsa.generate drbg ~bits:512 in
  let user = Rsa.generate drbg ~bits:512 in
  let store = Store.create () in
  let doc = Generator.hospital (Rng.create 9L) ~patients:1 in
  let published, doc_key = Publish.publish drbg ~publisher ~doc_id:"ward" doc in
  Store.put_document store published;
  (* Pad the rule set until the encrypted blob segments into exactly 257
     frames; ciphertext grows ~1 byte per plaintext byte, so aiming at
     the middle of the 255-byte-wide window converges in a few steps. *)
  let blob_for pad =
    Publish.encrypt_rules_for drbg ~publisher ~doc_key ~doc_id:"ward"
      ~subject:"u"
      [ Rule.allow ~subject:"u" "//patient";
        Rule.deny ~subject:"u" ("//" ^ String.make pad 'z') ]
  in
  let target = (257 * 255) - 127 in
  let rec tune pad guard =
    if guard = 0 then Alcotest.fail "could not tune a 257-frame blob"
    else
      let blob = blob_for pad in
      if Apdu.frame_count ~payload_bytes:(String.length blob) = 257 then blob
      else tune (max 1 (pad + target - String.length blob)) (guard - 1)
  in
  let blob = tune 65000 20 in
  let grant =
    Publish.grant drbg ~doc_key ~doc_id:"ward" ~recipient:user.Rsa.public
  in
  let clean =
    outputs_of "clean" (run_eval ~store ~user ~grant ~blob Fault.Schedule.none)
  in
  (* SELECT (0), GRANT (1), then 257 rules frames: the final one is
     frame 2 + 256 = 258. *)
  let r, link =
    run_eval ~store ~user ~grant ~blob
      (Fault.Schedule.of_events
         [ { Fault.frame = 258; kind = Fault.Duplicate_command } ])
  in
  Alcotest.(check int) "the duplicate fired" 1 (Fault.Link.injected link);
  Alcotest.(check bool) "duplicated wraparound final: exact view" true
    (outputs_of "duplicated" (r, link) = clean)

(* ------------------------------------------------------------------ *)
(* Consistent-hash ring                                                 *)
(* ------------------------------------------------------------------ *)

let test_ring_basics () =
  let ring = Fleet.Ring.create [ 2; 0; 1; 1 ] in
  Alcotest.(check (list int)) "members sorted, deduped" [ 0; 1; 2 ]
    (Fleet.Ring.members ring);
  let owner = Fleet.Ring.lookup ring "some-key" in
  Alcotest.(check bool) "owner is a member" true (List.mem owner [ 0; 1; 2 ]);
  Alcotest.(check int) "lookup is deterministic" owner
    (Fleet.Ring.lookup ring "some-key");
  Alcotest.check_raises "empty ring refuses lookups"
    (Invalid_argument "Ring.lookup: empty ring") (fun () ->
      ignore (Fleet.Ring.lookup (Fleet.Ring.create []) "k"))

(* Resize stability — why the fleet's affinity survives adding or
   removing a card: growing the ring only moves keys TO the new member,
   and shrinking it back restores the exact original mapping. *)
let qcheck_ring_resize_stability =
  QCheck2.Test.make ~name:"ring resize moves only the changed member's keys"
    ~count:50
    QCheck2.Gen.(pair (int_range 1 8) (int_bound 1_000_000))
    (fun (n, seed) ->
      let ring = Fleet.Ring.create (List.init n Fun.id) in
      let keys = List.init 100 (fun i -> Printf.sprintf "key-%d-%d" seed i) in
      let before = List.map (Fleet.Ring.lookup ring) keys in
      let grown = Fleet.Ring.add ring n in
      List.for_all2
        (fun k b ->
          let a = Fleet.Ring.lookup grown k in
          a = b || a = n)
        keys before
      && Fleet.Ring.members (Fleet.Ring.remove grown n)
         = Fleet.Ring.members ring
      && List.for_all2
           (fun k b -> Fleet.Ring.lookup (Fleet.Ring.remove grown n) k = b)
           keys before)

(* ------------------------------------------------------------------ *)
(* Fleet world: several published documents, one subject               *)
(* ------------------------------------------------------------------ *)

type fworld = { store : Store.t; user : Rsa.keypair }

let ndocs = 6
let fdoc i = Printf.sprintf "doc%d" i

let make_fleet_world () =
  let drbg = Drbg.create ~seed:"fleet-world" in
  let publisher = Rsa.generate drbg ~bits:512 in
  let user = Rsa.generate drbg ~bits:512 in
  let store = Store.create () in
  List.iter
    (fun i ->
      let doc_id = fdoc i in
      let doc =
        Generator.hospital
          (Rng.create (Int64.of_int (101 + i)))
          ~patients:(1 + (i mod 3))
      in
      let published, doc_key = Publish.publish drbg ~publisher ~doc_id doc in
      Store.put_document store published;
      (* Distinct rule sets per document, so each (doc, rules digest)
         affinity key is its own point on the ring. *)
      let rules =
        Rule.allow ~subject:"u" "//patient"
        ::
        (if i mod 2 = 0 then [ Rule.deny ~subject:"u" "//ssn" ]
         else [ Rule.deny ~subject:"u" "//diagnosis" ])
      in
      Store.put_rules store ~doc_id ~subject:"u"
        (Publish.encrypt_rules_for drbg ~publisher ~doc_key ~doc_id
           ~subject:"u" rules);
      Store.put_grant store ~doc_id ~subject:"u"
        (Publish.grant drbg ~doc_key ~doc_id ~recipient:user.Rsa.public))
    (List.init ndocs Fun.id);
  { store; user }

let fleet_world = lazy (make_fleet_world ())

let fleet_resolve w id =
  Option.map
    (fun p -> Publish.to_source p ~delivery:`Pull)
    (Store.get_document w.store id)

let fresh_hosts w n =
  Array.init n (fun _ ->
      let card = Card.create ~profile:Cost.modern ~subject:"u" w.user in
      Remote.Host.create ~card ~resolve:(fleet_resolve w) ())

(* The differential reference: the same request through the plain
   single-card [Proxy.run], fault-free. *)
let golden_tbl : (string * string option, string option) Hashtbl.t =
  Hashtbl.create 16

let fleet_golden w doc_id xpath =
  match Hashtbl.find_opt golden_tbl (doc_id, xpath) with
  | Some xml -> xml
  | None ->
      let card = Card.create ~profile:Cost.modern ~subject:"u" w.user in
      let proxy = Proxy.create ~store:w.store ~card in
      let xml =
        match Proxy.run proxy (Proxy.Request.make ?xpath doc_id) with
        | Ok o -> o.Proxy.xml
        | Error e -> Alcotest.failf "golden run failed: %a" Proxy.pp_error e
      in
      Hashtbl.add golden_tbl (doc_id, xpath) xml;
      xml

(* ------------------------------------------------------------------ *)
(* Fleet behaviour                                                      *)
(* ------------------------------------------------------------------ *)

(* A zipf-flavoured pull of the document population: doc0 takes half the
   traffic, the rest spreads thin — the mix that makes affinity pay. *)
let pick_doc i =
  if i mod 2 = 0 then 0 else 1 + (i * 7 mod (ndocs - 1))

let test_fleet_serves_batch_exactly () =
  let w = Lazy.force fleet_world in
  let obs = Obs.create ~tracing:false () in
  let hosts = fresh_hosts w 2 in
  let fleet =
    Fleet.create ~obs ~store:w.store ~subject:"u"
      (Array.map Remote.Host.process hosts)
  in
  let reqs = List.init 24 (fun i -> Proxy.Request.make (fdoc (pick_doc i))) in
  let outs = Fleet.serve fleet reqs in
  List.iter2
    (fun (r : Proxy.Request.t) (o : Fleet.outcome) ->
      match o.Fleet.result with
      | Ok s ->
          Alcotest.(check (option string))
            "fleet view = single-card view"
            (fleet_golden w r.Proxy.Request.doc_id None)
            s.Proxy.Pool.xml;
          Alcotest.(check bool) "latency is simulated time" true
            (o.Fleet.latency_s > 0.0)
      | Error e -> Alcotest.failf "fleet request failed: %a" Proxy.pp_error e)
    reqs outs;
  let st = Fleet.stats fleet in
  Alcotest.(check int) "every request counted" 24 st.Fleet.requests;
  Alcotest.(check int) "no rejections" 0 st.Fleet.rejected;
  Alcotest.(check bool) "affinity routed" true (st.Fleet.affinity_hits > 0);
  Alcotest.(check int) "all completions accounted" 24
    (Array.fold_left ( + ) 0 st.Fleet.served_by);
  Alcotest.(check int) "requests counter" 24
    (Obs.Metrics.counter_value obs.Obs.metrics "fleet.requests");
  Alcotest.(check int) "affinity counter mirrors stats"
    st.Fleet.affinity_hits
    (Obs.Metrics.counter_value obs.Obs.metrics "fleet.affinity_hits");
  (* Affinity's point: a second identical batch finds the per-channel
     session memos of the cards the first batch warmed. *)
  let again = Fleet.serve fleet reqs in
  let warm =
    List.fold_left
      (fun n (o : Fleet.outcome) ->
        match o.Fleet.result with
        | Ok s when s.Proxy.Pool.warm_setup -> n + 1
        | _ -> n)
      0 again
  in
  Alcotest.(check bool) "repeat batch hits warm setups" true (warm > 0)

let test_fleet_admission_control () =
  let w = Lazy.force fleet_world in
  let hosts = fresh_hosts w 1 in
  let fleet =
    Fleet.create ~queue_limit:2 ~store:w.store ~subject:"u"
      (Array.map Remote.Host.process hosts)
  in
  let outs =
    Fleet.serve fleet (List.init 8 (fun _ -> Proxy.Request.make (fdoc 0)))
  in
  let ok, rejected =
    List.partition
      (fun (o : Fleet.outcome) -> Result.is_ok o.Fleet.result)
      outs
  in
  Alcotest.(check int) "bounded queue admits its limit" 2 (List.length ok);
  Alcotest.(check int) "the rest are refused" 6 (List.length rejected);
  List.iter
    (fun (o : Fleet.outcome) ->
      match o.Fleet.result with
      | Error Proxy.Overloaded -> ()
      | Error e -> Alcotest.failf "wrong refusal: %a" Proxy.pp_error e
      | Ok _ -> assert false)
    rejected;
  let st = Fleet.stats fleet in
  Alcotest.(check int) "rejections counted" 6 st.Fleet.rejected;
  Alcotest.(check int) "queue peak at the limit" 2 st.Fleet.queue_peak

let test_fleet_reroutes_off_a_dead_card () =
  let w = Lazy.force fleet_world in
  let hosts = fresh_hosts w 2 in
  (* Card 0's link drops every command; card 1 is clean. Least-loaded
     routing sends the lone request to card 0 first. *)
  let dead =
    Fault.Link.wrap
      ~schedule:
        (Fault.Schedule.random ~seed:1L ~rate:1.0
           ~kinds:[| Fault.Drop_command |] ())
      ~tear:(fun () -> Remote.Host.tear hosts.(0))
      (Remote.Host.process hosts.(0))
  in
  let fleet =
    Fleet.create ~routing:Fleet.Least_loaded ~store:w.store ~subject:"u"
      [| Fault.Link.transport dead; Remote.Host.process hosts.(1) |]
  in
  match Fleet.serve fleet [ Proxy.Request.make (fdoc 0) ] with
  | [ o ] ->
      (match o.Fleet.result with
      | Ok s ->
          Alcotest.(check (option string))
            "re-routed request serves the exact view"
            (fleet_golden w (fdoc 0) None)
            s.Proxy.Pool.xml
      | Error e -> Alcotest.failf "re-route failed: %a" Proxy.pp_error e);
      Alcotest.(check int) "served by the healthy card" 1 o.Fleet.card;
      (* The dead link fails the whole probe budget, so the card is
         declared dead and the request migrates — cheaper than a
         re-route, which would leave the corpse routable. *)
      Alcotest.(check int) "migrated, not re-routed" 0 o.Fleet.reroutes;
      Alcotest.(check int) "one migration" 1 o.Fleet.migrations;
      let st = Fleet.stats fleet in
      Alcotest.(check int) "death declared" 1 st.Fleet.deaths;
      Alcotest.(check bool) "corpse left the routing set" true
        (st.Fleet.states.(0) = Fleet.Dead)
  | _ -> Alcotest.fail "one request, one outcome"

(* The fleet differential oracle: under arbitrary seeded per-card fault
   schedules, every fleet-served request is the exact single-card golden
   view or one typed error — sharding plus re-routing never stitches,
   truncates or cross-serves a view. *)
let qcheck_fleet_differential =
  QCheck2.Test.make ~name:"fleet = single-card golden view or typed error"
    ~count:15
    QCheck2.Gen.(
      pair (int_bound 1_000_000) (map (fun r -> 0.25 *. r) (float_range 0.0 1.0)))
    (fun (seed, rate) ->
      let w = Lazy.force fleet_world in
      let hosts = fresh_hosts w 3 in
      let base = Fault.Schedule.random ~seed:(Int64.of_int seed) ~rate () in
      let transports =
        Array.mapi
          (fun i host ->
            Fault.Link.transport
              (Fault.Link.wrap
                 ~schedule:(Fault.Schedule.for_card base i)
                 ~tear:(fun () -> Remote.Host.tear host)
                 (Remote.Host.process host)))
          hosts
      in
      let fleet = Fleet.create ~store:w.store ~subject:"u" transports in
      let rng = Rng.create (Int64.of_int (seed + 7)) in
      let reqs =
        List.init 18 (fun _ ->
            let doc = fdoc (Rng.int rng ndocs) in
            let xpath =
              match Rng.int rng 3 with
              | 0 -> Some "//patient/name"
              | _ -> None
            in
            Proxy.Request.make ?xpath doc)
      in
      List.for_all2
        (fun (r : Proxy.Request.t) (o : Fleet.outcome) ->
          match o.Fleet.result with
          | Ok s ->
              s.Proxy.Pool.xml
              = fleet_golden w r.Proxy.Request.doc_id r.Proxy.Request.xpath
          | Error
              ( Proxy.Link_failure _ | Proxy.Card_error _ | Proxy.Protocol _
              | Proxy.Unknown_document _ | Proxy.No_grant | Proxy.No_rules
              | Proxy.Overloaded ) ->
              true)
        reqs (Fleet.serve fleet reqs))

(* ------------------------------------------------------------------ *)
(* Fleet survivability                                                  *)
(* ------------------------------------------------------------------ *)

module Chaos = Sdds_proxy.Chaos

(* The stale-channel-reuse regression, minimized from the long-flaky
   fleet differential: one card, 8 concurrent streams, a single tear
   early in the exchange. The tear resets the card's channel table while
   the pool's free list is empty; a Wait_channel stream's MANAGE CHANNEL
   then re-opened a number a pre-tear stream still held, and the two
   interleaved valid frames on one channel — one received the other's
   authorized view. Fixed in [Pool.acquire]: a MANAGE CHANNEL answer
   below the pool's open count is proof of an unobserved reset and now
   counts as tear evidence. The scan covers the early frames so the tear
   lands in every acquire/setup interleaving the 8 streams produce. *)
let test_tear_stale_channel_regression () =
  let w = Lazy.force fleet_world in
  for frame = 0 to 12 do
    let hosts = fresh_hosts w 1 in
    let link =
      Fault.Link.wrap
        ~schedule:
          (Fault.Schedule.of_events [ { Fault.frame; kind = Fault.Tear } ])
        ~tear:(fun () -> Remote.Host.tear hosts.(0))
        (Remote.Host.process hosts.(0))
    in
    let fleet =
      Fleet.create ~queue_limit:64 ~store:w.store ~subject:"u"
        [| Fault.Link.transport link |]
    in
    let reqs =
      List.init 8 (fun i ->
          let doc = fdoc (i mod ndocs) in
          let xpath = if i mod 3 = 0 then Some "//patient/name" else None in
          Proxy.Request.make ?xpath doc)
    in
    List.iter2
      (fun (r : Proxy.Request.t) (o : Fleet.outcome) ->
        match o.Fleet.result with
        | Ok s ->
            if
              s.Proxy.Pool.xml
              <> fleet_golden w r.Proxy.Request.doc_id r.Proxy.Request.xpath
            then
              Alcotest.failf
                "stale-channel cross-served view (tear at frame %d, doc %s)"
                frame r.Proxy.Request.doc_id
        | Error e -> Alcotest.failf "tear at frame %d: %a" frame Proxy.pp_error e)
      reqs (Fleet.serve fleet reqs)
  done

(* Draining a card with work in flight: every stream migrates and
   completes exactly once with the exact view; the drained card accepts
   nothing after the drain. *)
let test_drain_with_inflight_migrates_exactly_once () =
  let w = Lazy.force fleet_world in
  let obs = Obs.create ~tracing:false () in
  let hosts = fresh_hosts w 2 in
  let evals = Array.make 2 0 in
  let transports =
    Array.mapi
      (fun i host cmd ->
        if cmd.Apdu.ins = Remote.Ins.evaluate then evals.(i) <- evals.(i) + 1;
        Remote.Host.process host cmd)
      hosts
  in
  let fleet = Fleet.create ~obs ~store:w.store ~subject:"u" transports in
  let reqs = List.init 10 (fun i -> Proxy.Request.make (fdoc (i mod ndocs))) in
  let streams = List.map (Fleet.start fleet) reqs in
  Fleet.turn fleet;
  let load0 =
    fst (Obs.Metrics.gauge_value obs.Obs.metrics "fleet.card0.queue_depth")
  in
  Alcotest.(check bool) "card 0 holds work at drain time" true (load0 > 0);
  Fleet.remove_card fleet 0;
  let evals0_at_drain = evals.(0) in
  Alcotest.(check bool) "drain migrated the held work" true
    ((Fleet.stats fleet).Fleet.migrations >= 1);
  while List.exists (fun st -> Fleet.result st = None) streams do
    Fleet.turn fleet
  done;
  let ok = ref 0 in
  List.iter2
    (fun (r : Proxy.Request.t) st ->
      match (Option.get (Fleet.result st)).Fleet.result with
      | Ok s ->
          incr ok;
          Alcotest.(check (option string))
            "migrated request serves the exact view"
            (fleet_golden w r.Proxy.Request.doc_id None)
            s.Proxy.Pool.xml
      | Error e -> Alcotest.failf "drained request failed: %a" Proxy.pp_error e)
    reqs streams;
  let st = Fleet.stats fleet in
  Alcotest.(check int) "every request completed" 10 !ok;
  Alcotest.(check int) "one drain" 1 st.Fleet.drains;
  Alcotest.(check int) "no deaths" 0 st.Fleet.deaths;
  Alcotest.(check bool) "drained card evaluated nothing after the drain" true
    (evals.(0) = evals0_at_drain);
  Alcotest.(check bool) "draining state recorded" true
    (st.Fleet.states.(0) = Fleet.Draining);
  Alcotest.(check int) "survivor finished everything" 10 st.Fleet.served_by.(1);
  (* Exactly-once, as evaluation accounting: each completion evaluated
     once, plus at most one abandoned attempt per migrated stream. *)
  let total_evals = evals.(0) + evals.(1) in
  Alcotest.(check bool) "no duplicate evaluations beyond aborted attempts"
    true
    (total_evals >= !ok && total_evals <= !ok + st.Fleet.migrations)

(* Live resize under load: a card added mid-run joins the ring, takes
   affinity traffic and is promoted to [Up] by its first serve. *)
let test_join_under_load () =
  let w = Lazy.force fleet_world in
  let hosts = fresh_hosts w 2 in
  let fleet =
    Fleet.create ~store:w.store ~subject:"u"
      (Array.map (fun h -> Remote.Host.process h) hosts)
  in
  let reqs =
    List.init 12 (fun i ->
        Proxy.Request.make
          ?xpath:(if i mod 3 = 0 then Some "//patient/name" else None)
          (fdoc (i mod ndocs)))
  in
  List.iter
    (fun (o : Fleet.outcome) ->
      if not (Result.is_ok o.Fleet.result) then
        Alcotest.fail "clean pre-resize batch must serve")
    (Fleet.serve fleet reqs);
  let joined =
    let card = Card.create ~profile:Cost.modern ~subject:"u" w.user in
    let host = Remote.Host.create ~card ~resolve:(fleet_resolve w) () in
    Fleet.add_card fleet (Remote.Host.process host)
  in
  Alcotest.(check int) "indices are stable" 2 joined;
  Alcotest.(check bool) "joins as Joining" true
    (Fleet.state fleet joined = Fleet.Joining);
  List.iter2
    (fun (r : Proxy.Request.t) (o : Fleet.outcome) ->
      match o.Fleet.result with
      | Ok s ->
          Alcotest.(check (option string))
            "post-resize view is exact"
            (fleet_golden w r.Proxy.Request.doc_id r.Proxy.Request.xpath)
            s.Proxy.Pool.xml
      | Error e -> Alcotest.failf "post-resize request failed: %a" Proxy.pp_error e)
    reqs (Fleet.serve fleet reqs);
  let st = Fleet.stats fleet in
  Alcotest.(check int) "one card added" 1 st.Fleet.added;
  Alcotest.(check bool) "the joiner took remapped affinity traffic" true
    (st.Fleet.served_by.(joined) > 0);
  Alcotest.(check bool) "promoted to Up by its first serve" true
    (Fleet.state fleet joined = Fleet.Up)

(* Hot-key standby: the zipf-head key's standby is pre-warmed by a slice
   of its traffic, and the primary's death fails over with zero
   client-visible errors — every request still serves the exact view. *)
let test_hot_key_standby_failover () =
  let w = Lazy.force fleet_world in
  let hosts = fresh_hosts w 3 in
  let cutouts = Array.init 3 (fun _ -> Fault.Cutout.create ()) in
  let transports =
    Array.mapi
      (fun i h -> Fault.Cutout.wrap cutouts.(i) (Remote.Host.process h))
      hosts
  in
  let fleet =
    Fleet.create ~standby_k:1 ~max_reroutes:2 ~store:w.store ~subject:"u"
      transports
  in
  let hot () = Proxy.Request.make (fdoc 0) in
  let warm = Fleet.serve fleet (List.init 12 (fun _ -> hot ())) in
  List.iter
    (fun (o : Fleet.outcome) ->
      if not (Result.is_ok o.Fleet.result) then
        Alcotest.fail "warm-up must serve")
    warm;
  let st = Fleet.stats fleet in
  Alcotest.(check bool) "standby pre-warmed" true (st.Fleet.standby_hits >= 1);
  (* The primary is where the hot key's non-standby traffic went. *)
  let primary = ref 0 in
  Array.iteri
    (fun i n -> if n > st.Fleet.served_by.(!primary) then primary := i)
    st.Fleet.served_by;
  Remote.Host.tear hosts.(!primary);
  Fault.Cutout.kill cutouts.(!primary);
  let after = Fleet.serve fleet (List.init 8 (fun _ -> hot ())) in
  List.iter
    (fun (o : Fleet.outcome) ->
      match o.Fleet.result with
      | Ok s ->
          Alcotest.(check (option string))
            "failover serves the exact view"
            (fleet_golden w (fdoc 0) None)
            s.Proxy.Pool.xml
      | Error e ->
          Alcotest.failf "hot key surfaced an error across the death: %a"
            Proxy.pp_error e)
    after;
  let st = Fleet.stats fleet in
  Alcotest.(check int) "death declared once, after one probe budget" 1
    st.Fleet.deaths;
  Alcotest.(check int) "typed probe budget spent" 3 st.Fleet.probes;
  Alcotest.(check bool) "dead state recorded" true
    (st.Fleet.states.(!primary) = Fleet.Dead);
  (* Revival restores capacity: the card rejoins and serves again. *)
  Fault.Cutout.revive cutouts.(!primary);
  Fleet.revive_card fleet !primary;
  Alcotest.(check bool) "revived as Joining" true
    (Fleet.state fleet !primary = Fleet.Joining);
  List.iter
    (fun (o : Fleet.outcome) ->
      if not (Result.is_ok o.Fleet.result) then
        Alcotest.fail "post-revival batch must serve")
    (Fleet.serve fleet
       (List.init 12 (fun i -> Proxy.Request.make (fdoc (i mod ndocs)))));
  Alcotest.(check int) "revival counted" 1 (Fleet.stats fleet).Fleet.revives

(* The observability registry is the source of truth: the stats record
   mirrors the registry's counters exactly, and the per-card state
   gauges track the lifecycle. *)
let test_fleet_registry_reconciliation () =
  let w = Lazy.force fleet_world in
  let obs = Obs.create ~tracing:false () in
  let hosts = fresh_hosts w 2 in
  let fleet =
    Fleet.create ~obs ~store:w.store ~subject:"u"
      (Array.map (fun h -> Remote.Host.process h) hosts)
  in
  let reqs = List.init 8 (fun i -> Proxy.Request.make (fdoc (i mod ndocs))) in
  let streams = List.map (Fleet.start fleet) reqs in
  Fleet.turn fleet;
  Fleet.remove_card fleet 0;
  while List.exists (fun st -> Fleet.result st = None) streams do
    Fleet.turn fleet
  done;
  let st = Fleet.stats fleet in
  let counter name = Obs.Metrics.counter_value obs.Obs.metrics name in
  List.iter
    (fun (name, value) ->
      Alcotest.(check int) (name ^ " reconciles") value (counter name))
    [ ("fleet.requests", st.Fleet.requests);
      ("fleet.migrations", st.Fleet.migrations);
      ("fleet.drains", st.Fleet.drains);
      ("fleet.deaths", st.Fleet.deaths);
      ("fleet.revives", st.Fleet.revives);
      ("fleet.rejected", st.Fleet.rejected);
      ("fleet.reroutes", st.Fleet.reroutes) ];
  Alcotest.(check int) "card 0 state gauge shows draining" 1
    (fst (Obs.Metrics.gauge_value obs.Obs.metrics "fleet.card0.state"));
  Alcotest.(check int) "card 1 state gauge shows up" 0
    (fst (Obs.Metrics.gauge_value obs.Obs.metrics "fleet.card1.state"))

(* The chaos differential, property-tested: under a seeded random
   campaign (kills, a revive, a resize) interleaved with seeded frame
   faults, every request serves the exact golden view or a typed error,
   and the fleet converges on a clean pass afterwards. *)
let qcheck_chaos_campaign =
  QCheck2.Test.make
    ~name:"chaos campaign: golden-or-typed throughout, converges after"
    ~count:8
    QCheck2.Gen.(
      pair (int_bound 1_000_000)
        (map (fun r -> 0.06 *. r) (float_range 0.0 1.0)))
    (fun (seed, rate) ->
      let w = Lazy.force fleet_world in
      let make_card () =
        let card = Card.create ~profile:Cost.modern ~subject:"u" w.user in
        let host = Remote.Host.create ~card ~resolve:(fleet_resolve w) () in
        (Remote.Host.process host, fun () -> Remote.Host.tear host)
      in
      let golden (r : Proxy.Request.t) =
        fleet_golden w r.Proxy.Request.doc_id r.Proxy.Request.xpath
      in
      let requests = 60 in
      let rng = Rng.create (Int64.of_int (seed + 13)) in
      let reqs =
        List.init requests (fun _ ->
            let doc = fdoc (Rng.int rng ndocs) in
            let xpath =
              match Rng.int rng 3 with 0 -> Some "//patient/name" | _ -> None
            in
            Proxy.Request.make ?xpath doc)
      in
      let campaign =
        Fault.Campaign.random ~seed:(Int64.of_int seed) ~requests ~cards:3 ()
      in
      let schedule =
        Fault.Schedule.random ~seed:(Int64.of_int (seed * 17)) ~rate ()
      in
      let report =
        Chaos.run ~cards:3 ~store:w.store ~subject:"u" ~make_card ~golden
          ~schedule ~campaign reqs
      in
      not (Chaos.diverged report))

(* A chaos kill is exactly what tail sampling exists to retain: with no
   baseline at all, the killed card's migrated request survives sampling
   because of its [fleet.migrate] child span, and that child is in both
   exports of the retained tree. *)
let test_kill_retains_migration_trace () =
  let w = Lazy.force fleet_world in
  let obs =
    Obs.create
      ~clock:(Obs.Clock.manual ())
      ~policy:(Obs.Policy.v [ Obs.Policy.span_named "fleet.migrate" ])
      ()
  in
  let hosts = fresh_hosts w 2 in
  let dead =
    Fault.Link.wrap
      ~schedule:
        (Fault.Schedule.random ~seed:1L ~rate:1.0
           ~kinds:[| Fault.Drop_command |] ())
      ~tear:(fun () -> Remote.Host.tear hosts.(0))
      (Remote.Host.process hosts.(0))
  in
  let fleet =
    Fleet.create ~obs ~routing:Fleet.Least_loaded ~store:w.store ~subject:"u"
      [| Fault.Link.transport dead; Remote.Host.process hosts.(1) |]
  in
  (match Fleet.serve fleet [ Proxy.Request.make (fdoc 0) ] with
  | [ { Fleet.result = Ok _; _ } ] -> ()
  | [ { Fleet.result = Error e; _ } ] ->
      Alcotest.failf "killed-card request failed: %a" Proxy.pp_error e
  | _ -> Alcotest.fail "one request, one outcome");
  Alcotest.(check int) "death declared" 1 (Fleet.stats fleet).Fleet.deaths;
  let tr = obs.Obs.tracer in
  Alcotest.(check int) "only the migrated tree was retained" 1
    (Obs.Tracer.kept_trees tr);
  let events =
    String.split_on_char '\n' (Obs.Tracer.to_jsonl tr)
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           match Json.parse l with
           | Ok j -> j
           | Error e -> Alcotest.failf "bad export line %S: %s" l e)
  in
  let field k j = Json.member k j in
  let root =
    match
      List.find_opt
        (fun j ->
          field "type" j = Some (Json.String "span")
          && field "parent" j = Some (Json.Int 0))
        events
    with
    | Some r -> r
    | None -> Alcotest.fail "no retained root span in the export"
  in
  (* The tree is retained either by the migration rule or because its
     latency observation installed a bucket exemplar first (pins outrank
     rules); both keep the whole tree, which is the property that
     matters here. *)
  (match
     Option.bind (field "args" root) (fun a ->
         Option.bind (field "sampled.reason" a) Json.to_string_opt)
   with
  | Some ("span:fleet.migrate" | "exemplar") -> ()
  | r ->
      Alcotest.failf "unexpected retention reason %s"
        (Option.value ~default:"<none>" r));
  let root_id = Option.get (Option.bind (field "id" root) Json.to_int_opt) in
  Alcotest.(check bool) "fleet.migrate is a child of the retained root" true
    (List.exists
       (fun j ->
         field "name" j = Some (Json.String "fleet.migrate")
         && field "parent" j = Some (Json.Int root_id))
       events);
  (* The same tree, migration included, is in the Chrome export. *)
  let chrome = Obs.Tracer.to_chrome tr in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "chrome export has the migration span" true
    (contains chrome "\"name\":\"fleet.migrate\"");
  Alcotest.(check bool) "chrome export names the retention reason" true
    (contains chrome "\"sampled.reason\":\"")

(* The phased SLO run end to end: clean steady phase, a page (breach
   ticks) while the kill + frame faults are live, and a clean recovered
   phase once the fast window drains — the multi-window acceptance shape
   the CLI and CI assert, pinned here as a unit test. *)
let test_run_slo_phases () =
  let w = Lazy.force fleet_world in
  let obs = Obs.create ~clock:(Obs.Clock.manual ()) ~tracing:false () in
  let make_card () =
    let card = Card.create ~profile:Cost.modern ~subject:"u" w.user in
    let host = Remote.Host.create ~card ~resolve:(fleet_resolve w) () in
    (Remote.Host.process host, fun () -> Remote.Host.tear host)
  in
  (* One stream rng across the three phases and a 3-doc hot set, as the
     [sdds slo] defaults do — the concentrated mix is what makes churn
     latency separate cleanly from steady traffic. *)
  let rng = Rng.create 42L in
  let requests _phase =
    List.init 48 (fun _ ->
        let doc = fdoc (Rng.int rng 3) in
        let xpath =
          match Rng.int rng 3 with 0 -> Some "//patient/name" | _ -> None
        in
        Proxy.Request.make ?xpath doc)
  in
  (* This world's keys make the cards a touch faster than the CLI's
     default world, so only ~3 fault-retried churn serves cross the
     8191 µs bucket bound; a 98% objective makes those 3-in-48 a
     page-worthy burn while steady traffic (zero bad) stays silent. *)
  match
    Chaos.run_slo ~cards:3 ~latency_target:98.0 ~obs ~store:w.store
      ~subject:"u" ~make_card ~requests ()
  with
  | [ steady; churn; recovered ] ->
      Alcotest.(check string) "phase order" "steady" steady.Chaos.sp_phase;
      Alcotest.(check string) "phase order" "churn" churn.Chaos.sp_phase;
      Alcotest.(check string) "phase order" "recovered"
        recovered.Chaos.sp_phase;
      List.iter
        (fun p ->
          Alcotest.(check int)
            (p.Chaos.sp_phase ^ ": no typed errors")
            0 p.Chaos.sp_errors)
        [ steady; churn; recovered ];
      Alcotest.(check int) "steady phase never pages" 0
        steady.Chaos.sp_breach_ticks;
      Alcotest.(check bool) "churn pages mid-phase" true
        (churn.Chaos.sp_breach_ticks > 0);
      Alcotest.(check bool) "churn phase reports the breach" true
        (Chaos.breached churn);
      Alcotest.(check int) "recovered phase never pages" 0
        recovered.Chaos.sp_breach_ticks;
      Alcotest.(check bool) "recovered phase-end verdicts are clean" true
        (List.for_all
           (fun v -> not v.Obs.Slo.breach)
           recovered.Chaos.sp_verdicts);
      Alcotest.(check bool) "simulated clock advances" true
        (Int64.compare recovered.Chaos.sp_now_ns churn.Chaos.sp_now_ns > 0)
  | ps -> Alcotest.failf "expected three phases, got %d" (List.length ps)

let suite =
  [
    Alcotest.test_case "single-frame duplicate final is re-acked" `Quick
      test_chain_single_frame_duplicate;
    Alcotest.test_case "wraparound duplicate final is re-acked" `Quick
      test_chain_wraparound_duplicate;
    Alcotest.test_case "forget clears the completion marker" `Quick
      test_chain_forget_clears_marker;
    QCheck_alcotest.to_alcotest qcheck_chain_exactly_once;
    Alcotest.test_case "single-frame upload survives duplication" `Quick
      test_single_frame_upload_duplicate_end_to_end;
    Alcotest.test_case "257-frame upload survives final duplication" `Quick
      test_wraparound_upload_duplicate_end_to_end;
    Alcotest.test_case "ring basics" `Quick test_ring_basics;
    QCheck_alcotest.to_alcotest qcheck_ring_resize_stability;
    Alcotest.test_case "fleet serves a batch exactly" `Quick
      test_fleet_serves_batch_exactly;
    Alcotest.test_case "admission control refuses overload" `Quick
      test_fleet_admission_control;
    Alcotest.test_case "fleet declares a dead card and migrates off it"
      `Quick test_fleet_reroutes_off_a_dead_card;
    QCheck_alcotest.to_alcotest qcheck_fleet_differential;
    Alcotest.test_case "tear cannot cross-serve a stale channel" `Quick
      test_tear_stale_channel_regression;
    Alcotest.test_case "drain with in-flight work migrates exactly once"
      `Quick test_drain_with_inflight_migrates_exactly_once;
    Alcotest.test_case "card joins under load and takes traffic" `Quick
      test_join_under_load;
    Alcotest.test_case "hot-key standby fails over warm" `Quick
      test_hot_key_standby_failover;
    Alcotest.test_case "stats reconcile with the metrics registry" `Quick
      test_fleet_registry_reconciliation;
    QCheck_alcotest.to_alcotest qcheck_chaos_campaign;
    Alcotest.test_case "a chaos kill's migration trace is retained" `Quick
      test_kill_retains_migration_trace;
    Alcotest.test_case "phased slo run: steady clean, churn pages, recovers"
      `Quick test_run_slo_phases;
  ]
