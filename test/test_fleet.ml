(* Fleet-scale sharded serving, and the chain-protocol replay fixes it
   leans on: the exactly-once chain completion (duplicate final frames,
   including at the 256-frame sequence wraparound), the consistent-hash
   ring's resize stability, admission control, re-routing, and the fleet
   differential oracle (every fleet-served request equals the
   single-card golden view or a typed error, under per-card faults). *)

module Card = Sdds_soe.Card
module Cost = Sdds_soe.Cost
module Apdu = Sdds_soe.Apdu
module Remote = Sdds_soe.Remote_card
module Proxy = Sdds_proxy.Proxy
module Fleet = Sdds_proxy.Fleet
module Fault = Sdds_fault.Fault
module Publish = Sdds_dsp.Publish
module Store = Sdds_dsp.Store
module Rule = Sdds_core.Rule
module Generator = Sdds_xml.Generator
module Drbg = Sdds_crypto.Drbg
module Rsa = Sdds_crypto.Rsa
module Rng = Sdds_util.Rng
module Obs = Sdds_obs.Obs

(* ------------------------------------------------------------------ *)
(* Chain protocol: exactly-once completion under retransmission        *)
(* ------------------------------------------------------------------ *)

let chain_frame ?(p1 = 0) ?(p2 = 0) data =
  { Apdu.cla = Apdu.base_cla; ins = Remote.Ins.rules; p1; p2; data }

(* The replay hole this PR closes: a single-frame chain finishes at
   p2 = 0, which a p2-keyed completion marker cannot tell from a fresh
   chain opener — the duplicated final frame silently re-executed. *)
let test_chain_single_frame_duplicate () =
  let ch = Remote.Chain.create () in
  (match Remote.Chain.feed ch (chain_frame "abc") with
  | Remote.Chain.Completed p -> Alcotest.(check string) "payload" "abc" p
  | _ -> Alcotest.fail "single final frame must complete");
  match Remote.Chain.feed ch (chain_frame "abc") with
  | Remote.Chain.Duplicate -> ()
  | Remote.Chain.Completed _ ->
      Alcotest.fail "duplicated final frame re-executed the instruction"
  | _ -> Alcotest.fail "duplicated final frame must be re-acked"

(* The same hole one lap later: frame 257 carries p2 = 256 mod 256 = 0. *)
let test_chain_wraparound_duplicate () =
  let payload =
    String.init ((256 * 255) + 9) (fun i -> Char.chr ((i * 31) land 0xff))
  in
  let frames = Apdu.segment ~cla:Apdu.base_cla ~ins:Remote.Ins.rules payload in
  Alcotest.(check int) "spans the wraparound" 257 (List.length frames);
  let final = List.nth frames 256 in
  Alcotest.(check int) "final frame lands on p2 = 0" 0 final.Apdu.p2;
  let ch = Remote.Chain.create () in
  let completed = ref None in
  List.iter
    (fun f ->
      match Remote.Chain.feed ch f with
      | Remote.Chain.Completed p -> completed := Some p
      | Remote.Chain.Accepted -> ()
      | Remote.Chain.Duplicate | Remote.Chain.Rejected ->
          Alcotest.fail "clean chain must be accepted")
    frames;
  Alcotest.(check bool) "completed with the exact payload" true
    (!completed = Some payload);
  (match Remote.Chain.feed ch final with
  | Remote.Chain.Duplicate -> ()
  | Remote.Chain.Completed _ ->
      Alcotest.fail "retransmitted wraparound final started a fresh chain"
  | _ -> Alcotest.fail "retransmitted final must be re-acked");
  (* A stale mid-chain continuation after completion is a protocol
     error, not a silent restart. *)
  match Remote.Chain.feed ch (chain_frame ~p1:1 ~p2:5 "stale") with
  | Remote.Chain.Rejected -> ()
  | _ -> Alcotest.fail "stale continuation must be rejected"

(* [forget] exists for uploads refused for good (static admission): the
   marker is dropped, so the "same" frame executes afresh. *)
let test_chain_forget_clears_marker () =
  let ch = Remote.Chain.create () in
  (match Remote.Chain.feed ch (chain_frame "abc") with
  | Remote.Chain.Completed _ -> ()
  | _ -> Alcotest.fail "must complete");
  Remote.Chain.forget ch Remote.Ins.rules;
  match Remote.Chain.feed ch (chain_frame "abc") with
  | Remote.Chain.Completed p -> Alcotest.(check string) "payload" "abc" p
  | _ -> Alcotest.fail "forgotten marker must not re-ack"

(* The invariant, property-tested across the 256-frame boundary: feeding
   one [Apdu.segment] run with any frame retransmitted (adjacent
   duplicates, the link's failure mode) completes exactly once with the
   exact payload, and never rejects. *)
let qcheck_chain_exactly_once =
  QCheck2.Test.make
    ~name:"chain completes exactly once under duplicates (256 wraparound)"
    ~count:25
    QCheck2.Gen.(
      triple
        (oneofl [ 1; 2; 3; 254; 255; 256; 257; 258 ])
        (int_range 1 255) (int_bound 1_000_000))
    (fun (frames, last_len, seed) ->
      let len = ((frames - 1) * 255) + last_len in
      let payload =
        String.init len (fun i -> Char.chr ((i * 131 + seed) land 0xff))
      in
      let cmds =
        Apdu.segment ~cla:Apdu.base_cla ~ins:Remote.Ins.rules payload
      in
      assert (List.length cmds = frames);
      let rng = Rng.create (Int64.of_int (seed + 1)) in
      let ch = Remote.Chain.create () in
      let completions = ref [] in
      let ok = ref true in
      List.iter
        (fun f ->
          let deliveries = 1 + (if Rng.int rng 100 < 30 then 1 else 0) in
          for _ = 1 to deliveries do
            match Remote.Chain.feed ch f with
            | Remote.Chain.Completed p -> completions := p :: !completions
            | Remote.Chain.Accepted | Remote.Chain.Duplicate -> ()
            | Remote.Chain.Rejected -> ok := false
          done)
        cmds;
      !ok && !completions = [ payload ])

(* ------------------------------------------------------------------ *)
(* End-to-end: duplicated final frames through the full APDU stack     *)
(* ------------------------------------------------------------------ *)

let run_eval ~store ~user ~grant ~blob schedule =
  let resolve id =
    Option.map
      (fun p -> Publish.to_source p ~delivery:`Pull)
      (Store.get_document store id)
  in
  let card = Card.create ~profile:Cost.modern ~subject:"u" user in
  let host = Remote.Host.create ~card ~resolve () in
  let link =
    Fault.Link.wrap ~schedule
      ~tear:(fun () -> Remote.Host.tear host)
      (Remote.Host.process host)
  in
  let r =
    Remote.Client.evaluate
      (Fault.Link.transport link)
      ~doc_id:"ward" ~wrapped_grant:grant ~encrypted_rules:blob ()
  in
  (r, link)

let outputs_of name = function
  | Ok r, _ -> r.Remote.Client.outputs
  | Error e, _ ->
      Alcotest.failf "%s failed: %s" name (Remote.Client.string_of_error e)

(* Satellite: a rules blob that fits one frame — the upload IS its own
   final frame (p1 = 0, p2 = 0) — duplicated on the wire. The view must
   equal the clean run's. *)
let test_single_frame_upload_duplicate_end_to_end () =
  let drbg = Drbg.create ~seed:"fleet-single-frame" in
  let publisher = Rsa.generate drbg ~bits:512 in
  let user = Rsa.generate drbg ~bits:512 in
  let store = Store.create () in
  let doc = Generator.hospital (Rng.create 7L) ~patients:2 in
  let published, doc_key = Publish.publish drbg ~publisher ~doc_id:"ward" doc in
  Store.put_document store published;
  let blob =
    Publish.encrypt_rules_for drbg ~publisher ~doc_key ~doc_id:"ward"
      ~subject:"u"
      [ Rule.allow ~subject:"u" "//patient" ]
  in
  Alcotest.(check int) "the upload fits one frame" 1
    (Apdu.frame_count ~payload_bytes:(String.length blob));
  let grant =
    Publish.grant drbg ~doc_key ~doc_id:"ward" ~recipient:user.Rsa.public
  in
  let clean =
    outputs_of "clean" (run_eval ~store ~user ~grant ~blob Fault.Schedule.none)
  in
  (* Frames 0–1 are SELECT and GRANT; frame 2 is the whole rules chain. *)
  let r, link =
    run_eval ~store ~user ~grant ~blob
      (Fault.Schedule.of_events
         [ { Fault.frame = 2; kind = Fault.Duplicate_command } ])
  in
  Alcotest.(check int) "the duplicate fired" 1 (Fault.Link.injected link);
  Alcotest.(check bool) "duplicated single-frame upload: exact view" true
    (outputs_of "duplicated" (r, link) = clean)

(* Satellite: a 257-frame upload, whose final frame lands on
   p2 = 256 mod 256 = 0, with that final frame duplicated. Pre-fix the
   duplicate opened a fresh one-frame "chain" whose garbage payload
   replaced the rules and the evaluation failed; post-fix it is re-acked
   and the view is exact. *)
let test_wraparound_upload_duplicate_end_to_end () =
  let drbg = Drbg.create ~seed:"fleet-wraparound" in
  let publisher = Rsa.generate drbg ~bits:512 in
  let user = Rsa.generate drbg ~bits:512 in
  let store = Store.create () in
  let doc = Generator.hospital (Rng.create 9L) ~patients:1 in
  let published, doc_key = Publish.publish drbg ~publisher ~doc_id:"ward" doc in
  Store.put_document store published;
  (* Pad the rule set until the encrypted blob segments into exactly 257
     frames; ciphertext grows ~1 byte per plaintext byte, so aiming at
     the middle of the 255-byte-wide window converges in a few steps. *)
  let blob_for pad =
    Publish.encrypt_rules_for drbg ~publisher ~doc_key ~doc_id:"ward"
      ~subject:"u"
      [ Rule.allow ~subject:"u" "//patient";
        Rule.deny ~subject:"u" ("//" ^ String.make pad 'z') ]
  in
  let target = (257 * 255) - 127 in
  let rec tune pad guard =
    if guard = 0 then Alcotest.fail "could not tune a 257-frame blob"
    else
      let blob = blob_for pad in
      if Apdu.frame_count ~payload_bytes:(String.length blob) = 257 then blob
      else tune (max 1 (pad + target - String.length blob)) (guard - 1)
  in
  let blob = tune 65000 20 in
  let grant =
    Publish.grant drbg ~doc_key ~doc_id:"ward" ~recipient:user.Rsa.public
  in
  let clean =
    outputs_of "clean" (run_eval ~store ~user ~grant ~blob Fault.Schedule.none)
  in
  (* SELECT (0), GRANT (1), then 257 rules frames: the final one is
     frame 2 + 256 = 258. *)
  let r, link =
    run_eval ~store ~user ~grant ~blob
      (Fault.Schedule.of_events
         [ { Fault.frame = 258; kind = Fault.Duplicate_command } ])
  in
  Alcotest.(check int) "the duplicate fired" 1 (Fault.Link.injected link);
  Alcotest.(check bool) "duplicated wraparound final: exact view" true
    (outputs_of "duplicated" (r, link) = clean)

(* ------------------------------------------------------------------ *)
(* Consistent-hash ring                                                 *)
(* ------------------------------------------------------------------ *)

let test_ring_basics () =
  let ring = Fleet.Ring.create [ 2; 0; 1; 1 ] in
  Alcotest.(check (list int)) "members sorted, deduped" [ 0; 1; 2 ]
    (Fleet.Ring.members ring);
  let owner = Fleet.Ring.lookup ring "some-key" in
  Alcotest.(check bool) "owner is a member" true (List.mem owner [ 0; 1; 2 ]);
  Alcotest.(check int) "lookup is deterministic" owner
    (Fleet.Ring.lookup ring "some-key");
  Alcotest.check_raises "empty ring refuses lookups"
    (Invalid_argument "Ring.lookup: empty ring") (fun () ->
      ignore (Fleet.Ring.lookup (Fleet.Ring.create []) "k"))

(* Resize stability — why the fleet's affinity survives adding or
   removing a card: growing the ring only moves keys TO the new member,
   and shrinking it back restores the exact original mapping. *)
let qcheck_ring_resize_stability =
  QCheck2.Test.make ~name:"ring resize moves only the changed member's keys"
    ~count:50
    QCheck2.Gen.(pair (int_range 1 8) (int_bound 1_000_000))
    (fun (n, seed) ->
      let ring = Fleet.Ring.create (List.init n Fun.id) in
      let keys = List.init 100 (fun i -> Printf.sprintf "key-%d-%d" seed i) in
      let before = List.map (Fleet.Ring.lookup ring) keys in
      let grown = Fleet.Ring.add ring n in
      List.for_all2
        (fun k b ->
          let a = Fleet.Ring.lookup grown k in
          a = b || a = n)
        keys before
      && Fleet.Ring.members (Fleet.Ring.remove grown n)
         = Fleet.Ring.members ring
      && List.for_all2
           (fun k b -> Fleet.Ring.lookup (Fleet.Ring.remove grown n) k = b)
           keys before)

(* ------------------------------------------------------------------ *)
(* Fleet world: several published documents, one subject               *)
(* ------------------------------------------------------------------ *)

type fworld = { store : Store.t; user : Rsa.keypair }

let ndocs = 6
let fdoc i = Printf.sprintf "doc%d" i

let make_fleet_world () =
  let drbg = Drbg.create ~seed:"fleet-world" in
  let publisher = Rsa.generate drbg ~bits:512 in
  let user = Rsa.generate drbg ~bits:512 in
  let store = Store.create () in
  List.iter
    (fun i ->
      let doc_id = fdoc i in
      let doc =
        Generator.hospital
          (Rng.create (Int64.of_int (101 + i)))
          ~patients:(1 + (i mod 3))
      in
      let published, doc_key = Publish.publish drbg ~publisher ~doc_id doc in
      Store.put_document store published;
      (* Distinct rule sets per document, so each (doc, rules digest)
         affinity key is its own point on the ring. *)
      let rules =
        Rule.allow ~subject:"u" "//patient"
        ::
        (if i mod 2 = 0 then [ Rule.deny ~subject:"u" "//ssn" ]
         else [ Rule.deny ~subject:"u" "//diagnosis" ])
      in
      Store.put_rules store ~doc_id ~subject:"u"
        (Publish.encrypt_rules_for drbg ~publisher ~doc_key ~doc_id
           ~subject:"u" rules);
      Store.put_grant store ~doc_id ~subject:"u"
        (Publish.grant drbg ~doc_key ~doc_id ~recipient:user.Rsa.public))
    (List.init ndocs Fun.id);
  { store; user }

let fleet_world = lazy (make_fleet_world ())

let fleet_resolve w id =
  Option.map
    (fun p -> Publish.to_source p ~delivery:`Pull)
    (Store.get_document w.store id)

let fresh_hosts w n =
  Array.init n (fun _ ->
      let card = Card.create ~profile:Cost.modern ~subject:"u" w.user in
      Remote.Host.create ~card ~resolve:(fleet_resolve w) ())

(* The differential reference: the same request through the plain
   single-card [Proxy.run], fault-free. *)
let golden_tbl : (string * string option, string option) Hashtbl.t =
  Hashtbl.create 16

let fleet_golden w doc_id xpath =
  match Hashtbl.find_opt golden_tbl (doc_id, xpath) with
  | Some xml -> xml
  | None ->
      let card = Card.create ~profile:Cost.modern ~subject:"u" w.user in
      let proxy = Proxy.create ~store:w.store ~card in
      let xml =
        match Proxy.run proxy (Proxy.Request.make ?xpath doc_id) with
        | Ok o -> o.Proxy.xml
        | Error e -> Alcotest.failf "golden run failed: %a" Proxy.pp_error e
      in
      Hashtbl.add golden_tbl (doc_id, xpath) xml;
      xml

(* ------------------------------------------------------------------ *)
(* Fleet behaviour                                                      *)
(* ------------------------------------------------------------------ *)

(* A zipf-flavoured pull of the document population: doc0 takes half the
   traffic, the rest spreads thin — the mix that makes affinity pay. *)
let pick_doc i =
  if i mod 2 = 0 then 0 else 1 + (i * 7 mod (ndocs - 1))

let test_fleet_serves_batch_exactly () =
  let w = Lazy.force fleet_world in
  let obs = Obs.create ~tracing:false () in
  let hosts = fresh_hosts w 2 in
  let fleet =
    Fleet.create ~obs ~store:w.store ~subject:"u"
      (Array.map Remote.Host.process hosts)
  in
  let reqs = List.init 24 (fun i -> Proxy.Request.make (fdoc (pick_doc i))) in
  let outs = Fleet.serve fleet reqs in
  List.iter2
    (fun (r : Proxy.Request.t) (o : Fleet.outcome) ->
      match o.Fleet.result with
      | Ok s ->
          Alcotest.(check (option string))
            "fleet view = single-card view"
            (fleet_golden w r.Proxy.Request.doc_id None)
            s.Proxy.Pool.xml;
          Alcotest.(check bool) "latency is simulated time" true
            (o.Fleet.latency_s > 0.0)
      | Error e -> Alcotest.failf "fleet request failed: %a" Proxy.pp_error e)
    reqs outs;
  let st = Fleet.stats fleet in
  Alcotest.(check int) "every request counted" 24 st.Fleet.requests;
  Alcotest.(check int) "no rejections" 0 st.Fleet.rejected;
  Alcotest.(check bool) "affinity routed" true (st.Fleet.affinity_hits > 0);
  Alcotest.(check int) "all completions accounted" 24
    (Array.fold_left ( + ) 0 st.Fleet.served_by);
  Alcotest.(check int) "requests counter" 24
    (Obs.Metrics.counter_value obs.Obs.metrics "fleet.requests");
  Alcotest.(check int) "affinity counter mirrors stats"
    st.Fleet.affinity_hits
    (Obs.Metrics.counter_value obs.Obs.metrics "fleet.affinity_hits");
  (* Affinity's point: a second identical batch finds the per-channel
     session memos of the cards the first batch warmed. *)
  let again = Fleet.serve fleet reqs in
  let warm =
    List.fold_left
      (fun n (o : Fleet.outcome) ->
        match o.Fleet.result with
        | Ok s when s.Proxy.Pool.warm_setup -> n + 1
        | _ -> n)
      0 again
  in
  Alcotest.(check bool) "repeat batch hits warm setups" true (warm > 0)

let test_fleet_admission_control () =
  let w = Lazy.force fleet_world in
  let hosts = fresh_hosts w 1 in
  let fleet =
    Fleet.create ~queue_limit:2 ~store:w.store ~subject:"u"
      (Array.map Remote.Host.process hosts)
  in
  let outs =
    Fleet.serve fleet (List.init 8 (fun _ -> Proxy.Request.make (fdoc 0)))
  in
  let ok, rejected =
    List.partition
      (fun (o : Fleet.outcome) -> Result.is_ok o.Fleet.result)
      outs
  in
  Alcotest.(check int) "bounded queue admits its limit" 2 (List.length ok);
  Alcotest.(check int) "the rest are refused" 6 (List.length rejected);
  List.iter
    (fun (o : Fleet.outcome) ->
      match o.Fleet.result with
      | Error Proxy.Overloaded -> ()
      | Error e -> Alcotest.failf "wrong refusal: %a" Proxy.pp_error e
      | Ok _ -> assert false)
    rejected;
  let st = Fleet.stats fleet in
  Alcotest.(check int) "rejections counted" 6 st.Fleet.rejected;
  Alcotest.(check int) "queue peak at the limit" 2 st.Fleet.queue_peak

let test_fleet_reroutes_off_a_dead_card () =
  let w = Lazy.force fleet_world in
  let hosts = fresh_hosts w 2 in
  (* Card 0's link drops every command; card 1 is clean. Least-loaded
     routing sends the lone request to card 0 first. *)
  let dead =
    Fault.Link.wrap
      ~schedule:
        (Fault.Schedule.random ~seed:1L ~rate:1.0
           ~kinds:[| Fault.Drop_command |] ())
      ~tear:(fun () -> Remote.Host.tear hosts.(0))
      (Remote.Host.process hosts.(0))
  in
  let fleet =
    Fleet.create ~routing:Fleet.Least_loaded ~store:w.store ~subject:"u"
      [| Fault.Link.transport dead; Remote.Host.process hosts.(1) |]
  in
  match Fleet.serve fleet [ Proxy.Request.make (fdoc 0) ] with
  | [ o ] ->
      (match o.Fleet.result with
      | Ok s ->
          Alcotest.(check (option string))
            "re-routed request serves the exact view"
            (fleet_golden w (fdoc 0) None)
            s.Proxy.Pool.xml
      | Error e -> Alcotest.failf "re-route failed: %a" Proxy.pp_error e);
      Alcotest.(check int) "served by the healthy card" 1 o.Fleet.card;
      Alcotest.(check int) "one re-route" 1 o.Fleet.reroutes;
      Alcotest.(check int) "re-route counted" 1 (Fleet.stats fleet).Fleet.reroutes
  | _ -> Alcotest.fail "one request, one outcome"

(* The fleet differential oracle: under arbitrary seeded per-card fault
   schedules, every fleet-served request is the exact single-card golden
   view or one typed error — sharding plus re-routing never stitches,
   truncates or cross-serves a view. *)
let qcheck_fleet_differential =
  QCheck2.Test.make ~name:"fleet = single-card golden view or typed error"
    ~count:15
    QCheck2.Gen.(
      pair (int_bound 1_000_000) (map (fun r -> 0.25 *. r) (float_range 0.0 1.0)))
    (fun (seed, rate) ->
      let w = Lazy.force fleet_world in
      let hosts = fresh_hosts w 3 in
      let base = Fault.Schedule.random ~seed:(Int64.of_int seed) ~rate () in
      let transports =
        Array.mapi
          (fun i host ->
            Fault.Link.transport
              (Fault.Link.wrap
                 ~schedule:(Fault.Schedule.for_card base i)
                 ~tear:(fun () -> Remote.Host.tear host)
                 (Remote.Host.process host)))
          hosts
      in
      let fleet = Fleet.create ~store:w.store ~subject:"u" transports in
      let rng = Rng.create (Int64.of_int (seed + 7)) in
      let reqs =
        List.init 18 (fun _ ->
            let doc = fdoc (Rng.int rng ndocs) in
            let xpath =
              match Rng.int rng 3 with
              | 0 -> Some "//patient/name"
              | _ -> None
            in
            Proxy.Request.make ?xpath doc)
      in
      List.for_all2
        (fun (r : Proxy.Request.t) (o : Fleet.outcome) ->
          match o.Fleet.result with
          | Ok s ->
              s.Proxy.Pool.xml
              = fleet_golden w r.Proxy.Request.doc_id r.Proxy.Request.xpath
          | Error
              ( Proxy.Link_failure _ | Proxy.Card_error _ | Proxy.Protocol _
              | Proxy.Unknown_document _ | Proxy.No_grant | Proxy.No_rules
              | Proxy.Overloaded ) ->
              true)
        reqs (Fleet.serve fleet reqs))

let suite =
  [
    Alcotest.test_case "single-frame duplicate final is re-acked" `Quick
      test_chain_single_frame_duplicate;
    Alcotest.test_case "wraparound duplicate final is re-acked" `Quick
      test_chain_wraparound_duplicate;
    Alcotest.test_case "forget clears the completion marker" `Quick
      test_chain_forget_clears_marker;
    QCheck_alcotest.to_alcotest qcheck_chain_exactly_once;
    Alcotest.test_case "single-frame upload survives duplication" `Quick
      test_single_frame_upload_duplicate_end_to_end;
    Alcotest.test_case "257-frame upload survives final duplication" `Quick
      test_wraparound_upload_duplicate_end_to_end;
    Alcotest.test_case "ring basics" `Quick test_ring_basics;
    QCheck_alcotest.to_alcotest qcheck_ring_resize_stability;
    Alcotest.test_case "fleet serves a batch exactly" `Quick
      test_fleet_serves_batch_exactly;
    Alcotest.test_case "admission control refuses overload" `Quick
      test_fleet_admission_control;
    Alcotest.test_case "fleet re-routes off a dead card" `Quick
      test_fleet_reroutes_off_a_dead_card;
    QCheck_alcotest.to_alcotest qcheck_fleet_differential;
  ]
