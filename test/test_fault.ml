(* Fault injection and recovery: the headline soundness property (any
   fault schedule yields the exact fault-free view or a typed error),
   bounded-fault convergence, deterministic replay, the pool's tear
   recovery, grant refresh after revocation, and the crash-safe store. *)

module Card = Sdds_soe.Card
module Cost = Sdds_soe.Cost
module Apdu = Sdds_soe.Apdu
module Remote = Sdds_soe.Remote_card
module Proxy = Sdds_proxy.Proxy
module Fault = Sdds_fault.Fault
module Store_io = Sdds_dsp.Store_io
module Publish = Sdds_dsp.Publish
module Store = Sdds_dsp.Store
module Rule = Sdds_core.Rule
module Dom = Sdds_xml.Dom
module Generator = Sdds_xml.Generator
module Drbg = Sdds_crypto.Drbg
module Rsa = Sdds_crypto.Rsa
module Rng = Sdds_util.Rng

(* One world: a published ward document, rules and a grant for subject
   "u" in a DSP store. Cards and hosts are created per run — they carry
   the volatile state the faults attack. *)
type world = {
  store : Store.t;
  user : Rsa.keypair;
  publisher : Rsa.keypair;
  doc : Dom.t;
  doc_key : string;
  drbg : Drbg.t;
}

let doc_id = "ward"

let make_world ?(seed = "fault-world") () =
  let drbg = Drbg.create ~seed in
  let publisher = Rsa.generate drbg ~bits:512 in
  let user = Rsa.generate drbg ~bits:512 in
  let store = Store.create () in
  let doc = Generator.hospital (Rng.create 77L) ~patients:5 in
  let published, doc_key = Publish.publish drbg ~publisher ~doc_id doc in
  Store.put_document store published;
  let rules =
    [ Rule.allow ~subject:"u" "//patient"; Rule.deny ~subject:"u" "//ssn" ]
  in
  Store.put_rules store ~doc_id ~subject:"u"
    (Publish.encrypt_rules_for drbg ~publisher ~doc_key ~doc_id ~subject:"u"
       rules);
  Store.put_grant store ~doc_id ~subject:"u"
    (Publish.grant drbg ~doc_key ~doc_id ~recipient:user.Rsa.public);
  { store; user; publisher; doc; doc_key; drbg }

let world = lazy (make_world ())

let resolve w id =
  Option.map
    (fun p -> Publish.to_source p ~delivery:`Pull)
    (Store.get_document w.store id)

let fresh_host w =
  let card = Card.create ~profile:Cost.modern ~subject:"u" w.user in
  Remote.Host.create ~card ~resolve:(resolve w) ()

let stored_rules w = Option.get (Store.get_rules w.store ~doc_id ~subject:"u")
let stored_grant w = Option.get (Store.get_grant w.store ~doc_id ~subject:"u")

let requests =
  [ Proxy.Request.make doc_id; Proxy.Request.make ~xpath:"//patient/name" doc_id ]

(* Serve [requests] over a transport; [None] on any non-Ok outcome. *)
let pool_views w transport =
  let pool = Proxy.Pool.create ~store:w.store ~transport ~subject:"u" () in
  List.map
    (fun r -> Result.map (fun s -> s.Proxy.Pool.xml) r)
    (Proxy.Pool.serve pool requests)

(* The fault-free reference views, computed once. *)
let golden =
  lazy
    (let w = Lazy.force world in
     let host = fresh_host w in
     List.map
       (function
         | Ok xml -> xml
         | Error e -> Alcotest.failf "golden run failed: %a" Proxy.pp_error e)
       (pool_views w (Remote.Host.process host)))

let faulty_pool_run w schedule =
  let host = fresh_host w in
  let link =
    Fault.Link.wrap ~schedule
      ~tear:(fun () -> Remote.Host.tear host)
      (Remote.Host.process host)
  in
  (pool_views w (Fault.Link.transport link), link)

(* ------------------------------------------------------------------ *)
(* Headline properties                                                  *)
(* ------------------------------------------------------------------ *)

(* Soundness: under ANY schedule, each request ends in either the exact
   fault-free view (bit-for-bit) or a typed error — never a truncated or
   stitched view. *)
let qcheck_soundness =
  QCheck2.Test.make ~name:"any fault schedule: exact view or typed error"
    ~count:60
    QCheck2.Gen.(
      pair (int_bound 1_000_000) (map (fun r -> 0.3 *. r) (float_range 0.0 1.0)))
    (fun (seed, rate) ->
      let w = Lazy.force world in
      let schedule =
        Fault.Schedule.random ~seed:(Int64.of_int seed) ~rate ()
      in
      let views, _ = faulty_pool_run w schedule in
      List.for_all2
        (fun got want ->
          match got with
          | Ok xml -> xml = want  (* the exact authorized view *)
          | Error
              ( Proxy.Link_failure _ | Proxy.Card_error _ | Proxy.Protocol _
              | Proxy.Unknown_document _ | Proxy.No_grant | Proxy.No_rules
              | Proxy.Overloaded ) ->
              true)
        views (Lazy.force golden))

(* Convergence: with the fault count under the retry budget, recovery is
   not just sound but *successful* — the client returns the fault-free
   view. Each injected fault costs at most two budget units (a tear is a
   lost frame plus a session replay), so 7 events fit the default budget
   of 16 with room to spare. *)
let qcheck_convergence =
  let event_gen =
    QCheck2.Gen.(
      pair (int_bound 120)
        (int_bound (Array.length Fault.all_kinds - 1))
      |> map (fun (frame, k) -> { Fault.frame; kind = Fault.all_kinds.(k) }))
  in
  QCheck2.Test.make
    ~name:"faults under the retry budget: retried run = fault-free view"
    ~count:60
    QCheck2.Gen.(list_size (int_bound 7) event_gen)
    (fun events ->
      let w = Lazy.force world in
      let host = fresh_host w in
      let link =
        Fault.Link.wrap
          ~schedule:(Fault.Schedule.of_events events)
          ~tear:(fun () -> Remote.Host.tear host)
          (Remote.Host.process host)
      in
      match
        Remote.Client.evaluate
          (Fault.Link.transport link)
          ~doc_id ~wrapped_grant:(stored_grant w)
          ~encrypted_rules:(stored_rules w) ~xpath:"//patient/name" ()
      with
      | Error e -> QCheck2.Test.fail_report (Remote.Client.string_of_error e)
      | Ok r -> (
          let clean_host = fresh_host w in
          match
            Remote.Client.evaluate
              (Remote.Host.process clean_host)
              ~doc_id ~wrapped_grant:(stored_grant w)
              ~encrypted_rules:(stored_rules w) ~xpath:"//patient/name" ()
          with
          | Error e ->
              QCheck2.Test.fail_report (Remote.Client.string_of_error e)
          | Ok clean -> r.Remote.Client.outputs = clean.Remote.Client.outputs))

(* Determinism: the same seed produces the same injected trace and the
   same outcomes, and replaying the recorded trace as an explicit event
   schedule reproduces the run exactly. *)
let qcheck_deterministic_replay =
  QCheck2.Test.make ~name:"a failing schedule replays from its seed"
    ~count:30
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let w = Lazy.force world in
      let schedule =
        Fault.Schedule.random ~seed:(Int64.of_int seed) ~rate:0.15 ()
      in
      let views1, link1 = faulty_pool_run w schedule in
      let views2, link2 = faulty_pool_run w schedule in
      let replayed, link3 =
        faulty_pool_run w (Fault.Schedule.of_events (Fault.Link.trace link1))
      in
      views1 = views2
      && Fault.Link.trace link1 = Fault.Link.trace link2
      && views1 = replayed
      && Fault.Link.trace link1 = Fault.Link.trace link3)

(* ------------------------------------------------------------------ *)
(* Directed recovery tests                                              *)
(* ------------------------------------------------------------------ *)

(* Satellite: a card tear mid-exchange closes logical channels; the pool
   must reopen and replay, not fail the whole batch. Frame 9 lands well
   inside the interleaved setup of two streams (one of them on a
   logical channel > 0). *)
let test_pool_recovers_from_tear () =
  let w = Lazy.force world in
  let views, link =
    faulty_pool_run w
      (Fault.Schedule.of_events [ { Fault.frame = 9; kind = Fault.Tear } ])
  in
  Alcotest.(check int) "the tear was injected" 1 (Fault.Link.injected link);
  List.iter2
    (fun got want ->
      match got with
      | Ok xml -> Alcotest.(check (option string)) "exact view" want xml
      | Error e -> Alcotest.failf "request failed: %a" Proxy.pp_error e)
    views (Lazy.force golden)

let test_pool_budget_exhaustion_is_typed () =
  let w = Lazy.force world in
  let views, _ =
    faulty_pool_run w
      (Fault.Schedule.random ~seed:3L ~rate:1.0
         ~kinds:[| Fault.Drop_command |] ())
  in
  List.iter
    (function
      | Error (Proxy.Link_failure { attempts }) ->
          Alcotest.(check int) "reports the budget"
            Remote.Retry.default.Remote.Retry.budget attempts
      | Error e -> Alcotest.failf "wrong error: %a" Proxy.pp_error e
      | Ok _ -> Alcotest.fail "no frame ever arrives, yet the request won")
    views

let test_client_budget_exhaustion_is_typed () =
  let w = Lazy.force world in
  let host = fresh_host w in
  let link =
    Fault.Link.wrap
      ~schedule:
        (Fault.Schedule.random ~seed:4L ~rate:1.0
           ~kinds:[| Fault.Drop_command |] ())
      ~tear:(fun () -> Remote.Host.tear host)
      (Remote.Host.process host)
  in
  match
    Remote.Client.evaluate
      (Fault.Link.transport link)
      ~doc_id ~wrapped_grant:(stored_grant w)
      ~encrypted_rules:(stored_rules w) ()
  with
  | Error (Remote.Client.Link { attempts; _ }) ->
      Alcotest.(check int) "reports the budget"
        Remote.Retry.default.Remote.Retry.budget attempts
  | Error e -> Alcotest.fail (Remote.Client.string_of_error e)
  | Ok _ -> Alcotest.fail "every frame faults, yet the exchange won"

(* Satellite: after the publisher rotates the document key (revocation),
   a proxy whose card cached the old key must re-fetch the fresh wrapped
   grant from the DSP and succeed — not fail with [Stale_key] forever. *)
let rotate_in_store w =
  let published = Option.get (Store.get_document w.store doc_id) in
  let rotated, new_key =
    Publish.rotate w.drbg ~publisher:w.publisher ~old_key:w.doc_key published
  in
  Store.put_document w.store rotated;
  Store.put_rules w.store ~doc_id ~subject:"u"
    (Publish.encrypt_rules_for w.drbg ~publisher:w.publisher ~doc_key:new_key
       ~doc_id ~subject:"u"
       [ Rule.allow ~subject:"u" "//patient"; Rule.deny ~subject:"u" "//ssn" ]);
  Store.put_grant w.store ~doc_id ~subject:"u"
    (Publish.grant w.drbg ~doc_key:new_key ~doc_id
       ~recipient:w.user.Rsa.public)

let test_run_refreshes_grant_after_rotation () =
  let w = make_world ~seed:"rotation-run" () in
  let card = Card.create ~profile:Cost.modern ~subject:"u" w.user in
  let proxy = Proxy.create ~store:w.store ~card in
  let before =
    match Proxy.run proxy (Proxy.Request.make doc_id) with
    | Ok o -> o.Proxy.view
    | Error e -> Alcotest.failf "pre-rotation query failed: %a" Proxy.pp_error e
  in
  rotate_in_store w;
  match Proxy.run proxy (Proxy.Request.make doc_id) with
  | Ok o ->
      Alcotest.(check bool) "same authorized view across rotation" true
        (Option.equal Dom.equal before o.Proxy.view)
  | Error e -> Alcotest.failf "post-rotation query failed: %a" Proxy.pp_error e

let test_pool_refreshes_grant_after_rotation () =
  let w = make_world ~seed:"rotation-pool" () in
  let host = fresh_host w in
  let pool =
    Proxy.Pool.create ~store:w.store ~transport:(Remote.Host.process host)
      ~subject:"u" ()
  in
  let first =
    match Proxy.Pool.serve pool [ Proxy.Request.make doc_id ] with
    | [ Ok s ] -> s.Proxy.Pool.xml
    | _ -> Alcotest.fail "pre-rotation serve failed"
  in
  rotate_in_store w;
  match Proxy.Pool.serve pool [ Proxy.Request.make doc_id ] with
  | [ Ok s ] ->
      Alcotest.(check (option string))
        "same authorized view across rotation" first s.Proxy.Pool.xml
  | [ Error e ] -> Alcotest.failf "post-rotation serve failed: %a" Proxy.pp_error e
  | _ -> Alcotest.fail "one request, one result"

(* ------------------------------------------------------------------ *)
(* Host protocol: the idempotency the recovery relies on                *)
(* ------------------------------------------------------------------ *)

let send host ?(channel = 0) ins ?(p1 = 0) ?(p2 = 0) data =
  Remote.Host.process host
    { Apdu.cla = Apdu.cla_of_channel channel; ins; p1; p2; data }

let check_sw name want (resp : Apdu.response) =
  Alcotest.(check bool) name true ((resp.Apdu.sw1, resp.Apdu.sw2) = want)

let test_virgin_drain_is_bad_state () =
  let w = Lazy.force world in
  let host = fresh_host w in
  check_sw "select" Remote.Sw.ok (send host Remote.Ins.select doc_id);
  (* No EVALUATE ran on this session: draining must be a state error,
     never an empty success a terminal could mistake for a view. *)
  check_sw "virgin drain" Remote.Sw.bad_state
    (send host Remote.Ins.get_response "")

let test_block_retransmission_is_identical () =
  let w = Lazy.force world in
  let host = fresh_host w in
  check_sw "select" Remote.Sw.ok (send host Remote.Ins.select doc_id);
  check_sw "grant" Remote.Sw.ok (send host Remote.Ins.grant (stored_grant w));
  List.iter
    (fun f -> check_sw "rules" Remote.Sw.ok (Remote.Host.process host f))
    (Apdu.segment ~cla:Apdu.base_cla ~ins:Remote.Ins.rules (stored_rules w));
  let first = send host Remote.Ins.evaluate "" in
  Alcotest.(check bool) "a multi-block response" true
    (first.Apdu.sw1 = fst Remote.Sw.more_data);
  (* EVALUATE served block 0; re-asking for block 0 (our answer was
     "lost") must retransmit it byte-identically, not skip ahead. *)
  let again = send host Remote.Ins.get_response ~p2:0 "" in
  Alcotest.(check string) "identical payload" first.Apdu.payload
    again.Apdu.payload;
  Alcotest.(check bool) "identical status" true
    ((first.Apdu.sw1, first.Apdu.sw2) = (again.Apdu.sw1, again.Apdu.sw2));
  (* Jumping two blocks ahead is a protocol violation, not a skip. *)
  check_sw "block gap refused" Remote.Sw.bad_state
    (send host Remote.Ins.get_response ~p2:2 "");
  (* Forward progress still works. *)
  let next = send host Remote.Ins.get_response ~p2:1 "" in
  Alcotest.(check bool) "next block served" true
    (next.Apdu.sw1 = fst Remote.Sw.more_data
    || (next.Apdu.sw1, next.Apdu.sw2) = Remote.Sw.ok)

let test_chain_duplicate_is_acked_once () =
  let w = Lazy.force world in
  (* Upload the rules twice over a lossy line that duplicates one chain
     frame; the view must equal the clean run (no doubled bytes). *)
  let run schedule =
    let host = fresh_host w in
    let link =
      Fault.Link.wrap ~schedule
        ~tear:(fun () -> Remote.Host.tear host)
        (Remote.Host.process host)
    in
    match
      Remote.Client.evaluate
        (Fault.Link.transport link)
        ~doc_id ~wrapped_grant:(stored_grant w)
        ~encrypted_rules:(stored_rules w) ()
    with
    | Ok r -> r.Remote.Client.outputs
    | Error e -> Alcotest.fail (Remote.Client.string_of_error e)
  in
  let clean = run Fault.Schedule.none in
  (* Frames 0–1 are SELECT and GRANT; frame 2 is the first rules frame. *)
  let dup =
    run
      (Fault.Schedule.of_events
         [ { Fault.frame = 3; kind = Fault.Duplicate_command } ])
  in
  Alcotest.(check bool) "duplicate frame does not double payload" true
    (clean = dup)

let test_tear_closes_channels_but_keeps_stable_state () =
  let w = Lazy.force world in
  let host = fresh_host w in
  let transport = Remote.Host.process host in
  let channel =
    match Remote.Client.open_channel transport with
    | Ok ch -> ch
    | Error e -> Alcotest.fail e
  in
  check_sw "select on logical channel" Remote.Sw.ok
    (send host ~channel Remote.Ins.select doc_id);
  check_sw "grant installs" Remote.Sw.ok
    (send host ~channel Remote.Ins.grant (stored_grant w));
  Remote.Host.tear host;
  Alcotest.(check int) "only the basic channel survives" 1
    (Remote.Host.open_channels host);
  check_sw "old channel is dead" Remote.Sw.channel_closed
    (send host ~channel Remote.Ins.select doc_id);
  (* The basic channel restarted fresh: its old session is gone... *)
  check_sw "fresh session has no document" Remote.Sw.bad_state
    (send host Remote.Ins.evaluate "");
  (* ...but the key store survived the tear: no grant needed now. *)
  check_sw "re-select" Remote.Sw.ok (send host Remote.Ins.select doc_id);
  List.iter
    (fun f -> check_sw "rules" Remote.Sw.ok (Remote.Host.process host f))
    (Apdu.segment ~cla:Apdu.base_cla ~ins:Remote.Ins.rules (stored_rules w));
  let resp = send host Remote.Ins.evaluate "" in
  Alcotest.(check bool) "evaluate succeeds without re-granting" true
    ((resp.Apdu.sw1, resp.Apdu.sw2) = Remote.Sw.ok
    || resp.Apdu.sw1 = fst Remote.Sw.more_data)

(* ------------------------------------------------------------------ *)
(* Error surface                                                        *)
(* ------------------------------------------------------------------ *)

let test_transient_words_are_not_card_errors () =
  Alcotest.(check bool) "transport is protocol-level" true
    (Remote.of_sw Remote.Sw.transport = None);
  Alcotest.(check bool) "internal is protocol-level" true
    (Remote.of_sw Remote.Sw.internal = None);
  let classify sw =
    Remote.classify { Apdu.sw1 = fst sw; sw2 = snd sw; payload = "" }
  in
  Alcotest.(check bool) "transport is transient" true
    (classify Remote.Sw.transport = Remote.Transient);
  Alcotest.(check bool) "internal is transient" true
    (classify Remote.Sw.internal = Remote.Transient);
  Alcotest.(check bool) "bad_state loses the session" true
    (classify Remote.Sw.bad_state = Remote.Session_lost);
  Alcotest.(check bool) "channel_closed loses the session" true
    (classify Remote.Sw.channel_closed = Remote.Session_lost);
  Alcotest.(check bool) "ok is done" true (classify Remote.Sw.ok = Remote.Done);
  (match classify Remote.Sw.stale_key with
  | Remote.Fatal (Card.Stale_key _) -> ()
  | _ -> Alcotest.fail "stale_key must be fatal");
  match classify (0x7F, 0x42) with
  | Remote.Unknown (0x7F, 0x42) -> ()
  | _ -> Alcotest.fail "out-of-protocol words must be Unknown"

let test_undecodable_stream_is_protocol_error () =
  (* A peer that answers OK with garbage payload on every frame: the
     client must fail with a typed [Protocol] error, not raise or return
     a mangled view. *)
  let garbage _ = { Apdu.sw1 = 0x90; sw2 = 0x00; payload = "\xff\xff\xff" } in
  match
    Remote.Client.evaluate garbage ~doc_id ~encrypted_rules:"rules" ()
  with
  | Error (Remote.Client.Protocol msg) ->
      Alcotest.(check bool) "names the decode failure" true
        (String.length msg >= 19
        && String.sub msg 0 19 = "bad response stream")
  | Error e -> Alcotest.fail (Remote.Client.string_of_error e)
  | Ok _ -> Alcotest.fail "garbage decoded as a view"

let fail_parse e = Alcotest.fail (Fault.Schedule.string_of_parse_error e)

let test_fault_spec_parsing () =
  (match Fault.Schedule.of_spec "none" with
  | Ok s -> Alcotest.(check string) "none" "none" (Fault.Schedule.describe s)
  | Error e -> fail_parse e);
  (match Fault.Schedule.of_spec "@3:tear,@10:drop-response" with
  | Ok s ->
      Alcotest.(check (option string)) "event fires" (Some "tear")
        (Option.map Fault.kind_to_string (Fault.Schedule.decide s 3));
      Alcotest.(check (option string)) "silent frame" None
        (Option.map Fault.kind_to_string (Fault.Schedule.decide s 4));
      Alcotest.(check string) "round-trips" "@3:tear,@10:drop-response"
        (Fault.Schedule.to_spec s)
  | Error e -> fail_parse e);
  (match Fault.Schedule.of_spec "seed=42,rate=0.25,kinds=tear+drop-command" with
  | Ok s ->
      let described = Fault.Schedule.to_spec s in
      (match Fault.Schedule.of_spec described with
      | Ok s' ->
          Alcotest.(check bool) "describe round-trips through of_spec" true
            (List.for_all
               (fun n -> Fault.Schedule.decide s n = Fault.Schedule.decide s' n)
               (List.init 200 Fun.id))
      | Error e -> fail_parse e)
  | Error e -> fail_parse e);
  List.iter
    (fun bad ->
      match Fault.Schedule.of_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad spec %S" bad)
    [ "seed=42"; "rate=0.5"; "seed=x,rate=0.5"; "seed=1,rate=2.0";
      "@x:tear"; "@3:melt"; "seed=1,rate=0.1,kinds=melt" ]

(* A malformed spec fails with a *position*: the offset of the offending
   token in the string as given, leading whitespace included. *)
let test_fault_spec_errors_positioned () =
  let mentions needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i =
      i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
    in
    go 0
  in
  let expect spec pos frag =
    match Fault.Schedule.of_spec spec with
    | Ok _ -> Alcotest.failf "accepted bad spec %S" spec
    | Error e ->
        Alcotest.(check int) (Printf.sprintf "pos of error in %S" spec) pos
          e.Fault.Schedule.pos;
        if not (mentions frag (Fault.Schedule.string_of_parse_error e)) then
          Alcotest.failf "error for %S says %S, expected it to mention %S"
            spec
            (Fault.Schedule.string_of_parse_error e)
            frag
  in
  expect "@3:tear,@x:tear" 9 "bad frame number";
  expect "@3:melt" 3 "unknown fault kind";
  expect "  @-1:tear" 3 "negative frame";
  expect "@3tear" 0 "missing ':'";
  expect "seed=1,rate=oops" 12 "bad rate";
  expect "seed=zz,rate=0.1" 5 "bad seed";
  expect "seed=1,rate=0.1,kinds=melt" 22 "unknown fault kind";
  expect "seed=1,rate=0.1,color=red" 16 "unknown fault field";
  expect "rate=0.5" 0 "needs both"

(* [ramp=] turns the screw: the effective rate grows linearly with the
   frame number, clamped to 1 — far enough in, every frame faults. *)
let test_fault_spec_ramp () =
  match Fault.Schedule.of_spec "seed=7,rate=0.0,ramp=10.0" with
  | Error e -> fail_parse e
  | Ok s ->
      Alcotest.(check string) "ramp survives describe"
        "seed=7,rate=0,ramp=10" (Fault.Schedule.to_spec s);
      Alcotest.(check (option string)) "rate 0 at frame 0" None
        (Option.map Fault.kind_to_string (Fault.Schedule.decide s 0));
      (* rate + ramp*n/1000 >= 1 from n = 100 on: every frame faults. *)
      Alcotest.(check bool) "clamped to certainty far in" true
        (List.for_all
           (fun n -> Fault.Schedule.decide s (100 + n) <> None)
           (List.init 50 Fun.id))

(* Time-phased composition: each segment decides its own window with
   frames renumbered from 0, the tail decides the rest. *)
let test_fault_spec_concat () =
  let spec = "#20:none;#10:seed=1,rate=1;seed=2,rate=0.5" in
  match Fault.Schedule.of_spec spec with
  | Error e -> fail_parse e
  | Ok s ->
      Alcotest.(check string) "concat round-trips" spec
        (Fault.Schedule.to_spec s);
      Alcotest.(check bool) "clean segment is silent" true
        (List.for_all
           (fun n -> Fault.Schedule.decide s n = None)
           (List.init 20 Fun.id));
      Alcotest.(check bool) "hammer segment always faults" true
        (List.for_all
           (fun n -> Fault.Schedule.decide s (20 + n) <> None)
           (List.init 10 Fun.id));
      let tail =
        match Fault.Schedule.of_spec "seed=2,rate=0.5" with
        | Ok t -> t
        | Error e -> fail_parse e
      in
      Alcotest.(check bool) "tail decides past the segments, renumbered"
        true
        (List.for_all
           (fun n -> Fault.Schedule.decide s (30 + n) = Fault.Schedule.decide tail n)
           (List.init 64 Fun.id));
      List.iter
        (fun bad ->
          match Fault.Schedule.of_spec bad with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "accepted bad concat spec %S" bad)
        [ "#0:none;none"; "#x:none;none"; "#5:none"; "#5:@z:tear;none" ]

(* Campaign specs replay: of_spec ∘ to_spec = id on the event list, and
   the seeded random campaign is coherent (kills are distinct cards in
   the middle of the stream, revives strictly follow their kill). *)
let test_campaign_spec_round_trip () =
  let spec = "@10:kill:1,@20:revive:1,@30:add,@40:remove:0,@50:tear:2" in
  (match Fault.Campaign.of_spec spec with
  | Error e -> fail_parse e
  | Ok c ->
      Alcotest.(check string) "round-trips" spec (Fault.Campaign.to_spec c));
  (match Fault.Campaign.of_spec "none" with
  | Error e -> fail_parse e
  | Ok c -> Alcotest.(check string) "none" "none" (Fault.Campaign.to_spec c));
  List.iter
    (fun bad ->
      match Fault.Campaign.of_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad campaign spec %S" bad)
    [ "@10:kill"; "@10:explode:1"; "@x:kill:1"; "@10:add:3"; "kill:1" ];
  let requests = 200 and cards = 3 in
  let c =
    Fault.Campaign.random ~seed:99L ~requests ~cards ~kills:2 ~revives:1
      ~resizes:1 ()
  in
  (match Fault.Campaign.of_spec (Fault.Campaign.to_spec c) with
  | Error e -> fail_parse e
  | Ok c' ->
      Alcotest.(check string) "random campaign round-trips"
        (Fault.Campaign.to_spec c) (Fault.Campaign.to_spec c'));
  let events = Fault.Campaign.events c in
  let kills =
    List.filter_map
      (function
        | { Fault.Campaign.at; action = Fault.Campaign.Kill i } -> Some (at, i)
        | _ -> None)
      events
  in
  Alcotest.(check int) "two kills" 2 (List.length kills);
  Alcotest.(check bool) "kills hit distinct cards" true
    (List.length (List.sort_uniq compare (List.map snd kills)) = 2);
  Alcotest.(check bool) "kills land mid-stream" true
    (List.for_all
       (fun (at, _) -> at >= requests / 10 && at <= requests * 9 / 10)
       kills);
  List.iter
    (function
      | { Fault.Campaign.at; action = Fault.Campaign.Revive i } ->
          Alcotest.(check bool) "revive strictly follows its kill" true
            (List.exists (fun (k_at, k_i) -> k_i = i && k_at < at) kills)
      | _ -> ())
    events

(* of_spec ∘ to_spec = id (up to per-frame decisions), over every spec
   family: explicit event lists, seeded random schedules (ramped or
   not), and time-phased concat compositions of those. *)
let qcheck_spec_round_trip =
  let kind_gen =
    QCheck2.Gen.map
      (fun i -> Fault.all_kinds.(i mod Array.length Fault.all_kinds))
      QCheck2.Gen.(int_bound (Array.length Fault.all_kinds - 1))
  in
  let simple_gen =
    QCheck2.Gen.(
      bind bool (fun random ->
          if random then
            bind (int_bound 20) (fun ramp_tenths ->
                map3
                  (fun seed rate_pct kept ->
                    let kinds =
                      match kept with
                      | [] -> None
                      | ks -> Some (Array.of_list ks)
                    in
                    let ramp = float_of_int ramp_tenths /. 10. in
                    Fault.Schedule.random ~seed:(Int64.of_int seed)
                      ~rate:(float_of_int rate_pct /. 100.)
                      ~ramp ?kinds ())
                  (int_bound 1_000_000) (int_bound 100)
                  (list_size (int_bound 4) kind_gen))
          else
            map
              (fun events ->
                Fault.Schedule.of_events
                  (List.map (fun (f, k) -> { Fault.frame = f; kind = k }) events))
              (list_size (int_bound 6) (pair (int_bound 40) kind_gen))))
  in
  let schedule_gen =
    QCheck2.Gen.(
      bind (int_bound 3) (fun segments ->
          if segments = 0 then simple_gen
          else
            map2
              (fun segs tail -> Fault.Schedule.concat segs tail)
              (list_repeat segments
                 (pair (int_range 1 80) simple_gen))
              simple_gen))
  in
  QCheck2.Test.make ~name:"of_spec (to_spec s) decides like s" ~count:200
    schedule_gen (fun s ->
      match Fault.Schedule.of_spec (Fault.Schedule.to_spec s) with
      | Error e ->
          QCheck2.Test.fail_report
            (Printf.sprintf "to_spec %S does not re-parse: %s"
               (Fault.Schedule.to_spec s)
               (Fault.Schedule.string_of_parse_error e))
      | Ok s' ->
          Fault.Schedule.to_spec s' = Fault.Schedule.to_spec s
          && List.for_all
               (fun n -> Fault.Schedule.decide s n = Fault.Schedule.decide s' n)
               (List.init 300 Fun.id))

(* ------------------------------------------------------------------ *)
(* Crash-safe store                                                     *)
(* ------------------------------------------------------------------ *)

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sdds-fault-%d" (Hashtbl.hash (Sys.time ())))
  in
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Store_io.clear_fault_hook ();
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let test_torn_write_never_corrupts_store () =
  let w = make_world ~seed:"torn-store" () in
  with_tmpdir (fun dir ->
      (* A clean save first: this is the state on disk before the crash. *)
      (match Store_io.save w.store ~dir with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Store_io.string_of_error e));
      (* Now every write tears mid-file. The re-save fails with a typed
         error... *)
      let disk = Fault.Disk.arm ~seed:11L ~torn_rate:1.0 () in
      (match Store_io.save w.store ~dir with
      | Ok () -> Alcotest.fail "torn save reported success"
      | Error e ->
          Alcotest.(check bool) "write failed" true (e.Store_io.op = `Write));
      Alcotest.(check bool) "faults were injected" true
        (Fault.Disk.injected disk > 0);
      Fault.Disk.disarm ();
      (* ...and the store on disk is still the complete pre-crash one:
         the torn temp files are skipped by the loaders. *)
      match Store_io.load ~dir with
      | Error e -> Alcotest.fail (Store_io.string_of_error e)
      | Ok loaded ->
          Alcotest.(check (list string)) "documents intact" [ doc_id ]
            (Store.list_documents loaded);
          Alcotest.(check bool) "grant intact" true
            (Store.get_grant loaded ~doc_id ~subject:"u"
            = Store.get_grant w.store ~doc_id ~subject:"u");
          Alcotest.(check bool) "rules intact" true
            (Store.get_rules loaded ~doc_id ~subject:"u"
            = Store.get_rules w.store ~doc_id ~subject:"u"))

let test_rename_fault_is_typed () =
  let w = make_world ~seed:"rename-fault" () in
  with_tmpdir (fun dir ->
      Store_io.set_fault_hook (fun op _path ->
          match op with
          | `Rename -> Some (Store_io.Io_fail "injected rename fault")
          | _ -> None);
      match Store_io.save w.store ~dir with
      | Ok () -> Alcotest.fail "save succeeded under rename faults"
      | Error e ->
          Alcotest.(check bool) "typed as rename" true
            (e.Store_io.op = `Rename))

let test_read_faults_are_typed () =
  let w = make_world ~seed:"read-fault" () in
  with_tmpdir (fun dir ->
      (match Store_io.save w.store ~dir with
      | Ok () -> ()
      | Error e -> Alcotest.fail (Store_io.string_of_error e));
      let _ = Fault.Disk.arm ~seed:5L ~fail_rate:1.0 () in
      (match Store_io.load ~dir with
      | Ok _ -> Alcotest.fail "load succeeded on a failing disk"
      | Error e ->
          Alcotest.(check bool) "typed as read" true (e.Store_io.op = `Read));
      Fault.Disk.disarm ())

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_soundness;
    QCheck_alcotest.to_alcotest qcheck_convergence;
    QCheck_alcotest.to_alcotest qcheck_deterministic_replay;
    Alcotest.test_case "pool recovers from a card tear" `Quick
      test_pool_recovers_from_tear;
    Alcotest.test_case "pool budget exhaustion is typed" `Quick
      test_pool_budget_exhaustion_is_typed;
    Alcotest.test_case "client budget exhaustion is typed" `Quick
      test_client_budget_exhaustion_is_typed;
    Alcotest.test_case "run refreshes the grant after rotation" `Quick
      test_run_refreshes_grant_after_rotation;
    Alcotest.test_case "pool refreshes the grant after rotation" `Quick
      test_pool_refreshes_grant_after_rotation;
    Alcotest.test_case "virgin drain is bad_state" `Quick
      test_virgin_drain_is_bad_state;
    Alcotest.test_case "block retransmission is identical" `Quick
      test_block_retransmission_is_identical;
    Alcotest.test_case "duplicated chain frame acked once" `Quick
      test_chain_duplicate_is_acked_once;
    Alcotest.test_case "tear closes channels, keeps stable state" `Quick
      test_tear_closes_channels_but_keeps_stable_state;
    Alcotest.test_case "transient words classify as transient" `Quick
      test_transient_words_are_not_card_errors;
    Alcotest.test_case "undecodable stream is a protocol error" `Quick
      test_undecodable_stream_is_protocol_error;
    Alcotest.test_case "fault-spec parsing" `Quick test_fault_spec_parsing;
    Alcotest.test_case "fault-spec errors carry a position" `Quick
      test_fault_spec_errors_positioned;
    Alcotest.test_case "ramp turns the fault rate up over time" `Quick
      test_fault_spec_ramp;
    Alcotest.test_case "concat composes time-phased schedules" `Quick
      test_fault_spec_concat;
    Alcotest.test_case "campaign specs replay" `Quick
      test_campaign_spec_round_trip;
    QCheck_alcotest.to_alcotest qcheck_spec_round_trip;
    Alcotest.test_case "torn write never corrupts the store" `Quick
      test_torn_write_never_corrupts_store;
    Alcotest.test_case "rename fault is typed" `Quick
      test_rename_fault_is_typed;
    Alcotest.test_case "read faults are typed" `Quick
      test_read_faults_are_typed;
  ]
