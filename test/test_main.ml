let () =
  Alcotest.run "sdds"
    [
      ("util", Test_util.suite);
      ("xml", Test_xml.suite);
      ("xpath", Test_xpath.suite);
      ("crypto", Test_crypto.suite);
      ("core", Test_core.suite);
      ("codec", Test_core.codec_suite);
      ("directory", Test_core.directory_suite);
      ("index", Test_index.suite);
      ("soe", Test_soe.suite);
      ("dsp", Test_dsp.suite);
      ("baseline", Test_baseline.suite);
      ("containment", Test_containment.suite);
      ("guard", Test_guard.suite);
      ("proxy-protected", Test_dsp.protected_suite);
      ("revocation", Test_dsp.revocation_suite);
      ("authority", Test_dsp.authority_suite);
      ("rollback", Test_dsp.rollback_suite);
      ("persistence", Test_dsp.persistence_suite);
      ("fuzz", Test_fuzz.suite);
      ("stream-view", Test_stream_view.suite);
      ("remote-card", Test_remote_card.suite);
      ("properties", Test_properties.suite);
      ("cost-extra", Test_soe.cost_suite_extra);
      ("guard-wire", Test_guard.wire_suite);
      ("protected-accounting", Test_dsp.protected_accounting_suite);
      ("session", Test_session.suite);
      ("analysis", Test_analysis.suite);
      ("fault", Test_fault.suite);
      ("fleet", Test_fleet.suite);
      ("obs", Test_obs.suite);
      ("dissem", Test_dissem.suite);
      ("protocol-check", Test_protocol.suite);
    ]
