module Cluster = Sdds_dissem.Cluster
module Fanout = Sdds_dissem.Fanout
module Mux = Sdds_dissem.Mux
module Engine = Sdds_core.Engine
module Rule = Sdds_core.Rule
module Compile = Sdds_core.Compile
module Dom = Sdds_xml.Dom
module Generator = Sdds_xml.Generator
module Random_path = Sdds_xpath.Random_path
module Rng = Sdds_util.Rng

let tags = [| "a"; "b"; "c"; "d"; "e" |]
let values = [| "1"; "2"; "x" |]

let random_doc rng =
  Generator.random_tree rng ~tags ~max_depth:6 ~max_children:4
    ~text_probability:0.3

let path_cfg ~predicate_probability =
  { Random_path.default with max_steps = 3; predicate_probability }

let random_rules rng ~predicate_probability n =
  List.init n (fun _ ->
      let sign = if Rng.float rng 1.0 < 0.5 then Rule.Allow else Rule.Deny in
      {
        Rule.sign;
        subject = "u";
        path =
          Random_path.generate rng
            (path_cfg ~predicate_probability)
            ~tags ~values;
      })

(* A subscriber population with forced sharing: a small pool of rule
   sets, each subscriber drawing from the pool or minting a fresh set.
   [predicate_probability] > 0 exercises the solo path alongside the
   mux. *)
let random_population rng ~predicate_probability =
  let pool_size = 1 + Rng.int rng 3 in
  let pool =
    Array.init pool_size (fun _ ->
        random_rules rng ~predicate_probability (1 + Rng.int rng 4))
  in
  let n = 2 + Rng.int rng 7 in
  List.init n (fun i ->
      let rules =
        if Rng.float rng 1.0 < 0.6 then pool.(Rng.int rng pool_size)
        else random_rules rng ~predicate_probability (1 + Rng.int rng 4)
      in
      (Printf.sprintf "s%02d" i, rules))

let seed_gen = QCheck2.Gen.(int_bound 1_000_000)

let run_fanout subscribers events =
  match Fanout.run subscribers events with
  | Ok r -> r
  | Error e -> Alcotest.failf "plan refused: %a" Cluster.pp_error e

(* The tentpole property: clustered output = per-subscriber naive
   oracle, structurally identical, for every subscriber. *)
let differential ~predicate_probability ~name ~count =
  QCheck2.Test.make ~name ~count seed_gen (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let doc = random_doc rng in
      let events = Dom.to_events doc in
      let subscribers = random_population rng ~predicate_probability in
      let delivered, stats = run_fanout subscribers events in
      List.length delivered = List.length subscribers
      && stats.Fanout.evaluations <= stats.Fanout.naive_evaluations
      && List.for_all
           (fun (subject, outs) ->
             let rules = List.assoc subject subscribers in
             outs = Engine.run rules events)
           delivered)

let test_differential_pred_free =
  differential ~predicate_probability:0.0
    ~name:"clustered = naive oracle (pred-free)" ~count:150

let test_differential_mixed =
  differential ~predicate_probability:0.4
    ~name:"clustered = naive oracle (mixed predicates)" ~count:150

(* Satellite: cluster membership and outputs are stable under
   subscriber insertion order. *)
let shuffle rng l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

let plan_fingerprint (p : Cluster.t) =
  ( Array.to_list
      (Array.map (fun c -> (c.Cluster.digest, c.Cluster.members)) p.Cluster.clusters),
    p.Cluster.assignment,
    p.Cluster.mux,
    p.Cluster.solo )

let test_insertion_order_stable =
  QCheck2.Test.make ~name:"clusters stable under insertion order" ~count:150
    seed_gen (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let doc = random_doc rng in
      let events = Dom.to_events doc in
      let subscribers = random_population rng ~predicate_probability:0.2 in
      let permuted = shuffle rng subscribers in
      let plan l =
        match Cluster.plan l with
        | Ok p -> p
        | Error e -> Alcotest.failf "plan refused: %a" Cluster.pp_error e
      in
      plan_fingerprint (plan subscribers) = plan_fingerprint (plan permuted)
      && run_fanout subscribers events = run_fanout permuted events)

(* Identical rule sets collapse to one shared evaluation. *)
let test_identical_sets_share () =
  let rules = [ Rule.allow ~subject:"u" "//a"; Rule.deny ~subject:"u" "//b" ] in
  let subscribers = List.init 5 (fun i -> (Printf.sprintf "s%d" i, rules)) in
  match Cluster.plan subscribers with
  | Error e -> Alcotest.failf "plan refused: %a" Cluster.pp_error e
  | Ok p ->
      Alcotest.(check int) "one cluster" 1 (Array.length p.Cluster.clusters);
      Alcotest.(check int) "one evaluation" 1 (Cluster.evaluations p);
      Alcotest.(check (list string)) "members"
        [ "s0"; "s1"; "s2"; "s3"; "s4" ]
        p.Cluster.clusters.(0).Cluster.members

(* The realistic card-path shape: each subscriber's rules carry its own
   subject (they were filtered out of a per-subscriber blob). Identical
   policies must still cluster — the canonical key drops the subject. *)
let test_same_policy_different_subjects () =
  let policy s =
    [ Rule.allow ~subject:s "//patient"; Rule.deny ~subject:s "//ssn" ]
  in
  let subscribers =
    [ ("alice", policy "alice"); ("bob", policy "bob");
      ("carol", [ Rule.allow ~subject:"carol" "//department" ]) ]
  in
  match Cluster.plan subscribers with
  | Error e -> Alcotest.failf "plan refused: %a" Cluster.pp_error e
  | Ok p ->
      Alcotest.(check int) "two clusters" 2 (Array.length p.Cluster.clusters);
      Alcotest.(check bool) "alice and bob share" true
        (Cluster.cluster_of p "alice" = Cluster.cluster_of p "bob");
      Alcotest.(check bool) "carol is alone" true
        (Cluster.cluster_of p "carol" <> Cluster.cluster_of p "alice")

(* Satellite: a digest collision between distinct rule sets is a typed
   refusal naming the colliding pair — deterministically, whatever the
   listing order. *)
let test_collision_reported () =
  let a = [ Rule.allow ~subject:"u" "//a" ] in
  let b = [ Rule.deny ~subject:"u" "//b" ] in
  let subscribers =
    [ ("carol", a); ("alice", a); ("bob", b); ("dave", b) ]
  in
  let check l =
    match Cluster.plan ~digest:(fun _ -> 42L) l with
    | Error (Cluster.Collision { subject_a; subject_b; digest }) ->
        Alcotest.(check int64) "digest" 42L digest;
        (* First member (sorted) of each colliding group, in canonical
           cluster order. *)
        Alcotest.(check (pair string string))
          "colliding pair" ("alice", "bob")
          (min subject_a subject_b, max subject_a subject_b)
    | Error e -> Alcotest.failf "wrong refusal: %a" Cluster.pp_error e
    | Ok _ -> Alcotest.fail "collision went undetected"
  in
  check subscribers;
  check (List.rev subscribers)

let test_duplicate_subject () =
  let subscribers =
    [
      ("alice", [ Rule.allow ~subject:"u" "//a" ]);
      ("alice", [ Rule.deny ~subject:"u" "//b" ]);
    ]
  in
  match Cluster.plan subscribers with
  | Error (Cluster.Duplicate_subject "alice") -> ()
  | Error e -> Alcotest.failf "wrong refusal: %a" Cluster.pp_error e
  | Ok _ -> Alcotest.fail "duplicate subject went undetected"

(* Same subject listed twice with the same rules is fine (dedup). *)
let test_duplicate_listing_ok () =
  let rules = [ Rule.allow ~subject:"u" "//a" ] in
  match Cluster.plan [ ("alice", rules); ("alice", rules) ] with
  | Error e -> Alcotest.failf "plan refused: %a" Cluster.pp_error e
  | Ok p ->
      Alcotest.(check int) "one cluster" 1 (Array.length p.Cluster.clusters);
      Alcotest.(check int) "one assignment" 1
        (List.length p.Cluster.assignment)

(* The mux refuses predicate-carrying rule sets outright. *)
let test_mux_rejects_predicates () =
  let compiled =
    Compile.compile [ Rule.allow ~subject:"u" {|//a[b>"1"]|} ]
  in
  Alcotest.check_raises "predicates refused"
    (Invalid_argument "Mux.create: predicate rule set") (fun () ->
      ignore (Mux.create [| compiled |]))

(* Sharing accounting: with guaranteed digest sharing, the shared
   evaluation count is strictly below the naive N. *)
let test_stats_saved () =
  let rng = Rng.create 7L in
  let doc = random_doc rng in
  let events = Dom.to_events doc in
  let rules = [ Rule.allow ~subject:"u" "//a" ] in
  let subscribers = List.init 4 (fun i -> (Printf.sprintf "s%d" i, rules)) in
  let _, stats = run_fanout subscribers events in
  Alcotest.(check int) "naive" 4 stats.Fanout.naive_evaluations;
  Alcotest.(check int) "shared" 1 stats.Fanout.evaluations;
  Alcotest.(check bool) "ratio" true (Fanout.fanout_ratio stats = 4.0)

let suite =
  [
    QCheck_alcotest.to_alcotest test_differential_pred_free;
    QCheck_alcotest.to_alcotest test_differential_mixed;
    QCheck_alcotest.to_alcotest test_insertion_order_stable;
    Alcotest.test_case "identical sets share" `Quick test_identical_sets_share;
    Alcotest.test_case "same policy, different subjects" `Quick
      test_same_policy_different_subjects;
    Alcotest.test_case "collision reported" `Quick test_collision_reported;
    Alcotest.test_case "duplicate subject" `Quick test_duplicate_subject;
    Alcotest.test_case "duplicate listing ok" `Quick test_duplicate_listing_ok;
    Alcotest.test_case "mux rejects predicates" `Quick
      test_mux_rejects_predicates;
    Alcotest.test_case "sharing stats" `Quick test_stats_saved;
  ]
