module Cond = Sdds_core.Cond
module Rule = Sdds_core.Rule
module Compile = Sdds_core.Compile
module Engine = Sdds_core.Engine
module Oracle = Sdds_core.Oracle
module Output = Sdds_core.Output
module Reassembler = Sdds_core.Reassembler
module Sdds = Sdds_core.Sdds
module Dom = Sdds_xml.Dom
module Event = Sdds_xml.Event
module Xml_parser = Sdds_xml.Parser
module Generator = Sdds_xml.Generator
module Xp = Sdds_xpath.Parser
module Random_path = Sdds_xpath.Random_path
module Rng = Sdds_util.Rng

let dom = Alcotest.testable Dom.pp Dom.equal
let dom_opt = Alcotest.(option dom)

(* ------------------------------------------------------------------ *)
(* Cond                                                                *)
(* ------------------------------------------------------------------ *)

let test_cond_simplify () =
  Alcotest.(check bool) "and true" true (Cond.conj [ Cond.tt; Cond.tt ] = Cond.tt);
  Alcotest.(check bool) "and false" true
    (Cond.conj [ Cond.var 1; Cond.ff ] = Cond.ff);
  Alcotest.(check bool) "or true" true
    (Cond.disj [ Cond.var 1; Cond.tt ] = Cond.tt);
  Alcotest.(check bool) "or empty" true (Cond.disj [] = Cond.ff);
  Alcotest.(check bool) "and single" true
    (Cond.conj [ Cond.var 3; Cond.tt ] = Cond.var 3);
  Alcotest.(check bool) "dedup" true
    (Cond.conj [ Cond.var 1; Cond.var 1 ] = Cond.var 1);
  (* Nested flattening *)
  let e = Cond.conj [ Cond.var 1; Cond.conj [ Cond.var 2; Cond.var 3 ] ] in
  Alcotest.(check (list int)) "flattened vars" [ 1; 2; 3 ] (Cond.vars e)

let test_cond_subst_eval () =
  let e = Cond.disj [ Cond.conj [ Cond.var 1; Cond.var 2 ]; Cond.var 3 ] in
  let partial = Cond.subst (fun v -> if v = 3 then Some false else None) e in
  Alcotest.(check (list int)) "remaining vars" [ 1; 2 ] (Cond.vars partial);
  Alcotest.(check bool) "eval" true (Cond.eval (fun _ -> true) partial);
  Alcotest.(check bool) "eval f" false
    (Cond.eval (fun v -> v = 1) partial);
  Alcotest.(check bool) "to_bool" true
    (Cond.to_bool (Cond.subst (fun _ -> Some true) e) = Some true)

(* ------------------------------------------------------------------ *)
(* Rule                                                                *)
(* ------------------------------------------------------------------ *)

let test_rule_parse () =
  let r = Rule.parse "+, alice, //patient/name" in
  Alcotest.(check bool) "sign" true (r.Rule.sign = Rule.Allow);
  Alcotest.(check string) "subject" "alice" r.Rule.subject;
  Alcotest.(check bool) "roundtrip" true
    (Rule.equal r (Rule.parse (Rule.to_string r)));
  let d = Rule.parse "-, bob, //ssn" in
  Alcotest.(check bool) "deny" true (d.Rule.sign = Rule.Deny)

let test_rule_parse_errors () =
  let expect s =
    match Rule.parse s with
    | exception Invalid_argument _ -> ()
    | exception Sdds_xpath.Parser.Error _ -> ()
    | _ -> Alcotest.fail ("expected failure on " ^ s)
  in
  expect "";
  expect "+";
  expect "+, alice";
  expect "*, alice, //a";
  expect "+, , //a";
  expect "+, alice, not-a-path"

let test_rule_for_subject () =
  let rules =
    [ Rule.allow ~subject:"alice" "//a";
      Rule.deny ~subject:"bob" "//b";
      Rule.allow ~subject:"alice" "//c" ]
  in
  Alcotest.(check int) "alice rules" 2
    (List.length (Rule.for_subject "alice" rules));
  Alcotest.(check int) "carol rules" 0
    (List.length (Rule.for_subject "carol" rules))

(* ------------------------------------------------------------------ *)
(* Oracle semantics                                                    *)
(* ------------------------------------------------------------------ *)

let doc1 = Xml_parser.dom_of_string "<a><b><c>1</c><d>x</d></b><b><d>y</d></b></a>"
(* ids: a=0 b=1 c=2 d=3 b=4 d=5 *)

let allow p = Rule.allow ~subject:"u" p
let deny p = Rule.deny ~subject:"u" p

let test_oracle_default_deny () =
  Alcotest.(check (list int)) "no rules" [] (Oracle.allowed_ids ~rules:[] doc1);
  Alcotest.check dom_opt "empty view" None
    (Oracle.authorized_view ~rules:[] doc1)

let test_oracle_propagation () =
  (* +//b propagates to all of b's subtrees. *)
  Alcotest.(check (list int)) "allow b" [ 1; 2; 3; 4; 5 ]
    (Oracle.allowed_ids ~rules:[ allow "//b" ] doc1)

let test_oracle_figure2_rule () =
  (* The paper's Figure 2 rule: +//b[c]/d applies to d under the first b
     only. *)
  Alcotest.(check (list int)) "b[c]/d" [ 3 ]
    (Oracle.allowed_ids ~rules:[ allow "//b[c]/d" ] doc1);
  Alcotest.check dom_opt "structural ancestors kept, text pruned"
    (Some
       (Dom.element "a"
          [ Dom.element "b" [ Dom.element "d" [ Dom.text "x" ] ] ]))
    (Oracle.authorized_view ~rules:[ allow "//b[c]/d" ] doc1)

let test_oracle_denial_precedence () =
  (* Both signs apply directly at node 3: denial wins. *)
  Alcotest.(check (list int)) "deny beats allow" [ 5 ]
    (Oracle.allowed_ids
       ~rules:[ allow "//d"; deny "//b[c]/d" ]
       doc1)

let test_oracle_most_specific () =
  (* -//a then +/a/b: the deeper rule overrides the propagated denial. *)
  Alcotest.(check (list int)) "specific allow under deny"
    [ 1; 2; 3 ]
    (Oracle.allowed_ids ~rules:[ deny "//a"; allow "/a/b[c]" ] doc1);
  (* Deny deeper under an allow. *)
  Alcotest.(check (list int)) "specific deny under allow"
    [ 0; 1; 3; 4; 5 ]
    (Oracle.allowed_ids ~rules:[ allow "//a"; deny "//c" ] doc1)

let test_oracle_default_allow () =
  Alcotest.(check (list int)) "open world"
    [ 0; 1; 2; 3; 4; 5 ]
    (Oracle.allowed_ids ~default:Rule.Allow ~rules:[] doc1)

let test_oracle_query () =
  (* Allow everything, query selects first-b subtree. *)
  let view =
    Oracle.authorized_view ~rules:[ allow "//a" ]
      ~query:(Xp.parse "//b[c]") doc1
  in
  Alcotest.check dom_opt "query scopes view"
    (Some
       (Dom.element "a"
          [ Dom.element "b"
              [ Dom.element "c" [ Dom.text "1" ];
                Dom.element "d" [ Dom.text "x" ] ] ]))
    view;
  (* Query matching nothing -> nothing delivered. *)
  Alcotest.check dom_opt "empty query" None
    (Oracle.authorized_view ~rules:[ allow "//a" ]
       ~query:(Xp.parse "//zzz") doc1)

(* ------------------------------------------------------------------ *)
(* Engine vs hand-computed outputs                                     *)
(* ------------------------------------------------------------------ *)

let view ?default ?query ?suppress rules doc =
  Sdds.authorized_view ?default ?query ?suppress ~rules doc

let test_engine_figure2 () =
  Alcotest.check dom_opt "engine matches oracle on Figure 2"
    (Oracle.authorized_view ~rules:[ allow "//b[c]/d" ] doc1)
    (view [ allow "//b[c]/d" ] doc1)

let test_engine_pending_predicate_after_target () =
  (* d arrives BEFORE c: the rule is pending when d is seen, and must be
     delivered once c satisfies the predicate later (the paper's pending
     rule mechanism). *)
  let doc = Xml_parser.dom_of_string "<a><b><d>x</d><c>1</c></b></a>" in
  Alcotest.check dom_opt "pending rule delivers"
    (Some
       (Dom.element "a"
          [ Dom.element "b" [ Dom.element "d" [ Dom.text "x" ] ] ]))
    (view [ allow "//b[c]/d" ] doc);
  (* And without the c, nothing. *)
  let doc2 = Xml_parser.dom_of_string "<a><b><d>x</d></b></a>" in
  Alcotest.check dom_opt "unsatisfied predicate" None
    (view [ allow "//b[c]/d" ] doc2)

let test_engine_pending_value_predicate () =
  let doc =
    Xml_parser.dom_of_string
      "<r><patient><name>n1</name><age>71</age></patient><patient><name>n2</name><age>30</age></patient></r>"
  in
  let rules = [ allow "//patient[age>60]" ] in
  Alcotest.check dom_opt "value predicate"
    (Some
       (Dom.element "r"
          [ Dom.element "patient"
              [ Dom.element "name" [ Dom.text "n1" ];
                Dom.element "age" [ Dom.text "71" ] ] ]))
    (view rules doc)

let test_engine_nested_predicate () =
  let doc =
    Xml_parser.dom_of_string "<a><b><x><y>k</y></x><t>v</t></b><b><x/><t>w</t></b></a>"
  in
  (* b[x[y]]/t: only the first b's t. *)
  Alcotest.check dom_opt "nested predicate"
    (Oracle.authorized_view ~rules:[ allow "//b[x[y]]/t" ] doc)
    (view [ allow "//b[x[y]]/t" ] doc)

let test_engine_self_value_predicate () =
  let doc = Xml_parser.dom_of_string "<f><r>G</r><r>R</r></f>" in
  Alcotest.check dom_opt "self comparison"
    (Some (Dom.element "f" [ Dom.element "r" [ Dom.text "G" ] ]))
    (view [ allow {|//r[.="G"]|} ] doc)

let test_engine_attribute_rules () =
  let doc = Xml_parser.dom_of_string {|<r><i id="1"><v>a</v></i><i id="2"><v>b</v></i></r>|} in
  Alcotest.check dom_opt "attribute predicate"
    (Oracle.authorized_view ~rules:[ allow {|//i[@id="2"]|} ] doc)
    (view [ allow {|//i[@id="2"]|} ] doc)

let test_engine_query () =
  let doc = Generator.agenda (Rng.create 4L) ~courses:6 in
  let rules = [ allow "//course"; deny "//instructor" ] in
  let query = Xp.parse "//course[credit>2]/title" in
  Alcotest.check dom_opt "query composition"
    (Oracle.authorized_view ~rules ~query doc)
    (view ~query rules doc)

let test_engine_errors () =
  let t = Engine.create [ allow "//a" ] in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> Engine.feed t (Event.Value "top-level"));
  ignore (Engine.feed t (Event.Open "a"));
  expect_invalid (fun () -> Engine.feed t (Event.Close "b"));
  ignore (Engine.feed t (Event.Close "a"));
  expect_invalid (fun () -> Engine.feed t (Event.Open "again"));
  Engine.finish t;
  let t2 = Engine.create [] in
  ignore (Engine.feed t2 (Event.Open "a"));
  expect_invalid (fun () -> Engine.finish t2)

let test_engine_suppression_stats () =
  let doc = Generator.hospital (Rng.create 5L) ~patients:5 in
  let events = Dom.to_events doc in
  (* Deny the root with no positive rule anywhere: once the denial is
     determined and no positive automaton is alive, the whole document is
     consumed under suspension. (A positive rule that merely matches
     nothing would NOT allow suspension — without the skip index the
     engine cannot know its tag never occurs.) *)
  let t = Engine.create [ deny "/hospital" ] in
  List.iter (fun ev -> ignore (Engine.feed t ev)) events;
  Engine.finish t;
  let st = Engine.stats t in
  Alcotest.(check int) "everything suppressed" (List.length events)
    st.Engine.suppressed;
  (* With suppression disabled every event is processed visibly. *)
  let t2 = Engine.create ~suppress:false [ deny "/hospital" ] in
  List.iter (fun ev -> ignore (Engine.feed t2 ev)) events;
  Engine.finish t2;
  Alcotest.(check int) "no suppression" 0 (Engine.stats t2).Engine.suppressed

let test_engine_memory_bounded () =
  (* Peak working state must not grow with document length for a flat
     document (it grows with depth, not size). *)
  let peak n =
    let doc = Generator.agenda (Rng.create 7L) ~courses:n in
    let t = Engine.create [ allow "//course[credit>2]"; deny "//instructor" ] in
    List.iter (fun ev -> ignore (Engine.feed t ev)) (Dom.to_events doc);
    Engine.finish t;
    (Engine.stats t).Engine.peak_state_words
  in
  let p1 = peak 20 and p2 = peak 200 in
  Alcotest.(check bool)
    (Printf.sprintf "peak %d vs %d size-independent" p1 p2)
    true
    (p2 <= p1 * 2)

let test_engine_depth () =
  let t = Engine.create [] in
  Alcotest.(check int) "depth 0" 0 (Engine.depth t);
  ignore (Engine.feed t (Event.Open "a"));
  ignore (Engine.feed t (Event.Open "b"));
  Alcotest.(check int) "depth 2" 2 (Engine.depth t)

let test_subtree_skippable () =
  (* Rules: +//b[c]/d. At depth 1 inside <a>, a subtree containing no d
     and no c is skippable; one containing d (and c) is not. *)
  let t = Engine.create [ allow "//b[c]/d" ] in
  ignore (Engine.feed t (Event.Open "a"));
  let possible tags tag = List.mem tag tags in
  Alcotest.(check bool) "no useful tags -> skip" true
    (Engine.subtree_skippable t ~tag:"x" ~tag_possible:(possible [ "x"; "y" ])
       ~nonempty:true);
  Alcotest.(check bool) "has b,c,d -> keep" false
    (Engine.subtree_skippable t ~tag:"b"
       ~tag_possible:(possible [ "b"; "c"; "d" ])
       ~nonempty:true);
  (* d alone cannot fire //b[c]/d's spine: b is missing. *)
  Alcotest.(check bool) "d alone -> skip" true
    (Engine.subtree_skippable t ~tag:"d" ~tag_possible:(possible [ "d" ])
       ~nonempty:true)

let test_subtree_skippable_pending_pred () =
  (* Inside <a><b> with rule +//b[.//c]/d, the live predicate instance for
     [.//c] anchored at b roams b's whole subtree: an inner subtree that
     could contain c must NOT be skipped even if it cannot contain d. *)
  let t = Engine.create [ allow "//b[.//c]/d" ] in
  ignore (Engine.feed t (Event.Open "a"));
  ignore (Engine.feed t (Event.Open "b"));
  let possible tags tag = List.mem tag tags in
  Alcotest.(check bool) "c-bearing subtree kept" false
    (Engine.subtree_skippable t ~tag:"x" ~tag_possible:(possible [ "x"; "c" ])
       ~nonempty:true);
  Alcotest.(check bool) "useless subtree skipped" true
    (Engine.subtree_skippable t ~tag:"z" ~tag_possible:(possible [ "z" ])
       ~nonempty:true);
  (* With a child-axis predicate [c], a grandchild subtree cannot satisfy
     it even if the tag c occurs there — the one-step lookahead proves the
     skip safe. But a subtree whose root IS a c satisfies the predicate at
     its root and must be read. *)
  let t2 = Engine.create [ allow "//b[c]/d" ] in
  ignore (Engine.feed t2 (Event.Open "a"));
  ignore (Engine.feed t2 (Event.Open "b"));
  Alcotest.(check bool) "child-axis pred: deep c is irrelevant" true
    (Engine.subtree_skippable t2 ~tag:"x" ~tag_possible:(possible [ "x"; "c" ])
       ~nonempty:true);
  Alcotest.(check bool) "child-axis pred: root c fires" false
    (Engine.subtree_skippable t2 ~tag:"c" ~tag_possible:(possible [ "c" ])
       ~nonempty:true)

let test_output_is_static_without_predicates () =
  let doc = doc1 in
  let outs = Engine.run [ allow "//b"; deny "//d" ] (Dom.to_events doc) in
  Alcotest.(check bool) "no conditions" true (Output.is_static outs)

let run_mode ~dispatch ?default ?query ?suppress rules events =
  let t = Engine.create ?default ?query ?suppress ~dispatch rules in
  let outs = List.concat_map (Engine.feed t) events in
  Engine.finish t;
  (outs, Engine.stats t)

let check_reconciles what (st : Engine.stats) =
  Alcotest.(check int)
    (what ^ ": events = delivered + suppressed + filtered")
    st.Engine.events
    (st.Engine.delivered + st.Engine.suppressed + st.Engine.filtered)

let test_engine_stats_reconcile () =
  let events =
    [
      Event.Open "a";
      Event.Open "b";
      Event.Value "x";
      Event.Close "b";
      Event.Close "a";
    ]
  in
  (* Text under a determined denial on an UNSUPPRESSED frame (suppression
     off) is dropped without being delivered — it must count as filtered,
     not vanish from the books. *)
  let _, st = run_mode ~dispatch:true ~suppress:false [ deny "//b" ] events in
  Alcotest.(check int) "filtered text counted" 1 st.Engine.filtered;
  Alcotest.(check int) "rest delivered" 4 st.Engine.delivered;
  check_reconciles "deny, no suppression" st;
  (* With suppression on and an allow that cannot reach inside b, the b
     subtree is consumed under suspension instead. *)
  let _, st =
    run_mode ~dispatch:true ~suppress:true
      [ allow "/a"; deny "/a/b" ]
      events
  in
  Alcotest.(check int) "subtree suppressed" 3 st.Engine.suppressed;
  Alcotest.(check int) "nothing filtered" 0 st.Engine.filtered;
  check_reconciles "deny, suppression" st;
  (* Out-of-query-scope text on an unsuppressed frame hits the same leak:
     the element is allowed but outside the query, suppression is off. *)
  let query = Xp.parse "/a/zzz" in
  let _, st =
    run_mode ~dispatch:true ~suppress:false ~query [ allow "//a" ] events
  in
  Alcotest.(check bool) "out-of-scope text filtered" true
    (st.Engine.filtered >= 1);
  check_reconciles "query, no suppression" st

(* The acceptance criterion for the dispatch layer: on a tag-rich document
   with rules naming only a few tags, the tokens actually visited must drop
   by at least 2x versus the naive scan-everything engine. *)
let test_dispatch_reduces_token_visits () =
  let doc = Generator.hospital (Rng.create 11L) ~patients:30 in
  let events = Dom.to_events doc in
  let rules =
    [
      allow "//patient";
      deny "//ssn";
      allow "//folder/prescription/drug";
      deny "//comment";
      deny {|//patient[age>"80"]|};
    ]
  in
  let check ~suppress =
    let outs_d, st_d = run_mode ~dispatch:true ~suppress rules events in
    let outs_n, st_n = run_mode ~dispatch:false ~suppress rules events in
    Alcotest.(check string)
      (Printf.sprintf "identical output (suppress=%b)" suppress)
      (Sdds_core.Output_codec.encode_list outs_n)
      (Sdds_core.Output_codec.encode_list outs_d);
    Alcotest.(check bool)
      (Printf.sprintf "visits %d -> %d is >= 2x (suppress=%b)"
         st_n.Engine.token_visits st_d.Engine.token_visits suppress)
      true
      (st_n.Engine.token_visits >= 2 * st_d.Engine.token_visits)
  in
  check ~suppress:true;
  check ~suppress:false

(* ------------------------------------------------------------------ *)
(* Property tests: engine = oracle                                     *)
(* ------------------------------------------------------------------ *)

let gen_case =
  (* A seed, expanded deterministically into (doc, rules, query). *)
  QCheck2.Gen.(int_bound 1_000_000)

let expand_case ~with_query seed =
  let rng = Rng.create (Int64.of_int seed) in
  let doc =
    Generator.random_tree rng
      ~tags:[| "a"; "b"; "c"; "d"; "e" |]
      ~max_depth:6 ~max_children:4 ~text_probability:0.25
  in
  let tags = [| "a"; "b"; "c"; "d"; "e" |] in
  let values = [| "acute"; "benign"; "chronic"; "10" |] in
  let cfg =
    {
      Random_path.default with
      Random_path.max_steps = 3;
      predicate_probability = 0.5;
      value_predicate_probability = 0.3;
      nested_predicate_probability = 0.25;
    }
  in
  let n_rules = 1 + Rng.int rng 5 in
  let rules =
    List.init n_rules (fun _ ->
        let path = Random_path.generate rng cfg ~tags ~values in
        {
          Rule.sign = (if Rng.bool rng then Rule.Allow else Rule.Deny);
          subject = "u";
          path;
        })
  in
  let query =
    if with_query && Rng.bool rng then
      Some (Random_path.generate rng cfg ~tags ~values)
    else None
  in
  (doc, rules, query)

let equal_view a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Dom.equal x y
  | None, Some _ | Some _, None -> false

let qcheck_engine_matches_oracle =
  QCheck2.Test.make ~name:"engine view = oracle view" ~count:500 gen_case
    (fun seed ->
      let doc, rules, query = expand_case ~with_query:false seed in
      ignore query;
      equal_view
        (Oracle.authorized_view ~rules doc)
        (view rules doc))

let qcheck_engine_matches_oracle_query =
  QCheck2.Test.make ~name:"engine+query view = oracle view" ~count:500
    gen_case (fun seed ->
      let doc, rules, query = expand_case ~with_query:true seed in
      equal_view
        (Oracle.authorized_view ~rules ?query doc)
        (view ?query rules doc))

let qcheck_engine_default_allow =
  QCheck2.Test.make ~name:"engine = oracle under open world" ~count:200
    gen_case (fun seed ->
      let doc, rules, _ = expand_case ~with_query:false seed in
      equal_view
        (Oracle.authorized_view ~default:Rule.Allow ~rules doc)
        (view ~default:Rule.Allow rules doc))

let qcheck_suppression_equivalence =
  QCheck2.Test.make ~name:"suppression does not change the view" ~count:300
    gen_case (fun seed ->
      let doc, rules, query = expand_case ~with_query:true seed in
      equal_view
        (view ?query ~suppress:false rules doc)
        (view ?query ~suppress:true rules doc))

(* The differential guarantee behind the dispatch layer: the bucketed
   engine's output stream is byte-for-byte the naive engine's (same
   events, same condition-variable numbering, same order), its stats agree
   except that it visits no MORE tokens, and both runs' accounting
   reconciles. Run with suppression both on and off: 700 seeds x 2
   configurations = 1400 fuzzed (document, ruleset, query) triples. *)
let qcheck_dispatch_equals_naive =
  QCheck2.Test.make ~name:"dispatch = naive scan, byte-identical" ~count:700
    gen_case (fun seed ->
      let doc, rules, query = expand_case ~with_query:true seed in
      let events = Dom.to_events doc in
      let check suppress =
        let outs_d, s_d = run_mode ~dispatch:true ?query ~suppress rules events in
        let outs_n, s_n =
          run_mode ~dispatch:false ?query ~suppress rules events
        in
        let reconciles (st : Engine.stats) =
          st.Engine.events
          = st.Engine.delivered + st.Engine.suppressed + st.Engine.filtered
        in
        String.equal
          (Sdds_core.Output_codec.encode_list outs_d)
          (Sdds_core.Output_codec.encode_list outs_n)
        && reconciles s_d && reconciles s_n
        && s_d.Engine.events = s_n.Engine.events
        && s_d.Engine.emitted = s_n.Engine.emitted
        && s_d.Engine.delivered = s_n.Engine.delivered
        && s_d.Engine.suppressed = s_n.Engine.suppressed
        && s_d.Engine.filtered = s_n.Engine.filtered
        && s_d.Engine.instances = s_n.Engine.instances
        && s_d.Engine.peak_tokens = s_n.Engine.peak_tokens
        && s_d.Engine.peak_state_words = s_n.Engine.peak_state_words
        && s_d.Engine.token_visits <= s_n.Engine.token_visits
      in
      check true && check false)

let suite =
  [
    Alcotest.test_case "cond simplify" `Quick test_cond_simplify;
    Alcotest.test_case "cond subst/eval" `Quick test_cond_subst_eval;
    Alcotest.test_case "rule parse" `Quick test_rule_parse;
    Alcotest.test_case "rule parse errors" `Quick test_rule_parse_errors;
    Alcotest.test_case "rule for_subject" `Quick test_rule_for_subject;
    Alcotest.test_case "oracle default deny" `Quick test_oracle_default_deny;
    Alcotest.test_case "oracle propagation" `Quick test_oracle_propagation;
    Alcotest.test_case "oracle figure-2 rule" `Quick test_oracle_figure2_rule;
    Alcotest.test_case "oracle denial precedence" `Quick
      test_oracle_denial_precedence;
    Alcotest.test_case "oracle most-specific" `Quick test_oracle_most_specific;
    Alcotest.test_case "oracle default allow" `Quick test_oracle_default_allow;
    Alcotest.test_case "oracle query" `Quick test_oracle_query;
    Alcotest.test_case "engine figure-2" `Quick test_engine_figure2;
    Alcotest.test_case "engine pending predicate" `Quick
      test_engine_pending_predicate_after_target;
    Alcotest.test_case "engine pending value predicate" `Quick
      test_engine_pending_value_predicate;
    Alcotest.test_case "engine nested predicate" `Quick
      test_engine_nested_predicate;
    Alcotest.test_case "engine self value predicate" `Quick
      test_engine_self_value_predicate;
    Alcotest.test_case "engine attribute rules" `Quick
      test_engine_attribute_rules;
    Alcotest.test_case "engine query" `Quick test_engine_query;
    Alcotest.test_case "engine errors" `Quick test_engine_errors;
    Alcotest.test_case "engine suppression stats" `Quick
      test_engine_suppression_stats;
    Alcotest.test_case "engine memory bounded" `Quick
      test_engine_memory_bounded;
    Alcotest.test_case "engine depth" `Quick test_engine_depth;
    Alcotest.test_case "subtree skippable" `Quick test_subtree_skippable;
    Alcotest.test_case "subtree skippable pending pred" `Quick
      test_subtree_skippable_pending_pred;
    Alcotest.test_case "output static" `Quick
      test_output_is_static_without_predicates;
    Alcotest.test_case "engine stats reconcile" `Quick
      test_engine_stats_reconcile;
    Alcotest.test_case "dispatch reduces token visits" `Quick
      test_dispatch_reduces_token_visits;
    QCheck_alcotest.to_alcotest qcheck_engine_matches_oracle;
    QCheck_alcotest.to_alcotest qcheck_engine_matches_oracle_query;
    QCheck_alcotest.to_alcotest qcheck_engine_default_allow;
    QCheck_alcotest.to_alcotest qcheck_suppression_equivalence;
    QCheck_alcotest.to_alcotest qcheck_dispatch_equals_naive;
  ]

(* ------------------------------------------------------------------ *)
(* Output codec                                                        *)
(* ------------------------------------------------------------------ *)

module Output_codec = Sdds_core.Output_codec

let test_codec_unit () =
  let events =
    [
      Output.Open_node
        {
          tag = "a";
          neg = Cond.ff;
          pos = Cond.disj [ Cond.var 3; Cond.conj [ Cond.var 1; Cond.var 2 ] ];
          query = Cond.tt;
        };
      Output.Text_node "hello & <world>";
      Output.Resolve (3, true);
      Output.Resolve (1, false);
      Output.Close_node "a";
    ]
  in
  let encoded = Output_codec.encode_list events in
  Alcotest.(check int) "count" 5 (List.length (Output_codec.decode_list encoded));
  Alcotest.(check bool) "roundtrip" true
    (Output_codec.decode_list encoded = events);
  Alcotest.(check int) "sizes agree"
    (String.length encoded)
    (List.fold_left (fun a e -> a + Output_codec.encoded_size e) 0 events)

let test_codec_malformed () =
  let expect s =
    match Output_codec.decode_list s with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected decode failure"
  in
  expect "\x63";          (* unknown event tag *)
  expect "\x01\x05ab";    (* truncated text *)
  expect "\x00\x01a\x07"  (* bad condition tag *)

let qcheck_codec_roundtrip =
  QCheck2.Test.make ~name:"output codec roundtrip on engine streams"
    ~count:300
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let doc, rules, query = expand_case ~with_query:true seed in
      let outs = Engine.run ?query rules (Dom.to_events doc) in
      Output_codec.decode_list (Output_codec.encode_list outs) = outs)

let codec_suite =
  [
    Alcotest.test_case "codec unit" `Quick test_codec_unit;
    Alcotest.test_case "codec malformed" `Quick test_codec_malformed;
    QCheck_alcotest.to_alcotest qcheck_codec_roundtrip;
  ]

(* ------------------------------------------------------------------ *)
(* Directory: roles and groups                                         *)
(* ------------------------------------------------------------------ *)

module Directory = Sdds_core.Directory

let test_directory_roles () =
  let d = Directory.create () in
  Directory.assign d ~member:"alice" ~role:"doctor";
  Directory.assign d ~member:"doctor" ~role:"staff";
  Directory.assign d ~member:"bob" ~role:"staff";
  Alcotest.(check (list string)) "alice transitive" [ "doctor"; "staff" ]
    (Directory.roles_of d "alice");
  Alcotest.(check (list string)) "bob" [ "staff" ] (Directory.roles_of d "bob");
  Alcotest.(check (list string)) "nobody" [] (Directory.roles_of d "eve");
  Alcotest.(check (list string)) "staff members" [ "bob"; "doctor" ]
    (Directory.members d ~role:"staff")

let test_directory_cycles () =
  let d = Directory.create () in
  Directory.assign d ~member:"a" ~role:"b";
  Directory.assign d ~member:"b" ~role:"c";
  Alcotest.check_raises "self" (Invalid_argument "Directory.assign: self-role")
    (fun () -> Directory.assign d ~member:"x" ~role:"x");
  Alcotest.check_raises "cycle"
    (Invalid_argument "Directory.assign: membership cycle") (fun () ->
      Directory.assign d ~member:"c" ~role:"a");
  (* Idempotent re-assignment is fine. *)
  Directory.assign d ~member:"a" ~role:"b"

let test_directory_effective_rules () =
  let d = Directory.create () in
  Directory.assign d ~member:"alice" ~role:"doctor";
  Directory.assign d ~member:"doctor" ~role:"staff";
  let rules =
    [
      Rule.allow ~subject:"staff" "//hospital";
      Rule.deny ~subject:"staff" "//ssn";
      Rule.allow ~subject:"doctor" "//ssn";
      Rule.deny ~subject:"alice" "//comment";
      Rule.allow ~subject:"bob" "//nothing-for-alice";
    ]
  in
  let eff = Directory.effective_rules d ~subject:"alice" rules in
  Alcotest.(check int) "alice gets 4 rules" 4 (List.length eff);
  (* The expanded set behaves as one uniform rule set: doctor's direct
     allow on //ssn and staff's direct deny collide at the same nodes, and
     denial takes precedence. *)
  let doc =
    Xml_parser.dom_of_string
      "<hospital><ssn>1</ssn><comment>c</comment><name>n</name></hospital>"
  in
  let uniform =
    List.map (fun r -> { r with Rule.subject = "u" }) eff
  in
  (* hospital=0 allowed, ssn=1 denied (denial precedence over the doctor
     allow), comment=2 denied (user-specific), name=3 inherits allow. *)
  Alcotest.(check (list int)) "alice decision set" [ 0; 3 ]
    (Oracle.allowed_ids ~rules:uniform doc)

let directory_suite =
  [
    Alcotest.test_case "directory roles" `Quick test_directory_roles;
    Alcotest.test_case "directory cycles" `Quick test_directory_cycles;
    Alcotest.test_case "directory effective rules" `Quick
      test_directory_effective_rules;
  ]
