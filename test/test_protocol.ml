(* The protocol model checker: the production configuration must verify
   clean, the preserved pre-fix fixture must yield the PR 6 wraparound
   hole as a minimized replayable counterexample, and every emitted
   counterexample must survive two replays — deterministically on the
   model, and as a fault schedule on the real (fixed) stack, where
   soundness demands the exact golden view or a typed error. *)

module Model = Sdds_protocol.Model
module Explore = Sdds_protocol.Explore
module Invariant = Sdds_protocol.Invariant
module Cex = Sdds_protocol.Cex
module Protocol = Sdds_soe.Protocol
module Card = Sdds_soe.Card
module Cost = Sdds_soe.Cost
module Apdu = Sdds_soe.Apdu
module Remote = Sdds_soe.Remote_card
module Fault = Sdds_fault.Fault
module Publish = Sdds_dsp.Publish
module Store = Sdds_dsp.Store
module Rule = Sdds_core.Rule
module Generator = Sdds_xml.Generator
module Drbg = Sdds_crypto.Drbg
module Rsa = Sdds_crypto.Rsa
module Rng = Sdds_util.Rng

(* ------------------------------------------------------------------ *)
(* Model-level checking                                                 *)
(* ------------------------------------------------------------------ *)

let test_current_protocol_clean () =
  let r = Explore.run ~depth:12 Model.current in
  (match r.Explore.cex with
  | None -> ()
  | Some c ->
      Alcotest.failf "unexpected violation: %a" Invariant.pp_violation
        c.Cex.violation);
  Alcotest.(check bool) "explored a real space" true (r.Explore.stats.Explore.expanded > 50);
  Alcotest.(check bool) "reached clean terminals" true
    (r.Explore.stats.Explore.terminal_ok > 0);
  Alcotest.(check bool) "not truncated" false r.Explore.stats.Explore.truncated

let test_rollback_refused_without_violation () =
  (* Two exchanges, version 2 then version 1: the card must refuse the
     rollback as a typed failure — which is NOT an invariant violation,
     while actually enforcing version 1 would be. *)
  let config = { Model.current with Model.versions = [ 2; 1 ] } in
  let r = Explore.run ~depth:16 config in
  (match r.Explore.cex with
  | None -> ()
  | Some c ->
      Alcotest.failf "unexpected violation: %a" Invariant.pp_violation
        c.Cex.violation);
  Alcotest.(check bool) "rollback surfaced as typed failure" true
    (r.Explore.stats.Explore.terminal_failed > 0)

(* Reconstruct the per-frame adversary choices a counterexample encodes,
   so it can be pushed back through the deterministic model replay. *)
let choices_of_cex (c : Cex.t) =
  List.init c.Cex.steps (fun i ->
      Option.map
        (fun e -> e.Fault.kind)
        (List.find_opt (fun e -> e.Fault.frame = i) c.Cex.events))

let check_cex_well_formed config (c : Cex.t) =
  (* The spec must re-parse: it is the contract with --fault-spec. *)
  (match Fault.Schedule.of_spec c.Cex.spec with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "cex spec %S does not re-parse: %s" c.Cex.spec
        (Fault.Schedule.string_of_parse_error e));
  (* And the schedule must deterministically reproduce a violation. *)
  match Explore.replay config (choices_of_cex c) with
  | Some _ -> ()
  | None -> Alcotest.failf "cex %S does not replay to a violation" c.Cex.spec

let test_prefix_wrap_hole_found () =
  let r = Explore.run ~depth:12 Model.pre_fix in
  match r.Explore.cex with
  | None -> Alcotest.fail "checker missed the pre-fix wraparound hole"
  | Some c ->
      Alcotest.(check bool) "exactly-once violated" true
        (c.Cex.violation.Invariant.which = Invariant.Exactly_once);
      Alcotest.(check bool) "a duplicated frame is the trigger" true
        (List.exists
           (fun e -> e.Fault.kind = Fault.Duplicate_command)
           c.Cex.events);
      Alcotest.(check bool) "minimized to a single fault" true
        (List.length c.Cex.events = 1);
      Alcotest.(check int) "trace narrates every frame" c.Cex.steps
        (List.length c.Cex.trace);
      check_cex_well_formed Model.pre_fix c

let test_prefix_single_frame_hole_found () =
  (* The same marker flaw at its smallest shape: a one-frame chain whose
     final (only) frame carries sequence 0, so the completion marker is
     never recognized and a duplicate re-executes the upload. *)
  let config = { Model.pre_fix with Model.rules_frames = 1 } in
  let r = Explore.run ~depth:8 config in
  match r.Explore.cex with
  | None -> Alcotest.fail "checker missed the single-frame duplicate hole"
  | Some c ->
      Alcotest.(check bool) "exactly-once violated" true
        (c.Cex.violation.Invariant.which = Invariant.Exactly_once);
      check_cex_well_formed config c

(* ------------------------------------------------------------------ *)
(* Real-stack replay                                                    *)
(* ------------------------------------------------------------------ *)

(* One world: a published ward document with rules bulky enough that a
   1-byte-per-frame upload spans the full 256-frame sequence window. *)
type world = {
  store : Store.t;
  user : Rsa.keypair;
  golden : string;
}

let doc_id = "ward"

let world =
  lazy
    (let drbg = Drbg.create ~seed:"protocol-check" in
     let publisher = Rsa.generate drbg ~bits:512 in
     let user = Rsa.generate drbg ~bits:512 in
     let store = Store.create () in
     let doc = Generator.hospital (Rng.create 23L) ~patients:5 in
     let published, doc_key = Publish.publish drbg ~publisher ~doc_id doc in
     Store.put_document store published;
     let rules =
       [
         Rule.allow ~subject:"u" "//patient";
         Rule.deny ~subject:"u" "//ssn";
         Rule.deny ~subject:"u" "//patient/billing";
         Rule.allow ~subject:"u" "//patient/treatment";
         Rule.allow ~subject:"u" "//patient/treatment/medication";
         Rule.allow ~subject:"u" "//patient/treatment/procedure";
         Rule.deny ~subject:"u" "//patient/billing/insurance";
         Rule.deny ~subject:"u" "//patient/billing/account";
       ]
     in
     Store.put_rules store ~doc_id ~subject:"u"
       (Publish.encrypt_rules_for drbg ~publisher ~doc_key ~doc_id
          ~subject:"u" rules);
     Store.put_grant store ~doc_id ~subject:"u"
       (Publish.grant drbg ~doc_key ~doc_id ~recipient:user.Rsa.public);
     { store; user; golden = "" })

let resolve w id =
  Option.map
    (fun p -> Publish.to_source p ~delivery:`Pull)
    (Store.get_document w.store id)

let fresh_host ?semantics w =
  let card = Card.create ~profile:Cost.modern ~subject:"u" w.user in
  Remote.Host.create ?semantics ~card ~resolve:(resolve w) ()

let stored_rules w = Option.get (Store.get_rules w.store ~doc_id ~subject:"u")
let stored_grant w = Option.get (Store.get_grant w.store ~doc_id ~subject:"u")

let run_clean w host =
  Remote.Client.evaluate (Remote.Host.process host) ~doc_id
    ~wrapped_grant:(stored_grant w) ~encrypted_rules:(stored_rules w) ()

(* Upload [blob] as exactly 257 chained frames — 256 single-byte frames
   and a final frame with the remainder — so the final frame's sequence
   number wraps to 0 mod 256: the shape where the pre-fix completion
   marker and a wrapped final frame collide. Returns the final frame. *)
let wrap_upload send blob =
  let frames = 257 in
  let final =
    ref { Apdu.cla = 0x80; ins = Remote.Ins.rules; p1 = 0; p2 = 0; data = "" }
  in
  for i = 0 to frames - 1 do
    let last = i = frames - 1 in
    let cmd =
      {
        Apdu.cla = 0x80;
        ins = Remote.Ins.rules;
        p1 = (if last then 0 else 1);
        p2 = i mod 256;
        data =
          (if last then String.sub blob i (String.length blob - i)
           else String.make 1 blob.[i]);
      }
    in
    final := cmd;
    let resp = send cmd in
    if (resp.Apdu.sw1, resp.Apdu.sw2) <> Remote.Sw.ok then
      Alcotest.failf "upload frame %d refused: sw %02X%02X" i resp.Apdu.sw1
        resp.Apdu.sw2
  done;
  !final

let test_real_host_wrap_discrimination () =
  (* The model's wraparound counterexample, replayed frame-for-frame on
     the real host under both marker semantics: under the production
     Identity_marker a duplicated wrapped final frame is acknowledged
     idempotently; under the preserved P2_marker semantics the duplicate
     opens a fresh chain and re-executes the upload on the stray final
     fragment, clobbering the pending rules — the exactly-once violation
     made observable when the card then fails to evaluate them. *)
  let w = Lazy.force world in
  let blob = stored_rules w in
  Alcotest.(check bool) "rules blob spans the sequence window" true
    (String.length blob > 256);
  let run semantics =
    let host = fresh_host ~semantics w in
    let send = Remote.Host.process host in
    let ok (r : Apdu.response) = (r.Apdu.sw1, r.Apdu.sw2) = Remote.Sw.ok in
    let sel =
      send { Apdu.cla = 0x80; ins = Remote.Ins.select; p1 = 0; p2 = 0; data = doc_id }
    in
    Alcotest.(check bool) "select ok" true (ok sel);
    let grant =
      send
        { Apdu.cla = 0x80; ins = Remote.Ins.grant; p1 = 0; p2 = 0;
          data = stored_grant w }
    in
    Alcotest.(check bool) "grant ok" true (ok grant);
    let final = wrap_upload send blob in
    Alcotest.(check int) "final frame wrapped to sequence 0" 0 final.Apdu.p2;
    (* The adversary's move: duplicate the wrapped final frame, then ask
       the card to evaluate what it holds. *)
    let dup = send final in
    Alcotest.(check bool) "duplicate acked" true (ok dup);
    let ev =
      send
        { Apdu.cla = 0x80; ins = Remote.Ins.evaluate; p1 = 0; p2 = 0; data = "" }
    in
    ok ev || ev.Apdu.sw1 = fst Remote.Sw.more_data
  in
  Alcotest.(check bool) "fixed host: duplicate is idempotent, view intact"
    true
    (run Protocol.Identity_marker);
  Alcotest.(check bool)
    "pre-fix host: duplicate re-executed the stray fragment as a fresh \
     upload, clobbering the rules"
    false
    (run Protocol.P2_marker)

(* Every checker-emitted counterexample, pushed through the real FIXED
   stack as a --fault-spec schedule, must leave soundness intact: the
   client ends with the exact fault-free view or a typed error, never a
   stitched or truncated one. Configurations are drawn around the
   pre-fix fixture so the checker actually emits counterexamples. *)
let qcheck_cex_replays_sound_on_fixed_stack =
  QCheck2.Test.make
    ~name:"checker counterexamples replay soundly on the fixed stack"
    ~count:15
    QCheck2.Gen.(
      let* frames = 1 -- 6 in
      let* budget = 1 -- 2 in
      let* with_query = bool in
      return (frames, budget, with_query))
    (fun (frames, budget, with_query) ->
      let config =
        {
          Model.pre_fix with
          Model.rules_frames = frames;
          fault_budget = budget;
          with_query;
        }
      in
      match (Explore.run ~max_states:50_000 ~depth:14 config).Explore.cex with
      | None -> true (* not every shape wraps; nothing to replay *)
      | Some c -> (
          (match Fault.Schedule.of_spec c.Cex.spec with
          | Ok _ -> ()
          | Error e ->
              QCheck2.Test.fail_reportf "spec %S does not re-parse: %s"
                c.Cex.spec
                (Fault.Schedule.string_of_parse_error e));
          let w = Lazy.force world in
          let golden =
            match run_clean w (fresh_host w) with
            | Ok r -> r.Remote.Client.outputs
            | Error e ->
                QCheck2.Test.fail_report (Remote.Client.string_of_error e)
          in
          let host = fresh_host w in
          let link =
            Fault.Link.wrap
              ~schedule:(Fault.Schedule.of_events c.Cex.events)
              ~tear:(fun () -> Remote.Host.tear host)
              (Remote.Host.process host)
          in
          match
            Remote.Client.evaluate (Fault.Link.transport link) ~doc_id
              ~wrapped_grant:(stored_grant w)
              ~encrypted_rules:(stored_rules w) ()
          with
          | Error _ -> true (* a typed error is a sound outcome *)
          | Ok r -> r.Remote.Client.outputs = golden))

let suite =
  [
    Alcotest.test_case "current protocol checks clean" `Quick
      test_current_protocol_clean;
    Alcotest.test_case "rollback refused without violation" `Quick
      test_rollback_refused_without_violation;
    Alcotest.test_case "pre-fix wrap hole found" `Quick
      test_prefix_wrap_hole_found;
    Alcotest.test_case "pre-fix single-frame hole found" `Quick
      test_prefix_single_frame_hole_found;
    Alcotest.test_case "real host wrap discrimination" `Quick
      test_real_host_wrap_discrimination;
    QCheck_alcotest.to_alcotest qcheck_cex_replays_sound_on_fixed_stack;
  ]
