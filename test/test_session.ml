(* Multi-client serving: logical-channel sessions, the prepared-evaluation
   cache, the pool's frame interleaving, and the unified status-word
   mapping. *)

module Card = Sdds_soe.Card
module Cost = Sdds_soe.Cost
module Apdu = Sdds_soe.Apdu
module Remote = Sdds_soe.Remote_card
module Proxy = Sdds_proxy.Proxy
module Publish = Sdds_dsp.Publish
module Store = Sdds_dsp.Store
module Rule = Sdds_core.Rule
module Reassembler = Sdds_core.Reassembler
module Serializer = Sdds_xml.Serializer
module Dom = Sdds_xml.Dom
module Generator = Sdds_xml.Generator
module Drbg = Sdds_crypto.Drbg
module Rsa = Sdds_crypto.Rsa
module Rng = Sdds_util.Rng

(* One world: two published ward documents, rules and grants for subject
   "u" in a DSP store. Cards and hosts are created per test — they carry
   the mutable state under scrutiny. *)
type world = {
  store : Store.t;
  user : Rsa.keypair;
  publisher : Rsa.keypair;
  doc_keys : (string * string) list;
  rules : (string * Rule.t list) list;
}

let doc_ids = [ "ward-1"; "ward-2" ]

let world =
  lazy
    (let drbg = Drbg.create ~seed:"session-world" in
     let publisher = Rsa.generate drbg ~bits:512 in
     let user = Rsa.generate drbg ~bits:512 in
     let store = Store.create () in
     let per_doc =
       List.mapi
         (fun i doc_id ->
           let doc =
             Generator.hospital (Rng.create (Int64.of_int (50 + i)))
               ~patients:(4 + i)
           in
           let published, doc_key =
             Publish.publish drbg ~publisher ~doc_id doc
           in
           Store.put_document store published;
           let rules =
             if i = 0 then
               [ Rule.allow ~subject:"u" "//patient";
                 Rule.deny ~subject:"u" "//ssn" ]
             else [ Rule.allow ~subject:"u" "//patient/name" ]
           in
           Store.put_rules store ~doc_id ~subject:"u"
             (Publish.encrypt_rules_for drbg ~publisher ~doc_key ~doc_id
                ~subject:"u" rules);
           Store.put_grant store ~doc_id ~subject:"u"
             (Publish.grant drbg ~doc_key ~doc_id
                ~recipient:user.Rsa.public);
           (doc_id, doc_key, rules))
         doc_ids
     in
     {
       store;
       user;
       publisher;
       doc_keys = List.map (fun (d, k, _) -> (d, k)) per_doc;
       rules = List.map (fun (d, _, r) -> (d, r)) per_doc;
     })

let resolve w id =
  Option.map
    (fun p -> Publish.to_source p ~delivery:`Pull)
    (Store.get_document w.store id)

let fresh_card ?cache_budget_bytes w =
  Card.create ~profile:Cost.modern ?cache_budget_bytes ~subject:"u" w.user

let fresh_transport ?cache_budget_bytes w =
  let card = fresh_card ?cache_budget_bytes w in
  (card, Remote.Host.process (Remote.Host.create ~card ~resolve:(resolve w) ()))

let stored_rules w doc_id =
  Option.get (Store.get_rules w.store ~doc_id ~subject:"u")

let stored_grant w doc_id =
  Option.get (Store.get_grant w.store ~doc_id ~subject:"u")

let render ~has_query outputs =
  Option.map
    (Serializer.to_string ~indent:true)
    (Reassembler.run ~has_query outputs)

(* The sequential reference for one request: a fresh card behind a fresh
   host, driven by the plain single-channel client. *)
let sequential w (r : Proxy.Request.t) =
  let _, transport = fresh_transport w in
  match
    Remote.Client.evaluate transport ~doc_id:r.Proxy.Request.doc_id
      ~wrapped_grant:(stored_grant w r.Proxy.Request.doc_id)
      ~encrypted_rules:(stored_rules w r.Proxy.Request.doc_id)
      ?xpath:r.Proxy.Request.xpath ()
  with
  | Error e ->
      Alcotest.fail
        ("sequential reference failed: " ^ Remote.Client.string_of_error e)
  | Ok res ->
      render
        ~has_query:(r.Proxy.Request.xpath <> None)
        res.Remote.Client.outputs

let xpaths = [| None; Some "//patient"; Some "//patient/name" |]

let random_request rng =
  let doc_id = List.nth doc_ids (Rng.int rng (List.length doc_ids)) in
  Proxy.Request.make ?xpath:xpaths.(Rng.int rng (Array.length xpaths)) doc_id

let seed_gen = QCheck2.Gen.(int_bound 1_000_000)

(* K clients multiplexed over one transport (frames interleaved round-
   robin across logical channels, one shared card with a shared cache)
   must produce views byte-identical to K isolated sequential clients. *)
let qcheck_interleaved_equals_sequential =
  QCheck2.Test.make ~name:"pool interleaving = sequential serving"
    ~count:25 seed_gen (fun seed ->
      let w = Lazy.force world in
      let rng = Rng.create (Int64.of_int seed) in
      let k = 2 + Rng.int rng 5 in
      let reqs = List.init k (fun _ -> random_request rng) in
      let _, transport = fresh_transport w in
      let pool = Proxy.Pool.create ~store:w.store ~transport ~subject:"u" () in
      let served = Proxy.Pool.serve pool reqs in
      List.for_all2
        (fun req result ->
          match result with
          | Error e ->
              Alcotest.failf "pool request failed: %a" Proxy.pp_error e
          | Ok s -> s.Proxy.Pool.xml = sequential w req)
        reqs served)

let test_pool_warm_reuse () =
  let w = Lazy.force world in
  let card, transport = fresh_transport w in
  let pool = Proxy.Pool.create ~store:w.store ~transport ~subject:"u" () in
  let req = Proxy.Request.make ~xpath:"//patient" "ward-1" in
  let first =
    match Proxy.Pool.serve pool [ req ] with
    | [ Ok s ] -> s
    | _ -> Alcotest.fail "first serve failed"
  in
  Alcotest.(check bool) "first serve is a cold setup" false
    first.Proxy.Pool.warm_setup;
  let second =
    match Proxy.Pool.serve pool [ req ] with
    | [ Ok s ] -> s
    | _ -> Alcotest.fail "second serve failed"
  in
  (* Channel state matches: no select/grant/rules/query re-upload. *)
  Alcotest.(check bool) "second serve reuses the primed channel" true
    second.Proxy.Pool.warm_setup;
  Alcotest.(check bool) "warm serve ships far fewer frames" true
    (second.Proxy.Pool.command_frames < first.Proxy.Pool.command_frames);
  Alcotest.(check (option string)) "same view" first.Proxy.Pool.xml
    second.Proxy.Pool.xml;
  (* And on the card side the prepared-evaluation cache fired. *)
  let stats = Card.cache_stats card in
  Alcotest.(check bool) "card cache hit" true (stats.Card.hits >= 1)

let test_pool_rejects_protect () =
  let w = Lazy.force world in
  let _, transport = fresh_transport w in
  let pool = Proxy.Pool.create ~store:w.store ~transport ~subject:"u" () in
  match Proxy.Pool.serve pool [ Proxy.Request.make ~protect:true "ward-1" ] with
  | [ Error (Proxy.Protocol _) ] -> ()
  | _ -> Alcotest.fail "expected a Protocol error for protect over APDU"

let test_run_equals_query () =
  let w = Lazy.force world in
  let proxy = Proxy.create ~store:w.store ~card:(fresh_card w) in
  let via_run = Proxy.run proxy (Proxy.Request.make ~xpath:"//patient" "ward-1") in
  let via_query = Proxy.run proxy (Proxy.Request.make ~xpath:"//patient" "ward-1") in
  match (via_run, via_query) with
  | Ok a, Ok b ->
      Alcotest.(check (option string)) "wrapper = Request path" a.Proxy.xml
        b.Proxy.xml
  | _ -> Alcotest.fail "run/query disagree on success"

(* --- logical channels ------------------------------------------------- *)

let send transport ?(channel = 0) ins ?(p1 = 0) ?(p2 = 0) data =
  transport { Apdu.cla = Apdu.cla_of_channel channel; ins; p1; p2; data }

let sw (resp : Apdu.response) = (resp.Apdu.sw1, resp.Apdu.sw2)

let check_sw name expected resp =
  Alcotest.(check bool) name true (sw resp = expected)

(* The cross-channel regression: a chained RULES upload in flight on one
   channel must be invisible to every other channel, and any RULES/QUERY
   frame on a channel with no document selected — first frame, final
   frame or stale continuation — is bad_state. *)
let test_cross_channel_chain_isolation () =
  let w = Lazy.force world in
  let _, transport = fresh_transport w in
  check_sw "select on basic channel" Remote.Sw.ok
    (send transport Remote.Ins.select "ward-1");
  check_sw "grant on basic channel" Remote.Sw.ok
    (send transport Remote.Ins.grant (stored_grant w "ward-1"));
  (* Start (and leave dangling) a rules chain on channel 0. *)
  check_sw "chain opened on channel 0" Remote.Sw.ok
    (send transport Remote.Ins.rules ~p1:1 ~p2:0 "first half ");
  (* Open a second channel; it has no selected document. *)
  let channel =
    match Remote.Client.open_channel transport with
    | Ok ch -> ch
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "a fresh channel was assigned" true (channel > 0);
  (* Every shape of RULES frame on the never-SELECTed channel: bad_state —
     in particular the continuation must NOT splice into channel 0's
     chain. *)
  check_sw "continuation on fresh channel" Remote.Sw.bad_state
    (send transport ~channel Remote.Ins.rules ~p1:0 ~p2:1 "poison");
  check_sw "first frame on fresh channel" Remote.Sw.bad_state
    (send transport ~channel Remote.Ins.rules ~p1:1 ~p2:0 "poison");
  check_sw "query frame on fresh channel" Remote.Sw.bad_state
    (send transport ~channel Remote.Ins.query ~p1:0 ~p2:0 "//x");
  (* Channel 0's chain is unharmed: finish it and evaluate. *)
  let blob = stored_rules w "ward-1" in
  check_sw "select restarts channel 0 cleanly" Remote.Sw.ok
    (send transport Remote.Ins.select "ward-1");
  List.iter
    (fun (f : Apdu.command) ->
      check_sw "upload frame" Remote.Sw.ok (transport f))
    (Apdu.segment ~cla:Apdu.base_cla ~ins:Remote.Ins.rules blob);
  let resp = send transport Remote.Ins.evaluate "" in
  Alcotest.(check bool) "evaluate on channel 0 succeeds" true
    (sw resp = Remote.Sw.ok || resp.Apdu.sw1 = fst Remote.Sw.more_data);
  (* The fresh channel still works once it SELECTs for itself. *)
  check_sw "select on fresh channel" Remote.Sw.ok
    (send transport ~channel Remote.Ins.select "ward-2")

let test_channel_lifecycle () =
  let w = Lazy.force world in
  let _, transport = fresh_transport w in
  (* Exhaust the channel table. *)
  let opened =
    List.init (Apdu.max_channels - 1) (fun _ ->
        match Remote.Client.open_channel transport with
        | Ok ch -> ch
        | Error e -> Alcotest.fail e)
  in
  Alcotest.(check (list int)) "channels assigned lowest-first" [ 1; 2; 3 ]
    opened;
  (match Remote.Client.open_channel transport with
  | Error _ -> ()
  | Ok ch -> Alcotest.failf "fifth channel %d on a 4-slot table" ch);
  (* Frames to a closed channel bounce. *)
  (match Remote.Client.close_channel transport 2 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_sw "frame on a closed channel" Remote.Sw.channel_closed
    (send transport ~channel:2 Remote.Ins.select "ward-1");
  (* The basic channel cannot be closed. *)
  (match Remote.Client.close_channel transport 0 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "closed the basic channel");
  (* The freed slot is reusable. *)
  match Remote.Client.open_channel transport with
  | Ok 2 -> ()
  | Ok ch -> Alcotest.failf "expected slot 2 back, got %d" ch
  | Error e -> Alcotest.fail e

(* --- prepared-evaluation cache ---------------------------------------- *)

let eval card source ~encrypted_rules ?query () =
  match Card.evaluate card source ~encrypted_rules ?query () with
  | Ok (outputs, report) -> (outputs, report)
  | Error e -> Alcotest.failf "evaluate failed: %a" Card.pp_error e

let parse q = Sdds_xpath.Parser.parse q

let test_cache_hit_skips_setup_costs () =
  let w = Lazy.force world in
  let card = fresh_card w in
  (match
     Card.install_wrapped_key card ~doc_id:"ward-1"
       ~wrapped:(stored_grant w "ward-1")
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "grant failed: %a" Card.pp_error e);
  let source = Option.get (resolve w "ward-1") in
  let encrypted_rules = stored_rules w "ward-1" in
  let o1, r1 = eval card source ~encrypted_rules () in
  let o2, r2 = eval card source ~encrypted_rules () in
  Alcotest.(check bool) "cold run" false r1.Card.prepared_hit;
  Alcotest.(check bool) "warm run" true r2.Card.prepared_hit;
  Alcotest.(check string) "byte-identical output stream"
    (Sdds_core.Output_codec.encode_list o1)
    (Sdds_core.Output_codec.encode_list o2);
  (* The warm run is charged neither the rule-blob transfer nor the
     automaton compilation nor the root RSA. *)
  Alcotest.(check bool) "warm run moves fewer bytes" true
    (r2.Card.breakdown.Cost.bytes_transferred
    < r1.Card.breakdown.Cost.bytes_transferred);
  Alcotest.(check (float 1e-9)) "no compile charge when warm" 0.0
    r2.Card.breakdown.Cost.compile_ms;
  Alcotest.(check bool) "cold run paid compilation" true
    (r1.Card.breakdown.Cost.compile_ms > 0.0);
  Alcotest.(check bool) "warm run skips the RSA verify" true
    (r2.Card.breakdown.Cost.rsa_ms < r1.Card.breakdown.Cost.rsa_ms)

let test_lru_eviction_stays_fresh () =
  let w = Lazy.force world in
  let source = Option.get (resolve w "ward-1") in
  let encrypted_rules = stored_rules w "ward-1" in
  let queries =
    [| parse "//patient"; parse "//patient/name"; parse "//diagnosis" |]
  in
  let install card =
    match
      Card.install_wrapped_key card ~doc_id:"ward-1"
        ~wrapped:(stored_grant w "ward-1")
    with
    | Ok () -> ()
    | Error e -> Alcotest.failf "grant failed: %a" Card.pp_error e
  in
  (* Measure the three entries' footprint on an uncapped card, then replay
     on a card whose budget fits the first two but not all three. *)
  let probe = fresh_card w in
  install probe;
  let reference =
    Array.map
      (fun q ->
        let o, _ = eval probe source ~encrypted_rules ~query:q () in
        Sdds_core.Output_codec.encode_list o)
      queries
  in
  let full = (Card.cache_stats probe).Card.resident_bytes in
  Alcotest.(check int) "three entries resident on the uncapped card" 3
    (Card.cache_stats probe).Card.entries;
  let card = fresh_card ~cache_budget_bytes:(full - 1) w in
  install card;
  let run i =
    let o, _ = eval card source ~encrypted_rules ~query:queries.(i) () in
    Alcotest.(check string)
      (Printf.sprintf "query %d view is never stale" i)
      reference.(i)
      (Sdds_core.Output_codec.encode_list o)
  in
  run 0;
  run 1;
  run 2;
  (* Admitting the third entry displaced the least-recently-used one. *)
  let s = Card.cache_stats card in
  Alcotest.(check bool) "LRU displacement happened" true
    (s.Card.evictions >= 1);
  Alcotest.(check bool) "cache stayed within budget" true
    (s.Card.resident_bytes <= s.Card.cache_budget_bytes);
  let misses_before = (Card.cache_stats card).Card.misses in
  (* The evicted (oldest) entry must re-prepare, and still be correct. *)
  run 0;
  Alcotest.(check bool) "evicted entry re-prepares as a miss" true
    ((Card.cache_stats card).Card.misses > misses_before)

let test_cache_respects_rollback () =
  let w = Lazy.force world in
  let card = fresh_card w in
  (match
     Card.install_wrapped_key card ~doc_id:"ward-1"
       ~wrapped:(stored_grant w "ward-1")
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "grant failed: %a" Card.pp_error e);
  let source = Option.get (resolve w "ward-1") in
  let v0 = stored_rules w "ward-1" in
  let drbg = Drbg.create ~seed:"rollback-blobs" in
  let v1 =
    Publish.encrypt_rules_for drbg ~publisher:w.publisher
      ~doc_key:(List.assoc "ward-1" w.doc_keys)
      ~doc_id:"ward-1" ~subject:"u" ~version:1
      [ Rule.allow ~subject:"u" "//patient/name" ]
  in
  let _ = eval card source ~encrypted_rules:v0 () in
  let _, r = eval card source ~encrypted_rules:v0 () in
  Alcotest.(check bool) "v0 is cached" true r.Card.prepared_hit;
  let _ = eval card source ~encrypted_rules:v1 () in
  (* v0's prepared entry is still resident — but serving it now would
     undo the version bump. The hit path must drop it and refuse. *)
  (match Card.evaluate card source ~encrypted_rules:v0 () with
  | Error (Card.Replayed_rules { seen = 1; offered = 0 }) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Card.pp_error e
  | Ok _ -> Alcotest.fail "cached stale policy was served after a bump");
  (* The cache survives the incident and still serves the new version. *)
  let _, r1 = eval card source ~encrypted_rules:v1 () in
  Alcotest.(check bool) "v1 still warm after the replay attempt" true
    r1.Card.prepared_hit

(* --- status-word mapping ---------------------------------------------- *)

let constructor_name = function
  | Card.No_key _ -> "No_key"
  | Card.Stale_key _ -> "Stale_key"
  | Card.Bad_grant -> "Bad_grant"
  | Card.Bad_signature -> "Bad_signature"
  | Card.Integrity_failure _ -> "Integrity_failure"
  | Card.Memory_exceeded _ -> "Memory_exceeded"
  | Card.Bad_rules _ -> "Bad_rules"
  | Card.Replayed_rules _ -> "Replayed_rules"
  | Card.Rules_too_large _ -> "Rules_too_large"

let error_gen =
  QCheck2.Gen.(
    oneof
      [
        return (Card.No_key "doc");
        return (Card.Stale_key "doc");
        return Card.Bad_grant;
        return Card.Bad_signature;
        map (fun chunk -> Card.Integrity_failure { chunk }) (int_bound 1000);
        map2
          (fun need_bytes budget_bytes ->
            Card.Memory_exceeded { need_bytes; budget_bytes })
          (int_bound 10_000) (int_bound 10_000);
        map (fun s -> Card.Bad_rules s) (string_size (int_bound 8));
        map2
          (fun seen offered -> Card.Replayed_rules { seen; offered })
          (int_bound 100) (int_bound 100);
        map2
          (fun bound_bytes budget_bytes ->
            Card.Rules_too_large { bound_bytes; budget_bytes })
          (int_bound 100_000) (int_bound 10_000);
      ])

let qcheck_sw_roundtrip =
  QCheck2.Test.make ~name:"status words round-trip every card error"
    ~count:200 error_gen (fun e ->
      let sw = Remote.to_sw e in
      match Remote.of_sw ~doc_id:"doc" sw with
      | None -> false
      | Some e' ->
          (* The constructor always survives; the word re-encodes
             identically; and when the payload is representable on the
             wire (chunk < 256, ids supplied from context) the value
             itself round-trips. *)
          String.equal (constructor_name e) (constructor_name e')
          && Remote.to_sw e' = sw
          &&
          match e with
          | Card.No_key _ | Card.Stale_key _ | Card.Bad_grant
          | Card.Bad_signature ->
              e = e'
          | Card.Integrity_failure { chunk } when chunk < 256 -> e = e'
          | _ -> true)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_interleaved_equals_sequential;
    Alcotest.test_case "pool warm reuse" `Quick test_pool_warm_reuse;
    Alcotest.test_case "pool rejects protect" `Quick test_pool_rejects_protect;
    Alcotest.test_case "run = query wrapper" `Quick test_run_equals_query;
    Alcotest.test_case "cross-channel chain isolation" `Quick
      test_cross_channel_chain_isolation;
    Alcotest.test_case "channel lifecycle" `Quick test_channel_lifecycle;
    Alcotest.test_case "cache hit skips setup costs" `Quick
      test_cache_hit_skips_setup_costs;
    Alcotest.test_case "LRU eviction stays fresh" `Quick
      test_lru_eviction_stays_fresh;
    Alcotest.test_case "cache respects rollback" `Quick
      test_cache_respects_rollback;
    QCheck_alcotest.to_alcotest qcheck_sw_roundtrip;
  ]
