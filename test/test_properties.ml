(* Metamorphic and invariant properties of the access-control semantics,
   beyond the point-wise engine = oracle checks. *)

module Rule = Sdds_core.Rule
module Engine = Sdds_core.Engine
module Oracle = Sdds_core.Oracle
module Sdds = Sdds_core.Sdds
module Compile = Sdds_core.Compile
module Dom = Sdds_xml.Dom
module Event = Sdds_xml.Event
module Generator = Sdds_xml.Generator
module Random_path = Sdds_xpath.Random_path
module Rng = Sdds_util.Rng

let tags = [| "a"; "b"; "c"; "d"; "e" |]
let values = [| "1"; "2"; "x" |]

let cfg =
  { Random_path.default with max_steps = 3; predicate_probability = 0.4 }

let random_doc rng =
  Generator.random_tree rng ~tags ~max_depth:6 ~max_children:4
    ~text_probability:0.3

let random_rules rng n =
  List.init n (fun _ ->
      {
        Rule.sign = (if Rng.bool rng then Rule.Allow else Rule.Deny);
        subject = "u";
        path = Random_path.generate rng cfg ~tags ~values;
      })

let random_allow rng =
  { Rule.sign = Rule.Allow; subject = "u"; path = Random_path.generate rng cfg ~tags ~values }

let random_deny rng = { (random_allow rng) with Rule.sign = Rule.Deny }

let seed_gen = QCheck2.Gen.(int_bound 1_000_000)

let module_of seed =
  let rng = Rng.create (Int64.of_int seed) in
  (rng, random_doc rng)

(* 1. Determinism: two runs produce identical outputs. *)
let qcheck_determinism =
  QCheck2.Test.make ~name:"engine is deterministic" ~count:200 seed_gen
    (fun seed ->
      let rng, doc = module_of seed in
      let rules = random_rules rng (1 + Rng.int rng 4) in
      let events = Dom.to_events doc in
      Engine.run rules events = Engine.run rules events)

(* 2. Adding a deny rule never grows the allowed set. *)
let qcheck_deny_monotone =
  QCheck2.Test.make ~name:"denies are monotone" ~count:300 seed_gen
    (fun seed ->
      let rng, doc = module_of seed in
      let rules = random_rules rng (1 + Rng.int rng 4) in
      let extra = random_deny rng in
      let module S = Set.Make (Int) in
      let allowed rs = S.of_list (Oracle.allowed_ids ~rules:rs doc) in
      S.subset (allowed (extra :: rules)) (allowed rules))

(* 3. With no denies anywhere, adding an allow never shrinks the set. *)
let qcheck_allow_monotone =
  QCheck2.Test.make ~name:"allows are monotone without denies" ~count:300
    seed_gen (fun seed ->
      let rng, doc = module_of seed in
      let rules = List.init (1 + Rng.int rng 3) (fun _ -> random_allow rng) in
      let extra = random_allow rng in
      let module S = Set.Make (Int) in
      let allowed rs = S.of_list (Oracle.allowed_ids ~rules:rs doc) in
      S.subset (allowed rules) (allowed (extra :: rules)))

(* 4. The view's event stream is a subsequence of the document's. *)
let qcheck_view_substructure =
  QCheck2.Test.make ~name:"view is a substructure of the document"
    ~count:300 seed_gen (fun seed ->
      let rng, doc = module_of seed in
      let rules = random_rules rng (1 + Rng.int rng 4) in
      match Sdds.authorized_view ~rules doc with
      | None -> true
      | Some view ->
          let rec subseq xs ys =
            match (xs, ys) with
            | [], _ -> true
            | _, [] -> false
            | x :: xs', y :: ys' ->
                if Event.equal x y then subseq xs' ys' else subseq xs ys'
          in
          subseq (Dom.to_events view) (Dom.to_events doc))

(* 5. A matching +p/-p pair collapses to the deny alone. *)
let qcheck_deny_beats_same_path =
  QCheck2.Test.make ~name:"deny absorbs an allow on the same path"
    ~count:300 seed_gen (fun seed ->
      let rng, doc = module_of seed in
      let base = random_rules rng (Rng.int rng 3) in
      let p = Random_path.generate rng cfg ~tags ~values in
      let with_both =
        { Rule.sign = Rule.Allow; subject = "u"; path = p }
        :: { Rule.sign = Rule.Deny; subject = "u"; path = p }
        :: base
      in
      let deny_only =
        { Rule.sign = Rule.Deny; subject = "u"; path = p } :: base
      in
      Oracle.allowed_ids ~rules:with_both doc
      = Oracle.allowed_ids ~rules:deny_only doc)

(* 6. Query conjunction: text delivered with a query is a subset of the
   text delivered without it. *)
let qcheck_query_restricts =
  QCheck2.Test.make ~name:"a query only restricts the view" ~count:300
    seed_gen (fun seed ->
      let rng, doc = module_of seed in
      let rules = random_rules rng (1 + Rng.int rng 4) in
      let query = Random_path.generate rng cfg ~tags ~values in
      let texts view =
        match view with
        | None -> []
        | Some v ->
            let acc = ref [] in
            let rec go = function
              | Dom.Text t -> acc := t :: !acc
              | Dom.Element (_, kids) -> List.iter go kids
            in
            go v;
            List.sort compare !acc
      in
      let without = texts (Oracle.authorized_view ~rules doc) in
      let with_q = texts (Oracle.authorized_view ~rules ~query doc) in
      (* multiset inclusion *)
      let rec included xs ys =
        match (xs, ys) with
        | [], _ -> true
        | _, [] -> false
        | x :: xs', y :: ys' ->
            if x = y then included xs' ys'
            else if compare x y > 0 then included xs ys'
            else false
      in
      included with_q without)

(* 7. Engine memory is bounded by depth x automaton size, never by
   document length: duplicating the document's content under a new root
   (same depth + 1) must not double the peak state.

   This property holds in full generality — including predicate rules —
   since the engine deduplicates candidate conjunctions: a pending
   predicate instance holds at most one candidate per distinct set of
   live condition vars (all anchored on the open ancestor path), never
   one per matching node of its subtree. Before that dedup, a rule like
   //a[.//b[e]/d] anchored at the new root accumulated one identical
   candidate per d-node of the whole document, and the peak legitimately
   tracked document size — the flake this property's predicate-free
   restriction used to paper over. *)
let qcheck_memory_size_independent =
  QCheck2.Test.make ~name:"peak state does not track document size"
    ~count:150 seed_gen (fun seed ->
      let rng, doc = module_of seed in
      let rules = random_rules rng (1 + Rng.int rng 3) in
      let peak d =
        let t = Engine.create rules in
        List.iter (fun ev -> ignore (Engine.feed t ev)) (Dom.to_events d);
        Engine.finish t;
        (Engine.stats t).Engine.peak_state_words
      in
      let doubled = Dom.element "a" [ doc; doc; doc; doc ] in
      (* Four copies of the content, one extra level: the peak may grow
         with the extra depth (and with instances anchored at the new
         root) but must stay far below 4x. *)
      peak doubled <= (2 * peak doc) + 256)

(* 9. Skip-soundness: whenever [subtree_skippable] says yes about a
   subtree, that subtree contributes zero events to the authorized
   view: excising the subtree's events from the input leaves the
   reassembled view unchanged. Checked per subtree with the subtree's
   exact descendant-tag set, over random docs, rules with predicates,
   and queries.

   Note the engine may still *emit* raw outputs while feeding a
   skippable subtree — it suppresses on token aliveness while the skip
   analysis reasons about completability, so annotated
   [Open_node]/[Close_node] can appear, and even [Text_node]s under a
   conservatively [Det_pending] frame (a conditional deny firing
   inside an already-denied region leaves det pending although either
   resolution yields deny). All of it is pruned at reassembly, which
   is exactly what this property pins down. *)

module SSet = Set.Make (String)

let pred_cfg =
  {
    Random_path.default with
    max_steps = 3;
    predicate_probability = 0.5;
    value_predicate_probability = 0.3;
    nested_predicate_probability = 0.25;
  }

let random_pred_rules rng n =
  List.init n (fun _ ->
      {
        Rule.sign = (if Rng.bool rng then Rule.Allow else Rule.Deny);
        subject = "u";
        path = Random_path.generate rng pred_cfg ~tags ~values;
      })

(* For each [Open] at index i: the matching close index and the set of
   element tags strictly inside the subtree. *)
let subtree_spans events =
  let n = Array.length events in
  let close_of = Array.make n (-1) in
  let inner = Array.make n SSet.empty in
  let stack = ref [] in
  Array.iteri
    (fun i ev ->
      match ev with
      | Event.Open tag ->
          (* This element is *inside* every currently open ancestor. *)
          List.iter (fun j -> inner.(j) <- SSet.add tag inner.(j)) !stack;
          stack := i :: !stack
      | Event.Close _ -> (
          match !stack with
          | j :: rest ->
              close_of.(j) <- i;
              stack := rest
          | [] -> ())
      | Event.Value _ -> ())
    events;
  (close_of, inner)

let qcheck_skip_soundness =
  QCheck2.Test.make
    ~name:"skippable subtrees contribute nothing to the view" ~count:100
    seed_gen (fun seed ->
      let rng, doc = module_of seed in
      let rules = random_pred_rules rng (1 + Rng.int rng 4) in
      let query =
        if Rng.bool rng then
          Some (Random_path.generate rng pred_cfg ~tags ~values)
        else None
      in
      let has_query = query <> None in
      let events = Array.of_list (Dom.to_events doc) in
      let close_of, inner = subtree_spans events in
      let full_view =
        Sdds_core.Reassembler.run ~has_query
          (Engine.run ?query rules (Array.to_list events))
      in
      let view_equal a b =
        match (a, b) with
        | None, None -> true
        | Some x, Some y -> Dom.equal x y
        | None, Some _ | Some _, None -> false
      in
      let ok = ref true in
      Array.iteri
        (fun i ev ->
          match ev with
          | Event.Open tag when !ok ->
              (* Replay the prefix on a fresh engine and ask about the
                 subtree at i. *)
              let t = Engine.create ?query rules in
              for k = 0 to i - 1 do
                ignore (Engine.feed t events.(k))
              done;
              let tag_possible x = SSet.mem x inner.(i) in
              if Engine.subtree_skippable t ~tag ~tag_possible ~nonempty:true
              then begin
                (* A run that never saw the subtree reassembles to the
                   same view as the full run. *)
                let t' = Engine.create ?query rules in
                let outs = ref [] in
                let fed = ref 0 in
                Array.iteri
                  (fun k ev ->
                    if k < i || k > close_of.(i) then begin
                      incr fed;
                      outs := List.rev_append (Engine.feed t' ev) !outs
                    end)
                  events;
                if !fed > 0 then Engine.finish t';
                let excised =
                  Sdds_core.Reassembler.run ~has_query (List.rev !outs)
                in
                if not (view_equal full_view excised) then ok := false
              end
          | _ -> ())
        events;
      !ok)

(* 10. And the whole point of the analysis: an indexed run that actually
   jumps over every skippable subtree reassembles the same view as the
   full run. *)
let qcheck_skip_view_equality =
  QCheck2.Test.make ~name:"skipping skippable subtrees preserves the view"
    ~count:200 seed_gen (fun seed ->
      let rng, doc = module_of seed in
      let rules = random_pred_rules rng (1 + Rng.int rng 4) in
      let query =
        if Rng.bool rng then
          Some (Random_path.generate rng pred_cfg ~tags ~values)
        else None
      in
      let events = Array.of_list (Dom.to_events doc) in
      let close_of, inner = subtree_spans events in
      let full =
        Sdds_core.Reassembler.run ~has_query:(query <> None)
          (Engine.run ?query rules (Array.to_list events))
      in
      let t = Engine.create ?query rules in
      let outs = ref [] in
      let fed = ref 0 in
      let n = Array.length events in
      let feed_ev ev =
        incr fed;
        outs := List.rev_append (Engine.feed t ev) !outs
      in
      let rec go i =
        if i < n then
          match events.(i) with
          | Event.Open tag
            when Engine.subtree_skippable t ~tag
                   ~tag_possible:(fun x -> SSet.mem x inner.(i))
                   ~nonempty:true ->
              go (close_of.(i) + 1)
          | ev ->
              feed_ev ev;
              go (i + 1)
      in
      go 0;
      if !fed > 0 then Engine.finish t;
      let skipped =
        Sdds_core.Reassembler.run ~has_query:(query <> None)
          (List.rev !outs)
      in
      match (full, skipped) with
      | None, None -> true
      | Some a, Some b -> Dom.equal a b
      | None, Some _ | Some _, None -> false)

(* 8. The compiled automaton size matches the AST size measure. *)
let qcheck_state_count =
  QCheck2.Test.make ~name:"compiled states = AST size" ~count:300 seed_gen
    (fun seed ->
      let rng, _ = module_of seed in
      let rules = random_rules rng (1 + Rng.int rng 5) in
      let compiled = Compile.compile rules in
      Compile.state_count compiled
      = List.fold_left
          (fun acc r -> acc + Sdds_xpath.Ast.size r.Rule.path)
          0 rules)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_determinism;
    QCheck_alcotest.to_alcotest qcheck_deny_monotone;
    QCheck_alcotest.to_alcotest qcheck_allow_monotone;
    QCheck_alcotest.to_alcotest qcheck_view_substructure;
    QCheck_alcotest.to_alcotest qcheck_deny_beats_same_path;
    QCheck_alcotest.to_alcotest qcheck_query_restricts;
    QCheck_alcotest.to_alcotest qcheck_memory_size_independent;
    QCheck_alcotest.to_alcotest qcheck_state_count;
    QCheck_alcotest.to_alcotest qcheck_skip_soundness;
    QCheck_alcotest.to_alcotest qcheck_skip_view_equality;
  ]
