module Remote_card = Sdds_soe.Remote_card
module Card = Sdds_soe.Card
module Cost = Sdds_soe.Cost
module Apdu = Sdds_soe.Apdu
module Publish = Sdds_dsp.Publish
module Store = Sdds_dsp.Store
module Rule = Sdds_core.Rule
module Oracle = Sdds_core.Oracle
module Reassembler = Sdds_core.Reassembler
module Dom = Sdds_xml.Dom
module Generator = Sdds_xml.Generator
module Drbg = Sdds_crypto.Drbg
module Rsa = Sdds_crypto.Rsa
module Rng = Sdds_util.Rng

let dom = Alcotest.testable Dom.pp Dom.equal
let dom_opt = Alcotest.(option dom)

(* One world: a published hospital document and a personalized card behind
   an APDU host. *)
type world = {
  doc : Dom.t;
  rules : Rule.t list;
  encrypted_rules : string;
  wrapped : string;
  source : Card.doc_source;
  transport : Remote_card.Client.transport;
  card : Card.t;
}

let world =
  lazy
    (let drbg = Drbg.create ~seed:"remote-card" in
     let publisher = Rsa.generate drbg ~bits:512 in
     let user = Rsa.generate drbg ~bits:512 in
     let doc = Generator.hospital (Rng.create 41L) ~patients:6 in
     let published, doc_key =
       Publish.publish drbg ~publisher ~doc_id:"remote-doc" doc
     in
     let rules =
       [ Rule.allow ~subject:"u" "//patient"; Rule.deny ~subject:"u" "//ssn" ]
     in
     let encrypted_rules =
       Publish.encrypt_rules_for drbg ~publisher ~doc_key ~doc_id:"remote-doc"
         ~subject:"u" rules
     in
     let wrapped =
       Publish.grant drbg ~doc_key ~doc_id:"remote-doc"
         ~recipient:user.Rsa.public
     in
     let source = Publish.to_source published ~delivery:`Pull in
     let card = Card.create ~profile:Cost.modern ~subject:"u" user in
     let host =
       Remote_card.Host.create ~card
         ~resolve:(fun id ->
           if String.equal id "remote-doc" then Some source else None)
         ()
     in
     {
       doc;
       rules;
       encrypted_rules;
       wrapped;
       source;
       transport = Remote_card.Host.process host;
       card;
     })

let test_remote_equals_direct () =
  let w = Lazy.force world in
  match
    Remote_card.Client.evaluate w.transport ~doc_id:"remote-doc"
      ~wrapped_grant:w.wrapped ~encrypted_rules:w.encrypted_rules ()
  with
  | Error e -> Alcotest.fail (Remote_card.Client.string_of_error e)
  | Ok r ->
      let view = Reassembler.run ~has_query:false r.Remote_card.Client.outputs in
      Alcotest.check dom_opt "view through APDU = oracle"
        (Oracle.authorized_view ~rules:w.rules w.doc)
        view;
      Alcotest.(check bool) "several frames each way" true
        (r.Remote_card.Client.command_frames > 2
        && r.Remote_card.Client.response_frames
           = r.Remote_card.Client.command_frames);
      Alcotest.(check bool) "wire bytes counted" true
        (r.Remote_card.Client.wire_bytes
        > String.length w.encrypted_rules)

let test_remote_with_query () =
  let w = Lazy.force world in
  match
    Remote_card.Client.evaluate w.transport ~doc_id:"remote-doc"
      ~encrypted_rules:w.encrypted_rules ~xpath:"//patient/name" ()
  with
  | Error e -> Alcotest.fail (Remote_card.Client.string_of_error e)
  | Ok r ->
      let view = Reassembler.run ~has_query:true r.Remote_card.Client.outputs in
      Alcotest.check dom_opt "query through APDU"
        (Oracle.authorized_view ~rules:w.rules
           ~query:(Sdds_xpath.Parser.parse "//patient/name")
           w.doc)
        view

let test_remote_unknown_document () =
  let w = Lazy.force world in
  match
    Remote_card.Client.evaluate w.transport ~doc_id:"nope"
      ~encrypted_rules:w.encrypted_rules ()
  with
  | Error (Remote_card.Client.Card (Card.No_key id)) ->
      Alcotest.(check string) "names the document" "nope" id
  | Error e -> Alcotest.fail (Remote_card.Client.string_of_error e)
  | Ok _ -> Alcotest.fail "expected select failure"

let test_remote_out_of_sequence () =
  let w = Lazy.force world in
  (* Evaluate without selecting or loading rules on a fresh host. *)
  let host =
    Remote_card.Host.create ~card:w.card ~resolve:(fun _ -> Some w.source) ()
  in
  let resp =
    Remote_card.Host.process host
      { Apdu.cla = 0x80; ins = Remote_card.Ins.evaluate; p1 = 0; p2 = 0; data = "" }
  in
  Alcotest.(check bool) "bad state" true
    ((resp.Apdu.sw1, resp.Apdu.sw2) = Remote_card.Sw.bad_state)

let test_remote_bad_class_and_ins () =
  let w = Lazy.force world in
  let resp =
    w.transport { Apdu.cla = 0x00; ins = 0xFF; p1 = 0; p2 = 0; data = "" }
  in
  Alcotest.(check bool) "bad ins" true
    ((resp.Apdu.sw1, resp.Apdu.sw2) = Remote_card.Sw.bad_ins)

let test_remote_security_error_mapped () =
  let w = Lazy.force world in
  (* Corrupt the rule blob: the MAC failure must surface as SW 6982. *)
  let bad = Bytes.of_string w.encrypted_rules in
  Bytes.set_uint8 bad 20 (Bytes.get_uint8 bad 20 lxor 1);
  match
    Remote_card.Client.evaluate w.transport ~doc_id:"remote-doc"
      ~encrypted_rules:(Bytes.to_string bad) ()
  with
  | Error (Remote_card.Client.Card (Card.Bad_rules _)) -> ()
  | Error e -> Alcotest.fail (Remote_card.Client.string_of_error e)
  | Ok _ -> Alcotest.fail "expected security error"

let test_remote_chain_gap () =
  (* A dropped frame in a chained command must fail fast, not silently
     concatenate. *)
  let w = Lazy.force world in
  let host =
    Sdds_soe.Remote_card.Host.create ~card:w.card
      ~resolve:(fun _ -> Some w.source)
      ()
  in
  let send ins p1 p2 data =
    Sdds_soe.Remote_card.Host.process host
      { Apdu.cla = 0x80; ins; p1; p2; data }
  in
  ignore (send Remote_card.Ins.select 0 0 "remote-doc");
  ignore (send Remote_card.Ins.rules 1 0 "frame0");
  let resp = send Remote_card.Ins.rules 0 2 "frame2" in
  Alcotest.(check bool) "gap rejected" true
    ((resp.Apdu.sw1, resp.Apdu.sw2) = Remote_card.Sw.bad_state)

let test_select_clears_chain_state () =
  (* An aborted chained upload must not survive a SELECT: the next upload
     would otherwise be concatenated with the stale frames. *)
  let w = Lazy.force world in
  let host =
    Sdds_soe.Remote_card.Host.create ~card:w.card
      ~resolve:(fun id ->
        if String.equal id "remote-doc" then Some w.source else None)
      ()
  in
  let send ins p1 p2 data =
    Sdds_soe.Remote_card.Host.process host
      { Apdu.cla = 0x80; ins; p1; p2; data }
  in
  let ok (resp : Apdu.response) =
    (resp.Apdu.sw1, resp.Apdu.sw2) = Remote_card.Sw.ok
  in
  ignore (send Remote_card.Ins.select 0 0 "remote-doc");
  (* Start a rules upload and abandon it mid-chain. *)
  Alcotest.(check bool) "first frame accepted" true
    (ok (send Remote_card.Ins.rules 1 0 "half an upload"));
  ignore (send Remote_card.Ins.select 0 0 "remote-doc");
  (* A stale continuation frame (seq 1 of the abandoned chain) must be
     rejected, not resumed and not treated as a fresh chain. *)
  let stale = send Remote_card.Ins.rules 1 1 "stale continuation" in
  Alcotest.(check bool) "stale continuation rejected" true
    ((stale.Apdu.sw1, stale.Apdu.sw2) = Remote_card.Sw.bad_state);
  (* A complete upload after the SELECT must evaluate cleanly — i.e. the
     abandoned frames were dropped, not prepended. *)
  ignore (send Remote_card.Ins.select 0 0 "remote-doc");
  ignore (send Remote_card.Ins.grant 0 0 w.wrapped);
  let frames =
    Apdu.segment ~cla:0x80 ~ins:Remote_card.Ins.rules w.encrypted_rules
  in
  List.iter
    (fun (f : Apdu.command) ->
      Alcotest.(check bool) "upload frame accepted" true
        (ok (send f.Apdu.ins f.Apdu.p1 f.Apdu.p2 f.Apdu.data)))
    frames;
  let resp = send Remote_card.Ins.evaluate 0 0 "" in
  Alcotest.(check bool) "evaluate succeeds after re-upload" true
    (ok resp || resp.Apdu.sw1 = fst Remote_card.Sw.more_data)

let suite =
  [
    Alcotest.test_case "remote = direct" `Quick test_remote_equals_direct;
    Alcotest.test_case "remote with query" `Quick test_remote_with_query;
    Alcotest.test_case "remote unknown document" `Quick
      test_remote_unknown_document;
    Alcotest.test_case "remote out of sequence" `Quick
      test_remote_out_of_sequence;
    Alcotest.test_case "remote bad class/ins" `Quick
      test_remote_bad_class_and_ins;
    Alcotest.test_case "remote security mapping" `Quick
      test_remote_security_error_mapped;
    Alcotest.test_case "remote chain gap" `Quick test_remote_chain_gap;
    Alcotest.test_case "select clears chain state" `Quick
      test_select_clears_chain_state;
  ]
