(* Observability: metrics registry semantics, tracer nesting/sampling/
   ring bounds, the two export formats, and the subsystem's contract with
   the rest of the pipeline — zero behavioural overhead (qcheck),
   deterministic exports under a fixed clock and fault seed, one
   accounting source of truth (legacy stats records = registry cells),
   and fault/span correlation. *)

module Obs = Sdds_obs.Obs
module Rng = Sdds_util.Rng
module Dom = Sdds_xml.Dom
module Generator = Sdds_xml.Generator
module Random_path = Sdds_xpath.Random_path
module Rule = Sdds_core.Rule
module Encode = Sdds_index.Encode
module Indexed_engine = Sdds_index.Indexed_engine
module Card = Sdds_soe.Card
module Cost = Sdds_soe.Cost
module Remote = Sdds_soe.Remote_card
module Proxy = Sdds_proxy.Proxy
module Fault = Sdds_fault.Fault
module Publish = Sdds_dsp.Publish
module Store = Sdds_dsp.Store
module Drbg = Sdds_crypto.Drbg
module Rsa = Sdds_crypto.Rsa
module Json = Sdds_analysis.Json

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

let test_counter_gauge_histogram () =
  let c = Obs.Metrics.Counter.create () in
  Obs.Metrics.Counter.inc c;
  Obs.Metrics.Counter.add c 4;
  Alcotest.(check int) "counter" 5 (Obs.Metrics.Counter.value c);
  let g = Obs.Metrics.Gauge.create () in
  Obs.Metrics.Gauge.set g 7;
  Obs.Metrics.Gauge.set g 3;
  Alcotest.(check int) "gauge value" 3 (Obs.Metrics.Gauge.value g);
  Alcotest.(check int) "gauge peak" 7 (Obs.Metrics.Gauge.peak g);
  let h = Obs.Metrics.Histogram.create () in
  List.iter (Obs.Metrics.Histogram.observe h) [ 0; 1; 1; 2; 100; -5 ];
  Alcotest.(check int) "hist count" 6 (Obs.Metrics.Histogram.count h);
  (* The -5 clamps to 0. *)
  Alcotest.(check int) "hist sum" 104 (Obs.Metrics.Histogram.sum h);
  (* log2 buckets: v < 2^i. 0 -> le 0; 1 -> le 1; 2 -> le 3; 100 -> le 127. *)
  Alcotest.(check (list (pair int int)))
    "hist buckets"
    [ (0, 2); (1, 2); (3, 1); (7, 0); (15, 0); (31, 0); (63, 0); (127, 1) ]
    (Obs.Metrics.Histogram.buckets h)

let test_registry_aggregates_attached_cells () =
  let m = Obs.Metrics.create () in
  let a = Obs.Metrics.Counter.create () and b = Obs.Metrics.Counter.create () in
  Obs.Metrics.attach_counter m "x.count" a;
  Obs.Metrics.attach_counter m "x.count" b;
  (* Attaching the same cell twice must not double-count it. *)
  Obs.Metrics.attach_counter m "x.count" a;
  Obs.Metrics.Counter.add a 2;
  Obs.Metrics.Counter.add b 3;
  Alcotest.(check int) "counters sum" 5 (Obs.Metrics.counter_value m "x.count");
  Alcotest.(check int) "absent name is 0" 0 (Obs.Metrics.counter_value m "y");
  let g1 = Obs.Metrics.Gauge.create () and g2 = Obs.Metrics.Gauge.create () in
  Obs.Metrics.attach_gauge m "x.level" g1;
  Obs.Metrics.attach_gauge m "x.level" g2;
  Obs.Metrics.Gauge.set g1 10;
  Obs.Metrics.Gauge.set g1 4;
  Obs.Metrics.Gauge.set g2 6;
  (match List.assoc_opt "x.level" (Obs.Metrics.snapshot m) with
  | Some (Obs.Metrics.Gauge_v { value; peak }) ->
      Alcotest.(check int) "gauges sum values" 10 value;
      Alcotest.(check int) "gauges max peaks" 10 peak
  | _ -> Alcotest.fail "gauge missing from snapshot");
  let snap = Obs.Metrics.snapshot m in
  Alcotest.(check (list string))
    "snapshot sorted by name" [ "x.count"; "x.level" ] (List.map fst snap)

let test_exporters () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.Counter.add (Obs.Metrics.counter m "apdu.commands") 3;
  Obs.Metrics.Gauge.set (Obs.Metrics.gauge m "card.ram_peak_bytes") 900;
  Obs.Metrics.Histogram.observe (Obs.Metrics.histogram m "apdu.frame_bytes") 5;
  let prom = Obs.Metrics.to_prometheus m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("prometheus has " ^ needle) true
        (contains prom needle))
    [
      "sdds_apdu_commands 3";
      "sdds_card_ram_peak_bytes 900";
      "sdds_card_ram_peak_bytes_peak 900";
      "sdds_apdu_frame_bytes_bucket{le=\"7\"} 1";
      "sdds_apdu_frame_bytes_bucket{le=\"+Inf\"} 1";
      "sdds_apdu_frame_bytes_sum 5";
    ];
  let json = Obs.Metrics.to_json m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json has " ^ needle) true (contains json needle))
    [
      "\"counters\":{\"apdu.commands\":3}";
      "\"card.ram_peak_bytes\":{\"value\":900,\"peak\":900}";
      "\"apdu.frame_bytes\":{\"count\":1,\"sum\":5,";
    ]

(* ------------------------------------------------------------------ *)
(* Tracer                                                               *)
(* ------------------------------------------------------------------ *)

let manual_tracer ?capacity ?sample_1_in () =
  Obs.Tracer.create ~clock:(Obs.Clock.manual ()) ?capacity ?sample_1_in ()

let test_disabled_tracer_is_inert () =
  let tr = Obs.Tracer.disabled in
  Alcotest.(check bool) "not enabled" false (Obs.Tracer.enabled tr);
  let ran = ref false in
  let sp = Obs.Tracer.start tr "x" in
  Obs.Tracer.stop tr sp;
  Obs.Tracer.with_span tr "y" (fun () -> ran := true);
  Obs.Tracer.instant tr "z";
  Alcotest.(check bool) "body ran" true !ran;
  Alcotest.(check bool) "no real span id" true (sp <= 0);
  Alcotest.(check int) "nothing recorded" 0 (Obs.Tracer.recorded tr);
  Alcotest.(check string) "empty export" "" (Obs.Tracer.to_jsonl tr)

let test_nesting_and_exports () =
  let tr = manual_tracer () in
  Obs.Tracer.with_span tr "outer" (fun () ->
      Obs.Tracer.instant tr ~args:[ ("k", "v") ] "tick";
      Obs.Tracer.with_span tr "inner" (fun () -> ()));
  Alcotest.(check int) "one root" 1 (Obs.Tracer.root_spans tr);
  let jsonl = Obs.Tracer.to_jsonl tr in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' jsonl)
  in
  Alcotest.(check int) "three events" 3 (List.length lines);
  (* Spans commit on stop: instant, then inner, then outer. *)
  (match lines with
  | [ l1; l2; l3 ] ->
      Alcotest.(check bool) "instant on the outer span" true
        (contains l1 "\"type\":\"instant\"" && contains l1 "\"parent\":1"
        && contains l1 "\"name\":\"tick\"" && contains l1 "\"k\":\"v\"");
      (* Instants draw from the same id counter: outer=1, tick=2, inner=3. *)
      Alcotest.(check bool) "inner nests under outer" true
        (contains l2 "\"id\":3" && contains l2 "\"parent\":1");
      Alcotest.(check bool) "outer is a root" true
        (contains l3 "\"id\":1" && contains l3 "\"parent\":0")
  | _ -> Alcotest.fail "expected exactly three lines");
  let chrome = Obs.Tracer.to_chrome tr in
  Alcotest.(check bool) "chrome wrapper" true
    (contains chrome "\"traceEvents\":[");
  Alcotest.(check bool) "complete span events" true
    (contains chrome "\"ph\":\"X\"" && contains chrome "\"ph\":\"i\"")

let test_sampling_keeps_whole_trees () =
  let tr = manual_tracer ~sample_1_in:2 () in
  for _ = 1 to 6 do
    Obs.Tracer.with_span tr "root" (fun () ->
        Obs.Tracer.with_span tr "child" (fun () -> ()))
  done;
  (* Every other root is kept, each with its child — never an orphan. *)
  Alcotest.(check int) "half the roots" 3 (Obs.Tracer.root_spans tr);
  Alcotest.(check int) "children follow their root" 6 (Obs.Tracer.recorded tr)

let test_ring_is_bounded () =
  let tr = manual_tracer ~capacity:8 () in
  for _ = 1 to 50 do
    Obs.Tracer.with_span tr "s" (fun () -> ())
  done;
  Alcotest.(check int) "ring holds capacity" 8 (Obs.Tracer.recorded tr);
  Alcotest.(check int) "overwrites counted" 42 (Obs.Tracer.evicted tr)

(* ------------------------------------------------------------------ *)
(* Tail sampling                                                        *)
(* ------------------------------------------------------------------ *)

(* Parse a JSONL export into (root spans, all events) with typed access;
   fails the test on malformed lines so export bugs surface loudly. *)
let parse_jsonl jsonl =
  let events =
    String.split_on_char '\n' jsonl
    |> List.filter (fun l -> l <> "")
    |> List.map (fun l ->
           match Json.parse l with
           | Ok j -> j
           | Error e -> Alcotest.failf "bad export line %S: %s" l e)
  in
  let spans = List.filter (fun j -> Json.member "type" j = Some (Json.String "span")) events in
  let roots =
    List.filter (fun j -> Json.member "parent" j = Some (Json.Int 0)) spans
  in
  (roots, events)

let arg_of j key =
  Option.bind (Json.member "args" j) (fun a ->
      Option.bind (Json.member key a) Json.to_string_opt)

let tail_tracer ?capacity policy =
  Obs.Tracer.create ~clock:(Obs.Clock.manual ()) ?capacity ~policy ()

(* Each non-baseline retention reason must be earned: build one tree per
   rule, plus an uninteresting one, and check who survived and why. *)
let test_tail_policy_reasons () =
  let policy =
    Obs.Policy.default ~baseline_1_in:0 ~latency_ns:1_000_000L ()
  in
  let tr = tail_tracer policy in
  (* error: a child span finishes with a non-ok outcome *)
  let r1 = Obs.Tracer.start tr ~args:[ ("case", "error") ] "req" in
  let c1 = Obs.Tracer.start tr ~parent:r1 "child" in
  Obs.Tracer.stop tr ~args:[ ("outcome", "timeout") ] c1;
  Obs.Tracer.stop tr r1;
  (* fault: an injected-fault instant inside the tree *)
  let r2 = Obs.Tracer.start tr ~args:[ ("case", "fault") ] "req" in
  Obs.Tracer.with_parent tr r2 (fun () -> Obs.Tracer.instant tr "fault");
  Obs.Tracer.stop tr r2;
  (* migration span *)
  let r3 = Obs.Tracer.start tr ~args:[ ("case", "migrate") ] "req" in
  let c3 = Obs.Tracer.start tr ~parent:r3 "fleet.migrate" in
  Obs.Tracer.stop tr c3;
  Obs.Tracer.stop tr r3;
  (* slow: exceed the 1ms latency threshold on the manual clock *)
  let r4 = Obs.Tracer.start tr ~args:[ ("case", "slow") ] "req" in
  for _ = 1 to 2000 do
    ignore (Obs.Tracer.now tr)
  done;
  Obs.Tracer.stop tr r4;
  (* boring: nothing interesting, no baseline (1-in-0) *)
  let r5 = Obs.Tracer.start tr ~args:[ ("case", "boring") ] "req" in
  let c5 = Obs.Tracer.start tr ~parent:r5 "child" in
  Obs.Tracer.stop tr ~args:[ ("outcome", "ok") ] c5;
  Obs.Tracer.stop tr r5;
  let roots, _ = parse_jsonl (Obs.Tracer.to_jsonl tr) in
  let reason_of case =
    List.find_map
      (fun r -> if arg_of r "case" = Some case then arg_of r "sampled.reason" else None)
      roots
  in
  Alcotest.(check (option string)) "error reason" (Some "error")
    (reason_of "error");
  Alcotest.(check (option string)) "fault reason" (Some "fault")
    (reason_of "fault");
  Alcotest.(check (option string)) "migrate reason" (Some "span:fleet.migrate")
    (reason_of "migrate");
  Alcotest.(check (option string)) "latency reason" (Some "latency")
    (reason_of "slow");
  Alcotest.(check bool) "boring tree dropped" true
    (List.for_all (fun r -> arg_of r "case" <> Some "boring") roots);
  Alcotest.(check int) "four trees kept" 4 (Obs.Tracer.kept_trees tr);
  Alcotest.(check int) "one tree dropped" 1 (Obs.Tracer.dropped_trees tr);
  (* Children travel with their kept root. *)
  Alcotest.(check int) "four roots exported" 4 (List.length roots)

let test_tail_baseline_and_children () =
  let tr = tail_tracer (Obs.Policy.v ~baseline_1_in:3 []) in
  for _ = 1 to 9 do
    Obs.Tracer.with_span tr "root" (fun () ->
        Obs.Tracer.with_span tr "child" (fun () -> ()))
  done;
  let roots, events = parse_jsonl (Obs.Tracer.to_jsonl tr) in
  Alcotest.(check int) "1-in-3 baseline" 3 (List.length roots);
  List.iter
    (fun r ->
      Alcotest.(check (option string)) "baseline reason" (Some "baseline")
        (arg_of r "sampled.reason"))
    roots;
  (* Each kept root brought its child; no orphans from dropped trees. *)
  let spans = List.filter (fun j -> Json.member "type" j = Some (Json.String "span")) events in
  Alcotest.(check int) "children follow kept roots" 6 (List.length spans);
  Alcotest.(check int) "six trees dropped" 6 (Obs.Tracer.dropped_trees tr)

(* Sampling accounting rides the meta line / Chrome metadata, and
   eviction of a buffered tree is surfaced in both exporters. *)
let test_tail_meta_and_eviction () =
  let tr = tail_tracer ~capacity:4 (Obs.Policy.v ~baseline_1_in:1 []) in
  for _ = 1 to 3 do
    Obs.Tracer.with_span tr "root" (fun () ->
        Obs.Tracer.with_span tr "child" (fun () -> ()))
  done;
  Alcotest.(check bool) "ring evicted something" true
    (Obs.Tracer.evicted tr > 0);
  let jsonl = Obs.Tracer.to_jsonl tr in
  (match String.split_on_char '\n' jsonl with
  | meta :: _ -> (
      match Json.parse meta with
      | Ok j ->
          Alcotest.(check bool) "meta line first" true
            (Json.member "type" j = Some (Json.String "meta"));
          Alcotest.(check bool) "meta counts evictions" true
            (match Json.member "evicted" j with
            | Some (Json.Int n) -> n = Obs.Tracer.evicted tr
            | _ -> false);
          Alcotest.(check bool) "meta counts kept trees" true
            (match Json.member "kept_trees" j with
            | Some (Json.Int n) -> n = Obs.Tracer.kept_trees tr
            | _ -> false)
      | Error e -> Alcotest.failf "meta line does not parse: %s" e)
  | [] -> Alcotest.fail "empty export");
  Alcotest.(check bool) "chrome metadata object" true
    (contains (Obs.Tracer.to_chrome tr) "\"metadata\":{\"recorded\":")

let test_create_rejects_head_and_tail () =
  match Obs.create ~sample_1_in:4 ~policy:(Obs.Policy.default ()) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "head + tail sampling together must be rejected"

(* Every non-baseline retained tree satisfies the rule that kept it, and
   every interesting tree is retained — across random mixes of error /
   fault / migration trees. *)
let qcheck_tail_policy_sound =
  QCheck2.Test.make ~name:"tail retention is sound and complete" ~count:60
    QCheck2.Gen.(list_size (int_range 1 30) (triple bool bool bool))
    (fun trees ->
      let policy =
        Obs.Policy.v ~baseline_1_in:4
          [
            Obs.Policy.error_outcome;
            Obs.Policy.fault_instant;
            Obs.Policy.span_named "fleet.migrate";
          ]
      in
      let tr = tail_tracer policy in
      List.iteri
        (fun i (err, fault, migrate) ->
          let root =
            Obs.Tracer.start tr ~args:[ ("i", string_of_int i) ] "req"
          in
          if fault then
            Obs.Tracer.with_parent tr root (fun () ->
                Obs.Tracer.instant tr "fault");
          if migrate then begin
            let c = Obs.Tracer.start tr ~parent:root "fleet.migrate" in
            Obs.Tracer.stop tr c
          end;
          Obs.Tracer.stop tr
            ~args:[ ("outcome", (if err then "error" else "ok")) ]
            root)
        trees;
      let roots, _ = parse_jsonl (Obs.Tracer.to_jsonl tr) in
      let props = Array.of_list trees in
      let sound =
        List.for_all
          (fun r ->
            let i = int_of_string (Option.get (arg_of r "i")) in
            let err, fault, migrate = props.(i) in
            match Option.get (arg_of r "sampled.reason") with
            | "error" -> err
            | "fault" -> fault
            | "span:fleet.migrate" -> migrate
            | "baseline" -> true
            | other -> Alcotest.failf "unknown reason %s" other)
          roots
      in
      let complete =
        List.for_all
          (fun i ->
            let err, fault, migrate = props.(i) in
            (not (err || fault || migrate))
            || List.exists (fun r -> arg_of r "i" = Some (string_of_int i)) roots)
          (List.init (Array.length props) Fun.id)
      in
      sound && complete
      && Obs.Tracer.kept_trees tr + Obs.Tracer.dropped_trees tr
         = Array.length props)

(* ------------------------------------------------------------------ *)
(* Exemplars                                                            *)
(* ------------------------------------------------------------------ *)

let test_exemplars_and_snapshot () =
  let m = Obs.Metrics.create () in
  let h1 = Obs.Metrics.Histogram.create ()
  and h2 = Obs.Metrics.Histogram.create () in
  Obs.Metrics.attach_histogram m "lat" h1;
  Obs.Metrics.attach_histogram m "lat" h2;
  Alcotest.(check bool) "first observation installs an exemplar" true
    (Obs.Metrics.Histogram.observe_exemplar h1 ~trace:7 ~span:8 100);
  Alcotest.(check bool) "smaller value in the same bucket does not" false
    (Obs.Metrics.Histogram.observe_exemplar h1 ~trace:9 ~span:10 80);
  Alcotest.(check bool) "larger value replaces it" true
    (Obs.Metrics.Histogram.observe_exemplar h1 ~trace:11 ~span:12 120);
  Alcotest.(check bool) "other cell, other bucket" true
    (Obs.Metrics.Histogram.observe_exemplar h2 ~trace:13 ~span:14 3000);
  (* The aggregated snapshot reconciles with the cells it sums. *)
  let s = Obs.Metrics.histogram_snapshot m "lat" in
  Alcotest.(check int) "snapshot count sums cells"
    (Obs.Metrics.Histogram.count h1 + Obs.Metrics.Histogram.count h2)
    s.Obs.Metrics.h_count;
  Alcotest.(check int) "snapshot sum sums cells"
    (Obs.Metrics.Histogram.sum h1 + Obs.Metrics.Histogram.sum h2)
    s.Obs.Metrics.h_sum;
  let cell_count cell ub =
    Option.value ~default:0
      (List.assoc_opt ub (Obs.Metrics.Histogram.buckets cell))
  in
  List.iter
    (fun (ub, n) ->
      Alcotest.(check int)
        (Printf.sprintf "bucket %d sums cells" ub)
        (cell_count h1 ub + cell_count h2 ub)
        n)
    s.Obs.Metrics.h_buckets;
  (* Max-value exemplar per bucket across cells. *)
  (match
     List.assoc_opt 127 s.Obs.Metrics.h_exemplars,
     List.assoc_opt 4095 s.Obs.Metrics.h_exemplars
   with
  | Some e1, Some e2 ->
      Alcotest.(check int) "bucket-127 exemplar is the max" 120
        e1.Obs.Metrics.Histogram.ex_value;
      Alcotest.(check int) "its trace id" 11 e1.Obs.Metrics.Histogram.ex_trace;
      Alcotest.(check int) "bucket-4095 exemplar" 3000
        e2.Obs.Metrics.Histogram.ex_value
  | _ -> Alcotest.fail "expected exemplars on buckets 127 and 4095");
  (* Exemplars surface in both exporters. *)
  let prom = Obs.Metrics.to_prometheus m in
  Alcotest.(check bool) "prometheus exemplar suffix" true
    (contains prom "# {trace_id=\"11\",span_id=\"12\"} 120");
  let json = Obs.Metrics.to_json m in
  Alcotest.(check bool) "json exemplars" true
    (contains json "\"exemplars\":[[127,120,11,12],[4095,3000,13,14]]")

(* A bucket-max observation under an open span pins the owning trace, so
   every exported exemplar resolves into the retained trace — even when
   the tree is otherwise uninteresting to the policy. *)
let test_exemplar_pins_trace () =
  let o =
    Obs.create
      ~clock:(Obs.Clock.manual ())
      ~policy:(Obs.Policy.v ~baseline_1_in:0 [])
      ()
  in
  let tr = o.Obs.tracer in
  let root = Obs.Tracer.start tr "req" in
  Obs.Tracer.with_parent tr root (fun () ->
      Obs.observe (Some o) "lat" 900);
  Obs.Tracer.stop tr root;
  (* A second, slower tree replaces the bucket max and pins itself. *)
  let root2 = Obs.Tracer.start tr "req" in
  Obs.Tracer.with_parent tr root2 (fun () ->
      Obs.observe (Some o) "lat" 1000);
  Obs.Tracer.stop tr root2;
  let roots, _ = parse_jsonl (Obs.Tracer.to_jsonl tr) in
  List.iter
    (fun r ->
      Alcotest.(check (option string)) "pinned reason" (Some "exemplar")
        (arg_of r "sampled.reason"))
    roots;
  let s = Obs.Metrics.histogram_snapshot o.Obs.metrics "lat" in
  List.iter
    (fun (_, e) ->
      Alcotest.(check bool) "exemplar trace id is a retained root" true
        (List.exists
           (fun r ->
             Json.member "id" r
             = Some (Json.Int e.Obs.Metrics.Histogram.ex_trace))
           roots))
    s.Obs.Metrics.h_exemplars;
  Alcotest.(check int) "trace.retained counts the pins" 2
    (Obs.Metrics.counter_value o.Obs.metrics "trace.retained")

(* ------------------------------------------------------------------ *)
(* SLO engine                                                           *)
(* ------------------------------------------------------------------ *)

let test_slo_burn_rates () =
  let m = Obs.Metrics.create () in
  let good = Obs.Metrics.counter m "rq.good"
  and total = Obs.Metrics.counter m "rq.total" in
  let slo = Obs.Slo.create m in
  Obs.Slo.register slo ~name:"avail" ~target_pct:90.0 ~fast_ns:10L
    ~slow_ns:100L ~burn_threshold:2.0
    (Obs.Slo.Availability { good = "rq.good"; total = "rq.total" });
  Obs.Slo.tick ~now:0L slo;
  (* An incident: 2 bad of 10 -> bad fraction 0.2 over a 10% budget =
     burn 2.0 in both windows. *)
  Obs.Metrics.Counter.add good 8;
  Obs.Metrics.Counter.add total 10;
  Obs.Slo.tick ~now:5L slo;
  (match Obs.Slo.evaluate ~now:5L slo with
  | [ v ] ->
      Alcotest.(check (float 0.001)) "fast burn" 2.0 v.Obs.Slo.fast_burn;
      Alcotest.(check (float 0.001)) "slow burn" 2.0 v.Obs.Slo.slow_burn;
      Alcotest.(check bool) "both windows burning: breach" true
        v.Obs.Slo.breach
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs));
  (* Recovery: 20 clean requests later the fast window is clean while
     the slow window still remembers — no page. *)
  Obs.Metrics.Counter.add good 20;
  Obs.Metrics.Counter.add total 20;
  Obs.Slo.tick ~now:20L slo;
  (match Obs.Slo.evaluate ~now:25L slo with
  | [ v ] ->
      Alcotest.(check (float 0.001)) "fast window clean" 0.0
        v.Obs.Slo.fast_burn;
      Alcotest.(check bool) "slow window still burning a little" true
        (v.Obs.Slo.slow_burn > 0.0);
      Alcotest.(check bool) "multi-window: no page after settlement" false
        v.Obs.Slo.breach;
      Alcotest.(check (float 0.01)) "compliance over slow window" 93.33
        v.Obs.Slo.current_pct
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs))

let test_slo_latency_objective () =
  let m = Obs.Metrics.create () in
  let h = Obs.Metrics.histogram m "lat" in
  let slo = Obs.Slo.create m in
  Obs.Slo.register slo ~name:"lat" ~target_pct:50.0 ~fast_ns:10L
    ~slow_ns:100L ~burn_threshold:1.0
    (Obs.Slo.Latency { histogram = "lat"; threshold = 127 });
  Obs.Slo.tick ~now:0L slo;
  Obs.Metrics.Histogram.observe h 50;
  (* good: <= 127 *)
  Obs.Metrics.Histogram.observe h 200;
  (* bad *)
  Obs.Slo.tick ~now:5L slo;
  match Obs.Slo.evaluate ~now:5L slo with
  | [ v ] ->
      Alcotest.(check int) "good counts the fast buckets" 1 v.Obs.Slo.good;
      Alcotest.(check int) "total counts everything" 2 v.Obs.Slo.total;
      (* bad fraction 0.5 over a 50% budget = burn 1.0 *)
      Alcotest.(check (float 0.001)) "burn" 1.0 v.Obs.Slo.fast_burn;
      Alcotest.(check bool) "at threshold: breach" true v.Obs.Slo.breach
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs)

(* ------------------------------------------------------------------ *)
(* Pipeline contracts                                                   *)
(* ------------------------------------------------------------------ *)

(* Zero overhead: on random documents and rule sets, an indexed-engine
   pass observes the exact same behaviour with no scope, a metrics-only
   scope, and a fully tracing scope. *)
let qcheck_zero_overhead =
  QCheck2.Test.make ~name:"observability never changes behaviour" ~count:40
    QCheck2.Gen.(pair (int_bound 1_000_000) (int_range 1 5))
    (fun (seed, nrules) ->
      let tags = Generator.department_tags in
      let doc =
        Generator.random_tree
          (Rng.create (Int64.of_int (seed + 1)))
          ~tags ~max_depth:5 ~max_children:4 ~text_probability:0.3
      in
      let rrng = Rng.create (Int64.of_int ((seed * 2) + 1)) in
      let cfg =
        { Random_path.default with max_steps = 3; predicate_probability = 0.3 }
      in
      let rules =
        List.init nrules (fun _ ->
            {
              Rule.sign = (if Rng.bool rrng then Rule.Allow else Rule.Deny);
              subject = "u";
              path =
                Random_path.generate rrng cfg ~tags ~values:[| "1"; "x" |];
            })
      in
      let encoded =
        Encode.encode ~mode:(Encode.Indexed { recursive = true }) doc
      in
      let run obs = Indexed_engine.run ?obs rules encoded in
      let plain = run None in
      let metrics_only = run (Some (Obs.create ~tracing:false ())) in
      let full = run (Some (Obs.create ~clock:(Obs.Clock.manual ()) ())) in
      let same (a : Indexed_engine.result) (b : Indexed_engine.result) =
        a.outputs = b.outputs
        && Option.equal Dom.equal a.view b.view
        && a.skipped_subtrees = b.skipped_subtrees
        && a.skipped_bytes = b.skipped_bytes
        && a.skipped_ranges = b.skipped_ranges
        && a.consumed_bytes = b.consumed_bytes
        && a.events_fed = b.events_fed
        && a.engine_stats = b.engine_stats
        && a.reader_peak_words = b.reader_peak_words
      in
      same plain metrics_only && same plain full)

(* One world for the end-to-end tests, shared (keygen is slow). *)
type world = { store : Store.t; user : Rsa.keypair }

let doc_id = "ward"

let world =
  lazy
    (let drbg = Drbg.create ~seed:"obs-world" in
     let publisher = Rsa.generate drbg ~bits:512 in
     let user = Rsa.generate drbg ~bits:512 in
     let store = Store.create () in
     let doc = Generator.hospital (Rng.create 19L) ~patients:5 in
     let published, doc_key = Publish.publish drbg ~publisher ~doc_id doc in
     Store.put_document store published;
     let rules =
       [ Rule.allow ~subject:"u" "//patient"; Rule.deny ~subject:"u" "//ssn" ]
     in
     Store.put_rules store ~doc_id ~subject:"u"
       (Publish.encrypt_rules_for drbg ~publisher ~doc_key ~doc_id
          ~subject:"u" rules);
     Store.put_grant store ~doc_id ~subject:"u"
       (Publish.grant drbg ~doc_key ~doc_id ~recipient:user.Rsa.public);
     { store; user })

let requests =
  [
    Proxy.Request.make doc_id;
    Proxy.Request.make ~xpath:"//patient/name" doc_id;
  ]

(* A full pool run under one scope; returns (obs, link, served). *)
let traced_pool_run ?(schedule = Fault.Schedule.none) ?policy () =
  let w = Lazy.force world in
  let obs = Obs.create ~clock:(Obs.Clock.manual ()) ?policy () in
  let card = Card.create ~obs ~profile:Cost.modern ~subject:"u" w.user in
  let host =
    Remote.Host.create ~obs ~card
      ~resolve:(fun id ->
        Option.map
          (fun p -> Publish.to_source p ~delivery:`Pull)
          (Store.get_document w.store id))
      ()
  in
  let link =
    Fault.Link.wrap ~obs ~schedule
      ~tear:(fun () -> Remote.Host.tear host)
      (Remote.Host.process host)
  in
  let pool =
    Proxy.Pool.create ~obs ~store:w.store
      ~transport:(Fault.Link.transport link) ~subject:"u" ()
  in
  let served = Proxy.Pool.serve pool requests in
  (obs, card, link, served)

(* Determinism: fixed clock + fixed fault seed => byte-identical trace
   exports across two independent runs. *)
let test_deterministic_trace () =
  let run () =
    let obs, _, _, _ =
      traced_pool_run
        ~schedule:(Fault.Schedule.random ~seed:99L ~rate:0.1 ())
        ()
    in
    (Obs.Tracer.to_jsonl obs.Obs.tracer, Obs.Tracer.to_chrome obs.Obs.tracer)
  in
  let j1, c1 = run () in
  let j2, c2 = run () in
  Alcotest.(check string) "identical JSONL" j1 j2;
  Alcotest.(check string) "identical Chrome trace" c1 c2;
  Alcotest.(check bool) "trace is non-trivial" true
    (contains j1 "\"name\":\"proxy.request\"" && contains j1 "\"name\":\"apdu\"")

(* The same determinism guarantee holds in tail mode: the policy decision
   path (buffer, evaluate, flush) introduces no ordering or accounting
   nondeterminism. *)
let test_deterministic_tail_trace () =
  let run () =
    let obs, _, _, _ =
      traced_pool_run
        ~schedule:(Fault.Schedule.random ~seed:99L ~rate:0.1 ())
        ~policy:(Obs.Policy.default ~baseline_1_in:0 ())
        ()
    in
    (Obs.Tracer.to_jsonl obs.Obs.tracer, Obs.Tracer.to_chrome obs.Obs.tracer)
  in
  let j1, c1 = run () in
  let j2, c2 = run () in
  Alcotest.(check string) "identical tail JSONL" j1 j2;
  Alcotest.(check string) "identical tail Chrome trace" c1 c2;
  (* Under a 10% fault schedule at least one tree is interesting, and
     the export says why it was kept. *)
  Alcotest.(check bool) "a retained tree names its reason" true
    (contains j1 "\"sampled.reason\"")

(* One accounting source of truth: the legacy stats records and the
   registry aggregate the very same cells. *)
let test_registry_reconciles_with_legacy_views () =
  let obs, card, _, served = traced_pool_run () in
  let served =
    List.map
      (function
        | Ok s -> s
        | Error e -> Alcotest.failf "request failed: %a" Proxy.pp_error e)
      served
  in
  let cv = Obs.Metrics.counter_value obs.Obs.metrics in
  let sum f = List.fold_left (fun a s -> a + f s) 0 served in
  Alcotest.(check int) "command frames"
    (sum (fun s -> s.Proxy.Pool.command_frames))
    (cv "pool.command_frames");
  Alcotest.(check int) "response frames"
    (sum (fun s -> s.Proxy.Pool.response_frames))
    (cv "pool.response_frames");
  Alcotest.(check int) "wire bytes"
    (sum (fun s -> s.Proxy.Pool.wire_bytes))
    (cv "pool.wire_bytes");
  Alcotest.(check int) "retries"
    (sum (fun s -> s.Proxy.Pool.retries))
    (cv "pool.retries");
  (* The host counted exactly the frames the pool sent. *)
  Alcotest.(check int) "apdu commands = pool command frames"
    (cv "pool.command_frames") (cv "apdu.commands");
  let cs = Card.cache_stats card in
  Alcotest.(check int) "cache hits" cs.Card.hits (cv "card.cache.hits");
  Alcotest.(check int) "cache misses" cs.Card.misses (cv "card.cache.misses");
  Alcotest.(check int) "cache evictions" cs.Card.evictions
    (cv "card.cache.evictions");
  Alcotest.(check int) "one evaluation per request" (List.length served)
    (cv "card.evaluations");
  (* The engine identity from the stats doc holds on the registry too. *)
  Alcotest.(check int) "events = delivered + suppressed + filtered"
    (cv "engine.events")
    (cv "engine.delivered" + cv "engine.suppressed" + cv "engine.filtered")

let test_engine_cells_are_the_stats () =
  let obs = Obs.create ~tracing:false () in
  let doc = Generator.hospital (Rng.create 5L) ~patients:4 in
  let rules =
    [ Rule.allow ~subject:"u" "//patient"; Rule.deny ~subject:"u" "//ssn" ]
  in
  let encoded =
    Encode.encode ~mode:(Encode.Indexed { recursive = true }) doc
  in
  let res = Indexed_engine.run ~obs rules encoded in
  let st = res.Indexed_engine.engine_stats in
  let cv = Obs.Metrics.counter_value obs.Obs.metrics in
  Alcotest.(check int) "events" st.Sdds_core.Engine.events (cv "engine.events");
  Alcotest.(check int) "emitted" st.Sdds_core.Engine.emitted
    (cv "engine.emitted");
  Alcotest.(check int) "token visits" st.Sdds_core.Engine.token_visits
    (cv "engine.token_visits");
  (match List.assoc_opt "engine.live_tokens" (Obs.Metrics.snapshot obs.Obs.metrics) with
  | Some (Obs.Metrics.Gauge_v { peak; _ }) ->
      Alcotest.(check int) "peak tokens is the gauge peak"
        st.Sdds_core.Engine.peak_tokens peak
  | _ -> Alcotest.fail "engine.live_tokens missing");
  Alcotest.(check int) "pruned subtrees" res.Indexed_engine.skipped_subtrees
    (cv "skip.pruned_subtrees");
  Alcotest.(check int) "pruned bytes" res.Indexed_engine.skipped_bytes
    (cv "skip.pruned_bytes")

(* Fault/span correlation: an injected fault lands on the request span
   that was active, and that span is a recorded proxy.request root. *)
let test_fault_correlates_with_request_span () =
  let obs, _, link, served =
    traced_pool_run
      ~schedule:
        (Fault.Schedule.of_events
           [ { Fault.frame = 9; kind = Fault.Drop_response } ])
      ()
  in
  List.iter
    (function
      | Ok _ -> ()
      | Error e -> Alcotest.failf "request failed: %a" Proxy.pp_error e)
    served;
  (match Fault.Link.traced link with
  | [ { Fault.Link.event = { frame = 9; _ }; span } ] ->
      Alcotest.(check bool) "fault carries a real span id" true (span > 0);
      let jsonl = Obs.Tracer.to_jsonl obs.Obs.tracer in
      Alcotest.(check bool) "the span is a recorded request root" true
        (contains jsonl
           (Printf.sprintf "\"id\":%d,\"parent\":0,\"name\":\"proxy.request\""
              span));
      Alcotest.(check bool) "the fault instant is on that span" true
        (contains jsonl
           (Printf.sprintf
              "\"parent\":%d,\"name\":\"fault\",\"ts_ns\":" span))
  | l -> Alcotest.failf "expected exactly the scheduled fault, got %d" (List.length l));
  Alcotest.(check int) "fault.injected counted" 1
    (Obs.Metrics.counter_value obs.Obs.metrics "fault.injected")

let suite =
  [
    Alcotest.test_case "counter, gauge, histogram cells" `Quick
      test_counter_gauge_histogram;
    Alcotest.test_case "registry aggregates attached cells" `Quick
      test_registry_aggregates_attached_cells;
    Alcotest.test_case "prometheus and json exporters" `Quick test_exporters;
    Alcotest.test_case "disabled tracer is inert" `Quick
      test_disabled_tracer_is_inert;
    Alcotest.test_case "nesting and both export formats" `Quick
      test_nesting_and_exports;
    Alcotest.test_case "sampling keeps whole trees" `Quick
      test_sampling_keeps_whole_trees;
    Alcotest.test_case "ring buffer is bounded" `Quick test_ring_is_bounded;
    Alcotest.test_case "tail policy names its retention reasons" `Quick
      test_tail_policy_reasons;
    Alcotest.test_case "tail baseline keeps 1-in-N whole trees" `Quick
      test_tail_baseline_and_children;
    Alcotest.test_case "sampling accounting in meta line and metadata" `Quick
      test_tail_meta_and_eviction;
    Alcotest.test_case "head and tail sampling are exclusive" `Quick
      test_create_rejects_head_and_tail;
    QCheck_alcotest.to_alcotest qcheck_tail_policy_sound;
    Alcotest.test_case "exemplars aggregate and export" `Quick
      test_exemplars_and_snapshot;
    Alcotest.test_case "exemplars pin their trace against tail drops" `Quick
      test_exemplar_pins_trace;
    Alcotest.test_case "slo burn rates page and settle" `Quick
      test_slo_burn_rates;
    Alcotest.test_case "slo latency objective reads the histogram" `Quick
      test_slo_latency_objective;
    QCheck_alcotest.to_alcotest qcheck_zero_overhead;
    Alcotest.test_case "fixed clock + fault seed: identical exports" `Quick
      test_deterministic_trace;
    Alcotest.test_case "tail mode: identical exports" `Quick
      test_deterministic_tail_trace;
    Alcotest.test_case "registry reconciles with legacy stats views" `Quick
      test_registry_reconciles_with_legacy_views;
    Alcotest.test_case "engine cells are the stats record" `Quick
      test_engine_cells_are_the_stats;
    Alcotest.test_case "faults correlate with request spans" `Quick
      test_fault_correlates_with_request_span;
  ]
