(* The static policy analyzer: every verdict it emits is checked against
   the runtime it speaks about — dead rules against the oracle's
   authorized view, containment witnesses against node selection, overlap
   witnesses against the conflict-resolution oracle, the static memory
   bound against the engine's measured peak, and the admission check
   against the card and its APDU surface. *)

module Analyzer = Sdds_analysis.Analyzer
module Diag = Sdds_analysis.Diag
module Memory_bound = Sdds_analysis.Memory_bound
module Containment = Sdds_xpath.Containment
module Eval = Sdds_xpath.Eval
module Random_path = Sdds_xpath.Random_path
module Parser = Sdds_xpath.Parser
module Rule = Sdds_core.Rule
module Oracle = Sdds_core.Oracle
module Engine = Sdds_core.Engine
module Sdds = Sdds_core.Sdds
module Compile = Sdds_core.Compile
module Schema = Sdds_core.Schema
module Dom = Sdds_xml.Dom
module Generator = Sdds_xml.Generator
module Rng = Sdds_util.Rng
module Card = Sdds_soe.Card
module Cost = Sdds_soe.Cost
module Apdu = Sdds_soe.Apdu
module Remote = Sdds_soe.Remote_card
module Publish = Sdds_dsp.Publish
module Rsa = Sdds_crypto.Rsa
module Drbg = Sdds_crypto.Drbg

let tags = [| "a"; "b"; "c"; "d"; "e" |]
let values = [| "1"; "2"; "x" |]

let cfg =
  { Random_path.default with max_steps = 3; predicate_probability = 0.4 }

let random_doc rng =
  Generator.random_tree rng ~tags ~max_depth:6 ~max_children:4
    ~text_probability:0.3

let random_rules rng n =
  List.init n (fun _ ->
      {
        Rule.sign = (if Rng.bool rng then Rule.Allow else Rule.Deny);
        subject = "u";
        path = Random_path.generate rng cfg ~tags ~values;
      })

let seed_gen = QCheck2.Gen.(int_bound 1_000_000)

(* --- dead rules: removable without changing the engine's view --------- *)

let dead_indices report =
  List.filter_map
    (function Diag.Dead_rule { rule; _ } -> Some rule | _ -> None)
    report.Analyzer.diagnostics

let qcheck_dead_rules_removable =
  QCheck2.Test.make
    ~name:"dropping analyzer-dead rules preserves the authorized view"
    ~count:200 seed_gen (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let rules = random_rules rng (2 + Rng.int rng 5) in
      let report = Analyzer.run rules in
      let dead = dead_indices report in
      let pruned =
        List.filteri (fun i _ -> not (List.mem i dead)) rules
      in
      List.for_all
        (fun _ ->
          let doc = random_doc rng in
          (* Per-node decisions under both default policies, and the
             engine's reassembled view (the raw event streams are allowed
             to differ in predicate-resolution bookkeeping). *)
          Oracle.decisions ~rules doc = Oracle.decisions ~rules:pruned doc
          && Oracle.decisions ~default:Rule.Allow ~rules doc
             = Oracle.decisions ~default:Rule.Allow ~rules:pruned doc
          && Sdds.authorized_view ~rules doc
             = Sdds.authorized_view ~rules:pruned doc)
        [ (); (); () ])

(* --- containment verdicts replayed through node selection ------------- *)

let subset p q doc =
  let sel_p = Eval.select_doc p doc and sel_q = Eval.select_doc q doc in
  List.for_all (fun id -> List.mem id sel_q) sel_p

let qcheck_containment_witnesses =
  QCheck2.Test.make ~name:"containment verdicts carry honest witnesses"
    ~count:400 seed_gen (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let p = Random_path.generate rng cfg ~tags ~values in
      let q = Random_path.generate rng cfg ~tags ~values in
      match Containment.decide q p with
      | Containment.Contained ->
          (* Sound claim: p ⊆ q on every document — spot-check three. *)
          List.for_all (fun _ -> subset p q (random_doc rng)) [ (); (); () ]
      | Containment.Not_contained doc ->
          (* The witness is a proof: p selects a node q misses on it. *)
          not (subset p q doc)
      | Containment.Unknown None -> true
      | Containment.Unknown (Some doc) ->
          (* An honest shrug: the candidate indeed failed to refute. *)
          subset p q doc)

(* --- overlap witnesses: the synthesized document exhibits the sign ---- *)

let qcheck_overlap_witnesses =
  QCheck2.Test.make
    ~name:"overlap witnesses replay through the oracle" ~count:200 seed_gen
    (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let rules = random_rules rng (2 + Rng.int rng 4) in
      let report = Analyzer.run rules in
      List.for_all
        (function
          | Diag.Overlap { allow; deny; relation; winner; witness; node } ->
              let ra = report.Analyzer.rules.(allow)
              and rd = report.Analyzer.rules.(deny) in
              let sel_a = Eval.select_doc ra.Rule.path witness
              and sel_d = Eval.select_doc rd.Rule.path witness in
              let decisions =
                Oracle.decisions ~rules:[ ra; rd ] witness
              in
              ra.Rule.sign = Rule.Allow
              && rd.Rule.sign = Rule.Deny
              && decisions.(node) = winner
              && (match relation with
                 | Diag.Same_node ->
                     (* Both rules select the node: denial takes
                        precedence there. *)
                     List.mem node sel_a && List.mem node sel_d
                     && winner = Rule.Deny
                 | Diag.Allow_below_deny ->
                     (* The allow is the most specific object at the
                        node; it wins under the denied ancestor. *)
                     List.mem node sel_a
                     && (not (List.mem node sel_d))
                     && winner = Rule.Allow
                 | Diag.Deny_below_allow ->
                     List.mem node sel_d
                     && (not (List.mem node sel_a))
                     && winner = Rule.Deny)
          | _ -> true)
        report.Analyzer.diagnostics)

(* --- unsure shadows: the candidate really failed to refute ------------ *)

let qcheck_unsure_shadow_candidates =
  QCheck2.Test.make
    ~name:"unsure-shadow candidates do not refute containment" ~count:300
    seed_gen (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let rules = random_rules rng (2 + Rng.int rng 5) in
      let report = Analyzer.run rules in
      List.for_all
        (function
          | Diag.Unsure_shadow { rule; by; candidate = Some doc } ->
              subset report.Analyzer.rules.(rule).Rule.path
                report.Analyzer.rules.(by).Rule.path doc
          | _ -> true)
        report.Analyzer.diagnostics)

(* --- schema unsatisfiability is sound on conforming documents --------- *)

let schema =
  Schema.of_string
    "a = b c #text\n\
     b = d\n\
     c = d e\n\
     d = #text\n\
     e = #text\n"

let rec conforming rng schema tag =
  let kids =
    List.concat_map
      (fun k -> if Rng.bool rng then [ conforming rng schema k ] else [])
      (Schema.children schema tag)
  in
  let kids =
    if Schema.text_allowed schema tag && Rng.bool rng then
      kids @ [ Dom.text values.(Rng.int rng (Array.length values)) ]
    else kids
  in
  Dom.element tag kids

let qcheck_unsat_schema_sound =
  QCheck2.Test.make
    ~name:"schema-unsat rules select nothing on conforming documents"
    ~count:300 seed_gen (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let rules = random_rules rng (2 + Rng.int rng 4) in
      let report = Analyzer.run ~schema rules in
      List.for_all
        (function
          | Diag.Unsat_schema { rule } ->
              let path = report.Analyzer.rules.(rule).Rule.path in
              List.for_all
                (fun _ ->
                  Eval.select_doc path
                    (conforming rng schema (Schema.root schema))
                  = [])
                [ (); (); (); (); () ]
          | _ -> true)
        report.Analyzer.diagnostics)

(* --- unknown tags: the rule cannot match the dictionary's document ---- *)

let qcheck_unknown_tag_sound =
  QCheck2.Test.make
    ~name:"unknown-tag rules select nothing on the dictionary's document"
    ~count:300 seed_gen (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let doc = random_doc rng in
      let dict = Dom.distinct_tags doc in
      (* Widen the tag pool so some rules mention tags the document
         lacks. *)
      let wide = Array.append tags [| "zz"; "ww" |] in
      let rules =
        List.init
          (2 + Rng.int rng 4)
          (fun _ ->
            {
              Rule.sign = (if Rng.bool rng then Rule.Allow else Rule.Deny);
              subject = "u";
              path = Random_path.generate rng cfg ~tags:wide ~values;
            })
      in
      let report = Analyzer.run ~dictionary:dict rules in
      List.for_all
        (function
          | Diag.Unknown_tag { rule; tag } ->
              (not (List.mem tag dict))
              && Eval.select_doc report.Analyzer.rules.(rule).Rule.path doc
                 = []
          | _ -> true)
        report.Analyzer.diagnostics)

(* --- the static memory bound dominates the engine's measured peak ----- *)

let engine_peak ?query ~compiled rules doc =
  let eng = Engine.create ?query ~compiled rules in
  List.iter
    (fun ev -> ignore (Engine.feed eng ev))
    (Dom.to_events doc);
  Engine.finish eng;
  (Engine.stats eng).Engine.peak_state_words

let qcheck_memory_bound_sound =
  QCheck2.Test.make
    ~name:"static state bound >= engine peak state words" ~count:200
    seed_gen (fun seed ->
      let rng = Rng.create (Int64.of_int seed) in
      let doc = random_doc rng in
      let rules = random_rules rng (1 + Rng.int rng 4) in
      let query =
        if Rng.bool rng then
          Some (Random_path.generate rng cfg ~tags ~values)
        else None
      in
      let compiled = Compile.compile ?query rules in
      let peak = engine_peak ?query ~compiled rules doc in
      let depth = Dom.depth doc in
      let bound = Memory_bound.compute ~depth compiled in
      (* Also with the alphabet restricted to the document's own tags —
         the tighter bound the dictionary pass uses must still hold on
         that document. *)
      let dict = Dom.distinct_tags doc in
      let restricted =
        Memory_bound.compute
          ~tag_possible:(fun t -> List.mem t dict)
          ~depth compiled
      in
      bound.Memory_bound.state_words >= peak
      && restricted.Memory_bound.state_words >= peak)

(* --- every diagnostic kind on a crafted policy ------------------------ *)

let test_all_kinds () =
  let rules =
    [
      Rule.allow ~subject:"u" "//b";
      Rule.allow ~subject:"u" "/a/b" (* dead: covered by //b *);
      Rule.deny ~subject:"u" "//b/d" (* deny below allow *);
      Rule.allow ~subject:"u" "//e/e" (* schema-unsat: e is a leaf *);
      Rule.allow ~subject:"u" "//zz" (* unknown tag *);
    ]
  in
  let dictionary = [ "a"; "b"; "c"; "d"; "e" ] in
  let report = Analyzer.run ~schema ~dictionary ~budget_bytes:64 rules in
  let slugs =
    List.sort_uniq compare
      (List.map Diag.slug report.Analyzer.diagnostics)
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " reported") true (List.mem s slugs))
    [ "dead-rule"; "overlap"; "unsat-schema"; "unknown-tag"; "memory-bound" ];
  (* The 64-byte budget is unmeetable: the bound diagnostic is an error
     and the report as a whole fails admission. *)
  Alcotest.(check bool) "budget exceeded is an error" true
    (Analyzer.has_errors report);
  (* The schema (depth 3, non-recursive) supplied the bound's depth. *)
  List.iter
    (function
      | Diag.Memory_bound { depth; depth_from_schema; _ } ->
          Alcotest.(check int) "schema depth" 3 depth;
          Alcotest.(check bool) "depth from schema" true depth_from_schema
      | _ -> ())
    report.Analyzer.diagnostics

(* --- card admission: same policy, two budgets ------------------------- *)

(* Descendant axes under nested predicates: cheap on the shallow document
   below, but with a worst case (every anchor depth ambiguous, condition
   sets multiplying) far past one kilobyte. *)
let heavy_rules =
  [
    Rule.allow ~subject:"u" "//a[.//b]//c";
    Rule.deny ~subject:"u" "//b[.//d][.//e]//a";
    Rule.allow ~subject:"u" "//c[.//a]//e";
  ]

let admission_world () =
  let drbg = Drbg.create ~seed:"analysis-admission" in
  let publisher = Rsa.generate drbg ~bits:512 in
  let user = Rsa.generate drbg ~bits:512 in
  let doc =
    Dom.element "a"
      [
        Dom.element "b" [ Dom.element "d" []; Dom.element "e" [] ];
        Dom.element "c" [ Dom.element "a" [ Dom.element "e" [] ] ];
      ]
  in
  let doc_id = "pol-1" in
  let published, doc_key = Publish.publish drbg ~publisher ~doc_id doc in
  let blob =
    Publish.encrypt_rules_for drbg ~publisher ~doc_key ~doc_id ~subject:"u"
      heavy_rules
  in
  let grant = Publish.grant drbg ~doc_key ~doc_id ~recipient:user.Rsa.public in
  (user, publisher, published, doc_id, blob, grant)

let card ~profile user = fun () ->
  Card.create ~profile ~preflight_depth:16 ~subject:"u" user

let test_admission_two_budgets () =
  let user, publisher, published, doc_id, blob, grant = admission_world () in
  let preflight c =
    match Card.install_wrapped_key c ~doc_id ~wrapped:grant with
    | Error e -> Alcotest.failf "grant install failed: %a" Card.pp_error e
    | Ok () ->
        Card.preflight c ~doc_id ~publisher:publisher.Rsa.public
          ~encrypted_rules:blob ()
  in
  (* The fleet profile admits the policy... *)
  (match preflight (card ~profile:Cost.fleet user ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fleet refused the policy: %a" Card.pp_error e);
  (* ...the 1 KB e-gate refuses it, with the bound as evidence. *)
  (match preflight (card ~profile:Cost.egate user ()) with
  | Error (Card.Rules_too_large { bound_bytes; budget_bytes }) ->
      Alcotest.(check int) "budget is the e-gate RAM"
        Cost.egate.Cost.ram_bytes budget_bytes;
      Alcotest.(check bool) "bound exceeds budget" true
        (bound_bytes > budget_bytes)
  | Ok () -> Alcotest.fail "e-gate admitted a policy past its RAM"
  | Error e -> Alcotest.failf "unexpected refusal: %a" Card.pp_error e);
  (* Without admission the e-gate accepts the upload and only fails (or
     not) at evaluation time — preflight is strictly opt-in. *)
  let lax = Card.create ~profile:Cost.egate ~subject:"u" user in
  (match Card.install_wrapped_key lax ~doc_id ~wrapped:grant with
  | Error e -> Alcotest.failf "grant install failed: %a" Card.pp_error e
  | Ok () -> ());
  (match
     Card.preflight lax ~doc_id ~publisher:publisher.Rsa.public
       ~encrypted_rules:blob ()
   with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "preflight fired while disabled: %a" Card.pp_error e);
  (* The admitted card actually evaluates the policy: the engine confirms
     the analyzer's "fits" verdict end to end. *)
  let big = card ~profile:Cost.fleet user () in
  (match Card.install_wrapped_key big ~doc_id ~wrapped:grant with
  | Error e -> Alcotest.failf "grant install failed: %a" Card.pp_error e
  | Ok () -> ());
  match
    Card.evaluate big
      (Publish.to_source published ~delivery:`Pull)
      ~encrypted_rules:blob ()
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "fleet evaluation failed: %a" Card.pp_error e

let test_admission_status_word () =
  let user, _publisher, published, doc_id, blob, grant = admission_world () in
  let c = card ~profile:Cost.egate user () in
  let host =
    Remote.Host.process
      (Remote.Host.create ~card:c ~resolve:(fun id ->
           if id = doc_id then
             Some (Publish.to_source published ~delivery:`Pull)
           else None)
         ())
  in
  let send ins data =
    host { Apdu.cla = Apdu.base_cla; ins; p1 = 0; p2 = 0; data }
  in
  let sw (r : Apdu.response) = (r.Apdu.sw1, r.Apdu.sw2) in
  Alcotest.(check bool) "select ok" true
    (sw (send Remote.Ins.select doc_id) = Remote.Sw.ok);
  Alcotest.(check bool) "grant ok" true
    (sw (send Remote.Ins.grant grant) = Remote.Sw.ok);
  (* The final frame of the rules chain is where admission answers. *)
  let frames = Apdu.segment ~cla:Apdu.base_cla ~ins:Remote.Ins.rules blob in
  let last = List.length frames - 1 in
  List.iteri
    (fun i f ->
      let expected =
        if i = last then Remote.Sw.rules_too_large else Remote.Sw.ok
      in
      Alcotest.(check bool)
        (Printf.sprintf "rules frame %d" i)
        true
        (sw (host f) = expected))
    frames;
  (* And the mapping survives the wire in both directions. *)
  let err = Card.Rules_too_large { bound_bytes = 9; budget_bytes = 1 } in
  Alcotest.(check bool) "to_sw" true
    (Remote.to_sw err = Remote.Sw.rules_too_large);
  match Remote.of_sw Remote.Sw.rules_too_large with
  | Some (Card.Rules_too_large _) -> ()
  | _ -> Alcotest.fail "of_sw lost the admission refusal"

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_dead_rules_removable;
    QCheck_alcotest.to_alcotest qcheck_containment_witnesses;
    QCheck_alcotest.to_alcotest qcheck_overlap_witnesses;
    QCheck_alcotest.to_alcotest qcheck_unsure_shadow_candidates;
    QCheck_alcotest.to_alcotest qcheck_unsat_schema_sound;
    QCheck_alcotest.to_alcotest qcheck_unknown_tag_sound;
    QCheck_alcotest.to_alcotest qcheck_memory_bound_sound;
    Alcotest.test_case "every diagnostic kind on a crafted policy" `Quick
      test_all_kinds;
    Alcotest.test_case "admission: fleet admits, e-gate refuses" `Quick
      test_admission_two_budgets;
    Alcotest.test_case "admission refusal on the APDU surface" `Quick
      test_admission_status_word;
  ]
