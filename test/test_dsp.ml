module Pki = Sdds_dsp.Pki
module Publish = Sdds_dsp.Publish
module Store = Sdds_dsp.Store
module Card = Sdds_soe.Card
module Cost = Sdds_soe.Cost
module Proxy = Sdds_proxy.Proxy
module Rule = Sdds_core.Rule
module Oracle = Sdds_core.Oracle
module Dom = Sdds_xml.Dom
module Generator = Sdds_xml.Generator
module Drbg = Sdds_crypto.Drbg
module Rsa = Sdds_crypto.Rsa
module Rng = Sdds_util.Rng

let dom = Alcotest.testable Dom.pp Dom.equal
let dom_opt = Alcotest.(option dom)

(* A small world shared by the tests: a publisher, two users with cards,
   one hospital document, per-user policies. *)
type world = {
  store : Store.t;
  drbg : Drbg.t;
  doc : Dom.t;
  doc_key : string;
  publisher : Rsa.keypair;
  alice : Card.t;
  bob : Card.t;
}

let alice_rules =
  [ Rule.allow ~subject:"alice" "//patient"; Rule.deny ~subject:"alice" "//ssn" ]

let bob_rules = [ Rule.allow ~subject:"bob" "//admission" ]

(* RSA keygen is the slow part; share one set of identities across all
   test worlds. *)
let identities =
  lazy
    (let d = Drbg.create ~seed:"dsp-identities" in
     (Rsa.generate d ~bits:512, Rsa.generate d ~bits:512, Rsa.generate d ~bits:512))

let make_world ?(profile = Cost.modern) ?(patients = 6) () =
  let drbg = Drbg.create ~seed:"dsp-world" in
  let publisher, alice_kp, bob_kp = Lazy.force identities in
  let pki = Pki.create () in
  Pki.register pki ~name:"alice" alice_kp.Rsa.public;
  Pki.register pki ~name:"bob" bob_kp.Rsa.public;
  let doc = Generator.hospital (Rng.create 31L) ~patients in
  let published, doc_key =
    Publish.publish drbg ~publisher ~doc_id:"hospital-1" doc
  in
  let store = Store.create () in
  Store.put_document store published;
  List.iter
    (fun (subject, rules) ->
      Store.put_rules store ~doc_id:"hospital-1" ~subject
        (Publish.encrypt_rules_for drbg ~publisher ~doc_key
           ~doc_id:"hospital-1" ~subject rules);
      let recipient = Option.get (Pki.lookup pki subject) in
      Store.put_grant store ~doc_id:"hospital-1" ~subject
        (Publish.grant drbg ~doc_key ~doc_id:"hospital-1" ~recipient))
    [ ("alice", alice_rules); ("bob", bob_rules) ];
  {
    store;
    drbg;
    doc;
    doc_key;
    publisher;
    alice = Card.create ~profile ~subject:"alice" alice_kp;
    bob = Card.create ~profile ~subject:"bob" bob_kp;
  }

let world = lazy (make_world ())

(* ------------------------------------------------------------------ *)
(* PKI                                                                 *)
(* ------------------------------------------------------------------ *)

let test_pki () =
  let d = Drbg.create ~seed:"pki" in
  let k1 = Rsa.generate d ~bits:256 in
  let k2 = Rsa.generate d ~bits:256 in
  let pki = Pki.create () in
  Pki.register pki ~name:"u1" k1.Rsa.public;
  Pki.register pki ~name:"u1" k1.Rsa.public (* idempotent *);
  Alcotest.(check bool) "lookup" true (Pki.lookup pki "u1" = Some k1.Rsa.public);
  Alcotest.(check bool) "missing" true (Pki.lookup pki "u2" = None);
  Alcotest.check_raises "rebind" (Invalid_argument "Pki.register: u1 already bound")
    (fun () -> Pki.register pki ~name:"u1" k2.Rsa.public);
  Alcotest.(check (list string)) "names" [ "u1" ] (Pki.names pki)

(* ------------------------------------------------------------------ *)
(* Publish                                                             *)
(* ------------------------------------------------------------------ *)

let test_publish_shape () =
  let w = Lazy.force world in
  match Store.get_document w.store "hospital-1" with
  | None -> Alcotest.fail "document missing"
  | Some p ->
      Alcotest.(check bool) "chunks" true (Array.length p.Publish.chunks > 4);
      Alcotest.(check int) "chunk plain size" Publish.default_chunk_bytes
        p.Publish.chunk_plain_bytes;
      (* Each ciphertext chunk is padded CBC: plain + 1..16 bytes. *)
      Array.iteri
        (fun i c ->
          Alcotest.(check bool)
            (Printf.sprintf "chunk %d size" i)
            true
            (String.length c mod 16 = 0))
        p.Publish.chunks;
      (* Signature verifies. *)
      Alcotest.(check bool) "signature" true
        (Rsa.verify p.Publish.publisher
           (Sdds_soe.Wire.signed_root_message ~doc_id:"hospital-1"
              ~merkle_root:p.Publish.merkle_root
              ~plain_length:p.Publish.plain_length)
           ~signature:p.Publish.root_signature)

(* ------------------------------------------------------------------ *)
(* End-to-end pull                                                     *)
(* ------------------------------------------------------------------ *)

let test_pull_view_matches_oracle () =
  let w = Lazy.force world in
  let proxy = Proxy.create ~store:w.store ~card:w.alice in
  match Proxy.run proxy (Proxy.Request.make "hospital-1") with
  | Error e -> Alcotest.failf "query failed: %a" Proxy.pp_error e
  | Ok outcome ->
      Alcotest.check dom_opt "view = oracle"
        (Oracle.authorized_view ~rules:alice_rules w.doc)
        outcome.Proxy.view;
      let r = outcome.Proxy.card_report in
      (* Alice's policy delivers most of the document, so nothing can be
         skipped — delivered data must be decrypted. *)
      Alcotest.(check bool) "time measured" true
        (r.Card.breakdown.Cost.total_ms > 0.0);
      Alcotest.(check bool) "xml produced" true (outcome.Proxy.xml <> None)

let test_narrow_policy_skips_chunks () =
  (* Bob only sees admissions: the large folder subtrees are proven
     irrelevant by their tag bitmaps and never transferred. *)
  let w = Lazy.force world in
  let proxy = Proxy.create ~store:w.store ~card:w.bob in
  match Proxy.run proxy (Proxy.Request.make "hospital-1") with
  | Error e -> Alcotest.failf "query failed: %a" Proxy.pp_error e
  | Ok outcome ->
      let r = outcome.Proxy.card_report in
      Alcotest.(check bool) "skipped some chunks" true
        (r.Card.chunks_consumed < r.Card.chunks_total);
      Alcotest.check dom_opt "bob view = oracle"
        (Oracle.authorized_view ~rules:bob_rules w.doc)
        outcome.Proxy.view

let test_pull_with_query () =
  let w = Lazy.force world in
  let proxy = Proxy.create ~store:w.store ~card:w.alice in
  match
    Proxy.run proxy (Proxy.Request.make ~xpath:"//patient/name" "hospital-1")
  with
  | Error e -> Alcotest.failf "query failed: %a" Proxy.pp_error e
  | Ok outcome ->
      Alcotest.check dom_opt "query view = oracle"
        (Oracle.authorized_view ~rules:alice_rules
           ~query:(Sdds_xpath.Parser.parse "//patient/name")
           w.doc)
        outcome.Proxy.view

let test_per_subject_views_differ () =
  let w = Lazy.force world in
  let va =
    match Proxy.run (Proxy.create ~store:w.store ~card:w.alice) (Proxy.Request.make "hospital-1") with
    | Ok o -> o.Proxy.view
    | Error e -> Alcotest.failf "alice failed: %a" Proxy.pp_error e
  in
  let vb =
    match Proxy.run (Proxy.create ~store:w.store ~card:w.bob) (Proxy.Request.make "hospital-1") with
    | Ok o -> o.Proxy.view
    | Error e -> Alcotest.failf "bob failed: %a" Proxy.pp_error e
  in
  Alcotest.check dom_opt "bob = oracle"
    (Oracle.authorized_view ~rules:bob_rules w.doc)
    vb;
  Alcotest.(check bool) "views differ" true (va <> vb)

let test_unknown_document_and_missing_grants () =
  let w = Lazy.force world in
  let proxy = Proxy.create ~store:w.store ~card:w.alice in
  (match Proxy.run proxy (Proxy.Request.make "nope") with
  | Error (Proxy.Unknown_document "nope") -> ()
  | _ -> Alcotest.fail "expected Unknown_document");
  (* A stranger with no grant. *)
  let d = Drbg.create ~seed:"eve" in
  let eve = Card.create ~subject:"eve" (Rsa.generate d ~bits:512) in
  let proxy_eve = Proxy.create ~store:w.store ~card:eve in
  match Proxy.run proxy_eve (Proxy.Request.make "hospital-1") with
  | Error Proxy.No_grant -> ()
  | _ -> Alcotest.fail "expected No_grant"

let test_push_costs_more_transfer () =
  (* Needs a policy that actually skips (bob's): push then transfers
     chunks that pull would never fetch. *)
  let w = Lazy.force world in
  let proxy = Proxy.create ~store:w.store ~card:w.bob in
  let pull =
    match Proxy.run proxy (Proxy.Request.make "hospital-1") with
    | Ok o -> o.Proxy.card_report
    | Error e -> Alcotest.failf "pull failed: %a" Proxy.pp_error e
  in
  let push =
    match Proxy.run proxy (Proxy.Request.make ~delivery:`Push "hospital-1") with
    | Ok o -> o.Proxy.card_report
    | Error e -> Alcotest.failf "push failed: %a" Proxy.pp_error e
  in
  (* Push transfers every chunk; pull only the consumed ones. Decryption
     is the same for both. *)
  Alcotest.(check bool) "push transfers more" true
    (push.Card.breakdown.Cost.bytes_transferred
    > pull.Card.breakdown.Cost.bytes_transferred);
  Alcotest.(check int) "same decryption"
    pull.Card.breakdown.Cost.bytes_decrypted
    push.Card.breakdown.Cost.bytes_decrypted

(* ------------------------------------------------------------------ *)
(* Policy change without re-encryption                                 *)
(* ------------------------------------------------------------------ *)

let test_policy_update_no_reencryption () =
  let w = make_world () in
  let proxy = Proxy.create ~store:w.store ~card:w.alice in
  let before = Option.get (Store.get_document w.store "hospital-1") in
  (* Tighten alice's policy: now she loses patient folders. *)
  let new_rules =
    [ Rule.allow ~subject:"alice" "//patient"; Rule.deny ~subject:"alice" "//folder";
      Rule.deny ~subject:"alice" "//ssn" ]
  in
  Store.put_rules w.store ~doc_id:"hospital-1" ~subject:"alice"
    (Publish.encrypt_rules_for w.drbg ~publisher:w.publisher
       ~doc_key:w.doc_key ~doc_id:"hospital-1" ~subject:"alice" new_rules);
  let after = Option.get (Store.get_document w.store "hospital-1") in
  (* The encrypted document is byte-identical: no re-encryption, no key
     redistribution. *)
  Alcotest.(check bool) "chunks untouched" true
    (before.Publish.chunks = after.Publish.chunks);
  match Proxy.run proxy (Proxy.Request.make "hospital-1") with
  | Error e -> Alcotest.failf "query failed: %a" Proxy.pp_error e
  | Ok outcome ->
      Alcotest.check dom_opt "new policy enforced"
        (Oracle.authorized_view ~rules:new_rules w.doc)
        outcome.Proxy.view

(* ------------------------------------------------------------------ *)
(* Tamper detection (E9 behaviours)                                    *)
(* ------------------------------------------------------------------ *)

let consumed_chunk_attack tamper =
  (* Fresh world per attack; tampering targets chunk 1, which evaluation
     under alice's broad policy certainly consumes. *)
  let w = make_world () in
  tamper w.store;
  let proxy = Proxy.create ~store:w.store ~card:w.alice in
  Proxy.run proxy (Proxy.Request.make "hospital-1")

let expect_integrity = function
  | Error (Proxy.Card_error (Card.Integrity_failure _)) -> ()
  | Error e -> Alcotest.failf "expected integrity failure, got %a" Proxy.pp_error e
  | Ok _ -> Alcotest.fail "tampering went undetected"

let test_tamper_substitute_detected () =
  expect_integrity
    (consumed_chunk_attack (fun store ->
         Store.tamper_substitute store ~doc_id:"hospital-1" ~chunk:1
           (String.make 256 '\x42')))

let test_tamper_bitflip_detected () =
  expect_integrity
    (consumed_chunk_attack (fun store ->
         Store.tamper_flip_bit store ~doc_id:"hospital-1" ~chunk:2 ~bit:13))

let test_tamper_swap_detected () =
  expect_integrity
    (consumed_chunk_attack (fun store ->
         Store.tamper_swap store ~doc_id:"hospital-1" 1 2))

let test_tamper_truncate_detected () =
  let w = make_world () in
  let p = Option.get (Store.get_document w.store "hospital-1") in
  Store.tamper_truncate w.store ~doc_id:"hospital-1"
    ~keep_chunks:(Array.length p.Publish.chunks - 2);
  let proxy = Proxy.create ~store:w.store ~card:w.alice in
  match Proxy.run proxy (Proxy.Request.make "hospital-1") with
  | Error (Proxy.Card_error (Card.Integrity_failure _)) -> ()
  | Error e -> Alcotest.failf "expected failure, got %a" Proxy.pp_error e
  | Ok _ -> Alcotest.fail "truncation went undetected"

(* ------------------------------------------------------------------ *)
(* RAM budget on the e-gate profile                                    *)
(* ------------------------------------------------------------------ *)

let test_egate_ram_budget_enforced () =
  (* The e-gate card has 1 KB: a modest evaluation fits, a rule explosion
     does not. *)
  let w = make_world ~profile:Cost.egate ~patients:3 () in
  let proxy = Proxy.create ~store:w.store ~card:w.alice in
  (match Proxy.run proxy (Proxy.Request.make "hospital-1") with
  | Ok o ->
      Alcotest.(check bool) "fits in 1KB" true
        (o.Proxy.card_report.Card.ram_peak_bytes <= 1024)
  | Error e -> Alcotest.failf "expected fit, got %a" Proxy.pp_error e);
  (* Hundreds of descendant rules with predicates blow the token stack. *)
  (* The rules must engage real tags — automata over tags absent from the
     document are discarded at the root by the skip index itself. *)
  let heavy =
    List.concat_map
      (fun i ->
        [ Rule.allow ~subject:"alice"
            (Printf.sprintf "//folder[label]//prescription[dosage>\"%d\"]" i) ])
      (List.init 120 Fun.id)
  in
  Store.put_rules w.store ~doc_id:"hospital-1" ~subject:"alice"
    (Publish.encrypt_rules_for w.drbg ~publisher:w.publisher
       ~doc_key:w.doc_key ~doc_id:"hospital-1" ~subject:"alice" heavy);
  match Proxy.run proxy (Proxy.Request.make "hospital-1") with
  | Error (Proxy.Card_error (Card.Memory_exceeded _)) -> ()
  | Error e -> Alcotest.failf "expected memory error, got %a" Proxy.pp_error e
  | Ok o ->
      Alcotest.failf "expected memory exhaustion, peak=%d"
        o.Proxy.card_report.Card.ram_peak_bytes

let suite =
  [
    Alcotest.test_case "pki" `Quick test_pki;
    Alcotest.test_case "publish shape" `Quick test_publish_shape;
    Alcotest.test_case "pull view = oracle" `Quick test_pull_view_matches_oracle;
    Alcotest.test_case "pull with query" `Quick test_pull_with_query;
    Alcotest.test_case "narrow policy skips" `Quick
      test_narrow_policy_skips_chunks;
    Alcotest.test_case "per-subject views" `Quick test_per_subject_views_differ;
    Alcotest.test_case "unknown doc / no grant" `Quick
      test_unknown_document_and_missing_grants;
    Alcotest.test_case "push vs pull costs" `Quick test_push_costs_more_transfer;
    Alcotest.test_case "policy update without re-encryption" `Quick
      test_policy_update_no_reencryption;
    Alcotest.test_case "tamper: substitution" `Quick
      test_tamper_substitute_detected;
    Alcotest.test_case "tamper: bit flip" `Quick test_tamper_bitflip_detected;
    Alcotest.test_case "tamper: swap" `Quick test_tamper_swap_detected;
    Alcotest.test_case "tamper: truncation" `Quick
      test_tamper_truncate_detected;
    Alcotest.test_case "e-gate RAM budget" `Quick
      test_egate_ram_budget_enforced;
  ]

let test_protected_query_same_view () =
  let w = Lazy.force world in
  (* A value-predicate policy creates pending regions worth protecting. *)
  let rules =
    [ Rule.allow ~subject:"alice" {|//patient[age>"50"]|};
      Rule.deny ~subject:"alice" "//ssn" ]
  in
  Store.put_rules w.store ~doc_id:"hospital-1" ~subject:"alice"
    (Publish.encrypt_rules_for w.drbg ~publisher:w.publisher
       ~doc_key:w.doc_key ~doc_id:"hospital-1" ~subject:"alice" rules);
  let proxy = Proxy.create ~store:w.store ~card:w.alice in
  let plain =
    match Proxy.run proxy (Proxy.Request.make "hospital-1") with
    | Ok o -> o.Proxy.view
    | Error e -> Alcotest.failf "plain failed: %a" Proxy.pp_error e
  in
  let protected_view =
    match Proxy.run proxy (Proxy.Request.make ~protect:true "hospital-1") with
    | Ok o -> o.Proxy.view
    | Error e -> Alcotest.failf "protected failed: %a" Proxy.pp_error e
  in
  Alcotest.check dom_opt "same view" plain protected_view;
  Alcotest.check dom_opt "= oracle"
    (Oracle.authorized_view ~rules w.doc)
    protected_view;
  (* Restore the shared world's policy for other tests. *)
  Store.put_rules w.store ~doc_id:"hospital-1" ~subject:"alice"
    (Publish.encrypt_rules_for w.drbg ~publisher:w.publisher
       ~doc_key:w.doc_key ~doc_id:"hospital-1" ~subject:"alice" alice_rules)

let protected_suite =
  [ Alcotest.test_case "protected query same view" `Quick
      test_protected_query_same_view ]

(* ------------------------------------------------------------------ *)
(* Revocation                                                          *)
(* ------------------------------------------------------------------ *)

let test_lazy_revocation_is_not_enough () =
  let w = make_world () in
  let proxy = Proxy.create ~store:w.store ~card:w.alice in
  (* First query installs the key on alice's card. *)
  (match Proxy.run proxy (Proxy.Request.make "hospital-1") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "setup failed: %a" Proxy.pp_error e);
  (* "Revoke" by dropping the grant only: a card already holding the key
     is unaffected — the cautionary half of the revocation story. *)
  Store.put_grant w.store ~doc_id:"hospital-1" ~subject:"alice" "";
  match Proxy.run proxy (Proxy.Request.make "hospital-1") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "lazy revocation should not block: %a" Proxy.pp_error e

let test_rotation_revokes () =
  let w = make_world () in
  let proxy = Proxy.create ~store:w.store ~card:w.alice in
  (match Proxy.run proxy (Proxy.Request.make "hospital-1") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "setup failed: %a" Proxy.pp_error e);
  (* Rotate the document key; re-grant bob but not alice. *)
  let published = Option.get (Store.get_document w.store "hospital-1") in
  let rotated, new_key =
    Publish.rotate w.drbg ~publisher:w.publisher ~old_key:w.doc_key published
  in
  Store.put_document w.store rotated;
  Store.put_rules w.store ~doc_id:"hospital-1" ~subject:"bob"
    (Publish.encrypt_rules_for w.drbg ~publisher:w.publisher
       ~doc_key:new_key ~doc_id:"hospital-1" ~subject:"bob" bob_rules);
  Store.put_grant w.store ~doc_id:"hospital-1" ~subject:"bob"
    (Publish.grant w.drbg ~doc_key:new_key ~doc_id:"hospital-1"
       ~recipient:(Card.public_key w.bob));
  Store.put_grant w.store ~doc_id:"hospital-1" ~subject:"alice" "";
  (* Alice's stale key no longer opens anything — and the failure names
     the cause, not a tampering false-positive. *)
  (match Proxy.run proxy (Proxy.Request.make "hospital-1") with
  | Error (Proxy.Card_error (Card.Stale_key _))
  | Error (Proxy.Card_error (Card.Bad_rules _)) ->
      (* (the rule blob was also re-keyed, whichever check fires first) *)
      ()
  | Error e -> Alcotest.failf "unexpected error: %a" Proxy.pp_error e
  | Ok _ -> Alcotest.fail "revoked alice still reads");
  (* Bob transitions to the new key transparently. *)
  let bob_proxy = Proxy.create ~store:w.store ~card:w.bob in
  match Proxy.run bob_proxy (Proxy.Request.make "hospital-1") with
  | Ok o ->
      Alcotest.check dom_opt "bob still reads"
        (Oracle.authorized_view ~rules:bob_rules w.doc)
        o.Proxy.view
  | Error e -> Alcotest.failf "bob failed after rotation: %a" Proxy.pp_error e

let revocation_suite =
  [
    Alcotest.test_case "lazy revocation is not enough" `Quick
      test_lazy_revocation_is_not_enough;
    Alcotest.test_case "rotation revokes" `Quick test_rotation_revokes;
  ]

let test_reader_cannot_self_escalate () =
  (* Alice holds the document key (she is an authorized reader), crafts a
     rule blob granting herself everything, and plants it on the DSP. The
     card rejects it: rule blobs must carry the publisher's signature. *)
  let w = make_world () in
  let d = Drbg.create ~seed:"mallory" in
  let alice_keys = Rsa.generate d ~bits:512 in
  let forged =
    Sdds_soe.Wire.encrypt_rules d ~key:w.doc_key ~doc_id:"hospital-1"
      ~subject:"alice" ~signer:alice_keys.Rsa.secret
      [ Rule.allow ~subject:"alice" "//*" ]
  in
  Store.put_rules w.store ~doc_id:"hospital-1" ~subject:"alice" forged;
  let proxy = Proxy.create ~store:w.store ~card:w.alice in
  match Proxy.run proxy (Proxy.Request.make "hospital-1") with
  | Error (Proxy.Card_error (Card.Bad_rules _)) -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" Proxy.pp_error e
  | Ok _ -> Alcotest.fail "self-escalation went through"

let authority_suite =
  [ Alcotest.test_case "reader cannot self-escalate" `Quick
      test_reader_cannot_self_escalate ]

let test_policy_rollback_rejected () =
  (* The DSP keeps a copy of the old (looser) policy and replays it after
     the publisher tightened it. The card's version high-water mark
     refuses the downgrade. *)
  let w = make_world () in
  let proxy = Proxy.create ~store:w.store ~card:w.alice in
  let loose_blob =
    Option.get (Store.get_rules w.store ~doc_id:"hospital-1" ~subject:"alice")
  in
  (* v1: tightened policy; the card enforces it. *)
  Store.put_rules w.store ~doc_id:"hospital-1" ~subject:"alice"
    (Publish.encrypt_rules_for w.drbg ~publisher:w.publisher
       ~doc_key:w.doc_key ~doc_id:"hospital-1" ~subject:"alice" ~version:1
       [ Rule.allow ~subject:"alice" "//admission" ]);
  (match Proxy.run proxy (Proxy.Request.make "hospital-1") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "v1 failed: %a" Proxy.pp_error e);
  (* Replay v0. *)
  Store.put_rules w.store ~doc_id:"hospital-1" ~subject:"alice" loose_blob;
  match Proxy.run proxy (Proxy.Request.make "hospital-1") with
  | Error (Proxy.Card_error (Card.Replayed_rules { seen = 1; offered = 0 })) ->
      ()
  | Error e -> Alcotest.failf "unexpected error: %a" Proxy.pp_error e
  | Ok _ -> Alcotest.fail "rollback went through"

let rollback_suite =
  [ Alcotest.test_case "policy rollback rejected" `Quick
      test_policy_rollback_rejected ]

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let ok_io = function
  | Ok v -> v
  | Error e -> Alcotest.failf "store io: %s" (Sdds_dsp.Store_io.string_of_error e)

let with_tmpdir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "sdds-test-%d" (Hashtbl.hash (Sys.time ())))
  in
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir))))
    (fun () -> f dir)

let test_store_roundtrip () =
  let w = make_world () in
  with_tmpdir (fun dir ->
      ok_io (Sdds_dsp.Store_io.save w.store ~dir);
      let loaded = ok_io (Sdds_dsp.Store_io.load ~dir) in
      Alcotest.(check (list string)) "documents" [ "hospital-1" ]
        (Store.list_documents loaded);
      (* A fresh card queries the reloaded store end to end. *)
      let _, alice_kp, _ = Lazy.force identities in
      let card = Card.create ~profile:Cost.modern ~subject:"alice" alice_kp in
      let proxy = Proxy.create ~store:loaded ~card in
      match Proxy.run proxy (Proxy.Request.make "hospital-1") with
      | Ok o ->
          Alcotest.check dom_opt "view survives persistence"
            (Oracle.authorized_view ~rules:alice_rules w.doc)
            o.Proxy.view
      | Error e -> Alcotest.failf "query failed: %a" Proxy.pp_error e)

let test_store_disk_tampering_detected () =
  let w = make_world () in
  with_tmpdir (fun dir ->
      ok_io (Sdds_dsp.Store_io.save w.store ~dir);
      (* Corrupt one document file on disk (flip a late byte, inside some
         chunk's ciphertext). *)
      let docs = Filename.concat dir "docs" in
      let file = Filename.concat docs (Sys.readdir docs).(0) in
      let ic = open_in_bin file in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let b = Bytes.of_string content in
      let i = Bytes.length b - 40 in
      Bytes.set_uint8 b i (Bytes.get_uint8 b i lxor 0xff);
      let oc = open_out_bin file in
      output_bytes oc b;
      close_out oc;
      let loaded = ok_io (Sdds_dsp.Store_io.load ~dir) in
      let _, alice_kp, _ = Lazy.force identities in
      let card = Card.create ~profile:Cost.modern ~subject:"alice" alice_kp in
      let proxy = Proxy.create ~store:loaded ~card in
      match Proxy.run proxy (Proxy.Request.make "hospital-1") with
      | Error (Proxy.Card_error (Card.Integrity_failure _))
      | Error (Proxy.Card_error (Card.Stale_key _))
      | Error (Proxy.Card_error Card.Bad_signature)
      | Error (Proxy.Card_error (Card.Bad_rules _)) ->
          ()
      | Error e -> Alcotest.failf "unexpected error: %a" Proxy.pp_error e
      | Ok _ -> Alcotest.fail "disk tampering went undetected")

let test_keyfile_roundtrip () =
  let d = Drbg.create ~seed:"keyfile" in
  let kp = Rsa.generate d ~bits:512 in
  with_tmpdir (fun dir ->
      let sk = Filename.concat dir "id.sk" in
      let pk = Filename.concat dir "id.pk" in
      ok_io (Sdds_dsp.Store_io.Keyfile.save_keypair kp ~path:sk);
      ok_io (Sdds_dsp.Store_io.Keyfile.save_public kp.Rsa.public ~path:pk);
      let kp' = ok_io (Sdds_dsp.Store_io.Keyfile.load_keypair ~path:sk) in
      let pub' = ok_io (Sdds_dsp.Store_io.Keyfile.load_public ~path:pk) in
      Alcotest.(check bool) "public matches" true (pub' = kp.Rsa.public);
      Alcotest.(check bool) "keypair usable" true
        (let sig_ = Rsa.sign kp'.Rsa.secret "m" in
         Rsa.verify kp.Rsa.public "m" ~signature:sig_);
      (* Wrong magic rejected. *)
      match Sdds_dsp.Store_io.Keyfile.load_keypair ~path:pk with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected magic failure")

let persistence_suite =
  [
    Alcotest.test_case "store roundtrip" `Quick test_store_roundtrip;
    Alcotest.test_case "disk tampering detected" `Quick
      test_store_disk_tampering_detected;
    Alcotest.test_case "keyfile roundtrip" `Quick test_keyfile_roundtrip;
  ]

let test_protected_breakdown_consistent () =
  (* The protected report's transfer accounting must reflect the guarded
     stream, not the plain one. *)
  let w = make_world () in
  let rules = [ Rule.allow ~subject:"alice" {|//patient[age>"50"]|} ] in
  Store.put_rules w.store ~doc_id:"hospital-1" ~subject:"alice"
    (Publish.encrypt_rules_for w.drbg ~publisher:w.publisher
       ~doc_key:w.doc_key ~doc_id:"hospital-1" ~subject:"alice" rules);
  let proxy = Proxy.create ~store:w.store ~card:w.alice in
  (* Warm the card's prepared-evaluation cache so both measured runs pay
     identical setup costs and the deltas isolate the guarded stream. *)
  (match Proxy.run proxy (Proxy.Request.make "hospital-1") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "warm-up failed: %a" Proxy.pp_error e);
  let plain =
    match Proxy.run proxy (Proxy.Request.make "hospital-1") with
    | Ok o -> o.Proxy.card_report
    | Error e -> Alcotest.failf "plain failed: %a" Proxy.pp_error e
  in
  let prot =
    match Proxy.run proxy (Proxy.Request.make ~protect:true "hospital-1") with
    | Ok o -> o.Proxy.card_report
    | Error e -> Alcotest.failf "protected failed: %a" Proxy.pp_error e
  in
  (* Guarded streams are strictly larger (framing + key releases), and the
     byte delta must appear in the transfer accounting. *)
  Alcotest.(check bool) "guarded output larger" true
    (prot.Card.output_bytes > plain.Card.output_bytes);
  Alcotest.(check int) "bytes_transferred reflects the delta"
    (prot.Card.output_bytes - plain.Card.output_bytes)
    (prot.Card.breakdown.Cost.bytes_transferred
    - plain.Card.breakdown.Cost.bytes_transferred);
  Alcotest.(check bool) "time reflects the delta" true
    (prot.Card.breakdown.Cost.total_ms > plain.Card.breakdown.Cost.total_ms)

let protected_accounting_suite =
  [ Alcotest.test_case "protected breakdown consistent" `Quick
      test_protected_breakdown_consistent ]
