module Varint = Sdds_util.Varint
module Fnv = Sdds_util.Fnv
module Bitset = Sdds_util.Bitset
module Hex = Sdds_util.Hex
module Rng = Sdds_util.Rng

let check = Alcotest.(check int)

let varint_roundtrip n =
  let buf = Buffer.create 8 in
  Varint.write buf n;
  let s = Buffer.contents buf in
  let v, pos = Varint.read s 0 in
  Alcotest.(check int) "value" n v;
  Alcotest.(check int) "consumed" (String.length s) pos;
  Alcotest.(check int) "size" (String.length s) (Varint.size n)

let test_varint_basic () =
  List.iter varint_roundtrip [ 0; 1; 127; 128; 255; 300; 16384; 1 lsl 30 ]

let test_varint_boundaries () =
  varint_roundtrip max_int;
  check "1 byte" 1 (Varint.size 127);
  check "2 bytes" 2 (Varint.size 128);
  check "2 bytes" 2 (Varint.size 16383);
  check "3 bytes" 3 (Varint.size 16384)

let test_varint_negative () =
  Alcotest.check_raises "negative" (Invalid_argument "Varint.write: negative")
    (fun () -> Varint.write (Buffer.create 4) (-1))

let test_varint_truncated () =
  (* A continuation byte with nothing after it. *)
  (try
     ignore (Varint.read "\x80" 0);
     Alcotest.fail "expected exception"
   with Invalid_argument _ -> ())

let test_varint_write_bytes () =
  let b = Bytes.make 8 'x' in
  let next = Varint.write_bytes b 1 300 in
  Alcotest.(check int) "offset" (1 + Varint.size 300) next;
  let v, _ = Varint.read (Bytes.to_string b) 1 in
  check "value" 300 v

let test_varint_concat () =
  let buf = Buffer.create 16 in
  List.iter (Varint.write buf) [ 5; 1000; 0; 77777 ];
  let s = Buffer.contents buf in
  let v1, p = Varint.read s 0 in
  let v2, p = Varint.read s p in
  let v3, p = Varint.read s p in
  let v4, p = Varint.read s p in
  Alcotest.(check (list int)) "values" [ 5; 1000; 0; 77777 ] [ v1; v2; v3; v4 ];
  check "consumed all" (String.length s) p

let qcheck_varint =
  QCheck2.Test.make ~name:"varint roundtrip" ~count:500
    QCheck2.Gen.(map abs int)
    (fun n ->
      let buf = Buffer.create 8 in
      Varint.write buf n;
      fst (Varint.read (Buffer.contents buf) 0) = n)

let test_bitset_basic () =
  let b = Bitset.create 20 in
  Alcotest.(check bool) "empty" true (Bitset.is_empty b);
  Bitset.set b 0;
  Bitset.set b 7;
  Bitset.set b 19;
  Alcotest.(check bool) "mem 0" true (Bitset.mem b 0);
  Alcotest.(check bool) "mem 1" false (Bitset.mem b 1);
  Alcotest.(check bool) "mem 19" true (Bitset.mem b 19);
  check "cardinal" 3 (Bitset.cardinal b);
  Bitset.clear b 7;
  check "cardinal after clear" 2 (Bitset.cardinal b);
  Alcotest.(check (list int)) "elements" [ 0; 19 ] (Bitset.elements b)

let test_bitset_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitset: index out of range")
    (fun () -> Bitset.set b 8)

let test_bitset_set_ops () =
  let a = Bitset.of_list 16 [ 1; 3; 5 ] in
  let b = Bitset.of_list 16 [ 3; 5; 9 ] in
  let i = Bitset.inter a b in
  Alcotest.(check (list int)) "inter" [ 3; 5 ] (Bitset.elements i);
  Alcotest.(check bool) "subset yes" true (Bitset.subset i a);
  Alcotest.(check bool) "subset no" false (Bitset.subset a b);
  let u = Bitset.copy a in
  Bitset.union_into u b;
  Alcotest.(check (list int)) "union" [ 1; 3; 5; 9 ] (Bitset.elements u)

let test_bitset_project_inject () =
  let parent = Bitset.of_list 32 [ 2; 5; 11; 30 ] in
  let sub = Bitset.of_list 32 [ 5; 30 ] in
  let packed = Bitset.project ~parent sub in
  check "packed capacity" 4 (Bitset.capacity packed);
  Alcotest.(check (list int)) "packed bits" [ 1; 3 ] (Bitset.elements packed);
  let back = Bitset.inject ~parent packed in
  Alcotest.(check bool) "roundtrip" true (Bitset.equal back sub)

let test_bitset_project_not_subset () =
  let parent = Bitset.of_list 8 [ 1 ] in
  let sub = Bitset.of_list 8 [ 2 ] in
  Alcotest.check_raises "not a subset"
    (Invalid_argument "Bitset.project: not a subset") (fun () ->
      ignore (Bitset.project ~parent sub))

let test_bitset_encode_decode () =
  let b = Bitset.of_list 19 [ 0; 8; 18 ] in
  let buf = Buffer.create 4 in
  Bitset.encode buf b;
  Alcotest.(check int) "encoded size" (Bitset.encoded_size ~capacity:19)
    (Buffer.length buf);
  let decoded, next = Bitset.decode ~capacity:19 (Buffer.contents buf) 0 in
  Alcotest.(check bool) "equal" true (Bitset.equal decoded b);
  check "next" (Buffer.length buf) next

let qcheck_bitset_project =
  QCheck2.Test.make ~name:"bitset project/inject roundtrip" ~count:300
    QCheck2.Gen.(
      let* cap = 1 -- 64 in
      let* parent = list_size (0 -- cap) (0 -- (cap - 1)) in
      let* mask = list_size (return (List.length parent)) bool in
      return (cap, parent, mask))
    (fun (cap, parent_l, mask) ->
      let parent = Bitset.of_list cap parent_l in
      let sub_l =
        List.filteri (fun i _ -> List.nth mask i) (Bitset.elements parent)
      in
      let sub = Bitset.of_list cap sub_l in
      let packed = Bitset.project ~parent sub in
      Bitset.equal (Bitset.inject ~parent packed) sub)

let test_hex () =
  Alcotest.(check string) "encode" "00ff10" (Hex.encode "\x00\xff\x10");
  Alcotest.(check string) "decode" "\x00\xff\x10" (Hex.decode "00FF10");
  Alcotest.check_raises "odd" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (Hex.decode "abc"))

let qcheck_hex =
  QCheck2.Test.make ~name:"hex roundtrip" ~count:300 QCheck2.Gen.string
    (fun s -> Hex.decode (Hex.encode s) = s)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_split_independent () =
  let a = Rng.create 42L in
  let b = Rng.split a in
  let x = Rng.int64 a and y = Rng.int64 b in
  Alcotest.(check bool) "different streams" true (x <> y)

let test_rng_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10)
  done;
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.0 in
    Alcotest.(check bool) "float range" true (v >= 0.0 && v < 2.0)
  done

let test_rng_pick_weighted () =
  let rng = Rng.create 1L in
  let seen_a = ref false and seen_b = ref false in
  for _ = 1 to 200 do
    match Rng.pick_weighted rng [| (1, `A); (3, `B); (0, `C) |] with
    | `A -> seen_a := true
    | `B -> seen_b := true
    | `C -> Alcotest.fail "zero-weight choice picked"
  done;
  Alcotest.(check bool) "a seen" true !seen_a;
  Alcotest.(check bool) "b seen" true !seen_b

let test_rng_shuffle_permutation () =
  let rng = Rng.create 5L in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 20 Fun.id) sorted

(* FNV-1a 64: three subsystems (the fleet ring, the dissemination
   clusterer, the protocol checker's visited set) agree on this hash, so
   pin it to the published reference vectors, not just to itself. *)
let test_fnv_reference_vectors () =
  List.iter
    (fun (input, expect) ->
      Alcotest.(check string)
        (Printf.sprintf "fnv1a64 %S" input)
        expect
        (Fnv.to_hex (Fnv.fnv1a64 input)))
    [
      ("", "cbf29ce484222325");
      ("a", "af63dc4c8601ec8c");
      ("b", "af63df4c8601f1a5");
      ("c", "af63de4c8601eff2");
      ("foobar", "85944171f73967e8");
      ("hello world", "779a65e7023cd2e7");
      ("chongo was here!\n", "46810940eff5f915");
    ]

let test_fnv_incremental_matches_one_shot () =
  let s = "the quick brown fox jumps over the lazy dog" in
  Alcotest.(check string)
    "feed seed = fnv1a64"
    (Fnv.to_hex (Fnv.fnv1a64 s))
    (Fnv.to_hex (Fnv.feed Fnv.seed s));
  let by_char =
    String.fold_left (fun h c -> Fnv.feed_char h c) Fnv.seed s
  in
  Alcotest.(check string)
    "char-at-a-time = one-shot"
    (Fnv.to_hex (Fnv.fnv1a64 s))
    (Fnv.to_hex by_char)

(* Splitting the input anywhere and feeding the pieces in order gives
   the hash of the concatenation: the property streaming callers rely
   on. *)
let qcheck_fnv_split_equivalence =
  QCheck2.Test.make ~name:"fnv: feed (feed seed a) b = fnv1a64 (a ^ b)"
    ~count:500
    QCheck2.Gen.(pair (string_size (int_bound 64)) (string_size (int_bound 64)))
    (fun (a, b) ->
      Fnv.feed (Fnv.feed Fnv.seed a) b = Fnv.fnv1a64 (a ^ b))

let suite =
  [
    Alcotest.test_case "varint basic" `Quick test_varint_basic;
    Alcotest.test_case "varint boundaries" `Quick test_varint_boundaries;
    Alcotest.test_case "varint negative" `Quick test_varint_negative;
    Alcotest.test_case "varint truncated" `Quick test_varint_truncated;
    Alcotest.test_case "varint write_bytes" `Quick test_varint_write_bytes;
    Alcotest.test_case "varint concat" `Quick test_varint_concat;
    QCheck_alcotest.to_alcotest qcheck_varint;
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    Alcotest.test_case "bitset set ops" `Quick test_bitset_set_ops;
    Alcotest.test_case "bitset project/inject" `Quick test_bitset_project_inject;
    Alcotest.test_case "bitset project not subset" `Quick
      test_bitset_project_not_subset;
    Alcotest.test_case "bitset encode/decode" `Quick test_bitset_encode_decode;
    QCheck_alcotest.to_alcotest qcheck_bitset_project;
    Alcotest.test_case "hex" `Quick test_hex;
    QCheck_alcotest.to_alcotest qcheck_hex;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng pick_weighted" `Quick test_rng_pick_weighted;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "fnv reference vectors" `Quick
      test_fnv_reference_vectors;
    Alcotest.test_case "fnv incremental = one-shot" `Quick
      test_fnv_incremental_matches_one_shot;
    QCheck_alcotest.to_alcotest qcheck_fnv_split_equivalence;
  ]
