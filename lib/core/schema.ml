module Ast = Sdds_xpath.Ast

type t = {
  root : string;
  children : (string, string list) Hashtbl.t;
  text : (string, unit) Hashtbl.t;
}

let root t = t.root

let declared t tag = String.equal tag t.root || Hashtbl.mem t.children tag

let children t tag =
  match Hashtbl.find_opt t.children tag with Some l -> l | None -> []

let text_allowed t tag = Hashtbl.mem t.text tag

let tags t =
  let acc = ref [ t.root ] in
  Hashtbl.iter
    (fun parent kids ->
      acc := parent :: List.rev_append kids !acc)
    t.children;
  List.sort_uniq String.compare !acc

let make ~root decls =
  let children = Hashtbl.create 16 in
  let text = Hashtbl.create 16 in
  List.iter
    (fun (name, kids) ->
      if Hashtbl.mem children name then
        invalid_arg ("Schema: duplicate declaration of " ^ name);
      let elems =
        List.filter
          (fun k ->
            if String.equal k "#text" then begin
              Hashtbl.replace text name ();
              false
            end
            else true)
          kids
      in
      Hashtbl.replace children name elems)
    decls;
  { root; children; text }

(* Textual format, one declaration per line:
     name = child1 child2 ... [#text]
   The first declared element is the document root; '#' starts a comment;
   blank lines are ignored. An element mentioned only on right-hand sides
   is a leaf (no children, no text). *)
let of_string s =
  let decls =
    String.split_on_char '\n' s
    |> List.filter_map (fun line ->
           let line = String.trim line in
           (* Whole-line comments only: '#' elsewhere is "#text". *)
           if line = "" || line.[0] = '#' then None
           else
             match String.index_opt line '=' with
             | None ->
                 invalid_arg
                   ("Schema.of_string: expected 'name = children': " ^ line)
             | Some i ->
                 let name = String.trim (String.sub line 0 i) in
                 let rhs =
                   String.sub line (i + 1) (String.length line - i - 1)
                 in
                 let kids =
                   String.split_on_char ' ' rhs
                   |> List.map String.trim
                   |> List.filter (fun k -> k <> "")
                 in
                 if name = "" then
                   invalid_arg "Schema.of_string: empty element name";
                 Some (name, kids))
  in
  match decls with
  | [] -> invalid_arg "Schema.of_string: no declarations"
  | (root, _) :: _ -> make ~root decls

(* ------------------------------------------------------------------ *)
(* Depth bound                                                         *)
(* ------------------------------------------------------------------ *)

(* Longest root-to-leaf element chain of any admitted document, or [None]
   when the schema is recursive (a tag reachable from itself): admitted
   documents then have unbounded depth. *)
let depth_bound t =
  (* DFS from the root with an explicit on-path set for cycle detection
     and memoized heights. *)
  let memo : (string, int option) Hashtbl.t = Hashtbl.create 16 in
  let rec height on_path tag =
    if List.mem tag on_path then None
    else
      match Hashtbl.find_opt memo tag with
      | Some h -> h
      | None ->
          let on_path = tag :: on_path in
          let h =
            List.fold_left
              (fun acc kid ->
                match (acc, height on_path kid) with
                | None, _ | _, None -> None
                | Some a, Some hk -> Some (max a (hk + 1)))
              (Some 1) (children t tag)
          in
          Hashtbl.replace memo tag h;
          h
  in
  height [] t.root

(* ------------------------------------------------------------------ *)
(* Path satisfiability                                                 *)
(* ------------------------------------------------------------------ *)

module SSet = Set.Make (String)

(* Tags reachable (as strict descendants) from any tag in [from]. *)
let reachable t from =
  let rec grow seen frontier =
    match frontier with
    | [] -> seen
    | tag :: rest ->
        let kids =
          List.filter (fun k -> not (SSet.mem k seen)) (children t tag)
        in
        grow
          (List.fold_left (fun s k -> SSet.add k s) seen kids)
          (kids @ rest)
  in
  SSet.fold (fun tag acc -> grow acc [ tag ]) from SSet.empty

let step_candidates t ctx { Ast.axis; test; _ } =
  let pool = match axis with Ast.Child ->
      SSet.fold (fun tag acc ->
          List.fold_left (fun s k -> SSet.add k s) acc (children t tag))
        ctx SSet.empty
    | Ast.Descendant -> reachable t ctx
  in
  match test with
  | Ast.Any -> pool
  | Ast.Name n -> if SSet.mem n pool then SSet.singleton n else SSet.empty

(* Over-approximate the set of tags at which [steps], started from the
   context set [ctx], can end on some admitted document. Predicates are
   checked for satisfiability from their anchor's tag set (existence and
   value targets alike need the predicate path to reach somewhere; a
   value comparison additionally needs text at its end). The result is a
   superset of the truly reachable tags, so emptiness is a sound
   unsatisfiability proof. *)
let rec sat_steps t ctx steps =
  List.fold_left
    (fun ctx step ->
      if SSet.is_empty ctx then ctx
      else
        let cands = step_candidates t ctx step in
        SSet.filter
          (fun tag ->
            List.for_all (sat_pred t (SSet.singleton tag)) step.Ast.preds)
          cands)
    ctx steps

and sat_pred t anchor { Ast.ppath; target } =
  let ends = sat_steps t anchor ppath in
  match target with
  | Ast.Exists -> not (SSet.is_empty ends)
  | Ast.Value (op, lit) ->
      (* The end node needs a text child; the comparison itself must be
         satisfiable by some string. Every operator except a self-
         contradiction is satisfiable, and single comparisons never
         self-contradict, so text admission is the whole check. *)
      ignore (op, lit);
      SSet.exists (text_allowed t) ends

(* The virtual root: a path's first step starts above the document root,
   whose only "child" is the root element. *)
let satisfiable t path =
  match path.Ast.steps with
  | [] -> true
  | first :: rest ->
      let ctx0 =
        let matches tag =
          match first.Ast.test with
          | Ast.Any -> true
          | Ast.Name n -> String.equal n tag
        in
        let pool =
          match first.Ast.axis with
          | Ast.Child -> SSet.singleton t.root
          | Ast.Descendant -> SSet.add t.root (reachable t (SSet.singleton t.root))
        in
        SSet.filter matches pool
      in
      let ctx0 =
        SSet.filter
          (fun tag ->
            List.for_all (sat_pred t (SSet.singleton tag)) first.Ast.preds)
          ctx0
      in
      not (SSet.is_empty (sat_steps t ctx0 rest))

let pp ppf t =
  Format.fprintf ppf "root %s;" t.root;
  Hashtbl.iter
    (fun name kids ->
      Format.fprintf ppf " %s = %s%s;" name (String.concat " " kids)
        (if text_allowed t name then " #text" else ""))
    t.children
