module Ast = Sdds_xpath.Ast
module Event = Sdds_xml.Event
module SMap = Map.Make (String)
module Obs = Sdds_obs.Obs

type stats = {
  mutable events : int;
  mutable emitted : int;
  mutable delivered : int;
  mutable suppressed : int;
  mutable filtered : int;
  mutable instances : int;
  mutable peak_tokens : int;
  mutable peak_state_words : int;
  mutable token_visits : int;
}

(* The accounting cells: plain mutable counters/gauges from the metrics
   registry. The engine increments them directly (same cost as the record
   fields they replaced) and, when an [Obs.t] scope is supplied, attaches
   them so the registry aggregates across evaluations — {!stats} is a
   view over these cells, not a second set of increments. *)
type cells = {
  c_events : Obs.Metrics.Counter.t;
  c_emitted : Obs.Metrics.Counter.t;
  c_delivered : Obs.Metrics.Counter.t;
  c_suppressed : Obs.Metrics.Counter.t;
  c_filtered : Obs.Metrics.Counter.t;
  c_instances : Obs.Metrics.Counter.t;
  c_token_visits : Obs.Metrics.Counter.t;
  g_tokens : Obs.Metrics.Gauge.t;
  g_state_words : Obs.Metrics.Gauge.t;
  g_depth : Obs.Metrics.Gauge.t;
  g_pending : Obs.Metrics.Gauge.t;
}

let make_cells obs =
  let cells =
    {
      c_events = Obs.Metrics.Counter.create ();
      c_emitted = Obs.Metrics.Counter.create ();
      c_delivered = Obs.Metrics.Counter.create ();
      c_suppressed = Obs.Metrics.Counter.create ();
      c_filtered = Obs.Metrics.Counter.create ();
      c_instances = Obs.Metrics.Counter.create ();
      c_token_visits = Obs.Metrics.Counter.create ();
      g_tokens = Obs.Metrics.Gauge.create ();
      g_state_words = Obs.Metrics.Gauge.create ();
      g_depth = Obs.Metrics.Gauge.create ();
      g_pending = Obs.Metrics.Gauge.create ();
    }
  in
  Obs.attach_counter obs "engine.events" cells.c_events;
  Obs.attach_counter obs "engine.emitted" cells.c_emitted;
  Obs.attach_counter obs "engine.delivered" cells.c_delivered;
  Obs.attach_counter obs "engine.suppressed" cells.c_suppressed;
  Obs.attach_counter obs "engine.filtered" cells.c_filtered;
  Obs.attach_counter obs "engine.instances" cells.c_instances;
  Obs.attach_counter obs "engine.token_visits" cells.c_token_visits;
  Obs.attach_gauge obs "engine.live_tokens" cells.g_tokens;
  Obs.attach_gauge obs "engine.state_words" cells.g_state_words;
  Obs.attach_gauge obs "engine.frame_depth" cells.g_depth;
  Obs.attach_gauge obs "engine.pending_instances" cells.g_pending;
  cells

type inst = {
  var : int;
  cpred : Compile.cpred;
  mutable value : bool option;
  mutable candidates : int list list;
      (* disjunction of conjunctions of *unresolved* vars; resolved vars are
         substituted out by the cascade in [resolve] *)
}

type owner = Spine of int | Pred_owner of inst

type token = { owner : owner; pos : int; conds : int list (* sorted *) }

type det3 = Det_deny | Det_allow | Det_pending
type scope3 = In_scope | Out_scope | Scope_pending

(* Tokens are partitioned by their next step so [open_tag] only visits the
   ones that can react to the incoming tag:

   - [hot]: visited on every open — tokens carrying condition vars (their
     conjunction must be re-substituted each event, and they can die) and
     tokens whose next test is [Any];
   - [child_named]: Child axis, literal [Name] test, no conditions — only
     relevant when the tag matches; rebuilt per frame;
   - [desc_named]: Descendant axis, literal [Name] test, no conditions —
     such a token self-loops unchanged on every non-matching open, so the
     map is inherited by child frames through structural sharing instead of
     being copied (the O(1) self-loop).

   With dispatch disabled every token is hot, which reproduces the naive
   linear scan byte for byte — that mode is the differential-test oracle. *)
type frame = {
  ftag : string;
  hot : token list;
  child_named : token list SMap.t;
  desc_named : token list SMap.t;
  n_desc : int;  (** tokens across all [desc_named] buckets *)
  desc_words : int;
  n_tokens : int;  (** hot + child + desc, the frame's share of live tokens *)
  token_words : int;
  desc_has_allow : bool;  (** [desc_named] holds an allow-rule spine token *)
  desc_has_query : bool;
  det : det3;
  scope : scope3;
  suppressed : bool;
  mutable watchers : (inst * int list) list;
  mutable anchored : inst list;
}

type t = {
  compiled : Compile.t;
  has_query : bool;
  suppress_enabled : bool;
  dispatch : bool;
  mutable frames : frame list;  (* top first; last = virtual root *)
  mutable next_var : int;
  live : (int, inst) Hashtbl.t;
  rdeps : (int, inst list ref) Hashtbl.t;
  mutable closed_root : bool;
  st : cells;
}

let owner_key = function
  | Spine i -> (0, i)
  | Pred_owner inst -> (1, inst.var)

let compare_tokens a b =
  match Stdlib.compare (owner_key a.owner) (owner_key b.owner) with
  | 0 -> (
      match Stdlib.compare a.pos b.pos with
      | 0 -> Stdlib.compare a.conds b.conds
      | c -> c)
  | c -> c

let owner_path_c compiled = function
  | Spine i -> compiled.Compile.spines.(i).Compile.cpath
  | Pred_owner inst -> inst.cpred.Compile.ppath

let owner_path t = owner_path_c t.compiled

let test_matches test tag =
  match test with
  | Ast.Any -> true
  | Ast.Name n -> String.equal n tag

let is_pred_owner = function Pred_owner _ -> true | Spine _ -> false

let spine_sign_c compiled = function
  | Spine i -> Some compiled.Compile.spines.(i)
  | Pred_owner _ -> None

let spine_sign t = spine_sign_c t.compiled

let tok_words tok = 3 + List.length tok.conds

let is_allow_spine compiled owner =
  match spine_sign_c compiled owner with
  | Some sp ->
      sp.Compile.source <> Compile.Query_src && sp.Compile.sign = Rule.Allow
  | None -> false

let is_query_spine compiled owner =
  match spine_sign_c compiled owner with
  | Some sp -> sp.Compile.source = Compile.Query_src
  | None -> false

(* Split [new_toks] (sorted, duplicate-free) into the child frame's
   partitions on top of the inherited descendant map. A descendant-bucket
   addition already present in the inherited bucket is dropped — it is the
   self-loop copy of a token the child frame inherits structurally (the
   naive engine's global [sort_uniq] did that dedup). *)
let build_partitions compiled ~dispatch ~desc ~n_desc ~desc_words
    ~desc_has_allow ~desc_has_query new_toks =
  if not dispatch then begin
    let n = List.length new_toks in
    let words = List.fold_left (fun a tok -> a + tok_words tok) 0 new_toks in
    ( new_toks,
      SMap.empty,
      SMap.empty,
      0,
      0,
      false,
      false,
      n,
      words )
  end
  else begin
    let hot = ref [] in
    let child = ref SMap.empty in
    let desc = ref desc in
    let n_desc = ref n_desc in
    let desc_words = ref desc_words in
    let has_allow = ref desc_has_allow in
    let has_query = ref desc_has_query in
    let n_own = ref 0 in
    let own_words = ref 0 in
    List.iter
      (fun tok ->
        let classify () =
          if tok.conds <> [] then `Hot
          else
            let step = (owner_path_c compiled tok.owner).(tok.pos) in
            match (step.Compile.test, step.Compile.axis) with
            | Ast.Any, _ -> `Hot
            | Ast.Name n, Ast.Child -> `Child n
            | Ast.Name n, Ast.Descendant -> `Desc n
        in
        match classify () with
        | `Hot ->
            hot := tok :: !hot;
            incr n_own;
            own_words := !own_words + tok_words tok
        | `Child n ->
            let bucket =
              match SMap.find_opt n !child with Some l -> l | None -> []
            in
            child := SMap.add n (tok :: bucket) !child;
            incr n_own;
            own_words := !own_words + tok_words tok
        | `Desc n ->
            let bucket =
              match SMap.find_opt n !desc with Some l -> l | None -> []
            in
            if not (List.exists (fun o -> compare_tokens o tok = 0) bucket)
            then begin
              desc := SMap.add n (tok :: bucket) !desc;
              incr n_desc;
              desc_words := !desc_words + tok_words tok;
              if is_allow_spine compiled tok.owner then has_allow := true;
              if is_query_spine compiled tok.owner then has_query := true
            end)
      new_toks;
    ( List.rev !hot,
      !child,
      !desc,
      !n_desc,
      !desc_words,
      !has_allow,
      !has_query,
      !n_own + !n_desc,
      !own_words + !desc_words )
  end

let make_frame compiled ~dispatch ~ftag ~desc ~n_desc ~desc_words
    ~desc_has_allow ~desc_has_query ~det ~scope ~suppressed ~watchers
    ~anchored new_toks =
  let ( hot,
        child_named,
        desc_named,
        n_desc,
        desc_words,
        desc_has_allow,
        desc_has_query,
        n_tokens,
        token_words ) =
    build_partitions compiled ~dispatch ~desc ~n_desc ~desc_words
      ~desc_has_allow ~desc_has_query new_toks
  in
  {
    ftag;
    hot;
    child_named;
    desc_named;
    n_desc;
    desc_words;
    n_tokens;
    token_words;
    desc_has_allow;
    desc_has_query;
    det;
    scope;
    suppressed;
    watchers;
    anchored;
  }

let create ?obs ?(default = Rule.Deny) ?query ?(suppress = true)
    ?(dispatch = true) ?compiled rules =
  let compiled =
    match compiled with
    | Some c -> c
    | None -> Compile.compile ?query rules
  in
  let has_query = query <> None in
  let initial_tokens =
    List.filter_map
      (fun i ->
        let sp = compiled.Compile.spines.(i) in
        if Array.length sp.Compile.cpath = 0 then None
        else Some { owner = Spine i; pos = 0; conds = [] })
      (List.init (Array.length compiled.Compile.spines) Fun.id)
  in
  let root_frame =
    make_frame compiled ~dispatch ~ftag:"#root" ~desc:SMap.empty ~n_desc:0
      ~desc_words:0 ~desc_has_allow:false ~desc_has_query:false
      ~det:
        (match default with Rule.Deny -> Det_deny | Rule.Allow -> Det_allow)
      ~scope:(if has_query then Out_scope else In_scope)
      ~suppressed:false ~watchers:[] ~anchored:[] initial_tokens
  in
  {
    compiled;
    has_query;
    suppress_enabled = suppress;
    dispatch;
    frames = [ root_frame ];
    next_var = 0;
    live = Hashtbl.create 64;
    rdeps = Hashtbl.create 64;
    closed_root = false;
    st = make_cells obs;
  }

(* ------------------------------------------------------------------ *)
(* Memory accounting                                                   *)
(* ------------------------------------------------------------------ *)

(* Frame token counts are maintained incrementally: the shared descendant
   map is charged to every frame that inherits it (matching what the naive
   engine physically materializes), without walking shared structure. *)
let state_words t =
  let frame_words f =
    4 + f.token_words
    + List.fold_left (fun a (_, conds) -> a + 2 + List.length conds) 0 f.watchers
    + List.length f.anchored
  in
  let inst_words _ inst acc =
    acc + 4
    + List.fold_left (fun a c -> a + 1 + List.length c) 0 inst.candidates
  in
  List.fold_left (fun a f -> a + frame_words f) 0 t.frames
  + Hashtbl.fold inst_words t.live 0
  + (2 * Hashtbl.length t.rdeps)

let live_tokens t = List.fold_left (fun a f -> a + f.n_tokens) 0 t.frames

let bump_peaks t =
  Obs.Metrics.Gauge.set t.st.g_tokens (live_tokens t);
  Obs.Metrics.Gauge.set t.st.g_state_words (state_words t);
  Obs.Metrics.Gauge.set t.st.g_depth (List.length t.frames - 1);
  Obs.Metrics.Gauge.set t.st.g_pending (Hashtbl.length t.live)

(* ------------------------------------------------------------------ *)
(* Condition resolution                                                *)
(* ------------------------------------------------------------------ *)

(* Resolve [inst] to [b]; cascade into instances whose candidates mention
   it. Appends Resolve events to [out]. *)
let rec resolve t out inst b =
  match inst.value with
  | Some _ -> ()
  | None ->
      inst.value <- Some b;
      out := Output.Resolve (inst.var, b) :: !out;
      (match Hashtbl.find_opt t.rdeps inst.var with
      | None -> ()
      | Some deps ->
          Hashtbl.remove t.rdeps inst.var;
          List.iter
            (fun dep ->
              if dep.value = None then begin
                if b then begin
                  let emptied = ref false in
                  (* Shortening can merge conjunctions that differed only
                     in the resolved var — re-dedup, or an instance whose
                     inner predicates keep coming true across sibling
                     subtrees accumulates one copy per subtree. *)
                  dep.candidates <-
                    List.sort_uniq compare
                      (List.map
                         (fun c ->
                           let c' = List.filter (fun v -> v <> inst.var) c in
                           if c' = [] then emptied := true;
                           c')
                         dep.candidates);
                  if !emptied then resolve t out dep true
                end
                else
                  dep.candidates <-
                    List.filter
                      (fun c -> not (List.mem inst.var c))
                      dep.candidates
              end)
            !deps)

let add_rdep t v dep =
  match Hashtbl.find_opt t.rdeps v with
  | Some l -> if not (List.memq dep !l) then l := dep :: !l
  | None -> Hashtbl.add t.rdeps v (ref [ dep ])

(* Register a fired candidate (a conjunction of condition vars) on a
   predicate instance. Duplicate conjunctions are dropped: they resolve
   identically to the first copy, and without the dedup an instance
   anchored above a large subtree accumulates one copy per matching node
   — pending-predicate state proportional to subtree SIZE. With it, the
   live candidates are distinct subsets of the live (open-anchored)
   condition vars, which is what makes peak state depth-bounded (and the
   static memory bound of the analyzer sound) for predicate rules too.
   [conds] is sorted, so structural equality is canonical. *)
let add_candidate t out inst conds =
  if inst.value = None then begin
    if conds = [] then resolve t out inst true
    else if not (List.mem conds inst.candidates) then begin
      inst.candidates <- conds :: inst.candidates;
      List.iter
        (fun v ->
          match Hashtbl.find_opt t.live v with
          | Some _ -> add_rdep t v inst
          | None -> ())
        conds
    end
  end

(* Substitute resolved vars out of a conjunction. [None] = the conjunction
   is false (token derivation dead). *)
let subst_conds t conds =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | v :: rest -> (
        match Hashtbl.find_opt t.live v with
        | None ->
            (* The anchor closed; an unresolved-at-close instance is false,
               and a true one would have been substituted eagerly. Treat a
               missing instance as resolved; its recorded value is gone, but
               tokens only outlive instances when the value was false. *)
            None
        | Some inst -> (
            match inst.value with
            | None -> go (v :: acc) rest
            | Some true -> go acc rest
            | Some false -> None))
  in
  go [] conds

let cond_of_conjunction conds = Cond.conj (List.map Cond.var conds)

(* ------------------------------------------------------------------ *)
(* Open                                                                *)
(* ------------------------------------------------------------------ *)

(* The tokens that can react to [tag]: everything hot, plus the literal
   buckets for [tag]. The partitions are disjoint, so sorting the
   concatenation reproduces the naive engine's visit order exactly (the
   unvisited tokens produce no observable effect in the naive scan, and
   predicate-instantiation order — hence var numbering and the output byte
   stream — follows visit order). *)
let visited_tokens frame tag =
  let bucket m = match SMap.find_opt tag m with Some l -> l | None -> [] in
  match (bucket frame.child_named, bucket frame.desc_named) with
  | [], [] -> frame.hot
  | c, d -> List.sort compare_tokens (frame.hot @ c @ d)

let open_tag t tag =
  match t.frames with
  | [] -> invalid_arg "Engine: internal error (no frames)"
  | parent :: _ ->
      if t.closed_root then invalid_arg "Engine: event after document end";
      let out = ref [] in
      let created : (int, inst) Hashtbl.t = Hashtbl.create 8 in
      let new_tokens = ref [] in
      let fired_neg = ref [] and fired_pos = ref [] and fired_query = ref [] in
      let new_watchers = ref [] in
      let anchored_here = ref [] in
      (* Instantiate a predicate at the node being opened. Returns the
         condition vars to add ([None] if already known false). *)
      let instantiate pred_id =
        let inst =
          match Hashtbl.find_opt created pred_id with
          | Some inst -> inst
          | None ->
              let cpred = Compile.pred t.compiled pred_id in
              let inst =
                { var = t.next_var; cpred; value = None; candidates = [] }
              in
              t.next_var <- t.next_var + 1;
              Obs.Metrics.Counter.inc t.st.c_instances;
              Hashtbl.add created pred_id inst;
              Hashtbl.add t.live inst.var inst;
              anchored_here := inst :: !anchored_here;
              (match cpred.Compile.ppath with
              | [||] -> new_watchers := (inst, []) :: !new_watchers
              | _ ->
                  new_tokens :=
                    { owner = Pred_owner inst; pos = 0; conds = [] }
                    :: !new_tokens);
              inst
        in
        match inst.value with
        | Some true -> Some []
        | Some false -> None
        | None -> Some [ inst.var ]
      in
      let fire owner conds =
        match owner with
        | Spine i -> (
            let sp = t.compiled.Compile.spines.(i) in
            let bexpr = cond_of_conjunction conds in
            match sp.Compile.source with
            | Compile.Query_src -> fired_query := bexpr :: !fired_query
            | Compile.Rule_src _ ->
                if sp.Compile.sign = Rule.Deny then
                  fired_neg := bexpr :: !fired_neg
                else fired_pos := bexpr :: !fired_pos)
        | Pred_owner inst -> (
            match inst.cpred.Compile.target with
            | Ast.Exists -> add_candidate t out inst conds
            | Ast.Value _ -> new_watchers := (inst, conds) :: !new_watchers)
      in
      let advance tok =
        match subst_conds t tok.conds with
        | None -> ()
        | Some conds ->
            let path = owner_path t tok.owner in
            let step = path.(tok.pos) in
            if step.Compile.axis = Ast.Descendant then
              new_tokens := { tok with conds } :: !new_tokens;
            if test_matches step.Compile.test tag then begin
              let conds' =
                List.fold_left
                  (fun acc pred_id ->
                    match acc with
                    | None -> None
                    | Some acc -> (
                        match instantiate pred_id with
                        | None -> None
                        | Some vs -> Some (vs @ acc)))
                  (Some conds) step.Compile.step_preds
              in
              match conds' with
              | None -> ()
              | Some conds' ->
                  let conds' = List.sort_uniq Stdlib.compare conds' in
                  if tok.pos + 1 = Array.length path then fire tok.owner conds'
                  else
                    new_tokens :=
                      { tok with pos = tok.pos + 1; conds = conds' }
                      :: !new_tokens
            end
      in
      let visited = visited_tokens parent tag in
      Obs.Metrics.Counter.add t.st.c_token_visits (List.length visited);
      List.iter advance visited;
      let tokens = List.sort_uniq compare_tokens !new_tokens in
      (* Conflict resolution (Denial-Takes-Precedence at this node,
         Most-Specific via inheritance). *)
      let neg = Cond.disj !fired_neg in
      let pos = Cond.disj !fired_pos in
      let query = Cond.disj !fired_query in
      let det =
        match (Cond.to_bool neg, Cond.to_bool pos) with
        | Some true, _ -> Det_deny
        | Some false, Some true -> Det_allow
        | Some false, Some false -> parent.det
        | Some false, None | None, _ -> Det_pending
      in
      let scope =
        if not t.has_query then In_scope
        else
          match (parent.scope, Cond.to_bool query) with
          | In_scope, _ -> In_scope
          | _, Some true -> In_scope
          | Out_scope, Some false -> Out_scope
          | Out_scope, None | Scope_pending, _ -> Scope_pending
      in
      (* [tokens] covers everything the child frame holds except the
         inherited descendant map, whose spine content the parent's flags
         summarize (the naive engine scans the self-loop copies instead). *)
      let has_spine inherited sign_filter =
        inherited
        || List.exists
             (fun tok ->
               match spine_sign t tok.owner with
               | None -> false
               | Some sp -> sign_filter sp)
             tokens
      in
      let suppressed =
        parent.suppressed
        || t.suppress_enabled
           && ((det = Det_deny
               && not
                    (has_spine parent.desc_has_allow (fun sp ->
                         sp.Compile.source <> Compile.Query_src
                         && sp.Compile.sign = Rule.Allow)))
              || (scope = Out_scope
                 && not
                      (has_spine parent.desc_has_query (fun sp ->
                           sp.Compile.source = Compile.Query_src))))
      in
      (* Suspension: inside a determined subtree only predicate automata
         matter (they can affect outside nodes); drop the rule and query
         tokens. On the suppression boundary the inherited descendant map is
         filtered too (deeper frames inherit the already-filtered map). *)
      let tokens =
        if suppressed then List.filter (fun tok -> is_pred_owner tok.owner) tokens
        else tokens
      in
      let desc, n_desc, desc_words, desc_has_allow, desc_has_query =
        if suppressed && not parent.suppressed then begin
          let n = ref 0 and words = ref 0 in
          let m =
            SMap.filter_map
              (fun _ toks ->
                match
                  List.filter (fun tok -> is_pred_owner tok.owner) toks
                with
                | [] -> None
                | l ->
                    List.iter
                      (fun tok ->
                        incr n;
                        words := !words + tok_words tok)
                      l;
                    Some l)
              parent.desc_named
          in
          (m, !n, !words, false, false)
        end
        else
          ( parent.desc_named,
            parent.n_desc,
            parent.desc_words,
            parent.desc_has_allow,
            parent.desc_has_query )
      in
      let frame =
        make_frame t.compiled ~dispatch:t.dispatch ~ftag:tag ~desc ~n_desc
          ~desc_words ~desc_has_allow ~desc_has_query ~det ~scope ~suppressed
          ~watchers:!new_watchers ~anchored:!anchored_here tokens
      in
      t.frames <- frame :: t.frames;
      if suppressed then Obs.Metrics.Counter.inc t.st.c_suppressed
      else begin
        Obs.Metrics.Counter.inc t.st.c_delivered;
        out := Output.Open_node { tag; neg; pos; query } :: !out
      end;
      bump_peaks t;
      let outs = List.rev !out in
      Obs.Metrics.Counter.add t.st.c_emitted (List.length outs);
      outs

(* ------------------------------------------------------------------ *)
(* Value                                                               *)
(* ------------------------------------------------------------------ *)

let value t v =
  match t.frames with
  | [] -> invalid_arg "Engine: internal error (no frames)"
  | [ _root ] -> invalid_arg "Engine: text at top level"
  | f :: _ ->
      let out = ref [] in
      List.iter
        (fun (inst, conds) ->
          if inst.value = None then begin
            match inst.cpred.Compile.target with
            | Ast.Value (op, lit) when Ast.compare_values op v lit -> (
                match subst_conds t conds with
                | None -> ()
                | Some conds -> add_candidate t out inst conds)
            | Ast.Value _ | Ast.Exists -> ()
          end)
        f.watchers;
      (* Text is only deliverable when the enclosing element can be
         granted; under a determined denial or out of scope it is dead
         weight. A dropped value on an *unsuppressed* frame is counted as
         filtered so the accounting reconciles:
         events = delivered + suppressed + filtered. *)
      if f.suppressed then Obs.Metrics.Counter.inc t.st.c_suppressed
      else if f.det <> Det_deny && f.scope <> Out_scope then begin
        Obs.Metrics.Counter.inc t.st.c_delivered;
        out := Output.Text_node v :: !out
      end
      else Obs.Metrics.Counter.inc t.st.c_filtered;
      let outs = List.rev !out in
      Obs.Metrics.Counter.add t.st.c_emitted (List.length outs);
      outs

(* ------------------------------------------------------------------ *)
(* Close                                                               *)
(* ------------------------------------------------------------------ *)

let close t tag =
  match t.frames with
  | [] -> invalid_arg "Engine: internal error (no frames)"
  | [ _root ] -> invalid_arg "Engine: close without open"
  | f :: rest ->
      if not (String.equal f.ftag tag) then
        invalid_arg
          (Printf.sprintf "Engine: mismatched </%s>, expected </%s>" tag
             f.ftag);
      t.frames <- rest;
      let out = ref [] in
      (* Pending instances anchored here resolve negatively: the cascade
         has already emptied any candidate that came true. *)
      List.iter
        (fun inst ->
          if inst.value = None then resolve t out inst false;
          Hashtbl.remove t.live inst.var)
        f.anchored;
      if not f.suppressed then begin
        Obs.Metrics.Counter.inc t.st.c_delivered;
        out := Output.Close_node tag :: !out
      end
      else Obs.Metrics.Counter.inc t.st.c_suppressed;
      (match rest with
      | [ _root ] -> t.closed_root <- true
      | _ -> ());
      let outs = List.rev !out in
      Obs.Metrics.Counter.add t.st.c_emitted (List.length outs);
      outs

let feed t ev =
  Obs.Metrics.Counter.inc t.st.c_events;
  match ev with
  | Event.Open tag -> open_tag t tag
  | Event.Value v -> value t v
  | Event.Close tag -> close t tag

let finish t =
  match t.frames with
  | [ _root ] when t.closed_root -> ()
  | _ -> invalid_arg "Engine.finish: document incomplete"

let run ?obs ?default ?query ?suppress ?dispatch rules events =
  let t = create ?obs ?default ?query ?suppress ?dispatch rules in
  let outs = List.concat_map (feed t) events in
  finish t;
  outs

(* ------------------------------------------------------------------ *)
(* Skip analysis                                                       *)
(* ------------------------------------------------------------------ *)

exception Not_skippable

(* One-step lookahead: advance the parent's tokens over the subtree's root
   tag without touching engine state, so that a rule firing AT the subtree
   root (e.g. a denial of the whole subtree) is taken into account. Any
   source of pendingness — predicates on a matched step, conditions already
   attached to a matching token — aborts the analysis conservatively.

   Dispatch-aware: only the hot tokens and the literal buckets for [tag]
   go through the full lookahead; every other descendant-bucket token
   self-loops unchanged (no conditions by construction), so those buckets
   are consulted in place instead of being materialized into the simulated
   set. Child buckets for other tags contribute nothing, exactly as in the
   naive scan. *)
let subtree_skippable t ~tag ~tag_possible ~nonempty =
  match t.frames with
  | [] -> false
  | f :: _ -> (
      try
        let sim_tokens = ref [] in
        let fired_neg = ref false
        and fired_pos = ref false
        and fired_query = ref false in
        let visit tok =
          match subst_conds t tok.conds with
          | None -> ()
          | Some conds ->
              let path = owner_path t tok.owner in
              let step = path.(tok.pos) in
              if step.Compile.axis = Ast.Descendant then
                sim_tokens := tok :: !sim_tokens;
              if test_matches step.Compile.test tag then begin
                if step.Compile.step_preds <> [] || conds <> [] then
                  (* Pending decision or a predicate instance that could
                     need data from inside the subtree. *)
                  raise Not_skippable;
                if tok.pos + 1 = Array.length path then
                  match tok.owner with
                  | Spine i -> (
                      let sp = t.compiled.Compile.spines.(i) in
                      match sp.Compile.source with
                      | Compile.Query_src -> fired_query := true
                      | Compile.Rule_src _ ->
                          if sp.Compile.sign = Rule.Deny then
                            fired_neg := true
                          else fired_pos := true)
                  | Pred_owner _ ->
                      (* A predicate path completing at the root: its
                         instance could resolve true here. *)
                      raise Not_skippable
                else
                  sim_tokens := { tok with pos = tok.pos + 1 } :: !sim_tokens
              end
        in
        List.iter visit f.hot;
        (match SMap.find_opt tag f.child_named with
        | Some l -> List.iter visit l
        | None -> ());
        (match SMap.find_opt tag f.desc_named with
        | Some l -> List.iter visit l
        | None -> ());
        let det' =
          if !fired_neg then Det_deny
          else if !fired_pos then Det_allow
          else f.det
        in
        let scope' =
          if not t.has_query then In_scope
          else if !fired_query then In_scope
          else f.scope
        in
        let can tok =
          Compile.can_complete (owner_path t tok.owner) ~from:tok.pos
            ~tag_possible ~nonempty
        in
        (* [p] holds on the simulated set: the explicitly visited tokens
           plus the self-looping descendant buckets for other tags. *)
        let sim_exists p =
          List.exists p !sim_tokens
          || SMap.exists
               (fun n toks ->
                 (not (String.equal n tag)) && List.exists p toks)
               f.desc_named
        in
        let pred_alive =
          sim_exists (fun tok -> is_pred_owner tok.owner && can tok)
        in
        (not pred_alive)
        && (f.suppressed
           ||
           let spine_can filter =
             sim_exists (fun tok ->
                 match spine_sign t tok.owner with
                 | None -> false
                 | Some sp -> filter sp && can tok)
           in
           (det' = Det_deny
           && not
                (spine_can (fun sp ->
                     sp.Compile.source <> Compile.Query_src
                     && sp.Compile.sign = Rule.Allow)))
           || (scope' = Out_scope
              && not
                   (spine_can (fun sp ->
                        sp.Compile.source = Compile.Query_src))))
      with Not_skippable -> false)

(* The legacy record, built fresh from the cells: a compatibility view,
   not live state. *)
let stats t =
  {
    events = Obs.Metrics.Counter.value t.st.c_events;
    emitted = Obs.Metrics.Counter.value t.st.c_emitted;
    delivered = Obs.Metrics.Counter.value t.st.c_delivered;
    suppressed = Obs.Metrics.Counter.value t.st.c_suppressed;
    filtered = Obs.Metrics.Counter.value t.st.c_filtered;
    instances = Obs.Metrics.Counter.value t.st.c_instances;
    peak_tokens = Obs.Metrics.Gauge.peak t.st.g_tokens;
    peak_state_words = Obs.Metrics.Gauge.peak t.st.g_state_words;
    token_visits = Obs.Metrics.Counter.value t.st.c_token_visits;
  }

let depth t = List.length t.frames - 1
