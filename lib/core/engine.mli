(** The streaming access-control evaluator — the paper's core contribution.

    The engine consumes SAX events and produces an {!Output.t} stream, with
    memory proportional to document {e depth} and rule-set size, never to
    document size (the SOE constraint of §2.3). It implements:

    - one non-deterministic automaton per rule (navigational spine +
      predicate paths), simulated with a {e token stack} that advances on
      [Open]/[Value] and backtracks on [Close];
    - a {e predicate set}: predicate instances are anchored at the node
      whose step carries them, become condition variables, resolve eagerly
      on satisfaction or negatively when their anchor closes ({e pending
      rules});
    - the {e sign stack}: per-node decisions combining
      Denial-Takes-Precedence and Most-Specific-Object-Takes-Precedence
      over the inherited sign, expressed over condition variables when
      pending rules are involved;
    - the suspension optimization: inside a subtree whose outcome is
      determined (denied with no positive automaton alive, or outside the
      query scope with no query automaton alive), rule evaluation is
      suspended and output suppressed — only predicate automata keep
      running, since they can affect nodes outside the subtree.

    An optional query (same XPath fragment) is evaluated in the same pass;
    delivered nodes are those both authorized and inside a query match. *)

type t

val create :
  ?obs:Sdds_obs.Obs.t ->
  ?default:Rule.sign ->
  ?query:Sdds_xpath.Ast.t ->
  ?suppress:bool ->
  ?dispatch:bool ->
  ?compiled:Compile.t ->
  Rule.t list ->
  t
(** [create rules] builds an evaluator for a rule set (already filtered to
    the requesting subject). [compiled] supplies a ready-made automaton set
    and skips {!Compile.compile} — the prepared-evaluation cache hook; it
    must have been compiled from exactly these [rules] and [query] (the
    caller's responsibility — [query] is still needed to mark the stream as
    query-scoped). [default] is the sign above any rule
    ([Deny] — closed world). [suppress] (default [true]) enables the
    suspension optimization; disabling it emits every event annotated,
    which the ablation benchmark uses. [dispatch] (default [true]) enables
    tag-indexed token dispatch: each frame's tokens are bucketed by their
    next-step test so an open event only visits the tokens whose next step
    is [Any], condition-bearing, or literally named after the incoming tag;
    descendant self-loops become structural sharing of the parent's bucket
    map. Disabling it reproduces the naive linear scan over every live
    token — both modes produce byte-identical output streams (the
    differential tests enforce this), and the naive mode serves as the
    oracle.

    [obs] attaches the engine's accounting cells to a metrics registry
    (names [engine.events], [engine.delivered], [engine.suppressed],
    [engine.filtered], [engine.emitted], [engine.instances],
    [engine.token_visits]; gauges [engine.live_tokens],
    [engine.state_words], [engine.frame_depth],
    [engine.pending_instances]). The cells exist either way — {!stats} is
    a view over them — so instrumented and uninstrumented runs are
    behaviourally identical. *)

val feed : t -> Sdds_xml.Event.t -> Output.t list
(** Process one event. Raises [Invalid_argument] on a non-well-formed
    stream (close without open, text at top level, events after the root
    closed). *)

val finish : t -> unit
(** Asserts the stream ended at depth zero.
    Raises [Invalid_argument] otherwise. *)

val run :
  ?obs:Sdds_obs.Obs.t ->
  ?default:Rule.sign ->
  ?query:Sdds_xpath.Ast.t ->
  ?suppress:bool ->
  ?dispatch:bool ->
  Rule.t list ->
  Sdds_xml.Event.t list ->
  Output.t list
(** One-shot convenience over [create]/[feed]/[finish]. *)

(** {1 Skip analysis}

    Hook for the skip index: called at the position of a child subtree,
    {e before} feeding its events, with the subtree's tag summary. *)

val subtree_skippable :
  t -> tag:string -> tag_possible:(string -> bool) -> nonempty:bool -> bool
(** True only if skipping the whole subtree (not feeding any of its events)
    cannot change the delivered view or any pending condition. [tag] is the
    subtree root's tag: the analysis advances the live tokens one step over
    it, so a rule firing {e at} the subtree root (e.g. a denial of the whole
    subtree) is taken into account; it then checks that no live predicate
    automaton, no positive-rule automaton relevant under the (possibly
    just-determined) denial, and no query automaton relevant out of scope,
    could reach a further state given the subtree's tags. Any source of
    pendingness at the root makes the answer [false]. *)

(** {1 Instrumentation} *)

type stats = {
  mutable events : int;  (** input events processed *)
  mutable emitted : int;  (** output events produced, [Resolve] included *)
  mutable delivered : int;
      (** input events whose own output ([Open_node]/[Text_node]/
          [Close_node]) was emitted *)
  mutable suppressed : int;  (** input events consumed under suspension *)
  mutable filtered : int;
      (** text events dropped on an unsuppressed frame because the
          enclosing element is denied or out of query scope. The
          accounting always reconciles:
          [events = delivered + suppressed + filtered]. *)
  mutable instances : int;  (** predicate instances created *)
  mutable peak_tokens : int;  (** max live tokens across the stack *)
  mutable peak_state_words : int;  (** max of {!state_words} *)
  mutable token_visits : int;
      (** total token transitions attempted — the automaton work the cost
          model charges per token. With dispatch enabled only the tokens
          actually visited count, making the optimization measurable. *)
}

val stats : t -> stats

val state_words : t -> int
(** Current size of the engine's working state (frames, tokens, predicate
    instances, watchers), in machine words — what must fit in the SOE's
    secure RAM. *)

val depth : t -> int
