(** Compilation of rules and queries into non-deterministic automata.

    Each XPath becomes a {e spine} (the navigational path, Figure 2's white
    states) whose steps may reference compiled {e predicate paths}
    (Figure 2's gray states). Predicate paths nest. The runtime (see
    {!Engine}) walks these arrays with a token stack; this module also
    provides the reachability test the skip index uses to discard automata
    inside a subtree from its tag bitmap. *)

type pred_id = int

type cstep = {
  axis : Sdds_xpath.Ast.axis;
  test : Sdds_xpath.Ast.test;
  step_preds : pred_id list;  (** predicate instances to anchor on a match *)
}

type cpath = cstep array

type cpred = {
  ppath : cpath;  (** [||] for self-predicates ([.] with a comparison) *)
  target : Sdds_xpath.Ast.pred_target;
}

type source =
  | Rule_src of int  (** index into the original rule list *)
  | Query_src

type spine = { source : source; sign : Rule.sign; cpath : cpath }
(** A query compiles as a positive spine with [source = Query_src]. *)

type path_origin =
  | Spine_path of int  (** index into [spines] *)
  | Pred_path of pred_id

type site = { origin : path_origin; spos : int }
(** One step position inside a compiled path. *)

type dispatch = {
  by_tag : (string, site list) Hashtbl.t;
      (** literal tag -> step positions whose [Name] test matches it *)
  wildcard : site list;  (** [Any]-test step positions, always candidates *)
}

type t = {
  spines : spine array;
  preds : cpred array;  (** shared table of all predicate paths, nested included *)
  dispatch : dispatch;
}

val compile : ?query:Sdds_xpath.Ast.t -> Rule.t list -> t
(** Rules must already be filtered to one subject. *)

val pred : t -> pred_id -> cpred

val sites_for_tag : t -> string -> site list
(** Step positions whose literal [Name] test equals the tag ([] if none). *)

val wildcard_sites : t -> site list

val tag_known : t -> string -> bool
(** Whether any compiled step names this tag literally. *)

val can_complete :
  cpath -> from:int -> tag_possible:(string -> bool) -> nonempty:bool -> bool
(** [can_complete path ~from ~tag_possible ~nonempty] is false only when
    the path cannot possibly reach its final state inside a subtree whose
    element tags satisfy [tag_possible] — the test each automaton undergoes
    against a skip-index bitmap. [from] is the number of steps already
    matched; [nonempty] says whether the subtree contains any element at
    all (what a wildcard step needs). Predicates are ignored (a sound
    over-approximation: ignoring them can only make us process a skippable
    subtree, never skip a needed one). *)

val state_count : t -> int
(** Total number of automaton states (spine and predicate steps), the
    complexity measure reported by the rule-scaling benchmark. *)
