(** Static rule-set simplification — the paper's observation that "some
    rules may be inhibited by others according to the conflict resolution
    policies, thereby optimizations such as suspending evaluations of
    rules can be devised", made static: rules provably subsumed on {e
    every} document are dropped before the automata are even built.

    Soundness rests on {!Sdds_xpath.Containment} (itself sound and
    incomplete): a rule is only removed when, at every node it targets on
    any document, another surviving rule of the relevant sign also applies
    directly, so the per-node decision (Denial-Takes-Precedence +
    Most-Specific-Object) cannot change:

    - a rule whose targets are contained in a same-signed rule's targets is
      redundant;
    - a positive rule whose targets are contained in a negative rule's
      targets can never win (denial takes precedence at every node it
      reaches).

    The simplification is subject-wise: rules of different subjects never
    interact. *)

type verdict =
  | Kept
  | Subsumed of { by : int }
      (** input index of a rule that covers this one (the witness) *)

val analyze : Rule.t list -> verdict array
(** One containment pass over the rule set, indexed like the input. This
    is the single engine both {!simplify} (pruning) and the static
    analyzer's dead-rule diagnostics are built on. *)

val representative : verdict array -> int -> int
(** Follow [Subsumed] links to the kept rule that ultimately covers the
    given index (the index itself when kept). Always terminates. *)

val subsumes : by:Rule.t -> Rule.t -> bool
(** The pairwise test underlying {!analyze}: is the second rule provably
    irrelevant in the presence of [by] on every document? *)

val simplify : Rule.t list -> Rule.t list
(** Returns a sublist of the input (order preserved) producing the same
    authorized view on every document, for every subject and default
    policy. *)

val simplify_stats : Rule.t list -> Rule.t list * int
(** The kept sublist and the number of dropped rules, from one
    containment pass. *)

val redundant_count : Rule.t list -> int
(** [List.length rules - List.length (simplify rules)]. *)
