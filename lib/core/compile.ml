module Ast = Sdds_xpath.Ast

type pred_id = int

type cstep = { axis : Ast.axis; test : Ast.test; step_preds : pred_id list }
type cpath = cstep array
type cpred = { ppath : cpath; target : Ast.pred_target }

type source = Rule_src of int | Query_src

type spine = { source : source; sign : Rule.sign; cpath : cpath }

type path_origin = Spine_path of int | Pred_path of pred_id
type site = { origin : path_origin; spos : int }

type dispatch = {
  by_tag : (string, site list) Hashtbl.t;
  wildcard : site list;
}

type t = { spines : spine array; preds : cpred array; dispatch : dispatch }

(* Invert the compiled paths: for each literal tag, the set of step
   positions whose [Name] test matches it; [Any] steps form the (small)
   always-checked wildcard set. The runtime dispatches incoming open
   events through this index instead of re-testing every live token. *)
let build_dispatch spines preds =
  let by_tag = Hashtbl.create 32 in
  let wildcard = ref [] in
  let add_path origin path =
    Array.iteri
      (fun spos step ->
        let site = { origin; spos } in
        match step.test with
        | Ast.Any -> wildcard := site :: !wildcard
        | Ast.Name n ->
            let sites =
              match Hashtbl.find_opt by_tag n with Some l -> l | None -> []
            in
            Hashtbl.replace by_tag n (site :: sites))
      path
  in
  Array.iteri (fun i sp -> add_path (Spine_path i) sp.cpath) spines;
  Array.iteri (fun p cp -> add_path (Pred_path p) cp.ppath) preds;
  { by_tag; wildcard = List.rev !wildcard }

let compile ?query rules =
  let preds = ref [] in
  let npreds = ref 0 in
  let rec compile_steps steps =
    Array.of_list
      (List.map
         (fun { Ast.axis; test; preds = ps } ->
           { axis; test; step_preds = List.map compile_pred ps })
         steps)
  and compile_pred { Ast.ppath; target } =
    let compiled = { ppath = compile_steps ppath; target } in
    let id = !npreds in
    incr npreds;
    preds := compiled :: !preds;
    id
  in
  let rule_spines =
    List.mapi
      (fun i r ->
        {
          source = Rule_src i;
          sign = r.Rule.sign;
          cpath = compile_steps r.Rule.path.Ast.steps;
        })
      rules
  in
  let query_spines =
    match query with
    | None -> []
    | Some q ->
        [ { source = Query_src; sign = Rule.Allow; cpath = compile_steps q.Ast.steps } ]
  in
  let spines = Array.of_list (rule_spines @ query_spines) in
  let preds = Array.of_list (List.rev !preds) in
  { spines; preds; dispatch = build_dispatch spines preds }

let pred t id = t.preds.(id)

let sites_for_tag t tag =
  match Hashtbl.find_opt t.dispatch.by_tag tag with Some l -> l | None -> []

let wildcard_sites t = t.dispatch.wildcard
let tag_known t tag = Hashtbl.mem t.dispatch.by_tag tag

let can_complete path ~from ~tag_possible ~nonempty =
  let n = Array.length path in
  let rec go i =
    if i >= n then true
    else begin
      let ok =
        match path.(i).test with
        | Ast.Name tag -> tag_possible tag
        | Ast.Any -> nonempty
      in
      ok && go (i + 1)
    end
  in
  go (max 0 from)

let state_count t =
  let pred_states =
    Array.fold_left (fun acc p -> acc + Array.length p.ppath) 0 t.preds
  in
  Array.fold_left (fun acc s -> acc + Array.length s.cpath) pred_states t.spines
