module Containment = Sdds_xpath.Containment

(* [r] is redundant w.r.t. a surviving rule [r'] (same subject) when every
   node [r] applies to directly is also a direct target of [r'], and [r']'s
   sign makes [r] irrelevant there:
   - same sign: the direct-application set for that sign is unchanged;
   - r positive, r' negative: denial wins at every node r reaches.
   A negative rule is never subsumed by a positive one (the negative rule
   wins where both apply). *)
let subsumes ~by:r' r =
  String.equal r'.Rule.subject r.Rule.subject
  && (match (r.Rule.sign, r'.Rule.sign) with
     | Rule.Allow, Rule.Allow | Rule.Deny, Rule.Deny | Rule.Allow, Rule.Deny
       ->
         true
     | Rule.Deny, Rule.Allow -> false)
  && Containment.contains r'.Rule.path r.Rule.path

type verdict = Kept | Subsumed of { by : int }

(* Drop r when some other rule subsumes it STRICTLY, or an EARLIER rule
   subsumes it mutually (equivalence classes keep their first member).
   The subsumption relation is transitive (containment is, and the sign
   compatibility {AA, DD, AD} composes), so every dropped rule is
   covered by a chain that ends in a kept rule — the kept set yields
   the same decisions on every document. This is order-independent up
   to which representative of an equivalence class survives.

   The verdict records WHICH rule did the covering: the witness the
   static analyzer surfaces, and the link the chain in {!representative}
   follows. *)
let analyze rules =
  let arr = Array.of_list rules in
  let n = Array.length arr in
  Array.init n (fun i ->
      let r = arr.(i) in
      let rec scan j =
        if j >= n then Kept
        else if
          j <> i
          && subsumes ~by:arr.(j) r
          && ((not (subsumes ~by:r arr.(j))) || j < i)
        then Subsumed { by = j }
        else scan (j + 1)
      in
      scan 0)

(* Chains terminate: a [Subsumed] link either strictly shrinks the target
   set or (on mutual subsumption) strictly decreases the index, and strict
   shrinkage survives composition with equivalences — so no cycle. *)
let representative verdicts i =
  let rec follow i =
    match verdicts.(i) with Kept -> i | Subsumed { by } -> follow by
  in
  follow i

let simplify_stats rules =
  let verdicts = analyze rules in
  let kept =
    List.filteri (fun i _ -> verdicts.(i) = Kept) rules
  in
  (kept, List.length rules - List.length kept)

let simplify rules = fst (simplify_stats rules)
let redundant_count rules = snd (simplify_stats rules)
