(** DTD-lite element schema.

    A declared structure for documents: which elements each element may
    contain, whether it may carry text, and which element is the root.
    The static analyzer uses it two ways: rules whose paths cannot match
    any admitted document are {e unsatisfiable} (dead at authoring time),
    and a non-recursive schema bounds document depth, which turns the
    SOE's per-level memory cost into a concrete worst-case byte bound
    ({!Sdds_analysis.Memory_bound} in the analysis library).

    The satisfiability test is an over-approximation of matchability
    (predicates are checked for reachability, value comparisons only for
    text admission), so an "unsatisfiable" claim is sound: no admitted
    document matches the path. *)

type t

val make : root:string -> (string * string list) list -> t
(** [make ~root decls]: each declaration maps an element name to its
    allowed children; the pseudo-child ["#text"] allows text content.
    Undeclared elements mentioned as children are leaves. Raises
    [Invalid_argument] on duplicate declarations. *)

val of_string : string -> t
(** Parse the textual format: one [name = child1 child2 ... [#text]]
    declaration per line, first declaration is the root, ['#'] starts a
    whole-line comment. Raises [Invalid_argument] on malformed input. *)

val root : t -> string
val declared : t -> string -> bool
val children : t -> string -> string list
val text_allowed : t -> string -> bool

val tags : t -> string list
(** All element names the schema mentions, sorted. *)

val depth_bound : t -> int option
(** Maximum root-to-leaf element chain over all admitted documents
    ([1] = the root alone); [None] when the schema is recursive. *)

val satisfiable : t -> Sdds_xpath.Ast.t -> bool
(** Can the path select at least one node of some admitted document?
    Over-approximate: [false] is a proof of unsatisfiability, [true] is
    not a guarantee of matchability. *)

val pp : Format.formatter -> t -> unit
