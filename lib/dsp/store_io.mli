(** Persistence of the DSP store and of key material.

    The CLI publishes into a directory once and serves queries from it in
    later invocations; everything on disk is what the untrusted DSP would
    hold — ciphertext chunks, signed roots, encrypted rule blobs, wrapped
    key grants — so a copied or inspected store directory leaks nothing.

    Layout: [DIR/docs/<hex id>.sdoc], [DIR/rules/<hex id>/<hex subject>],
    [DIR/grants/<hex id>/<hex subject>] (names hex-encoded so ids and
    subjects can contain arbitrary bytes). Merkle trees are rebuilt from
    the stored chunks at load time; on-disk tampering therefore shows up
    exactly like a tampering DSP.

    {b Crash safety.} Every file is published atomically: bytes are
    written to [path ^ ".tmp"] and renamed over [path] only once
    complete. An interrupted [sdds publish] (or an injected torn write)
    leaves at worst a stray [.tmp], which the loaders skip — a reader
    sees the old complete file or the new complete file, never a
    half-written one. *)

type io_op = [ `Read | `Write | `Mkdir | `Rename ]

type store_error = {
  op : io_op;  (** the operation that failed *)
  path : string;
  message : string;  (** the underlying [Sys_error] text *)
}
(** Every IO failure surfaces as a typed [Error] — raw [Sys_error]s never
    escape this module. Malformed file {e contents} still raise
    [Invalid_argument] (they indicate tampering or corruption, not an IO
    condition the caller can retry). *)

val string_of_error : store_error -> string

(** {2 Fault injection}

    A single global hook, consulted before each IO primitive, lets the
    fault harness ({!Sdds_fault.Fault.Disk}) simulate disk failures and
    torn writes deterministically. Production code never sets it. *)

type io_fault =
  | Io_fail of string  (** the operation fails with this message *)
  | Torn_write of { keep_bytes : int }
      (** simulated crash mid-write: only a [keep_bytes]-byte prefix
          reaches the temp file, the rename never happens *)

val set_fault_hook : (io_op -> string -> io_fault option) -> unit
(** [set_fault_hook f]: before each primitive on [path], [f op path] is
    consulted; [Some fault] injects that fault (surfacing as a typed
    [Error] to the caller). *)

val clear_fault_hook : unit -> unit

val save : Store.t -> dir:string -> (unit, store_error) result
(** Creates [dir] (and subdirectories) if missing; overwrites existing
    entries. *)

val load : dir:string -> (Store.t, store_error) result
(** Raises [Invalid_argument] on a malformed file. Missing subdirectories
    are treated as empty. *)

(** Key files: ["SPUB"]/["SSEC"]-tagged binary encodings of RSA keys. *)
module Keyfile : sig
  val save_public :
    Sdds_crypto.Rsa.public -> path:string -> (unit, store_error) result

  val load_public :
    path:string -> (Sdds_crypto.Rsa.public, store_error) result

  val save_keypair :
    Sdds_crypto.Rsa.keypair -> path:string -> (unit, store_error) result

  val load_keypair :
    path:string -> (Sdds_crypto.Rsa.keypair, store_error) result
  (** Loaders raise [Invalid_argument] on malformed files; IO failures are
      [Error]. *)
end
