module Varint = Sdds_util.Varint
module Hex = Sdds_util.Hex
module Bignum = Sdds_crypto.Bignum
module Rsa = Sdds_crypto.Rsa
module Merkle = Sdds_crypto.Merkle

(* ------------------------------------------------------------------ *)
(* Small binary helpers                                                 *)
(* ------------------------------------------------------------------ *)

let write_lstring buf s =
  Varint.write buf (String.length s);
  Buffer.add_string buf s

let read_lstring s pos =
  let len, pos = Varint.read s pos in
  if pos + len > String.length s then invalid_arg "Store_io: truncated";
  (String.sub s pos len, pos + len)

(* ------------------------------------------------------------------ *)
(* Typed IO errors                                                      *)
(* ------------------------------------------------------------------ *)

type io_op = [ `Read | `Write | `Mkdir | `Rename ]

type store_error = { op : io_op; path : string; message : string }

let string_of_error e =
  let op =
    match e.op with
    | `Read -> "read"
    | `Write -> "write"
    | `Mkdir -> "mkdir"
    | `Rename -> "rename"
  in
  Printf.sprintf "cannot %s %s: %s" op e.path e.message

(* Internal carrier; caught at every public API boundary so callers see a
   [result], never a raw [Sys_error]. *)
exception Io of store_error

let io_fail op path message = raise (Io { op; path; message })

let guard f = match f () with v -> Ok v | exception Io e -> Error e

(* ------------------------------------------------------------------ *)
(* Fault injection hook                                                 *)
(* ------------------------------------------------------------------ *)

type io_fault = Io_fail of string | Torn_write of { keep_bytes : int }

let fault_hook : (io_op -> string -> io_fault option) ref =
  ref (fun _ _ -> None)

let set_fault_hook f = fault_hook := f
let clear_fault_hook () = fault_hook := fun _ _ -> None

let raw_write path content =
  match open_out_bin path with
  | exception Sys_error msg -> io_fail `Write path msg
  | oc -> (
      match
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc content)
      with
      | () -> ()
      | exception Sys_error msg -> io_fail `Write path msg)

(* Atomic publish: the bytes go to [path ^ ".tmp"], which is renamed over
   [path] only once fully written. A crash (or an injected torn write)
   mid-write leaves at worst a stray [.tmp] the loaders ignore — readers
   only ever see the old complete file or the new complete file. *)
let write_file ~path content =
  let tmp = path ^ ".tmp" in
  (match !fault_hook `Write path with
  | Some (Io_fail msg) -> io_fail `Write path msg
  | Some (Torn_write { keep_bytes }) ->
      (* Simulated crash mid-write: a prefix of the bytes reaches the
         temp file, the rename never happens. *)
      let keep = min keep_bytes (String.length content) in
      raw_write tmp (String.sub content 0 keep);
      io_fail `Write path "torn write: crashed before publish"
  | None -> ());
  raw_write tmp content;
  (match !fault_hook `Rename path with
  | Some (Io_fail msg) -> io_fail `Rename path msg
  | Some (Torn_write _) -> io_fail `Rename path "torn write before rename"
  | None -> ());
  match Sys.rename tmp path with
  | () -> ()
  | exception Sys_error msg -> io_fail `Rename path msg

let read_file path =
  (match !fault_hook `Read path with
  | Some (Io_fail msg) -> io_fail `Read path msg
  | Some (Torn_write _) -> io_fail `Read path "torn read"
  | None -> ());
  match open_in_bin path with
  | exception Sys_error msg -> io_fail `Read path msg
  | ic -> (
      match
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | s -> s
      | exception Sys_error msg -> io_fail `Read path msg
      | exception End_of_file -> io_fail `Read path "truncated read")

let mkdir_p dir =
  let rec go d =
    if not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Sys.mkdir d 0o755
      with Sys_error msg ->
        (* Only tolerate a lost race with a concurrent creator (the moral
           EEXIST); a permission or disk failure must surface. *)
        if not (Sys.file_exists d && Sys.is_directory d) then
          io_fail `Mkdir d msg
    end
  in
  go dir

let list_dir dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.to_list (Sys.readdir dir)
  else []

(* ------------------------------------------------------------------ *)
(* Documents                                                            *)
(* ------------------------------------------------------------------ *)

let doc_magic = "SDOC"

let encode_doc (p : Publish.published) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf doc_magic;
  write_lstring buf p.Publish.doc_id;
  Varint.write buf p.Publish.chunk_plain_bytes;
  Varint.write buf p.Publish.plain_length;
  write_lstring buf p.Publish.merkle_root;
  write_lstring buf p.Publish.root_signature;
  write_lstring buf (Bignum.to_bytes_be p.Publish.publisher.Rsa.n);
  write_lstring buf (Bignum.to_bytes_be p.Publish.publisher.Rsa.e);
  Varint.write buf (Array.length p.Publish.chunks);
  Array.iter (write_lstring buf) p.Publish.chunks;
  Buffer.contents buf

let decode_doc s =
  if
    String.length s < 4
    || not (String.equal (String.sub s 0 4) doc_magic)
  then invalid_arg "Store_io: bad document magic";
  let doc_id, pos = read_lstring s 4 in
  let chunk_plain_bytes, pos = Varint.read s pos in
  let plain_length, pos = Varint.read s pos in
  let merkle_root, pos = read_lstring s pos in
  let root_signature, pos = read_lstring s pos in
  let n_bytes, pos = read_lstring s pos in
  let e_bytes, pos = read_lstring s pos in
  let n_chunks, pos = Varint.read s pos in
  if n_chunks < 0 || n_chunks > 10_000_000 then
    invalid_arg "Store_io: absurd chunk count";
  let pos = ref pos in
  let chunks =
    Array.init n_chunks (fun _ ->
        let c, p = read_lstring s !pos in
        pos := p;
        c)
  in
  if !pos <> String.length s then invalid_arg "Store_io: trailing bytes";
  {
    Publish.doc_id;
    chunks;
    chunk_plain_bytes;
    plain_length;
    tree = Merkle.build (Array.to_list chunks);
    merkle_root;
    root_signature;
    publisher =
      { Rsa.n = Bignum.of_bytes_be n_bytes; e = Bignum.of_bytes_be e_bytes };
  }

(* ------------------------------------------------------------------ *)
(* Store                                                                *)
(* ------------------------------------------------------------------ *)

let save store ~dir =
  guard @@ fun () ->
  mkdir_p (Filename.concat dir "docs");
  List.iter
    (fun doc_id ->
      match Store.get_document store doc_id with
      | None -> ()
      | Some p ->
          write_file
            ~path:
              (Filename.concat (Filename.concat dir "docs")
                 (Hex.encode doc_id ^ ".sdoc"))
            (encode_doc p))
    (Store.list_documents store);
  let save_blobs kind fold =
    fold store
      (fun ~doc_id ~subject blob () ->
        let d = Filename.concat (Filename.concat dir kind) (Hex.encode doc_id) in
        mkdir_p d;
        write_file ~path:(Filename.concat d (Hex.encode subject)) blob)
      ()
  in
  save_blobs "rules" Store.fold_rules;
  save_blobs "grants" Store.fold_grants

let load ~dir =
  guard @@ fun () ->
  let store = Store.create () in
  List.iter
    (fun file ->
      if Filename.check_suffix file ".sdoc" then
        Store.put_document store
          (decode_doc (read_file (Filename.concat (Filename.concat dir "docs") file))))
    (list_dir (Filename.concat dir "docs"));
  let load_blobs kind put =
    List.iter
      (fun doc_hex ->
        let d = Filename.concat (Filename.concat dir kind) doc_hex in
        let doc_id = Hex.decode doc_hex in
        List.iter
          (fun subject_hex ->
            (* A stray [.tmp] is the residue of a torn write: the publish
               never completed, so it is not part of the store. *)
            if not (Filename.check_suffix subject_hex ".tmp") then
              put store ~doc_id ~subject:(Hex.decode subject_hex)
                (read_file (Filename.concat d subject_hex)))
          (list_dir d))
      (list_dir (Filename.concat dir kind))
  in
  load_blobs "rules" Store.put_rules;
  load_blobs "grants" Store.put_grant;
  store

(* ------------------------------------------------------------------ *)
(* Key files                                                            *)
(* ------------------------------------------------------------------ *)

module Keyfile = struct
  let pub_magic = "SPUB"
  let sec_magic = "SSEC"

  let save_public (pub : Rsa.public) ~path =
    guard @@ fun () ->
    let buf = Buffer.create 128 in
    Buffer.add_string buf pub_magic;
    write_lstring buf (Bignum.to_bytes_be pub.Rsa.n);
    write_lstring buf (Bignum.to_bytes_be pub.Rsa.e);
    write_file ~path (Buffer.contents buf)

  let load_public ~path =
    guard @@ fun () ->
    let s = read_file path in
    if String.length s < 4 || String.sub s 0 4 <> pub_magic then
      invalid_arg "Keyfile: not a public key file";
    let n, pos = read_lstring s 4 in
    let e, pos = read_lstring s pos in
    if pos <> String.length s then invalid_arg "Keyfile: trailing bytes";
    { Rsa.n = Bignum.of_bytes_be n; e = Bignum.of_bytes_be e }

  let save_keypair (kp : Rsa.keypair) ~path =
    guard @@ fun () ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf sec_magic;
    write_lstring buf (Bignum.to_bytes_be kp.Rsa.secret.Rsa.n);
    write_lstring buf (Bignum.to_bytes_be kp.Rsa.secret.Rsa.e);
    write_lstring buf (Bignum.to_bytes_be kp.Rsa.secret.Rsa.d);
    write_file ~path (Buffer.contents buf)

  let load_keypair ~path =
    guard @@ fun () ->
    let s = read_file path in
    if String.length s < 4 || String.sub s 0 4 <> sec_magic then
      invalid_arg "Keyfile: not a secret key file";
    let n, pos = read_lstring s 4 in
    let e, pos = read_lstring s pos in
    let d, pos = read_lstring s pos in
    if pos <> String.length s then invalid_arg "Keyfile: trailing bytes";
    let n = Bignum.of_bytes_be n
    and e = Bignum.of_bytes_be e
    and d = Bignum.of_bytes_be d in
    { Rsa.public = { Rsa.n; e }; secret = { Rsa.n; e; d } }
end
