(** FNV-1a, 64-bit: the repo's one non-cryptographic string hash.

    Used wherever two components must agree on a digest without shipping
    it — the fleet's consistent-hash ring and the dissemination
    clusterer both digest rule blobs with it, so "same digest" means the
    same thing to routing and to cluster formation. *)

val fnv1a64 : string -> int64
(** Unsigned 64-bit FNV-1a of the bytes (offset basis
    [0xCBF29CE484222325], prime [0x100000001B3]). *)

val to_hex : int64 -> string
(** Lower-case hex rendering of a digest ([%Lx]). *)
