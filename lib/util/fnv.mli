(** FNV-1a, 64-bit: the repo's one non-cryptographic string hash.

    Used wherever two components must agree on a digest without shipping
    it — the fleet's consistent-hash ring, the dissemination clusterer
    (both digest rule blobs with it, so "same digest" means the same
    thing to routing and to cluster formation) and the protocol model
    checker's visited-set keys.

    The hash is a left fold, exposed incrementally: hashing a
    concatenation equals feeding the pieces in order —
    [fnv1a64 (a ^ b) = feed (feed seed a) b] — so callers can digest
    streams without materializing them. *)

val seed : int64
(** The FNV-1a offset basis, [0xCBF29CE484222325]: the state before any
    byte has been fed. *)

val feed_char : int64 -> char -> int64
(** Fold one byte into a running hash: [(h lxor byte) * prime] with
    prime [0x100000001B3]. *)

val feed : int64 -> string -> int64
(** Fold every byte of the string, left to right. *)

val fnv1a64 : string -> int64
(** Unsigned 64-bit FNV-1a of the bytes: [feed seed s]. *)

val to_hex : int64 -> string
(** Lower-case hex rendering of a digest ([%Lx]). *)
