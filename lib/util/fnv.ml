let seed = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let feed_char h c =
  Int64.mul (Int64.logxor h (Int64.of_int (Char.code c))) prime

let feed h s =
  let h = ref h in
  String.iter (fun c -> h := feed_char !h c) s;
  !h

let fnv1a64 s = feed seed s
let to_hex = Printf.sprintf "%Lx"
