let fnv1a64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h :=
        Int64.mul
          (Int64.logxor !h (Int64.of_int (Char.code c)))
          0x100000001B3L)
    s;
  !h

let to_hex = Printf.sprintf "%Lx"
