module Engine = Sdds_core.Engine
module Output = Sdds_core.Output
module Obs = Sdds_obs.Obs

type stats = {
  subscribers : int;
  clusters : int;
  mux_clusters : int;
  solo_clusters : int;
  evaluations : int;
  naive_evaluations : int;
  related_pairs : int;
  trie_nodes : int;
  mux_token_visits : int;
}

let fanout_ratio st =
  if st.evaluations = 0 then 0.
  else float_of_int st.subscribers /. float_of_int st.evaluations

let cluster_span obs ~shared (c : Cluster.cluster) f =
  Obs.Tracer.with_span (Obs.tracer obs)
    ~args:
      [ ("digest", Sdds_util.Fnv.to_hex c.Cluster.digest);
        ("members", string_of_int (List.length c.Cluster.members));
        ("shared", string_of_bool shared) ]
    "dissem.cluster" f

let run_plan ?obs (plan : Cluster.t) events =
      let n = List.length plan.Cluster.assignment in
      Obs.Tracer.with_span (Obs.tracer obs)
        ~args:
          [ ("subscribers", string_of_int n);
            ( "clusters",
              string_of_int (Array.length plan.Cluster.clusters) );
            ("evaluations", string_of_int (Cluster.evaluations plan)) ]
        "dissem.publish"
      @@ fun () ->
      let per_cluster =
        Array.make (Array.length plan.Cluster.clusters) []
      in
      (* One shared walk for every predicate-free cluster. *)
      let trie_nodes = ref 0 and mux_visits = ref 0 in
      (match plan.Cluster.mux with
      | [] -> ()
      | mux_ids ->
          Obs.Tracer.with_span (Obs.tracer obs)
            ~args:
              [ ("clusters", string_of_int (List.length mux_ids)) ]
            "dissem.mux"
          @@ fun () ->
          let ids = Array.of_list mux_ids in
          let compiled =
            Array.map
              (fun i -> plan.Cluster.clusters.(i).Cluster.compiled)
              ids
          in
          let m = Mux.create compiled in
          List.iter (Mux.feed m) events;
          Mux.finish m;
          trie_nodes := Mux.node_count m;
          mux_visits := Mux.token_visits m;
          let outs = Mux.outputs m in
          Array.iteri
            (fun k i ->
              cluster_span obs ~shared:true plan.Cluster.clusters.(i)
                (fun () -> per_cluster.(i) <- outs.(k)))
            ids);
      (* Predicate-carrying clusters evaluate solo, from the same event
         pass — they still share the decode and the digest-level
         grouping of identical subscribers. *)
      List.iter
        (fun i ->
          let c = plan.Cluster.clusters.(i) in
          cluster_span obs ~shared:false c (fun () ->
              per_cluster.(i) <- Engine.run ?obs c.Cluster.rules events))
        plan.Cluster.solo;
      let delivered =
        List.map
          (fun (subject, i) -> (subject, per_cluster.(i)))
          plan.Cluster.assignment
      in
      let evaluations = Cluster.evaluations plan in
      let stats =
        {
          subscribers = n;
          clusters = Array.length plan.Cluster.clusters;
          mux_clusters = List.length plan.Cluster.mux;
          solo_clusters = List.length plan.Cluster.solo;
          evaluations;
          naive_evaluations = n;
          related_pairs = plan.Cluster.related_pairs;
          trie_nodes = !trie_nodes;
          mux_token_visits = !mux_visits;
        }
      in
      Obs.inc obs "dissem.subscribers" n;
      Obs.inc obs "dissem.clusters" stats.clusters;
      Obs.inc obs "dissem.evaluations" evaluations;
      Obs.inc obs "dissem.evaluations_saved" (n - evaluations);
      Obs.set_gauge obs "dissem.fanout"
        (int_of_float (1000. *. fanout_ratio stats));
      (delivered, stats)

let run ?obs subscribers events =
  match Cluster.plan subscribers with
  | Error e -> Error e
  | Ok plan -> Ok (run_plan ?obs plan events)
