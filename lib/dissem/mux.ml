module Ast = Sdds_xpath.Ast
module Compile = Sdds_core.Compile
module Rule = Sdds_core.Rule
module Output = Sdds_core.Output
module Cond = Sdds_core.Cond
module Event = Sdds_xml.Event
module Bitset = Sdds_util.Bitset

(* Trie over compiled spine steps, merged across clusters. A node is a
   spine prefix; an edge is one (axis, test) step. [deny_here]/[allow_here]
   mark the clusters owning a spine that ends exactly at the node (the
   firing sets); the [through] masks summarize which clusters still own a
   live spine strictly below the node — what the engine's "is an
   allow-spine token still alive" suppression check needs, per cluster,
   without walking the subtree. *)
type node = {
  id : int;
  mutable edges : (Ast.axis * Ast.test * node) list;  (* insertion order *)
  deny_here : Bitset.t;
  allow_here : Bitset.t;
  mutable allow_through_full : Bitset.t;
      (* clusters with an allow-spine end strictly below this node *)
  mutable allow_through_desc : Bitset.t;
      (* same, but the first step out of the node must be Descendant —
         what a descendant-restricted token can still reach *)
  mutable has_desc_edge : bool;
}

(* A token is a trie node plus a restriction flag. An unrestricted token
   stands for every spine passing through the node (the engine's advanced
   tokens); a restricted one only for spines whose next step is a
   Descendant axis (the engine's self-looping descendant tokens — the
   Child-axis continuations died on a non-matching tag). *)
type frame = {
  ftag : string;
  tokens : (node * bool) list;
  det_allow : Bitset.t;  (* clusters whose inherited decision is Allow *)
  suppressed : Bitset.t;  (* sticky, per cluster *)
}

type t = {
  n : int;  (* clusters *)
  root : node;
  mutable frames : frame list;  (* top first; last = virtual root *)
  outs : Output.t list ref array;  (* reversed accumulation *)
  mutable closed_root : bool;
  mutable visits : int;
  nodes : int;
}

let test_matches test tag =
  match test with
  | Ast.Any -> true
  | Ast.Name n -> String.equal n tag

let build n_clusters compiled_sets =
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    {
      id;
      edges = [];
      deny_here = Bitset.create n_clusters;
      allow_here = Bitset.create n_clusters;
      allow_through_full = Bitset.create n_clusters;
      allow_through_desc = Bitset.create n_clusters;
      has_desc_edge = false;
    }
  in
  let root = fresh () in
  let child node axis test =
    match
      List.find_opt
        (fun (a, t, _) -> a = axis && t = test)
        node.edges
    with
    | Some (_, _, m) -> m
    | None ->
        let m = fresh () in
        node.edges <- node.edges @ [ (axis, test, m) ];
        if axis = Ast.Descendant then node.has_desc_edge <- true;
        m
  in
  Array.iteri
    (fun ci (c : Compile.t) ->
      Array.iter
        (fun (sp : Compile.spine) ->
          (* Empty spines never fire in the engine (no initial token). *)
          if Array.length sp.Compile.cpath > 0 then begin
            let node = ref root in
            Array.iter
              (fun (st : Compile.cstep) ->
                if st.Compile.step_preds <> [] then
                  invalid_arg "Mux.create: predicate rule set";
                node := child !node st.Compile.axis st.Compile.test)
              sp.Compile.cpath;
            match sp.Compile.source with
            | Compile.Query_src ->
                invalid_arg "Mux.create: query spine in a rule set"
            | Compile.Rule_src _ ->
                Bitset.set
                  (if sp.Compile.sign = Rule.Deny then (!node).deny_here
                   else (!node).allow_here)
                  ci
          end)
        c.Compile.spines)
    compiled_sets;
  (* Post-order pass for the through masks. *)
  let rec finalize n =
    List.iter
      (fun (axis, _, m) ->
        finalize m;
        Bitset.union_into n.allow_through_full m.allow_here;
        Bitset.union_into n.allow_through_full m.allow_through_full;
        if axis = Ast.Descendant then begin
          Bitset.union_into n.allow_through_desc m.allow_here;
          Bitset.union_into n.allow_through_desc m.allow_through_full
        end)
      n.edges;
    ()
  in
  finalize root;
  (root, !next_id)

let create compiled_sets =
  Array.iter
    (fun (c : Compile.t) ->
      if Array.length c.Compile.preds > 0 then
        invalid_arg "Mux.create: predicate rule set")
    compiled_sets;
  let n = Array.length compiled_sets in
  let root, nodes = build n compiled_sets in
  let root_frame =
    {
      ftag = "#root";
      tokens = (if root.edges = [] then [] else [ (root, false) ]);
      det_allow = Bitset.create n;
      suppressed = Bitset.create n;
    }
  in
  {
    n;
    root;
    frames = [ root_frame ];
    outs = Array.init n (fun _ -> ref []);
    closed_root = false;
    visits = 0;
    nodes;
  }

let emit t ci out = t.outs.(ci) := out :: !(t.outs.(ci))

let open_tag t tag =
  match t.frames with
  | [] -> invalid_arg "Mux: internal error (no frames)"
  | parent :: _ ->
      if t.closed_root then invalid_arg "Mux: event after document end";
      let fired_deny = Bitset.create t.n in
      let fired_allow = Bitset.create t.n in
      (* New token set: first-add order, with the unrestricted flavour
         dominating (an unrestricted token stands for a superset of the
         restricted one's spines). *)
      let order = ref [] in
      let flag : (int, node * bool ref) Hashtbl.t = Hashtbl.create 16 in
      let add node restricted =
        match Hashtbl.find_opt flag node.id with
        | Some (_, r) -> if not restricted then r := false
        | None ->
            Hashtbl.add flag node.id (node, ref restricted);
            order := node.id :: !order
      in
      List.iter
        (fun (node, restricted) ->
          t.visits <- t.visits + 1;
          if node.has_desc_edge then add node true;
          List.iter
            (fun (axis, test, m) ->
              if
                ((not restricted) || axis = Ast.Descendant)
                && test_matches test tag
              then begin
                Bitset.union_into fired_deny m.deny_here;
                Bitset.union_into fired_allow m.allow_here;
                if m.edges <> [] then add m false
              end)
            node.edges)
        parent.tokens;
      let tokens =
        List.rev_map
          (fun id ->
            let node, r = Hashtbl.find flag id in
            (node, !r))
          !order
      in
      (* Which clusters still hold an allow-spine token in the child
         frame — the engine's suppression liveness check. *)
      let has_allow = Bitset.create t.n in
      List.iter
        (fun (node, restricted) ->
          Bitset.union_into has_allow
            (if restricted then node.allow_through_desc
             else node.allow_through_full))
        tokens;
      (* det' = (parent.det_allow ∪ fired_allow) \ fired_deny;
         Denial-Takes-Precedence at the node, Most-Specific via the
         inherited bit. *)
      let det_allow = Bitset.copy parent.det_allow in
      Bitset.union_into det_allow fired_allow;
      Bitset.iter (fun c -> Bitset.clear det_allow c) fired_deny;
      let suppressed = Bitset.copy parent.suppressed in
      for c = 0 to t.n - 1 do
        if
          (not (Bitset.mem suppressed c))
          && (not (Bitset.mem det_allow c))
          && not (Bitset.mem has_allow c)
        then Bitset.set suppressed c
      done;
      for c = 0 to t.n - 1 do
        if not (Bitset.mem suppressed c) then
          emit t c
            (Output.Open_node
               {
                 tag;
                 neg = Cond.of_bool (Bitset.mem fired_deny c);
                 pos = Cond.of_bool (Bitset.mem fired_allow c);
                 query = Cond.ff;
               })
      done;
      t.frames <- { ftag = tag; tokens; det_allow; suppressed } :: t.frames

let value t v =
  match t.frames with
  | [] -> invalid_arg "Mux: internal error (no frames)"
  | [ _root ] -> invalid_arg "Mux: text at top level"
  | f :: _ ->
      for c = 0 to t.n - 1 do
        if (not (Bitset.mem f.suppressed c)) && Bitset.mem f.det_allow c
        then emit t c (Output.Text_node v)
      done

let close t tag =
  match t.frames with
  | [] -> invalid_arg "Mux: internal error (no frames)"
  | [ _root ] -> invalid_arg "Mux: close without open"
  | f :: rest ->
      if not (String.equal f.ftag tag) then
        invalid_arg
          (Printf.sprintf "Mux: mismatched </%s>, expected </%s>" tag
             f.ftag);
      t.frames <- rest;
      for c = 0 to t.n - 1 do
        if not (Bitset.mem f.suppressed c) then
          emit t c (Output.Close_node tag)
      done;
      match rest with [ _root ] -> t.closed_root <- true | _ -> ()

let feed t = function
  | Event.Open tag -> open_tag t tag
  | Event.Value v -> value t v
  | Event.Close tag -> close t tag

let finish t =
  match t.frames with
  | [ _root ] when t.closed_root -> ()
  | _ -> invalid_arg "Mux.finish: document incomplete"

let outputs t = Array.map (fun r -> List.rev !r) t.outs

let run compiled_sets events =
  let t = create compiled_sets in
  List.iter (feed t) events;
  finish t;
  outputs t

let node_count t = t.nodes
let token_visits t = t.visits
