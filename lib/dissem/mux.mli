(** Merged-automaton evaluation: one token walk drives many clusters.

    Predicate-free rule sets compile to spines only — plain paths with
    no condition variables — and different subscribers' spines mostly
    share prefixes ([//patient], [//patient/name], …). The mux merges
    every cluster's spines into one prefix trie keyed by (axis, test)
    and walks it {e once} per document event; which clusters a firing
    belongs to is a bitset on the trie node, and per-cluster frame state
    (inherited decision, suppression) is a pair of bitsets per open
    element. The cost of an event is one trie walk plus O(clusters/64)
    bitset work, instead of one full engine pass per subscriber.

    The contract is byte-identity, not approximation: for every cluster
    the emitted {!Sdds_core.Output.t} stream equals what a private
    {!Sdds_core.Engine.run} over that cluster's rules produces (default
    deny, suppression on, no query) — the differential property in
    [test/test_dissem.ml] holds it over randomized populations. The
    identity is exact because predicate-free spines fire constant
    conditions ([Cond.tt]/[Cond.ff] survive {!Sdds_core.Cond.disj}'s
    folding regardless of how many spines fire), so annotations carry no
    evaluation-order residue.

    Clusters whose rules do carry predicates cannot join the walk
    (condition-variable numbering is per-engine state); the planner
    routes them to solo engines ({!Cluster.t.solo}). *)

type t

val create : Sdds_core.Compile.t array -> t
(** One compiled rule set per cluster, all predicate-free. Raises
    [Invalid_argument] if any carries predicate paths. *)

val feed : t -> Sdds_xml.Event.t -> unit
(** Advance the shared walk by one document event, appending to every
    unsuppressed cluster's output stream. Same event-validity errors as
    the engine (mismatched close, event after document end). *)

val finish : t -> unit
(** Raises [Invalid_argument] if the document is incomplete. *)

val outputs : t -> Sdds_core.Output.t list array
(** Per-cluster annotated output, in cluster order. *)

val run :
  Sdds_core.Compile.t array ->
  Sdds_xml.Event.t list ->
  Sdds_core.Output.t list array
(** [create] + [feed]* + [finish] + [outputs]. *)

val node_count : t -> int
(** Trie size after merging — [sum of per-cluster states - node_count]
    is the state the prefix sharing removed. *)

val token_visits : t -> int
(** Trie tokens visited so far, the shared walk's work measure (compare
    against the sum of per-cluster engine visits). *)
