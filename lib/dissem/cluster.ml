module Rule = Sdds_core.Rule
module Compile = Sdds_core.Compile

type cluster = {
  digest : int64;
  canonical : string;
  members : string list;
  rules : Rule.t list;
  compiled : Compile.t;
  has_preds : bool;
}

type t = {
  clusters : cluster array;
  assignment : (string * int) list;
  mux : int list;
  solo : int list;
  related_pairs : int;
}

type error =
  | Collision of { subject_a : string; subject_b : string; digest : int64 }
  | Duplicate_subject of string

let pp_error ppf = function
  | Collision { subject_a; subject_b; digest } ->
      Format.fprintf ppf
        "rules-digest collision: subscribers %s and %s have different rule \
         sets with the same digest %s — refusing to cluster them"
        subject_a subject_b
        (Sdds_util.Fnv.to_hex digest)
  | Duplicate_subject s ->
      Format.fprintf ppf
        "subscriber %s is listed twice with different rule sets" s

(* The subject names the recipient, not the policy: the population is
   already subject-filtered, so two subscribers whose rules have the
   same signed paths in the same order must share a cluster regardless
   of what they are called. The canonical line therefore drops the
   subject field of {!Rule.to_string}. *)
let canonical rules =
  String.concat "\n"
    (List.map
       (fun (r : Rule.t) ->
         Format.asprintf "%a, %a" Rule.pp_sign r.Rule.sign Sdds_xpath.Ast.pp
           r.Rule.path)
       rules)

let pred_free (c : Compile.t) =
  Array.length c.Compile.preds = 0
  && Array.for_all
       (fun sp ->
         Array.for_all
           (fun st -> st.Compile.step_preds = [])
           sp.Compile.cpath)
       c.Compile.spines

exception Bad of error

let plan ?(digest = Sdds_util.Fnv.fnv1a64) subscribers =
  try
    (* Group by canonical text — always correct; digests come second. *)
    let by_text : (string, Rule.t list * string list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    List.iter
      (fun (subject, rules) ->
        let key = canonical rules in
        match Hashtbl.find_opt by_text key with
        | Some (_, members) ->
            if not (List.mem subject !members) then
              members := subject :: !members
        | None -> Hashtbl.add by_text key (rules, ref [ subject ]))
      subscribers;
    (* One subject must map to exactly one text. *)
    let texts_of : (string, string) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (subject, rules) ->
        let key = canonical rules in
        match Hashtbl.find_opt texts_of subject with
        | Some key' when not (String.equal key key') ->
            raise (Bad (Duplicate_subject subject))
        | Some _ -> ()
        | None -> Hashtbl.add texts_of subject key)
      subscribers;
    (* Digest each distinct text; a digest shared by two texts is a
       refusal, attributed to the first member of each text's group.
       Groups are sorted before the scan so both the plan and any
       refusal are independent of subscriber listing order. *)
    let raw =
      List.sort
        (fun (da, ka, _, _) (db, kb, _, _) ->
          match Int64.unsigned_compare da db with
          | 0 -> String.compare ka kb
          | c -> c)
        (Hashtbl.fold
           (fun key (rules, members) acc ->
             (digest key, key, rules, List.sort compare !members) :: acc)
           by_text [])
    in
    let rec check_collisions = function
      | (d, _, _, ma :: _) :: ((d', _, _, mb :: _) :: _ as rest) ->
          if Int64.equal d d' then
            raise
              (Bad (Collision { subject_a = ma; subject_b = mb; digest = d }))
          else check_collisions rest
      | _ -> ()
    in
    check_collisions raw;
    let clusters =
      Array.of_list
        (List.map
           (fun (d, key, rules, members) ->
             let compiled = Compile.compile rules in
             {
               digest = d;
               canonical = key;
               members;
               rules;
               compiled;
               has_preds = not (pred_free compiled);
             })
           raw)
    in
    let assignment =
      List.sort
        (fun (a, _) (b, _) -> String.compare a b)
        (Hashtbl.fold
           (fun subject key acc ->
             let idx = ref (-1) in
             Array.iteri
               (fun i c -> if String.equal c.canonical key then idx := i)
               clusters;
             (subject, !idx) :: acc)
           texts_of [])
    in
    let mux = ref [] and solo = ref [] in
    Array.iteri
      (fun i c ->
        if c.has_preds then solo := i :: !solo else mux := i :: !mux)
      clusters;
    let related_pairs =
      Sdds_analysis.Sharing.related_pairs
        (Array.map (fun c -> c.rules) clusters)
    in
    Ok
      {
        clusters;
        assignment;
        mux = List.rev !mux;
        solo = List.rev !solo;
        related_pairs;
      }
  with Bad e -> Error e

let evaluations t =
  (if t.mux = [] then 0 else 1) + List.length t.solo

let cluster_of t subject = List.assoc_opt subject t.assignment
