(** Subscriber clustering for shared rule evaluation.

    A dissemination run serves N subscribers, each with its own rule
    set, from one document stream. Subscribers whose rule sets are
    {e identical} can share literally everything — one compiled
    automaton, one evaluation, one output stream — so the first level of
    sharing is grouping subscribers by their rule set. The group key is
    the canonical text of the (parsed, subject-filtered) rules, digested
    with the same FNV-1a hash the fleet's affinity ring uses
    ({!Sdds_util.Fnv}), so "same digest" means the same thing to routing
    and to cluster formation.

    Correctness never rests on the digest: clusters are formed on the
    canonical {e text}, and a digest shared by two different texts is
    reported as a typed {!error.Collision} naming the subscriber pair —
    never silently merged (which would serve one subscriber the other's
    view).

    The plan is {e canonical}: the same population produces the same
    plan (same cluster order, same member order) regardless of the order
    subscribers were listed in — the property test pins it. *)

type cluster = {
  digest : int64;  (** FNV-1a of [canonical] *)
  canonical : string;  (** one rule per line: ["sign, xpath"] *)
  members : string list;  (** subjects, sorted *)
  rules : Sdds_core.Rule.t list;  (** the shared rule set *)
  compiled : Sdds_core.Compile.t;
  has_preds : bool;
      (** the compiled set carries predicate paths: it cannot join the
          merged-automaton walk ({!Mux}) and is evaluated solo *)
}

type t = {
  clusters : cluster array;  (** sorted by digest (unique — no collision) *)
  assignment : (string * int) list;
      (** subject -> index into [clusters]; sorted by subject *)
  mux : int list;  (** predicate-free clusters: share one token walk *)
  solo : int list;  (** clusters evaluated by a private engine each *)
  related_pairs : int;
      (** distinct rule-set pairs where one subsumes the other
          ({!Sdds_analysis.Sharing}) — latent overlap beyond identity *)
}

type error =
  | Collision of { subject_a : string; subject_b : string; digest : int64 }
      (** two different rule-set texts share a digest; merging them
          would cross-serve views, so the plan refuses *)
  | Duplicate_subject of string
      (** one subject listed twice with different rule sets: there is no
          single view to deliver it *)

val pp_error : Format.formatter -> error -> unit

val canonical : Sdds_core.Rule.t list -> string
(** The cluster key: one ["sign, xpath"] line per rule, in the given
    order (rule order is semantically significant — it is part of the
    identity, not normalized away). The subject is deliberately absent:
    it names the recipient, not the policy, so subscribers with
    identical signed paths cluster together whatever they are called. *)

val plan :
  ?digest:(string -> int64) ->
  (string * Sdds_core.Rule.t list) list ->
  (t, error) result
(** [plan subscribers] clusters a population. A subject listed twice
    with the same rules is one member. [digest] (default
    {!Sdds_util.Fnv.fnv1a64}) exists to inject collisions in tests. *)

val evaluations : t -> int
(** Engine passes the plan needs: one shared walk for all [mux]
    clusters (if any) plus one per [solo] cluster. The naive baseline is
    [List.length assignment]. *)

val cluster_of : t -> string -> int option
(** The cluster index serving a subject. *)
