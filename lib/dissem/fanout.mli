(** The dissemination pipeline: one document stream, N subscribers,
    clustered evaluation.

    [run] takes the subscriber population (subject, rules — already
    subject-filtered), plans the clusters ({!Cluster.plan}), drives the
    predicate-free clusters through one shared {!Mux} walk and each
    predicate-carrying cluster through a private
    {!Sdds_core.Engine}, and demultiplexes: every subscriber receives
    its cluster's annotated output stream. Decisions are per subscriber
    by construction — a cluster only ever contains subscribers with
    byte-identical rule sets, and the mux walk is output-equivalent to a
    private engine per cluster (the differential property).

    Evaluation defaults match the card's: closed-world default deny,
    suppression on, no query (dissemination pushes whole authorized
    views; queries are a pull-path concept).

    [obs] wiring: a [dissem.publish] root span (subscriber, cluster and
    evaluation counts as args), one [dissem.mux] child span for the
    shared walk, one [dissem.cluster] child span per cluster (digest,
    member count, shared flag), and the registry counters
    [dissem.subscribers], [dissem.clusters], [dissem.evaluations],
    [dissem.evaluations_saved] plus the [dissem.fanout] gauge
    (subscribers per evaluation, x1000). *)

type stats = {
  subscribers : int;
  clusters : int;
  mux_clusters : int;  (** predicate-free, served by the shared walk *)
  solo_clusters : int;  (** predicate-carrying, one engine each *)
  evaluations : int;  (** engine passes actually run *)
  naive_evaluations : int;  (** the per-subscriber baseline: N *)
  related_pairs : int;  (** latent overlap — see {!Cluster.t.related_pairs} *)
  trie_nodes : int;  (** merged-trie size, 0 when no mux cluster *)
  mux_token_visits : int;
}

val fanout_ratio : stats -> float
(** Subscribers served per evaluation ([n /. evaluations]; [0.] for an
    empty population). *)

val run :
  ?obs:Sdds_obs.Obs.t ->
  (string * Sdds_core.Rule.t list) list ->
  Sdds_xml.Event.t list ->
  ((string * Sdds_core.Output.t list) list * stats, Cluster.error) result
(** Per-subscriber outputs in subject-sorted order, plus the sharing
    accounting. The output list for each subscriber is byte-identical to
    [Engine.run its_rules events] (the naive oracle). Propagates the
    planner's typed refusals; raises like the engine on malformed event
    streams. *)

val run_plan :
  ?obs:Sdds_obs.Obs.t ->
  Cluster.t ->
  Sdds_xml.Event.t list ->
  (string * Sdds_core.Output.t list) list * stats
(** The evaluation half of {!run}, for callers that planned separately
    (e.g. to account per-cluster compilation before running). *)
