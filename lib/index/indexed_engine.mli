(** The engine driven through the skip index.

    Couples [Sdds_core.Engine] with {!Reader}: at each element, the
    subtree's tag set is tested against the live automata
    ([Engine.subtree_skippable]); irrelevant subtrees are jumped over
    without being decoded — in the full architecture, without even being
    transferred or decrypted, which is where the skip index pays for
    itself (experiment E3). *)

type result = {
  outputs : Sdds_core.Output.t list;
  view : Sdds_xml.Dom.t option;  (** reassembled authorized view *)
  skipped_subtrees : int;
  skipped_bytes : int;  (** encoded bytes jumped over *)
  skipped_ranges : (int * int) list;
      (** (offset, length) of each jumped region, in document order — what
          the smart-card layer uses to decide which encrypted chunks never
          need to be transferred or decrypted *)
  consumed_bytes : int;  (** encoded bytes actually read (header included) *)
  events_fed : int;  (** events that reached the engine *)
  engine_stats : Sdds_core.Engine.stats;
  reader_peak_words : int;  (** reader working-state high-water mark *)
}

val run :
  ?obs:Sdds_obs.Obs.t ->
  ?default:Sdds_core.Rule.sign ->
  ?query:Sdds_xpath.Ast.t ->
  ?suppress:bool ->
  ?dispatch:bool ->
  ?use_index:bool ->
  ?compiled:Sdds_core.Compile.t ->
  Sdds_core.Rule.t list ->
  string ->
  result
(** [run rules encoded] evaluates the rule set over an encoded document.
    [use_index] (default [true]) enables skipping — it requires an
    [Indexed] encoding; with [false] (or a [Plain] encoding) every event
    is fed, which is the no-index baseline. [dispatch] and [compiled] are
    passed through to [Engine.create] (tag-indexed token dispatch, default
    on; and a precompiled automaton set — the prepared-evaluation cache
    hook).

    [obs] wraps the pass in an [engine.stream] span (one [skip.prune]
    instant per jumped subtree) and feeds the [skip.*] metrics
    ([considered], [pruned_subtrees], [pruned_bytes], and the
    [subtree_bytes] histogram) alongside the engine's own cells. *)
