module Engine = Sdds_core.Engine
module Reassembler = Sdds_core.Reassembler
module Event = Sdds_xml.Event
module Obs = Sdds_obs.Obs

type result = {
  outputs : Sdds_core.Output.t list;
  view : Sdds_xml.Dom.t option;
  skipped_subtrees : int;
  skipped_bytes : int;
  skipped_ranges : (int * int) list;
  consumed_bytes : int;
  events_fed : int;
  engine_stats : Engine.stats;
  reader_peak_words : int;
}

let run ?obs ?default ?query ?(suppress = true) ?dispatch ?(use_index = true)
    ?compiled rules encoded =
  let tr = Obs.tracer obs in
  let reader = Reader.create encoded in
  let indexed =
    use_index && (match Reader.mode reader with Encode.Indexed _ -> true | Encode.Plain -> false)
  in
  let engine =
    Engine.create ?obs ?default ?query ~suppress ?dispatch ?compiled rules
  in
  let outputs = ref [] in
  let skipped_subtrees = ref 0 in
  let skipped_bytes = ref 0 in
  let skipped_ranges = ref [] in
  let events_fed = ref 0 in
  let feed ev =
    incr events_fed;
    outputs := List.rev_append (Engine.feed engine ev) !outputs
  in
  let rec loop () =
    match Reader.next reader with
    | None -> ()
    | Some item ->
        (match item with
        | Reader.Elem { tag; tags; _ } -> (
            let skippable =
              indexed
              &&
              match tags with
              | Some tags ->
                  Obs.inc obs "skip.considered" 1;
                  Engine.subtree_skippable engine ~tag
                    ~tag_possible:(Reader.tag_possible reader tags)
                    ~nonempty:true
              | None -> false
            in
            if skippable then begin
              let start = Reader.byte_pos reader in
              let len = Reader.skip_subtree reader in
              skipped_bytes := !skipped_bytes + len;
              skipped_ranges := (start, len) :: !skipped_ranges;
              incr skipped_subtrees;
              Obs.inc obs "skip.pruned_subtrees" 1;
              Obs.inc obs "skip.pruned_bytes" len;
              Obs.observe obs "skip.subtree_bytes" len;
              Obs.Tracer.instant tr
                ~args:
                  [ ("tag", tag); ("offset", string_of_int start);
                    ("bytes", string_of_int len) ]
                "skip.prune"
            end
            else feed (Event.Open tag))
        | Reader.Text v -> feed (Event.Value v)
        | Reader.Close tag -> feed (Event.Close tag));
        loop ()
  in
  let span = Obs.Tracer.start tr "engine.stream" in
  Obs.Tracer.with_parent tr span (fun () ->
      loop ();
      (* The root subtree itself may have been skipped — the engine then
         saw nothing at all, and the view is empty. *)
      if !events_fed > 0 then Engine.finish engine);
  Obs.Tracer.stop tr
    ~args:
      [ ("events", string_of_int !events_fed);
        ("skipped_subtrees", string_of_int !skipped_subtrees);
        ("skipped_bytes", string_of_int !skipped_bytes) ]
    span;
  let outputs = List.rev !outputs in
  let view = Reassembler.run ?default ~has_query:(query <> None) outputs in
  {
    outputs;
    view;
    skipped_subtrees = !skipped_subtrees;
    skipped_bytes = !skipped_bytes;
    skipped_ranges = List.rev !skipped_ranges;
    consumed_bytes = String.length encoded - !skipped_bytes;
    events_fed = !events_fed;
    engine_stats = Engine.stats engine;
    reader_peak_words = Reader.peak_stack_words reader;
  }
