(** Containment test for XP{[],*,//} tree patterns.

    [contains q p] answers "is every node selected by [p] also selected by
    [q], on every document?" — the containment problem of Miklau & Suciu
    (reference [7] of the paper), which the rule optimizer uses to detect
    subsumed access rules.

    The implementation is the classical {e homomorphism} test: search for a
    mapping from [q]'s pattern tree to [p]'s that preserves labels (a
    wildcard maps anywhere, a named test only to the same name), maps child
    edges to child edges and descendant edges to any non-empty path, and
    sends [q]'s output node to [p]'s. Homomorphism existence is {e sound}
    (it implies containment) but incomplete for the full fragment — exactly
    the trade the optimizer wants, since it must never drop a
    non-redundant rule. Value-comparison predicates are treated as opaque
    labels: they only map onto an identical comparison. *)

val contains : Ast.t -> Ast.t -> bool
(** [contains q p]: sound test that [p]'s selection is included in [q]'s
    on every document. Reflexive; transitive. *)

val equivalent : Ast.t -> Ast.t -> bool
(** Mutual containment. *)

(** {1 Witness extraction}

    The static analyzer wants more than a boolean: when containment fails
    it wants {e evidence}. Non-containment is witnessed by a concrete
    counterexample document on which [p] selects a node [q] misses — such
    a document is a proof, independent of the homomorphism test's
    incompleteness. Counterexample candidates are the {e canonical
    instantiations} of [p] (à la Miklau & Suciu): wildcards become fresh
    tags, descendant edges are stretched by 0 or 1 fresh elements,
    comparisons become satisfying text. *)

type verdict =
  | Contained  (** homomorphism found: [p ⊆ q] on every document *)
  | Not_contained of Sdds_xml.Dom.t
      (** proof: on this document [p] selects a node that [q] does not *)
  | Unknown of Sdds_xml.Dom.t option
      (** no homomorphism, but every canonical candidate failed to refute:
          the fragment's incompleteness corner. Carries the first
          candidate (if any was buildable) so tests can replay it through
          the oracle and confirm it indeed fails to refute. *)

val decide : Ast.t -> Ast.t -> verdict
(** [decide q p] refines [contains q p] with a witness. [Contained] and
    [Not_contained] are sound claims; [Unknown] is an honest shrug. *)

val canonical_docs : ?avoid:string list -> Ast.t -> Sdds_xml.Dom.t list
(** The canonical instantiations of a pattern (empty when a comparison
    set is unsatisfiable by the candidate pool). Fresh tags avoid the
    pattern's own names and any in [avoid]. The pattern selects at least
    its output node on each returned document. *)
