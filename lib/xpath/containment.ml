(* Tree patterns: a rooted tree whose nodes carry a node test and the value
   comparisons anchored there, whose edges are child or descendant, and
   with one distinguished output node (the spine's end). *)

type pnode = {
  id : int;
  label : label;
  comparisons : (Ast.comparison * string) list;
  edges : (Ast.axis * pnode) list;
  output : bool;
}

and label = Root | Test of Ast.test

let build path =
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  (* Build the chain for [steps]. The last node of the chain is marked as
     output and/or receives an extra comparison, according to [at_end]. *)
  let rec build_chain steps ~at_end =
    match steps with
    | [] -> invalid_arg "Containment: empty chain"
    | { Ast.axis; test; preds } :: rest ->
        let comparisons, branches = split_preds preds in
        let end_comparisons, output, deeper =
          match rest with
          | [] -> (
              match at_end with
              | `Output -> ([], true, [])
              | `Comparison c -> ([ c ], false, [])
              | `Nothing -> ([], false, []))
          | _ :: _ -> ([], false, [ build_chain rest ~at_end ])
        in
        ( axis,
          {
            id = fresh ();
            label = Test test;
            comparisons = end_comparisons @ comparisons;
            edges = branches @ deeper;
            output;
          } )

  and split_preds preds =
    List.fold_left
      (fun (comps, branches) { Ast.ppath; target } ->
        match (ppath, target) with
        | [], Ast.Value (op, lit) -> ((op, lit) :: comps, branches)
        | [], Ast.Exists -> (comps, branches) (* not produced by the parser *)
        | _ :: _, Ast.Exists ->
            (comps, build_chain ppath ~at_end:`Nothing :: branches)
        | _ :: _, Ast.Value (op, lit) ->
            (comps, build_chain ppath ~at_end:(`Comparison (op, lit)) :: branches))
      ([], []) preds
  in
  let edge = build_chain path.Ast.steps ~at_end:`Output in
  { id = fresh (); label = Root; comparisons = []; edges = [ edge ]; output = false }

(* All strict descendants of [p] in the pattern tree. *)
let rec descendants p acc =
  List.fold_left (fun acc (_, c) -> descendants c (c :: acc)) acc p.edges

let label_ok q p =
  match (q.label, p.label) with
  | Root, Root -> true
  | Root, Test _ | Test _, Root -> false
  | Test Ast.Any, Test _ -> true
  | Test (Ast.Name a), Test (Ast.Name b) -> String.equal a b
  | Test (Ast.Name _), Test Ast.Any -> false

let comparisons_ok q p =
  List.for_all (fun c -> List.mem c p.comparisons) q.comparisons

(* Homomorphism search with memoization on (q.id, p.id). *)
let hom qroot proot =
  let memo : (int * int, bool) Hashtbl.t = Hashtbl.create 64 in
  let rec map_node q p =
    match Hashtbl.find_opt memo (q.id, p.id) with
    | Some r -> r
    | None ->
        let ok =
          label_ok q p
          && comparisons_ok q p
          && ((not q.output) || p.output)
          && List.for_all
               (fun (axis, q') ->
                 match axis with
                 | Ast.Child ->
                     List.exists
                       (fun (paxis, p') -> paxis = Ast.Child && map_node q' p')
                       p.edges
                 | Ast.Descendant ->
                     List.exists (fun p' -> map_node q' p') (descendants p []))
               q.edges
        in
        Hashtbl.replace memo (q.id, p.id) ok;
        ok
  in
  map_node qroot proot

let contains q p = hom (build q) (build p)

let equivalent a b = contains a b && contains b a

(* ------------------------------------------------------------------ *)
(* Witness extraction                                                  *)
(* ------------------------------------------------------------------ *)

module Dom = Sdds_xml.Dom

(* A value satisfying every comparison anchored at a pattern node, drawn
   from a small candidate pool derived from the literals themselves
   (the literal, its numeric neighbours, lexicographic perturbations).
   [`Unsat] when the pool cannot satisfy the conjunction — either the
   comparisons genuinely contradict (x = "1" and x = "2") or they are
   satisfiable only outside the pool; both make the canonical document
   unbuildable, which degrades the verdict to [Unknown], never to a
   wrong claim. *)
let value_satisfying = function
  | [] -> `No_text
  | comparisons ->
      let candidates =
        List.concat_map
          (fun (_, lit) ->
            let numeric =
              match float_of_string_opt lit with
              | Some f ->
                  [
                    Printf.sprintf "%g" (f +. 1.0);
                    Printf.sprintf "%g" (f -. 1.0);
                  ]
              | None -> []
            in
            (lit :: numeric) @ [ lit ^ "!"; "!" ^ lit; "" ])
          comparisons
      in
      let ok v =
        List.for_all (fun (op, lit) -> Ast.compare_values op v lit) comparisons
      in
      (match List.find_opt ok candidates with
      | Some v -> `Text v
      | None -> `Unsat)

let rec names_of_steps steps acc =
  List.fold_left
    (fun acc { Ast.test; preds; _ } ->
      let acc =
        match test with Ast.Name n -> n :: acc | Ast.Any -> acc
      in
      List.fold_left (fun acc p -> names_of_steps p.Ast.ppath acc) acc preds)
    acc steps

let names_of path = names_of_steps path.Ast.steps []

exception Unsat_pattern

(* Instantiate the pattern tree as a concrete document: named tests keep
   their name, wildcards take fresh tags, child edges become direct
   children and descendant edges are stretched by [gap] intermediate
   fresh elements; comparisons become a satisfying text child. By
   construction the pattern selects its output node on the result (unless
   a comparison set is unsatisfiable). *)
let instantiate ~gap ~fresh root =
  let rec node p =
    let tag =
      match p.label with
      | Root -> invalid_arg "Containment.instantiate: nested root"
      | Test (Ast.Name n) -> n
      | Test Ast.Any -> fresh ()
    in
    let text =
      match value_satisfying p.comparisons with
      | `No_text -> []
      | `Text v -> [ Dom.Text v ]
      | `Unsat -> raise Unsat_pattern
    in
    Dom.Element (tag, text @ List.map edge p.edges)
  and edge (axis, child) =
    let base = node child in
    match axis with
    | Ast.Child -> base
    | Ast.Descendant ->
        let rec wrap n doc =
          if n = 0 then doc else wrap (n - 1) (Dom.Element (fresh (), [ doc ]))
        in
        wrap gap base
  in
  match root.edges with
  | [ (axis, top) ] ->
      let base = node top in
      (* The document has a single root element: a descendant edge from
         the virtual root may interpose [gap] fresh elements above it. *)
      let rec wrap n doc =
        if n = 0 then doc else wrap (n - 1) (Dom.Element (fresh (), [ doc ]))
      in
      (match axis with
      | Ast.Child -> base
      | Ast.Descendant -> wrap gap base)
  | _ -> invalid_arg "Containment.instantiate: malformed root"

let fresh_gen avoid =
  let taken = ref avoid in
  let counter = ref 0 in
  fun () ->
    let rec next () =
      let name = if !counter = 0 then "z" else Printf.sprintf "z%d" !counter in
      incr counter;
      if List.mem name !taken then next ()
      else begin
        taken := name :: !taken;
        name
      end
    in
    next ()

let canonical_docs ?(avoid = []) path =
  let root = build path in
  let avoid = names_of path @ avoid in
  List.filter_map
    (fun gap ->
      match instantiate ~gap ~fresh:(fresh_gen avoid) root with
      | doc -> Some doc
      | exception Unsat_pattern -> None)
    [ 0; 1 ]

type verdict =
  | Contained
  | Not_contained of Dom.t
  | Unknown of Dom.t option

let refuted_by q p doc =
  let indexed = Eval.index doc in
  let p_ids = Eval.select p indexed in
  let q_ids = Eval.select q indexed in
  p_ids <> [] && List.exists (fun id -> not (List.mem id q_ids)) p_ids

let decide q p =
  if contains q p then Contained
  else
    let docs = canonical_docs ~avoid:(names_of q) p in
    match List.find_opt (refuted_by q p) docs with
    | Some doc -> Not_contained doc
    | None -> Unknown (match docs with d :: _ -> Some d | [] -> None)
