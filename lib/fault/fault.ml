module Rng = Sdds_util.Rng
module Apdu = Sdds_soe.Apdu
module Remote = Sdds_soe.Remote_card
module Store_io = Sdds_dsp.Store_io
module Obs = Sdds_obs.Obs

type kind =
  | Drop_command
  | Drop_response
  | Corrupt_command
  | Corrupt_response
  | Duplicate_command
  | Spurious_status
  | Tear

let all_kinds =
  [|
    Drop_command;
    Drop_response;
    Corrupt_command;
    Corrupt_response;
    Duplicate_command;
    Spurious_status;
    Tear;
  |]

let kind_to_string = function
  | Drop_command -> "drop-command"
  | Drop_response -> "drop-response"
  | Corrupt_command -> "corrupt-command"
  | Corrupt_response -> "corrupt-response"
  | Duplicate_command -> "duplicate-command"
  | Spurious_status -> "spurious-status"
  | Tear -> "tear"

let kind_of_string = function
  | "drop-command" -> Some Drop_command
  | "drop-response" -> Some Drop_response
  | "corrupt-command" -> Some Corrupt_command
  | "corrupt-response" -> Some Corrupt_response
  | "duplicate-command" -> Some Duplicate_command
  | "spurious-status" -> Some Spurious_status
  | "tear" -> Some Tear
  | _ -> None

type event = { frame : int; kind : kind }

let event_to_string e = Printf.sprintf "@%d:%s" e.frame (kind_to_string e.kind)

module Schedule = struct
  type t = {
    decide : int -> kind option;
    describe : string;
    (* Derive the schedule a sibling link (another card of a fleet)
       sees: random schedules mix the salt into their seed so each card
       suffers an independent fault stream; deterministic schedules
       (none, explicit events) apply to every card as-is — they are
       positional, and a directed test wants the same event everywhere. *)
    salted : int64 -> t;
  }

  let rec none =
    { decide = (fun _ -> None); describe = "none"; salted = (fun _ -> none) }

  let of_events events =
    let tbl = Hashtbl.create 16 in
    List.iter (fun e -> Hashtbl.replace tbl e.frame e.kind) events;
    let rec t =
      {
        decide = Hashtbl.find_opt tbl;
        describe =
          (match events with
          | [] -> "none"
          | es -> String.concat "," (List.map event_to_string es));
        salted = (fun _ -> t);
      }
    in
    t

  (* Stateless per-frame randomness: the decision for frame [n] depends
     only on [seed] and [n], so a schedule replays identically however
     many frames the recovering host ends up sending, and a failing run
     is reproducible from its seed alone. *)
  let rec random ~seed ~rate ?(kinds = all_kinds) () =
    let kinds = Array.copy kinds in
    {
      decide =
        (fun frame ->
          let rng =
            Rng.create
              (Int64.logxor seed
                 (Int64.mul
                    (Int64.of_int (frame + 1))
                    0x9E3779B97F4A7C15L))
          in
          if Array.length kinds > 0 && Rng.float rng 1.0 < rate then
            Some (Rng.pick rng kinds)
          else None);
      describe =
        Printf.sprintf "seed=%Ld,rate=%g%s" seed rate
          (if kinds = all_kinds then ""
           else
             ",kinds="
             ^ String.concat "+"
                 (Array.to_list (Array.map kind_to_string kinds)));
      salted =
        (fun salt ->
          random ~seed:(Int64.logxor seed salt) ~rate ~kinds ());
    }

  (* Distinct odd multiplier from the per-frame one, so card i's frame
     stream is not a shifted alias of card 0's. *)
  let for_card t card =
    t.salted (Int64.mul (Int64.of_int (card + 1)) 0xBF58476D1CE4E5B9L)

  type parse_error = { pos : int; msg : string }

  let string_of_parse_error e =
    Printf.sprintf "at char %d: %s" e.pos e.msg

  let pp_parse_error ppf e =
    Format.pp_print_string ppf (string_of_parse_error e)

  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

  (* Comma-split with byte offsets into the original string, each field
     trimmed: a parse error can point at the offending token, which
     matters once specs are machine-emitted counterexamples that a human
     copy-pastes (and maybe mangles) into [--fault-spec]. *)
  let fields_of spec =
    let rec go start acc =
      match String.index_from_opt spec start ',' with
      | None ->
          List.rev ((start, String.sub spec start (String.length spec - start)) :: acc)
      | Some i -> go (i + 1) ((start, String.sub spec start (i - start)) :: acc)
    in
    List.map
      (fun (off, f) ->
        let m = String.length f in
        let a = ref 0 in
        while !a < m && is_space f.[!a] do incr a done;
        let b = ref m in
        while !b > !a && is_space f.[!b - 1] do decr b done;
        (off + !a, String.sub f !a (!b - !a)))
      (go 0 [])

  let of_spec spec =
    let err pos msg = Error { pos; msg } in
    let n = String.length spec in
    let lead = ref 0 in
    while !lead < n && is_space spec.[!lead] do incr lead done;
    let stop = ref n in
    while !stop > !lead && is_space spec.[!stop - 1] do decr stop done;
    let body = String.sub spec !lead (!stop - !lead) in
    let base = !lead in
    if body = "" || body = "none" then Ok none
    else if body.[0] = '@' then begin
      (* "@FRAME:KIND,@FRAME:KIND,..." — an explicit event list. *)
      let rec go acc = function
        | [] -> Ok (of_events (List.rev acc))
        | (off, p) :: rest -> (
            let off = base + off in
            if p = "" then err off "empty fault event"
            else if p.[0] <> '@' then
              err off (Printf.sprintf "expected @FRAME:KIND, got %S" p)
            else
              match String.index_opt p ':' with
              | None ->
                  err off (Printf.sprintf "missing ':' in fault event %S" p)
              | Some i -> (
                  let frame_s = String.sub p 1 (i - 1) in
                  let kind_s = String.sub p (i + 1) (String.length p - i - 1) in
                  match int_of_string_opt frame_s with
                  | None ->
                      err (off + 1)
                        (Printf.sprintf "bad frame number %S" frame_s)
                  | Some frame when frame < 0 ->
                      err (off + 1)
                        (Printf.sprintf "negative frame number %d" frame)
                  | Some frame -> (
                      match kind_of_string kind_s with
                      | None ->
                          err (off + i + 1)
                            (Printf.sprintf "unknown fault kind %S" kind_s)
                      | Some kind -> go ({ frame; kind } :: acc) rest)))
      in
      go [] (fields_of body)
    end
    else begin
      (* "seed=N,rate=F[,kinds=a+b+c]" — a random schedule. *)
      let seed = ref None and rate = ref None and kinds = ref None in
      let parse_field (off, field) =
        let off = base + off in
        match String.index_opt field '=' with
        | None ->
            err off (Printf.sprintf "expected KEY=VALUE, got %S" field)
        | Some i -> (
            let k = String.trim (String.sub field 0 i) in
            let voff = off + i + 1 in
            let v =
              String.trim
                (String.sub field (i + 1) (String.length field - i - 1))
            in
            match k with
            | "seed" -> (
                match Int64.of_string_opt v with
                | Some s ->
                    seed := Some s;
                    Ok ()
                | None -> err voff (Printf.sprintf "bad seed %S" v))
            | "rate" -> (
                match float_of_string_opt v with
                | Some r when r >= 0.0 && r <= 1.0 ->
                    rate := Some r;
                    Ok ()
                | _ -> err voff (Printf.sprintf "bad rate %S (want 0..1)" v))
            | "kinds" -> (
                let names = String.split_on_char '+' v in
                let rec collect acc = function
                  | [] -> Ok (Array.of_list (List.rev acc))
                  | nm :: rest -> (
                      match kind_of_string (String.trim nm) with
                      | Some kd -> collect (kd :: acc) rest
                      | None ->
                          err voff (Printf.sprintf "unknown fault kind %S" nm))
                in
                match collect [] names with
                | Ok ks ->
                    kinds := Some ks;
                    Ok ()
                | Error e -> Error e)
            | _ -> err off (Printf.sprintf "unknown fault field %S" k))
      in
      let rec all = function
        | [] -> (
            match (!seed, !rate) with
            | Some seed, Some rate -> Ok (random ~seed ~rate ?kinds:!kinds ())
            | _ -> err base "fault spec needs both seed= and rate=")
        | f :: rest -> (
            match parse_field f with Ok () -> all rest | Error e -> Error e)
      in
      all (fields_of body)
    end

  let describe t = t.describe
  let to_spec = describe
  let decide t frame = t.decide frame
end

(* ------------------------------------------------------------------ *)
(* Lossy APDU link                                                      *)
(* ------------------------------------------------------------------ *)

module Link = struct
  type traced = { event : event; span : int }

  type t = {
    inner : Remote.Client.transport;
    schedule : Schedule.t;
    on_tear : (unit -> unit) option;
    obs : Obs.t option;
    mutable frame : int;
    mutable trace : traced list;  (* newest first *)
  }

  let wrap ?obs ~schedule ?tear inner =
    { inner; schedule; on_tear = tear; obs; frame = 0; trace = [] }

  let sw (sw1, sw2) = { Apdu.sw1; sw2; payload = "" }

  (* The modeled link layer checksums every frame, so corruption and
     truncation are *detected*, in either direction: the terminal driver
     sees a bad frame (or no frame) and reports the transient
     [Sw.transport] word. A corrupted/ dropped command therefore never
     reaches the card at all; a corrupted/dropped response means the
     card *did* process the command but the terminal cannot know — which
     is exactly why the host's duplicate-ack and block-retransmission
     machinery exists. Nothing here ever delivers altered payload bytes:
     Byzantine delivery would model a broken CRC, not a lossy serial
     link. *)
  let send t cmd =
    let n = t.frame in
    t.frame <- n + 1;
    let inject kind =
      (* Record which request span the fault landed in: the pool re-roots
         the span stack at the request before every exchange, so
         [current] is the victim request (or [none] outside tracing). *)
      let tr = Obs.tracer t.obs in
      let span = Obs.Tracer.current tr in
      t.trace <- { event = { frame = n; kind }; span } :: t.trace;
      Obs.inc t.obs "fault.injected" 1;
      Obs.Tracer.instant tr
        ~args:
          [ ("kind", kind_to_string kind); ("frame", string_of_int n) ]
        "fault";
      match kind with
      | Drop_command | Corrupt_command -> sw Remote.Sw.transport
      | Drop_response | Corrupt_response ->
          let _ = t.inner cmd in
          sw Remote.Sw.transport
      | Duplicate_command ->
          (* The line echoes the frame twice; the card answers both, the
             terminal reads the second answer. *)
          let _ = t.inner cmd in
          t.inner cmd
      | Spurious_status -> sw Remote.Sw.internal
      | Tear -> (
          match t.on_tear with
          | Some f ->
              f ();
              sw Remote.Sw.transport
          | None -> sw Remote.Sw.transport)
    in
    match Schedule.decide t.schedule n with
    | None -> t.inner cmd
    | Some kind -> inject kind

  let transport t = send t
  let frames t = t.frame
  let injected t = List.length t.trace
  let trace t = List.rev_map (fun x -> x.event) t.trace
  let traced t = List.rev t.trace
end

(* ------------------------------------------------------------------ *)
(* Faulty disk                                                          *)
(* ------------------------------------------------------------------ *)

module Disk = struct
  type t = {
    seed : int64;
    fail_rate : float;
    torn_rate : float;
    mutable op : int;
    mutable trace : (Store_io.io_op * string * Store_io.io_fault) list;
  }

  let arm ~seed ?(fail_rate = 0.0) ?(torn_rate = 0.0) () =
    let t = { seed; fail_rate; torn_rate; op = 0; trace = [] } in
    Store_io.set_fault_hook (fun op path ->
        let n = t.op in
        t.op <- n + 1;
        let rng =
          Rng.create
            (Int64.logxor seed
               (Int64.mul (Int64.of_int (n + 1)) 0x9E3779B97F4A7C15L))
        in
        let roll = Rng.float rng 1.0 in
        let fault =
          if op = `Write && roll < t.torn_rate then
            Some (Store_io.Torn_write { keep_bytes = Rng.int rng 4096 })
          else if roll < t.torn_rate +. t.fail_rate then
            Some (Store_io.Io_fail "injected disk fault")
          else None
        in
        (match fault with
        | Some f -> t.trace <- (op, path, f) :: t.trace
        | None -> ());
        fault);
    t

  let disarm () = Store_io.clear_fault_hook ()
  let injected t = List.length t.trace
  let trace t = List.rev t.trace
end
