module Rng = Sdds_util.Rng
module Apdu = Sdds_soe.Apdu
module Remote = Sdds_soe.Remote_card
module Store_io = Sdds_dsp.Store_io
module Obs = Sdds_obs.Obs

type kind =
  | Drop_command
  | Drop_response
  | Corrupt_command
  | Corrupt_response
  | Duplicate_command
  | Spurious_status
  | Tear

let all_kinds =
  [|
    Drop_command;
    Drop_response;
    Corrupt_command;
    Corrupt_response;
    Duplicate_command;
    Spurious_status;
    Tear;
  |]

let kind_to_string = function
  | Drop_command -> "drop-command"
  | Drop_response -> "drop-response"
  | Corrupt_command -> "corrupt-command"
  | Corrupt_response -> "corrupt-response"
  | Duplicate_command -> "duplicate-command"
  | Spurious_status -> "spurious-status"
  | Tear -> "tear"

let kind_of_string = function
  | "drop-command" -> Some Drop_command
  | "drop-response" -> Some Drop_response
  | "corrupt-command" -> Some Corrupt_command
  | "corrupt-response" -> Some Corrupt_response
  | "duplicate-command" -> Some Duplicate_command
  | "spurious-status" -> Some Spurious_status
  | "tear" -> Some Tear
  | _ -> None

type event = { frame : int; kind : kind }

let event_to_string e = Printf.sprintf "@%d:%s" e.frame (kind_to_string e.kind)

module Schedule = struct
  type t = {
    decide : int -> kind option;
    describe : string;
    (* Derive the schedule a sibling link (another card of a fleet)
       sees: random schedules mix the salt into their seed so each card
       suffers an independent fault stream; deterministic schedules
       (none, explicit events) apply to every card as-is — they are
       positional, and a directed test wants the same event everywhere. *)
    salted : int64 -> t;
  }

  let rec none =
    { decide = (fun _ -> None); describe = "none"; salted = (fun _ -> none) }

  let of_events events =
    let tbl = Hashtbl.create 16 in
    List.iter (fun e -> Hashtbl.replace tbl e.frame e.kind) events;
    let rec t =
      {
        decide = Hashtbl.find_opt tbl;
        describe =
          (match events with
          | [] -> "none"
          | es -> String.concat "," (List.map event_to_string es));
        salted = (fun _ -> t);
      }
    in
    t

  (* Stateless per-frame randomness: the decision for frame [n] depends
     only on [seed] and [n], so a schedule replays identically however
     many frames the recovering host ends up sending, and a failing run
     is reproducible from its seed alone. [ramp] varies the rate over
     time — the effective rate at frame [n] is
     [clamp 0 1 (rate + ramp * n / 1000)] — still stateless in [n]. *)
  let rec random ~seed ~rate ?(ramp = 0.0) ?(kinds = all_kinds) () =
    let kinds = Array.copy kinds in
    {
      decide =
        (fun frame ->
          let rng =
            Rng.create
              (Int64.logxor seed
                 (Int64.mul
                    (Int64.of_int (frame + 1))
                    0x9E3779B97F4A7C15L))
          in
          let eff =
            min 1.0
              (max 0.0 (rate +. (ramp *. float_of_int frame /. 1000.0)))
          in
          if Array.length kinds > 0 && Rng.float rng 1.0 < eff then
            Some (Rng.pick rng kinds)
          else None);
      describe =
        Printf.sprintf "seed=%Ld,rate=%g%s%s" seed rate
          (if ramp = 0.0 then "" else Printf.sprintf ",ramp=%g" ramp)
          (if kinds = all_kinds then ""
           else
             ",kinds="
             ^ String.concat "+"
                 (Array.to_list (Array.map kind_to_string kinds)));
      salted =
        (fun salt ->
          random ~seed:(Int64.logxor seed salt) ~rate ~ramp ~kinds ());
    }

  (* Time-phased composition: frames 0..len1-1 go to the first segment
     (frame numbers as the segment sees them restart at 0), the next
     len2 to the second, and so on; [tail] decides every frame past the
     segments, likewise renumbered from 0. Campaigns use this to turn
     fault pressure on and off across a long run. *)
  let rec concat segments tail =
    List.iter
      (fun (len, s) ->
        if len < 1 then invalid_arg "Schedule.concat: segment length < 1";
        (* A concat *tail* nests fine (its spec flattens into the same
           segment list), but a concat segment would put ';' inside a
           segment and break the spec round-trip. *)
        if String.contains s.describe ';' then
          invalid_arg "Schedule.concat: a segment cannot itself be a concat")
      segments;
    let decide frame =
      let rec go frame = function
        | [] -> tail.decide frame
        | (len, s) :: rest ->
            if frame < len then s.decide frame else go (frame - len) rest
      in
      go frame segments
    in
    {
      decide;
      describe =
        String.concat ";"
          (List.map
             (fun (len, s) -> Printf.sprintf "#%d:%s" len s.describe)
             segments
          @ [ tail.describe ]);
      salted =
        (fun salt ->
          concat
            (List.map (fun (len, s) -> (len, s.salted salt)) segments)
            (tail.salted salt));
    }

  (* Distinct odd multiplier from the per-frame one, so card i's frame
     stream is not a shifted alias of card 0's. *)
  let for_card t card =
    t.salted (Int64.mul (Int64.of_int (card + 1)) 0xBF58476D1CE4E5B9L)

  type parse_error = { pos : int; msg : string }

  let string_of_parse_error e =
    Printf.sprintf "at char %d: %s" e.pos e.msg

  let pp_parse_error ppf e =
    Format.pp_print_string ppf (string_of_parse_error e)

  let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

  (* Comma-split with byte offsets into the original string, each field
     trimmed: a parse error can point at the offending token, which
     matters once specs are machine-emitted counterexamples that a human
     copy-pastes (and maybe mangles) into [--fault-spec]. *)
  let fields_of spec =
    let rec go start acc =
      match String.index_from_opt spec start ',' with
      | None ->
          List.rev ((start, String.sub spec start (String.length spec - start)) :: acc)
      | Some i -> go (i + 1) ((start, String.sub spec start (i - start)) :: acc)
    in
    List.map
      (fun (off, f) ->
        let m = String.length f in
        let a = ref 0 in
        while !a < m && is_space f.[!a] do incr a done;
        let b = ref m in
        while !b > !a && is_space f.[!b - 1] do decr b done;
        (off + !a, String.sub f !a (!b - !a)))
      (go 0 [])

  (* One segmentless spec ("none" | "@F:KIND,..." | "seed=,rate=,...");
     [outer] is the byte offset of [spec] within the caller's string, so
     error positions stay accurate inside concat segments. *)
  let of_spec_simple ~outer spec =
    let err pos msg = Error { pos; msg } in
    let n = String.length spec in
    let lead = ref 0 in
    while !lead < n && is_space spec.[!lead] do incr lead done;
    let stop = ref n in
    while !stop > !lead && is_space spec.[!stop - 1] do decr stop done;
    let body = String.sub spec !lead (!stop - !lead) in
    let base = outer + !lead in
    if body = "" || body = "none" then Ok none
    else if body.[0] = '@' then begin
      (* "@FRAME:KIND,@FRAME:KIND,..." — an explicit event list. *)
      let rec go acc = function
        | [] -> Ok (of_events (List.rev acc))
        | (off, p) :: rest -> (
            let off = base + off in
            if p = "" then err off "empty fault event"
            else if p.[0] <> '@' then
              err off (Printf.sprintf "expected @FRAME:KIND, got %S" p)
            else
              match String.index_opt p ':' with
              | None ->
                  err off (Printf.sprintf "missing ':' in fault event %S" p)
              | Some i -> (
                  let frame_s = String.sub p 1 (i - 1) in
                  let kind_s = String.sub p (i + 1) (String.length p - i - 1) in
                  match int_of_string_opt frame_s with
                  | None ->
                      err (off + 1)
                        (Printf.sprintf "bad frame number %S" frame_s)
                  | Some frame when frame < 0 ->
                      err (off + 1)
                        (Printf.sprintf "negative frame number %d" frame)
                  | Some frame -> (
                      match kind_of_string kind_s with
                      | None ->
                          err (off + i + 1)
                            (Printf.sprintf "unknown fault kind %S" kind_s)
                      | Some kind -> go ({ frame; kind } :: acc) rest)))
      in
      go [] (fields_of body)
    end
    else begin
      (* "seed=N,rate=F[,ramp=G][,kinds=a+b+c]" — a random schedule. *)
      let seed = ref None and rate = ref None and kinds = ref None in
      let ramp = ref 0.0 in
      let parse_field (off, field) =
        let off = base + off in
        match String.index_opt field '=' with
        | None ->
            err off (Printf.sprintf "expected KEY=VALUE, got %S" field)
        | Some i -> (
            let k = String.trim (String.sub field 0 i) in
            let voff = off + i + 1 in
            let v =
              String.trim
                (String.sub field (i + 1) (String.length field - i - 1))
            in
            match k with
            | "seed" -> (
                match Int64.of_string_opt v with
                | Some s ->
                    seed := Some s;
                    Ok ()
                | None -> err voff (Printf.sprintf "bad seed %S" v))
            | "rate" -> (
                match float_of_string_opt v with
                | Some r when r >= 0.0 && r <= 1.0 ->
                    rate := Some r;
                    Ok ()
                | _ -> err voff (Printf.sprintf "bad rate %S (want 0..1)" v))
            | "ramp" -> (
                match float_of_string_opt v with
                | Some g ->
                    ramp := g;
                    Ok ()
                | None -> err voff (Printf.sprintf "bad ramp %S" v))
            | "kinds" -> (
                let names = String.split_on_char '+' v in
                let rec collect acc = function
                  | [] -> Ok (Array.of_list (List.rev acc))
                  | nm :: rest -> (
                      match kind_of_string (String.trim nm) with
                      | Some kd -> collect (kd :: acc) rest
                      | None ->
                          err voff (Printf.sprintf "unknown fault kind %S" nm))
                in
                match collect [] names with
                | Ok ks ->
                    kinds := Some ks;
                    Ok ()
                | Error e -> Error e)
            | _ -> err off (Printf.sprintf "unknown fault field %S" k))
      in
      let rec all = function
        | [] -> (
            match (!seed, !rate) with
            | Some seed, Some rate ->
                Ok (random ~seed ~rate ~ramp:!ramp ?kinds:!kinds ())
            | _ -> err base "fault spec needs both seed= and rate=")
        | f :: rest -> (
            match parse_field f with Ok () -> all rest | Error e -> Error e)
      in
      all (fields_of body)
    end

  (* ';' splits concat segments: every chunk but the last must be
     "#LEN:SPEC"; the last is the tail schedule. A spec without ';' is a
     plain segmentless schedule. *)
  let of_spec spec =
    let err pos msg = Error { pos; msg } in
    let chunks =
      let rec go start acc =
        match String.index_from_opt spec start ';' with
        | None ->
            List.rev
              ((start, String.sub spec start (String.length spec - start))
              :: acc)
        | Some i -> go (i + 1) ((start, String.sub spec start (i - start)) :: acc)
      in
      go 0 []
    in
    match chunks with
    | [ (_, whole) ] -> of_spec_simple ~outer:0 whole
    | chunks -> (
        let rec split_last acc = function
          | [] -> assert false
          | [ last ] -> (List.rev acc, last)
          | c :: rest -> split_last (c :: acc) rest
        in
        let segs, (tail_off, tail_s) = split_last [] chunks in
        let parse_segment (off, chunk) =
          let m = String.length chunk in
          let a = ref 0 in
          while !a < m && is_space chunk.[!a] do incr a done;
          if !a >= m || chunk.[!a] <> '#' then
            err (off + !a) "expected #LEN:SPEC before ';'"
          else
            match String.index_from_opt chunk !a ':' with
            | None -> err (off + !a) "missing ':' after segment length"
            | Some i -> (
                let len_s = String.sub chunk (!a + 1) (i - !a - 1) in
                match int_of_string_opt (String.trim len_s) with
                | Some len when len >= 1 -> (
                    let rest = String.sub chunk (i + 1) (m - i - 1) in
                    match of_spec_simple ~outer:(off + i + 1) rest with
                    | Ok s -> Ok (len, s)
                    | Error e -> Error e)
                | _ ->
                    err (off + !a + 1)
                      (Printf.sprintf "bad segment length %S" len_s))
        in
        let rec all acc = function
          | [] -> Ok (List.rev acc)
          | c :: rest -> (
              match parse_segment c with
              | Ok seg -> all (seg :: acc) rest
              | Error e -> Error e)
        in
        match all [] segs with
        | Error e -> Error e
        | Ok segs -> (
            match of_spec_simple ~outer:tail_off tail_s with
            | Ok tail -> Ok (concat segs tail)
            | Error e -> Error e))

  let describe t = t.describe
  let to_spec = describe
  let decide t frame = t.decide frame
end

(* ------------------------------------------------------------------ *)
(* Lossy APDU link                                                      *)
(* ------------------------------------------------------------------ *)

module Link = struct
  type traced = { event : event; span : int }

  type t = {
    inner : Remote.Client.transport;
    schedule : Schedule.t;
    on_tear : (unit -> unit) option;
    obs : Obs.t option;
    mutable frame : int;
    mutable trace : traced list;  (* newest first *)
  }

  let wrap ?obs ~schedule ?tear inner =
    { inner; schedule; on_tear = tear; obs; frame = 0; trace = [] }

  let sw (sw1, sw2) = { Apdu.sw1; sw2; payload = "" }

  (* The modeled link layer checksums every frame, so corruption and
     truncation are *detected*, in either direction: the terminal driver
     sees a bad frame (or no frame) and reports the transient
     [Sw.transport] word. A corrupted/ dropped command therefore never
     reaches the card at all; a corrupted/dropped response means the
     card *did* process the command but the terminal cannot know — which
     is exactly why the host's duplicate-ack and block-retransmission
     machinery exists. Nothing here ever delivers altered payload bytes:
     Byzantine delivery would model a broken CRC, not a lossy serial
     link. *)
  let send t cmd =
    let n = t.frame in
    t.frame <- n + 1;
    let inject kind =
      (* Record which request span the fault landed in: the pool re-roots
         the span stack at the request before every exchange, so
         [current] is the victim request (or [none] outside tracing). *)
      let tr = Obs.tracer t.obs in
      let span = Obs.Tracer.current tr in
      t.trace <- { event = { frame = n; kind }; span } :: t.trace;
      Obs.inc t.obs "fault.injected" 1;
      Obs.Tracer.instant tr
        ~args:
          [ ("kind", kind_to_string kind); ("frame", string_of_int n) ]
        "fault";
      match kind with
      | Drop_command | Corrupt_command -> sw Remote.Sw.transport
      | Drop_response | Corrupt_response ->
          let _ = t.inner cmd in
          sw Remote.Sw.transport
      | Duplicate_command ->
          (* The line echoes the frame twice; the card answers both, the
             terminal reads the second answer. *)
          let _ = t.inner cmd in
          t.inner cmd
      | Spurious_status -> sw Remote.Sw.internal
      | Tear -> (
          match t.on_tear with
          | Some f ->
              f ();
              sw Remote.Sw.transport
          | None -> sw Remote.Sw.transport)
    in
    match Schedule.decide t.schedule n with
    | None -> t.inner cmd
    | Some kind -> inject kind

  let transport t = send t
  let frames t = t.frame
  let injected t = List.length t.trace
  let trace t = List.rev_map (fun x -> x.event) t.trace
  let traced t = List.rev t.trace
end

(* ------------------------------------------------------------------ *)
(* Cutout: a card's power/link switch                                   *)
(* ------------------------------------------------------------------ *)

module Cutout = struct
  type t = { mutable down : bool; mutable kills : int }

  let create () = { down = false; kills = 0 }

  let kill t =
    if not t.down then begin
      t.down <- true;
      t.kills <- t.kills + 1
    end

  let revive t = t.down <- false
  let is_down t = t.down
  let kills t = t.kills

  (* While down, every frame answers the transport word — exactly what a
     terminal sees from an unplugged reader: the command never reaches
     any card and no bytes come back. *)
  let wrap t (inner : Remote.Client.transport) : Remote.Client.transport =
   fun cmd ->
    if t.down then
      { Apdu.sw1 = fst Remote.Sw.transport;
        sw2 = snd Remote.Sw.transport;
        payload = "" }
    else inner cmd
end

(* ------------------------------------------------------------------ *)
(* Campaign: fleet-level chaos, scheduled against the request stream    *)
(* ------------------------------------------------------------------ *)

module Campaign = struct
  type action =
    | Kill of int
    | Revive of int
    | Add_card
    | Remove_card of int
    | Tear of int

  type event = { at : int; action : action }

  type t = event list

  let events = Fun.id

  let of_events evs =
    List.sort (fun a b -> compare (a.at, a.action) (b.at, b.action)) evs

  let action_to_string = function
    | Kill c -> Printf.sprintf "kill:%d" c
    | Revive c -> Printf.sprintf "revive:%d" c
    | Add_card -> "add"
    | Remove_card c -> Printf.sprintf "remove:%d" c
    | Tear c -> Printf.sprintf "tear:%d" c

  let event_to_string e = Printf.sprintf "@%d:%s" e.at (action_to_string e.action)

  let to_spec = function
    | [] -> "none"
    | evs -> String.concat "," (List.map event_to_string evs)

  (* Same surface syntax as fault-event specs ("@AT:ACTION[:CARD]"), and
     the same positioned error type, so CLI plumbing and error rendering
     are shared. *)
  let of_spec spec =
    let err pos msg = Error { Schedule.pos; msg } in
    let body = String.trim spec in
    if body = "" || body = "none" then Ok []
    else
      let parts = String.split_on_char ',' body in
      let rec go acc off = function
        | [] -> Ok (of_events (List.rev acc))
        | p :: rest -> (
            let next_off = off + String.length p + 1 in
            let p' = String.trim p in
            if p' = "" then err off "empty campaign event"
            else if p'.[0] <> '@' then
              err off (Printf.sprintf "expected @AT:ACTION, got %S" p')
            else
              match String.index_opt p' ':' with
              | None -> err off (Printf.sprintf "missing ':' in %S" p')
              | Some i -> (
                  let at_s = String.sub p' 1 (i - 1) in
                  let rest_s =
                    String.sub p' (i + 1) (String.length p' - i - 1)
                  in
                  match int_of_string_opt at_s with
                  | None -> err (off + 1) (Printf.sprintf "bad position %S" at_s)
                  | Some at when at < 0 ->
                      err (off + 1) (Printf.sprintf "negative position %d" at)
                  | Some at -> (
                      let with_card name k =
                        match String.index_opt rest_s ':' with
                        | None ->
                            err (off + i + 1)
                              (Printf.sprintf "%s needs a card index" name)
                        | Some j -> (
                            let c_s =
                              String.sub rest_s (j + 1)
                                (String.length rest_s - j - 1)
                            in
                            match int_of_string_opt c_s with
                            | Some c when c >= 0 ->
                                go ({ at; action = k c } :: acc) next_off rest
                            | _ ->
                                err
                                  (off + i + j + 2)
                                  (Printf.sprintf "bad card index %S" c_s))
                      in
                      if rest_s = "add" then
                        go ({ at; action = Add_card } :: acc) next_off rest
                      else if String.length rest_s >= 4
                              && String.sub rest_s 0 4 = "kill" then
                        with_card "kill" (fun c -> Kill c)
                      else if String.length rest_s >= 6
                              && String.sub rest_s 0 6 = "revive" then
                        with_card "revive" (fun c -> Revive c)
                      else if String.length rest_s >= 6
                              && String.sub rest_s 0 6 = "remove" then
                        with_card "remove" (fun c -> Remove_card c)
                      else if String.length rest_s >= 4
                              && String.sub rest_s 0 4 = "tear" then
                        with_card "tear" (fun c -> Tear c)
                      else
                        err (off + i + 1)
                          (Printf.sprintf "unknown campaign action %S" rest_s))))
      in
      go [] 0 parts

  (* A coherent random campaign: kills hit distinct cards in the middle
     80% of the stream, each revive restores a previously killed card
     strictly later, resizes alternate add/remove. Deterministic in
     [seed]; the runner treats redundant actions (killing a dead card)
     as no-ops, so any generated campaign is safe to apply. *)
  let random ~seed ~requests ~cards ?(kills = 2) ?(revives = 1)
      ?(resizes = 1) () =
    if requests < 10 then invalid_arg "Campaign.random: requests < 10";
    if cards < 1 then invalid_arg "Campaign.random: cards < 1";
    let rng = Rng.create seed in
    let pos lo hi = lo + Rng.int rng (max 1 (hi - lo)) in
    let lo = requests / 10 and hi = 9 * requests / 10 in
    let kills = min kills cards in
    let killed =
      let pool = Array.init cards Fun.id in
      for i = cards - 1 downto 1 do
        let j = Rng.int rng (i + 1) in
        let tmp = pool.(i) in
        pool.(i) <- pool.(j);
        pool.(j) <- tmp
      done;
      Array.to_list (Array.sub pool 0 kills)
    in
    let kill_evs =
      List.map (fun c -> { at = pos lo hi; action = Kill c }) killed
    in
    let revive_evs =
      List.filteri (fun i _ -> i < revives) kill_evs
      |> List.map (fun e ->
             let c = match e.action with Kill c -> c | _ -> assert false in
             { at = pos (min (e.at + 1) hi) (hi + 1); action = Revive c })
    in
    let resize_evs =
      List.init resizes (fun i ->
          if i mod 2 = 0 then { at = pos lo hi; action = Add_card }
          else { at = pos lo hi; action = Remove_card (Rng.int rng cards) })
    in
    of_events (kill_evs @ revive_evs @ resize_evs)
end

(* ------------------------------------------------------------------ *)
(* Faulty disk                                                          *)
(* ------------------------------------------------------------------ *)

module Disk = struct
  type t = {
    seed : int64;
    fail_rate : float;
    torn_rate : float;
    mutable op : int;
    mutable trace : (Store_io.io_op * string * Store_io.io_fault) list;
  }

  let arm ~seed ?(fail_rate = 0.0) ?(torn_rate = 0.0) () =
    let t = { seed; fail_rate; torn_rate; op = 0; trace = [] } in
    Store_io.set_fault_hook (fun op path ->
        let n = t.op in
        t.op <- n + 1;
        let rng =
          Rng.create
            (Int64.logxor seed
               (Int64.mul (Int64.of_int (n + 1)) 0x9E3779B97F4A7C15L))
        in
        let roll = Rng.float rng 1.0 in
        let fault =
          if op = `Write && roll < t.torn_rate then
            Some (Store_io.Torn_write { keep_bytes = Rng.int rng 4096 })
          else if roll < t.torn_rate +. t.fail_rate then
            Some (Store_io.Io_fail "injected disk fault")
          else None
        in
        (match fault with
        | Some f -> t.trace <- (op, path, f) :: t.trace
        | None -> ());
        fault);
    t

  let disarm () = Store_io.clear_fault_hook ()
  let injected t = List.length t.trace
  let trace t = List.rev t.trace
end
