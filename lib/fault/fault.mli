(** Deterministic fault injection for the APDU link and the DSP disk.

    The demo platform is the hostile case for reliability: a card that
    can be torn out mid-evaluation, a 2 KB/s serial link that drops and
    corrupts frames, a commodity DSP whose disk can fail. This module
    injects exactly those faults, deterministically: a {!Schedule} maps
    frame numbers to faults — either an explicit event list or a seeded
    random process whose decision for frame [n] depends only on the seed
    and [n] — so any failing run replays bit-identically from its seed,
    and every injected fault is logged to a trace that can itself be
    turned back into a schedule ({!Schedule.of_events}).

    {b Fault model.} The modeled link layer checksums every frame, so
    corruption and truncation are {e detected}: the terminal sees the
    transient {!Sdds_soe.Remote_card.Sw.transport} word, never altered
    payload bytes (Byzantine delivery would model a broken CRC, not a
    lossy serial link). Dropped or corrupted {e commands} never reach
    the card; dropped or corrupted {e responses} mean the card processed
    a command whose answer the terminal never saw — the case the host's
    duplicate-ack and block-retransmission machinery exists for. A
    {!kind.Tear} models power loss: the card's volatile sessions vanish
    mid-exchange (via the [tear] callback, typically
    {!Sdds_soe.Remote_card.Host.tear}) and the terminal's frame is
    lost. *)

(** What can go wrong on one frame of the exchange. *)
type kind =
  | Drop_command  (** the command never reaches the card *)
  | Drop_response  (** the card processes it; the answer is lost *)
  | Corrupt_command  (** detected by the link CRC before the card *)
  | Corrupt_response  (** detected by the link CRC at the terminal *)
  | Duplicate_command
      (** the line echoes the frame twice; the card answers both *)
  | Spurious_status  (** the card answers a transient internal error *)
  | Tear  (** power loss: all volatile card sessions reset *)

val all_kinds : kind array

val kind_to_string : kind -> string
(** Kebab-case names ([drop-command], [tear], ...), stable: they appear
    in [--fault-spec] and in traces. *)

val kind_of_string : string -> kind option

type event = { frame : int; kind : kind }
(** One injected fault: [kind] hit the [frame]-th frame (0-based) sent
    over the link. *)

val event_to_string : event -> string
(** ["@FRAME:KIND"], the [--fault-spec] event syntax. *)

(** When to inject what. *)
module Schedule : sig
  type t

  val none : t

  val of_events : event list -> t
  (** Inject exactly these events (at most one fault per frame; later
      entries for the same frame win). Turning a {!Link.trace} back into
      a schedule replays a recorded run. *)

  val random :
    seed:int64 -> rate:float -> ?ramp:float -> ?kinds:kind array -> unit -> t
  (** Each frame independently faults with probability [rate], the kind
      drawn uniformly from [kinds] (default {!all_kinds}). Stateless in
      the frame number: replays identically regardless of how many
      frames the recovering host ends up sending. [ramp] (default 0)
      makes the rate time-varying: the effective rate at frame [n] is
      [rate + ramp * n / 1000], clamped to [0, 1] — a campaign can turn
      the screw gradually instead of hammering from frame 0. *)

  val concat : (int * t) list -> t -> t
  (** [concat [(len1, s1); ...] tail] — time-phased composition: the
      first [len1] frames are decided by [s1] (which sees frames
      renumbered from 0), the next [len2] by [s2], and every frame past
      the segments by [tail] (renumbered likewise). Spec syntax:
      segments joined with [';'], each segment ["#LEN:SPEC"], the tail a
      plain spec — ["#200:none;#50:seed=1,rate=0.3;seed=1,rate=0.05"]
      runs clean for 200 frames, hammers for 50, then settles. Raises
      [Invalid_argument] on a segment length < 1 or a segment that is
      itself a concat (the tail may be — it flattens). *)

  val for_card : t -> int -> t
  (** [for_card t i] is the schedule card [i] of a fleet sees behind a
      shared spec: a {!random} schedule reseeds with the card index mixed
      in, so each card suffers an independent (but still deterministic,
      replayable) fault stream; [none] and explicit {!of_events}
      schedules apply to every card as-is — they are positional, and a
      directed test wants the same event on whichever card it targets.
      [describe] of a derived schedule shows the mixed seed. *)

  type parse_error = { pos : int; msg : string }
  (** A malformed spec: [pos] is the byte offset of the offending token
      in the string as given (so an editor or error message can point at
      it), [msg] says what was expected. *)

  val string_of_parse_error : parse_error -> string
  val pp_parse_error : Format.formatter -> parse_error -> unit

  val of_spec : string -> (t, parse_error) result
  (** Parse the [--fault-spec] syntax: ["none"], an explicit event list
      ["@3:tear,@10:drop-response"], or a random schedule
      ["seed=42,rate=0.05"] / ["seed=42,rate=0.1,kinds=tear+drop-command"]. *)

  val describe : t -> string
  (** A spec string round-trippable through {!of_spec}. *)

  val to_spec : t -> string
  (** Alias of {!describe}, named for the contract: for any schedule
      built by {!none}, {!of_events} or {!random},
      [of_spec (to_spec t)] succeeds and the result takes the same
      {!decide} decision on every frame — the protocol checker's
      counterexamples rely on it to be copy-pasteable. *)

  val decide : t -> int -> kind option
end

(** A lossy link wrapped around any APDU transport. *)
module Link : sig
  type t

  type traced = { event : event; span : int }
  (** One injected fault plus the tracer span it landed in —
      [Sdds_obs.Obs.Tracer.none] (0) when the link was wrapped without an
      observability scope or the fault fired outside any span. Merging
      {!traced} with the tracer's export yields a single timeline of
      requests and the faults that hit them. *)

  val wrap :
    ?obs:Sdds_obs.Obs.t ->
    schedule:Schedule.t ->
    ?tear:(unit -> unit) ->
    Sdds_soe.Remote_card.Client.transport ->
    t
  (** [wrap ~schedule ?tear inner] interposes the schedule on [inner].
      [tear] is invoked when a {!kind.Tear} fires — pass
      [fun () -> Remote_card.Host.tear host]; without it a tear degrades
      to a dropped command.

      [obs] logs every injection as a [fault] instant on the current
      request span, counts [fault.injected], and records the span id in
      {!traced}. *)

  val transport : t -> Sdds_soe.Remote_card.Client.transport
  (** The faulty transport to hand to {!Sdds_soe.Remote_card.Client} or
      {!Sdds_proxy.Proxy}. *)

  val frames : t -> int
  (** Frames sent so far (the injector's frame counter). *)

  val injected : t -> int
  (** Faults injected so far. *)

  val trace : t -> event list
  (** Chronological log of every injected fault — feed it to
      {!Schedule.of_events} to replay this exact run. *)

  val traced : t -> traced list
  (** The same log with the span each fault was correlated to. *)
end

(** A card's power/link switch: while down, every frame answers the
    transient transport word — what a terminal sees from an unplugged
    reader. Wrap it {e outside} a {!Link} so a killed card stays dead
    regardless of the frame-fault schedule; flip it from a
    {!Campaign}. *)
module Cutout : sig
  type t

  val create : unit -> t

  val kill : t -> unit
  (** Cut the card off (idempotent; counted once per edge). *)

  val revive : t -> unit
  (** Restore the link. The card's volatile sessions are gone if the
      kill modeled power loss — pair with a host tear at kill time. *)

  val is_down : t -> bool

  val kills : t -> int
  (** Down-edges so far. *)

  val wrap :
    t ->
    Sdds_soe.Remote_card.Client.transport ->
    Sdds_soe.Remote_card.Client.transport
end

(** A fleet-level chaos schedule: kills, revives, resizes and tears
    pinned to {e request indices} of a steady stream (frame-level faults
    stay with {!Schedule}). Replayable: {!to_spec}/{!of_spec} round-trip
    the event list, and {!random} is deterministic in its seed — the
    [sdds chaos] harness minimizes any divergence into one of these
    specs. *)
module Campaign : sig
  type action =
    | Kill of int  (** cut card [i]'s power (cutout down + tear) *)
    | Revive of int  (** power card [i] back up and rejoin it *)
    | Add_card  (** grow the fleet by one fresh card *)
    | Remove_card of int  (** drain card [i] gracefully *)
    | Tear of int  (** a lone tear: power blip without losing the link *)

  type event = { at : int; action : action }
  (** [action] fires when the [at]-th request (0-based) of the stream is
      admitted. *)

  type t

  val of_events : event list -> t
  (** Sorted by position; the runner applies same-position events in the
      sorted order. *)

  val events : t -> event list

  val random :
    seed:int64 ->
    requests:int ->
    cards:int ->
    ?kills:int ->
    ?revives:int ->
    ?resizes:int ->
    unit ->
    t
  (** A coherent seeded campaign: [kills] (default 2) distinct cards die
      in the middle 80% of the stream, [revives] (default 1) of them
      come back strictly later, [resizes] (default 1) alternate
      add/remove. Redundant actions (killing a dead card, removing a
      gone one) are safe: runners treat them as no-ops. *)

  val to_spec : t -> string
  (** ["@AT:kill:C,@AT:revive:C,@AT:add,@AT:remove:C,@AT:tear:C"] (or
      ["none"]); [of_spec (to_spec t)] yields the same events. *)

  val of_spec : string -> (t, Schedule.parse_error) result

  val event_to_string : event -> string
end

(** Deterministic disk faults, armed on {!Sdds_dsp.Store_io}'s global
    fault hook. *)
module Disk : sig
  type t

  val arm : seed:int64 -> ?fail_rate:float -> ?torn_rate:float -> unit -> t
  (** Install the hook: each IO primitive independently fails with
      probability [fail_rate] (typed [Io_fail]) and each write suffers a
      torn write with probability [torn_rate] (a prefix reaches the temp
      file, the rename never happens). Deterministic in [seed] and the
      operation counter. Both rates default to 0. *)

  val disarm : unit -> unit
  (** Clear the hook (whatever installed it). *)

  val injected : t -> int
  val trace : t -> (Sdds_dsp.Store_io.io_op * string * Sdds_dsp.Store_io.io_fault) list
end
