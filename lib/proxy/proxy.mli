(** The terminal proxy: the glue between applications, the DSP and the
    card.

    §3: the terminal "contains a proxy allowing the applications to
    communicate easily with the different elements of the architecture
    through an XML API independent of the underlying protocols (JDBC,
    APDU)". Applications ask for documents (pull) or subscribe to streams
    (push); the proxy fetches ciphertext and encrypted rules from the DSP,
    drives the card over APDU, reassembles the card's annotated output
    into the authorized view, and hands back XML. The proxy is untrusted:
    it only ever handles ciphertext and already-authorized output.

    Requests are described by a {!Request.t} value and executed with
    {!run}; {!Pool} additionally multiplexes several requests over one
    APDU transport using the card's logical channels. *)

type t

val create : store:Sdds_dsp.Store.t -> card:Sdds_soe.Card.t -> t

(** A self-contained request description — the argument of {!run} and
    {!Pool.serve}. Building the record separately from executing it lets
    applications queue, retry and batch requests as plain values. *)
module Request : sig
  type t = {
    doc_id : string;
    xpath : string option;  (** user query composed with the access rules *)
    protect : bool;  (** seal pending regions ({!Sdds_soe.Guard}) *)
    delivery : [ `Pull | `Push ];
    use_index : bool;  (** [false] = no-skip baseline *)
    subject : string option;
        (** fetch this subject's (rules, grant) from the DSP instead of
            the executor's default ({!run} defaults to the card's own
            identity, {!Pool} and {!Fleet} to their [subject] argument).
            The card still enforces its own identity — rule blobs are
            MAC-bound to the card's subject — so an override only
            succeeds on a card provisioned for that subject; anything
            else surfaces as a typed card error, never as another
            subject's view. *)
  }

  val make :
    ?xpath:string ->
    ?protect:bool ->
    ?delivery:[ `Pull | `Push ] ->
    ?use_index:bool ->
    ?subject:string ->
    string ->
    t
  (** [make doc_id] with defaults: no query, no protection, [`Pull],
      index on, the executor's default subject. *)
end

type outcome = {
  view : Sdds_xml.Dom.t option;  (** authorized (possibly query-filtered) view *)
  xml : string option;  (** the view serialized, as the XML API returns it *)
  card_report : Sdds_soe.Card.report;
  request_apdu_frames : int;
      (** frames spent shipping the request (rule blob, query) to the card *)
}

type error =
  | Unknown_document of string
  | No_grant  (** the DSP holds no wrapped key for this subject *)
  | No_rules  (** no rule blob for this (document, subject) pair *)
  | Card_error of Sdds_soe.Card.error
      (** a card failure; over an APDU transport, reconstructed from the
          status word with {!Sdds_soe.Remote_card.of_sw} *)
  | Link_failure of { attempts : int }
      (** the transport kept faulting until the retry budget ([attempts])
          was exhausted ({!Pool} only) *)
  | Overloaded
      (** admission control refused the request: every per-card queue of
          the {!Fleet} was full *)
  | Protocol of string
      (** APDU-level failure that maps to no card error (unexpected
          status word, undecodable response stream, unsupported request) *)

val pp_error : Format.formatter -> error -> unit

val run : t -> Request.t -> (outcome, error) result
(** Execute one request against the proxy's local card. Installs the key
    grant on the card on first use; if the card's answer indicates a
    possibly outdated key — [Stale_key] (the publisher rotated the
    document's key, i.e. revocation), or [Bad_rules] (a rotation re-keys
    the rule blob too, and the MAC failure is indistinguishable from
    tampering on the card) — the fresh wrapped grant is re-fetched from
    the DSP and the request retried once, so surviving subjects keep
    working across a rotation without the application doing anything. With [protect] the card
    seals pending text under one-time guard keys so this proxy — an
    untrusted component — never sees data whose conditions resolve
    negatively. Raises [Sdds_xpath.Parser.Error] on a malformed [xpath]
    (the application's bug, reported synchronously). *)

(** Multi-client serving: N request streams multiplexed over {e one} APDU
    transport to one card, using ISO 7816 logical channels
    ({!Sdds_soe.Remote_card}). The pool round-robins the streams at frame
    granularity — exactly the interleaving N independent terminals would
    produce on a shared card — and the card's per-channel sessions plus
    its prepared-evaluation cache make the views byte-identical to
    serving the requests one by one (the property tests enforce it).

    The pool is resilient: transient link faults resend the same frame,
    a channel answering [channel_closed] (a card reset closed it) is
    abandoned and the request re-acquires a fresh channel and replays
    its setup, and [bad_state] (the session's volatile state is gone)
    replays the setup on the same channel — all bounded by a per-request
    retry budget, all discarding any partially drained response first.
    A request therefore ends in exactly the authorized view or one typed
    {!error} ([Link_failure] once the budget is spent). *)
module Pool : sig
  type t

  val create :
    ?obs:Sdds_obs.Obs.t ->
    store:Sdds_dsp.Store.t ->
    transport:Sdds_soe.Remote_card.Client.transport ->
    subject:string ->
    ?channels:int ->
    ?retry:Sdds_soe.Remote_card.Retry.t ->
    unit ->
    t
  (** [channels] (default {!Sdds_soe.Apdu.max_channels}) caps how many
      logical channels the pool opens; channels are opened lazily with
      MANAGE CHANNEL and reused across {!serve} calls, with the channel's
      card-side session remembered so a repeat request skips the
      select/grant/rules/query upload entirely (warm setup). [retry]
      (default {!Sdds_soe.Remote_card.Retry.default}) sets each
      request's fault-recovery budget.

      [obs] opens one [proxy.request] root span per served request
      (every transport exchange re-roots the implicit span stack at it,
      so host-side [apdu] spans nest under the right request even though
      the streams interleave), attaches each stream's frame/byte/retry
      cells under the [pool.*] metric names — {!served} is a view over
      the same cells — and counts channel churn
      ([pool.channels_opened], [pool.warm_setups], [pool.rekeys],
      [pool.tear_evidence]). *)

  type served = {
    view : Sdds_xml.Dom.t option;
    xml : string option;
    channel : int;  (** logical channel that served this request *)
    warm_setup : bool;  (** setup upload skipped — channel already primed *)
    command_frames : int;
    response_frames : int;
    wire_bytes : int;
    retries : int;  (** recovery actions spent on this request *)
  }

  val serve : t -> Request.t list -> (served, error) result list
  (** Run the requests concurrently (frame-interleaved) and return their
      results in request order. Requests beyond the channel budget queue
      until a channel frees up. [protect] requests fail with {!Protocol}:
      guard messages have no wire codec, protection needs a local card.
      Raises [Sdds_xpath.Parser.Error] on a malformed [xpath]. *)

  (** {2 Incremental serving}

      The spelling external schedulers use ({!Sdds_proxy.Fleet}
      interleaves the streams of many single-card pools): [start] admits
      a request as a stream, each [step] advances it by at most one APDU
      frame (a no-op once finished, or while every channel is busy), and
      [result] is [Some] once the stream finished. [serve] is the
      round-robin closure of these three. *)

  type stream

  val start : t -> Request.t -> stream
  (** Admit one request. Failures detected before any frame (unknown
      document, no rules, [protect]) surface as an already-finished
      stream, not an exception — same contract as {!serve}. Raises
      [Sdds_xpath.Parser.Error] on a malformed [xpath]. *)

  val step : t -> stream -> unit
  val result : stream -> (served, error) result option

  (** {2 Migration hooks}

      Used by {!Sdds_proxy.Fleet} to re-plan a stream from a dying card
      onto another card's pool. *)

  val session_state : stream -> string * string option
  (** The (rules blob, wrapped grant) the stream was admitted with —
      captured so a migrated session re-uploads the {e same} policy. *)

  val pin : stream -> rules:string -> grant:string option -> unit
  (** Override the policy a (not-yet-started) stream will upload.
      Migration carries the blob pinned at first admission, so a store
      rollback happening mid-flight can never downgrade the re-planned
      session below what the original card enforced (anti-rollback
      watermark carry-over, terminal side). *)

  val abort : t -> stream -> unit
  (** Abandon an unfinished stream: its channel is released (or dropped
      if a tear already invalidated it), any half-drained response is
      discarded, the request span closes with outcome ["aborted"], and
      [result] becomes a [Protocol] error. Idempotent; a no-op on
      finished streams. *)
end

(** The executor contract the unified client ({!Sdds_proxy.Client})
    dispatches over — the incremental-serving triple, uniform across a
    single local card, a channel {!Pool} and a multi-card
    {!Sdds_proxy.Fleet}: [start] admits a {!Request.t} (pre-admission
    failures surface as an already-finished stream), [step] advances it,
    [result] is [Some] once it finished. {!Pool} satisfies the signature
    as-is. *)
module type BACKEND = sig
  type t
  type stream

  val start : t -> Request.t -> stream
  val step : t -> stream -> unit
  val result : stream -> (Pool.served, error) result option
end
