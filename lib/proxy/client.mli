(** The unified client session: one API over every executor.

    Applications used to pick an API by deployment shape — a one-shot
    query wrapper against a local card, {!Proxy.Pool.serve} against a
    channel pool,
    {!Fleet.serve} against a card fleet. A client session erases the
    difference: build one with {!direct}, {!pooled} or {!fleet}, then
    {!serve} request batches and {!deliver} subscriptions through it.
    Internally every executor is driven through the {!Proxy.BACKEND}
    contract, so results are uniformly {!Proxy.Pool.served} — the
    single-card path synthesizes the wire accounting (channel 0, frames
    from the request upload and output download, the card's
    prepared-cache hit as [warm_setup]).

    Observability rides on whatever scope the underlying executor was
    created with: [proxy.request] / [fleet.request] spans per request,
    and for a direct {!deliver} the card's [dissem.publish] root span
    with per-cluster [dissem.cluster] children and the [dissem.*]
    sharing metrics. *)

type t

val direct : store:Sdds_dsp.Store.t -> card:Sdds_soe.Card.t -> t
(** A session on a local card (the single-terminal deployment). Queries
    run synchronously through [Proxy.run] — rekey-on-staleness retry
    included — and {!deliver} uses the card as a dissemination gateway
    with clustered shared evaluation ({!Sdds_soe.Card.disseminate}). *)

val pooled : Proxy.Pool.t -> t
(** A session over one card's logical channels ({!Proxy.Pool}). *)

val fleet : Fleet.t -> t
(** A session over a multi-card fleet ({!Fleet}). *)

val backend_name : t -> string
(** ["direct"], ["pool"] or ["fleet"] — for logs and reports. *)

val fleet_handle : t -> Fleet.t option
(** The underlying fleet of a {!fleet} session, for admin operations
    that have no meaning on the other executors — live resize
    ({!Fleet.add_card}, {!Fleet.remove_card}), {!Fleet.revive_card} and
    {!Fleet.stats}. All are safe between {!serve} calls, and resize is
    safe even {e during} one driven from another stream: the fleet's
    scheduler migrates affected requests instead of failing them. *)

val serve :
  t -> Proxy.Request.t list -> (Proxy.Pool.served, Proxy.error) result list
(** Execute a batch, results in request order. Direct sessions run the
    requests one after another (a lone terminal); pool and fleet
    sessions interleave them at frame granularity exactly as their
    [serve] would. Raises [Sdds_xpath.Parser.Error] on a malformed
    [xpath] in any request. *)

val query :
  t ->
  ?xpath:string ->
  ?protect:bool ->
  ?subject:string ->
  string ->
  (Proxy.Pool.served, Proxy.error) result
(** [query t doc_id] — {!serve} of one pull request. [protect] requires
    a direct session (guard messages have no wire codec); elsewhere it
    fails with [Protocol], same contract as the pool. *)

val deliver :
  t ->
  doc_id:string ->
  string list ->
  ( (string * (Proxy.Pool.served, Proxy.error) result) list
    * Sdds_dissem.Fanout.stats option,
    Proxy.error )
  result
(** [deliver t ~doc_id subjects] — the dissemination scenario: push one
    published document to every listed subscriber, each receiving
    exactly its own authorized view.

    On a {!direct} session the local card acts as the gateway:
    signature, integrity and decryption once for the whole population,
    identical rule sets clustered and evaluated once, predicate-free
    clusters sharing one merged walk — and the sharing accounting comes
    back as [Some stats]. Per-subscriber results are in listing order; a
    subscriber with no rule blob on the DSP fails alone with [No_rules],
    a broken or rolled-back blob with the card's typed error. A
    rules-digest collision or duplicated subject refuses the whole
    publish (the card's [Bad_rules] names the offending pair).

    On pool and fleet sessions rule blobs are MAC-bound per subject, so
    no evaluation can be shared: delivery is one push stream per
    subscriber, interleaved by the executor, and the stats are [None]. *)
