(* The chaos soak harness behind [sdds chaos]: a seeded, replayable
   campaign of card kills, revives, resizes and tears interleaved with
   frame-level faults against a steady request stream, continuously
   checked against the fault-free golden view. See chaos.mli. *)

module Apdu = Sdds_soe.Apdu
module Remote = Sdds_soe.Remote_card
module Fault = Sdds_fault.Fault
module Obs = Sdds_obs.Obs

type card_stack = {
  cutout : Fault.Cutout.t;
  link : Fault.Link.t;
  tear : unit -> unit;
  raw : Remote.Client.transport;
}

type divergence = {
  index : int;
  doc_id : string;
  xpath : string option;
  got : string option;
  expected : string option;
}

type report = {
  requests : int;
  ok : int;
  rejected : int;
  errors : (int * string * Proxy.error) list;
  divergences : divergence list;
  convergence_failures : divergence list;
  injected : int;
  kills : int;
  stats : Fleet.stats;
}

let xml_of (served : Proxy.Pool.served) = served.Proxy.Pool.xml

(* One deterministic soak. The per-card fault stack, outside in:
   [Cutout] (a killed card answers the transport word regardless of the
   frame schedule) over [Fault.Link] (seeded frame faults, salted per
   card) over the raw host transport. The gate drops the frame-fault
   layer — never the cutout — for the convergence phase. *)
let run ?obs ?(cards = 3) ?(queue_limit = 64) ?(max_reroutes = 2)
    ?(standby_k = 2) ?probe_budget ~store ~subject ~make_card ~golden
    ~schedule ~campaign requests =
  let faults_on = ref true in
  let stacks = ref [] in
  (* assoc card index -> stack *)
  let make_stack i =
    let raw, tear = make_card () in
    let link =
      Fault.Link.wrap ?obs ~schedule:(Fault.Schedule.for_card schedule i)
        ~tear raw
    in
    let cutout = Fault.Cutout.create () in
    let stack = { cutout; link; tear; raw } in
    stacks := (i, stack) :: !stacks;
    let faulty = Fault.Link.transport link in
    let transport cmd =
      Fault.Cutout.wrap cutout (if !faults_on then faulty else raw) cmd
    in
    (stack, transport)
  in
  let transports =
    Array.init cards (fun i ->
        let _, transport = make_stack i in
        transport)
  in
  let fleet =
    Fleet.create ?obs ~queue_limit ~max_reroutes ?probe_budget ~standby_k
      ~store ~subject transports
  in
  let apply = function
    | Fault.Campaign.Kill c -> (
        match List.assoc_opt c !stacks with
        | Some s ->
            (* Power loss: volatile sessions die with the link. *)
            s.tear ();
            Fault.Cutout.kill s.cutout
        | None -> ())
    | Fault.Campaign.Revive c -> (
        match List.assoc_opt c !stacks with
        | Some s ->
            Fault.Cutout.revive s.cutout;
            if c < Fleet.card_count fleet && Fleet.state fleet c = Fleet.Dead
            then Fleet.revive_card fleet c
        | None -> ())
    | Fault.Campaign.Add_card ->
        let i = Fleet.card_count fleet in
        let _, transport = make_stack i in
        ignore (Fleet.add_card fleet transport)
    | Fault.Campaign.Remove_card c ->
        if c < Fleet.card_count fleet then Fleet.remove_card fleet c
    | Fault.Campaign.Tear c -> (
        match List.assoc_opt c !stacks with Some s -> s.tear () | None -> ())
  in
  (* Admission loop: one request and one scheduler turn per tick — a
     steady stream with real concurrency, so campaign events land while
     earlier requests are genuinely in flight. Events at position [i]
     fire just before request [i] is admitted. *)
  let pending = ref (Fault.Campaign.events campaign) in
  let fire_until i =
    let rec go () =
      match !pending with
      | { Fault.Campaign.at; action } :: rest when at <= i ->
          pending := rest;
          apply action;
          go ()
      | _ -> ()
    in
    go ()
  in
  let streams =
    List.mapi
      (fun i req ->
        fire_until i;
        let st = Fleet.start fleet req in
        Fleet.turn fleet;
        (i, req, st))
      requests
  in
  fire_until max_int;
  while
    List.exists (fun (_, _, st) -> Fleet.result st = None) streams
  do
    Fleet.turn fleet
  done;
  (* Differential: every completed request is the golden view or a
     typed error — never a wrong view, never a hang. *)
  let ok = ref 0 and rejected = ref 0 in
  let errors = ref [] and divergences = ref [] in
  List.iter
    (fun (i, (req : Proxy.Request.t), st) ->
      match (Option.get (Fleet.result st)).Fleet.result with
      | Ok served ->
          incr ok;
          let expected = golden req in
          let got = xml_of served in
          if got <> expected then
            divergences :=
              {
                index = i;
                doc_id = req.Proxy.Request.doc_id;
                xpath = req.Proxy.Request.xpath;
                got;
                expected;
              }
              :: !divergences
      | Error Proxy.Overloaded -> incr rejected
      | Error e -> errors := (i, req.Proxy.Request.doc_id, e) :: !errors)
    streams;
  (* Convergence: with frame faults off (cutouts stay — dead is dead),
     one clean pass over the distinct requests must reproduce the golden
     views exactly, provided a live card remains. *)
  faults_on := false;
  let convergence_failures = ref [] in
  let any_live =
    Array.exists
      (function Fleet.Up | Fleet.Joining -> true | _ -> false)
      (Fleet.stats fleet).Fleet.states
  in
  if any_live then begin
    let distinct =
      List.sort_uniq compare
        (List.map
           (fun (r : Proxy.Request.t) ->
             (r.Proxy.Request.doc_id, r.Proxy.Request.xpath))
           requests)
    in
    List.iteri
      (fun i (doc_id, xpath) ->
        let req = Proxy.Request.make ?xpath doc_id in
        match Fleet.serve fleet [ req ] with
        | [ { Fleet.result = Ok served; _ } ]
          when xml_of served = golden req ->
            ()
        | [ { Fleet.result; _ } ] ->
            convergence_failures :=
              {
                index = i;
                doc_id;
                xpath;
                got =
                  (match result with
                  | Ok served -> xml_of served
                  | Error _ -> None);
                expected = golden req;
              }
              :: !convergence_failures
        | _ -> assert false)
      distinct
  end;
  let injected =
    List.fold_left (fun n (_, s) -> n + Fault.Link.injected s.link) 0 !stacks
  in
  let kills =
    List.fold_left (fun n (_, s) -> n + Fault.Cutout.kills s.cutout) 0 !stacks
  in
  {
    requests = List.length requests;
    ok = !ok;
    rejected = !rejected;
    errors = List.rev !errors;
    divergences = List.rev !divergences;
    convergence_failures = List.rev !convergence_failures;
    injected;
    kills;
    stats = Fleet.stats fleet;
  }

let diverged r = r.divergences <> [] || r.convergence_failures <> []

(* Greedy minimization: drop campaign events one at a time while the
   failure reproduces, then shorten the request stream from the back.
   [rerun] rebuilds the whole world (fresh cards, fresh fleet) for every
   candidate — determinism is what makes this sound, and what makes the
   minimized (campaign, request-count) pair replayable as a spec. *)
let minimize ~rerun campaign ~requests =
  let still_fails c n = diverged (rerun c n) in
  let events = ref (Fault.Campaign.events campaign) in
  let n = ref requests in
  let shrunk = ref true in
  while !shrunk do
    shrunk := false;
    (* one pass of single-event removal *)
    let rec pass kept = function
      | [] -> ()
      | ev :: rest ->
          let candidate =
            Fault.Campaign.of_events (List.rev_append kept rest)
          in
          if still_fails candidate !n then begin
            events := Fault.Campaign.events candidate;
            shrunk := true;
            pass kept rest
          end
          else pass (ev :: kept) rest
    in
    pass [] !events;
    (* halve the stream while the failure survives *)
    let rec cut () =
      let half = !n / 2 in
      if half >= 10 && still_fails (Fault.Campaign.of_events !events) half
      then begin
        n := half;
        shrunk := true;
        cut ()
      end
    in
    cut ()
  done;
  (Fault.Campaign.of_events !events, !n)
