(* The chaos soak harness behind [sdds chaos]: a seeded, replayable
   campaign of card kills, revives, resizes and tears interleaved with
   frame-level faults against a steady request stream, continuously
   checked against the fault-free golden view. See chaos.mli. *)

module Apdu = Sdds_soe.Apdu
module Remote = Sdds_soe.Remote_card
module Fault = Sdds_fault.Fault
module Obs = Sdds_obs.Obs

type card_stack = {
  cutout : Fault.Cutout.t;
  link : Fault.Link.t;
  tear : unit -> unit;
  raw : Remote.Client.transport;
}

type divergence = {
  index : int;
  doc_id : string;
  xpath : string option;
  got : string option;
  expected : string option;
}

type report = {
  requests : int;
  ok : int;
  rejected : int;
  errors : (int * string * Proxy.error) list;
  divergences : divergence list;
  convergence_failures : divergence list;
  injected : int;
  kills : int;
  stats : Fleet.stats;
}

let xml_of (served : Proxy.Pool.served) = served.Proxy.Pool.xml

(* One deterministic soak. The per-card fault stack, outside in:
   [Cutout] (a killed card answers the transport word regardless of the
   frame schedule) over [Fault.Link] (seeded frame faults, salted per
   card) over the raw host transport. The gate drops the frame-fault
   layer — never the cutout — for the convergence phase. *)
let run ?obs ?(cards = 3) ?(queue_limit = 64) ?(max_reroutes = 2)
    ?(standby_k = 2) ?probe_budget ~store ~subject ~make_card ~golden
    ~schedule ~campaign requests =
  let faults_on = ref true in
  let stacks = ref [] in
  (* assoc card index -> stack *)
  let make_stack i =
    let raw, tear = make_card () in
    let link =
      Fault.Link.wrap ?obs ~schedule:(Fault.Schedule.for_card schedule i)
        ~tear raw
    in
    let cutout = Fault.Cutout.create () in
    let stack = { cutout; link; tear; raw } in
    stacks := (i, stack) :: !stacks;
    let faulty = Fault.Link.transport link in
    let transport cmd =
      Fault.Cutout.wrap cutout (if !faults_on then faulty else raw) cmd
    in
    (stack, transport)
  in
  let transports =
    Array.init cards (fun i ->
        let _, transport = make_stack i in
        transport)
  in
  let fleet =
    Fleet.create ?obs ~queue_limit ~max_reroutes ?probe_budget ~standby_k
      ~store ~subject transports
  in
  let apply = function
    | Fault.Campaign.Kill c -> (
        match List.assoc_opt c !stacks with
        | Some s ->
            (* Power loss: volatile sessions die with the link. *)
            s.tear ();
            Fault.Cutout.kill s.cutout
        | None -> ())
    | Fault.Campaign.Revive c -> (
        match List.assoc_opt c !stacks with
        | Some s ->
            Fault.Cutout.revive s.cutout;
            if c < Fleet.card_count fleet && Fleet.state fleet c = Fleet.Dead
            then Fleet.revive_card fleet c
        | None -> ())
    | Fault.Campaign.Add_card ->
        let i = Fleet.card_count fleet in
        let _, transport = make_stack i in
        ignore (Fleet.add_card fleet transport)
    | Fault.Campaign.Remove_card c ->
        if c < Fleet.card_count fleet then Fleet.remove_card fleet c
    | Fault.Campaign.Tear c -> (
        match List.assoc_opt c !stacks with Some s -> s.tear () | None -> ())
  in
  (* Admission loop: one request and one scheduler turn per tick — a
     steady stream with real concurrency, so campaign events land while
     earlier requests are genuinely in flight. Events at position [i]
     fire just before request [i] is admitted. *)
  let pending = ref (Fault.Campaign.events campaign) in
  let fire_until i =
    let rec go () =
      match !pending with
      | { Fault.Campaign.at; action } :: rest when at <= i ->
          pending := rest;
          apply action;
          go ()
      | _ -> ()
    in
    go ()
  in
  let streams =
    List.mapi
      (fun i req ->
        fire_until i;
        let st = Fleet.start fleet req in
        Fleet.turn fleet;
        (i, req, st))
      requests
  in
  fire_until max_int;
  while
    List.exists (fun (_, _, st) -> Fleet.result st = None) streams
  do
    Fleet.turn fleet
  done;
  (* Differential: every completed request is the golden view or a
     typed error — never a wrong view, never a hang. *)
  let ok = ref 0 and rejected = ref 0 in
  let errors = ref [] and divergences = ref [] in
  List.iter
    (fun (i, (req : Proxy.Request.t), st) ->
      match (Option.get (Fleet.result st)).Fleet.result with
      | Ok served ->
          incr ok;
          let expected = golden req in
          let got = xml_of served in
          if got <> expected then
            divergences :=
              {
                index = i;
                doc_id = req.Proxy.Request.doc_id;
                xpath = req.Proxy.Request.xpath;
                got;
                expected;
              }
              :: !divergences
      | Error Proxy.Overloaded -> incr rejected
      | Error e -> errors := (i, req.Proxy.Request.doc_id, e) :: !errors)
    streams;
  (* Convergence: with frame faults off (cutouts stay — dead is dead),
     one clean pass over the distinct requests must reproduce the golden
     views exactly, provided a live card remains. *)
  faults_on := false;
  let convergence_failures = ref [] in
  let any_live =
    Array.exists
      (function Fleet.Up | Fleet.Joining -> true | _ -> false)
      (Fleet.stats fleet).Fleet.states
  in
  if any_live then begin
    let distinct =
      List.sort_uniq compare
        (List.map
           (fun (r : Proxy.Request.t) ->
             (r.Proxy.Request.doc_id, r.Proxy.Request.xpath))
           requests)
    in
    List.iteri
      (fun i (doc_id, xpath) ->
        let req = Proxy.Request.make ?xpath doc_id in
        match Fleet.serve fleet [ req ] with
        | [ { Fleet.result = Ok served; _ } ]
          when xml_of served = golden req ->
            ()
        | [ { Fleet.result; _ } ] ->
            convergence_failures :=
              {
                index = i;
                doc_id;
                xpath;
                got =
                  (match result with
                  | Ok served -> xml_of served
                  | Error _ -> None);
                expected = golden req;
              }
              :: !convergence_failures
        | _ -> assert false)
      distinct
  end;
  let injected =
    List.fold_left (fun n (_, s) -> n + Fault.Link.injected s.link) 0 !stacks
  in
  let kills =
    List.fold_left (fun n (_, s) -> n + Fault.Cutout.kills s.cutout) 0 !stacks
  in
  {
    requests = List.length requests;
    ok = !ok;
    rejected = !rejected;
    errors = List.rev !errors;
    divergences = List.rev !divergences;
    convergence_failures = List.rev !convergence_failures;
    injected;
    kills;
    stats = Fleet.stats fleet;
  }

let diverged r = r.divergences <> [] || r.convergence_failures <> []

(* ------------------------------------------------------------------ *)
(* Phased SLO run: the same fleet-under-faults shape as [run], but the
   deliverable is burn-rate verdicts per phase rather than a
   differential. steady — clean traffic; churn — the busiest card is
   killed at phase start; recovered — every cutout is revived. The SLO
   engine ticks on fleet-simulated time (max per-card link seconds), so
   windows are milliseconds of simulated time and the whole run is
   deterministic.                                                      *)
(* ------------------------------------------------------------------ *)

type slo_phase = {
  sp_phase : string;
  sp_requests : int;
  sp_ok : int;
  sp_rejected : int;
  sp_errors : int;
  sp_ticks : int;
  sp_breach_ticks : int;  (* ticks during the phase with any objective in breach *)
  sp_peak_fast_burn : (string * float) list;  (* per objective, over the phase *)
  sp_verdicts : Obs.Slo.verdict list;  (* at phase end *)
  sp_now_ns : int64;  (* simulated time at phase end *)
}

let breached p = p.sp_breach_ticks > 0

let slo_phase_json p =
  let verdicts = List.map Obs.Slo.verdict_json p.sp_verdicts in
  let peaks =
    List.map
      (fun (n, b) -> Printf.sprintf "{\"name\":%s,\"peak_fast_burn\":%.3f}"
          (Obs.json_string n) b)
      p.sp_peak_fast_burn
  in
  Printf.sprintf
    "{\"phase\":%s,\"requests\":%d,\"ok\":%d,\"rejected\":%d,\"errors\":%d,\"ticks\":%d,\"breach_ticks\":%d,\"breached\":%b,\"now_ns\":%Ld,\"peak_burns\":[%s],\"verdicts\":[%s]}"
    (Obs.json_string p.sp_phase) p.sp_requests p.sp_ok p.sp_rejected
    p.sp_errors p.sp_ticks p.sp_breach_ticks (breached p) p.sp_now_ns
    (String.concat "," peaks)
    (String.concat "," verdicts)

let run_slo ?(cards = 3) ?(queue_limit = 16) ?(max_reroutes = 2)
    ?(standby_k = 2) ?probe_budget ?(batch = 3)
    ?(churn_fault_seed = 1042L) ?(churn_fault_rate = 0.12)
    ?(availability_target = 99.0) ?(latency_target = 95.0)
    ?(latency_threshold_us = 8191) ?(fast_window_ns = 10_000_000L)
    ?(slow_window_ns = 60_000_000L) ?(burn_threshold = 1.0) ~obs ~store
    ~subject ~make_card ~requests () =
  (* Frame faults are the churn phase's signature: the schedule is armed
     only while the killed card's load is being redistributed, so the
     availability burn is attributable to the incident. *)
  let schedule =
    Fault.Schedule.random ~seed:churn_fault_seed ~rate:churn_fault_rate ()
  in
  let faults_on = ref false in
  let stacks = ref [] in
  let make_stack i =
    let raw, tear = make_card () in
    let link =
      Fault.Link.wrap ~obs ~schedule:(Fault.Schedule.for_card schedule i)
        ~tear raw
    in
    let cutout = Fault.Cutout.create () in
    let stack = { cutout; link; tear; raw } in
    stacks := (i, stack) :: !stacks;
    let faulty = Fault.Link.transport link in
    let transport cmd =
      Fault.Cutout.wrap cutout (if !faults_on then faulty else raw) cmd
    in
    (stack, transport)
  in
  let transports =
    Array.init cards (fun i ->
        let _, transport = make_stack i in
        transport)
  in
  let fleet =
    Fleet.create ~obs ~queue_limit ~max_reroutes ?probe_budget ~standby_k
      ~store ~subject transports
  in
  let slo = Obs.Slo.create obs.Obs.metrics in
  Obs.Slo.register slo ~name:"availability" ~target_pct:availability_target
    ~fast_ns:fast_window_ns ~slow_ns:slow_window_ns ~burn_threshold
    (Obs.Slo.Availability { good = "fleet.ok"; total = "fleet.requests" });
  Obs.Slo.register slo ~name:"latency" ~target_pct:latency_target
    ~fast_ns:fast_window_ns ~slow_ns:slow_window_ns ~burn_threshold
    (Obs.Slo.Latency
       { histogram = "fleet.latency_us"; threshold = latency_threshold_us });
  (* Simulated now: the fleet's furthest-ahead card clock, in ns. Max is
     monotone, so SLO windows see time that only moves forward. *)
  let now_ns () =
    let m = ref 0.0 in
    for c = 0 to Fleet.card_count fleet - 1 do
      m := Float.max !m (Fleet.clock fleet c)
    done;
    Int64.of_float (!m *. 1e9)
  in
  let kill_busiest () =
    let stats = Fleet.stats fleet in
    let best = ref (-1) and best_n = ref (-1) in
    Array.iteri
      (fun c n ->
        if
          c < Array.length stats.Fleet.states
          && stats.Fleet.states.(c) = Fleet.Up
          && n > !best_n
        then begin
          best := c;
          best_n := n
        end)
      stats.Fleet.served_by;
    match List.assoc_opt !best !stacks with
    | Some s ->
        s.tear ();
        Fault.Cutout.kill s.cutout;
        !best
    | None -> -1
  in
  let revive_all () =
    List.iter
      (fun (c, s) ->
        Fault.Cutout.revive s.cutout;
        if c < Fleet.card_count fleet && Fleet.state fleet c = Fleet.Dead then
          Fleet.revive_card fleet c)
      !stacks
  in
  let run_phase name reqs =
    faults_on := name = "churn";
    (match name with
    | "churn" -> ignore (kill_busiest ())
    | "recovered" -> revive_all ()
    | _ -> ());
    let ticks = ref 0 and breach_ticks = ref 0 in
    let peaks = Hashtbl.create 4 in
    let outcomes = ref [] in
    let rec batches = function
      | [] -> ()
      | rs ->
          let now, rest =
            let rec take k acc = function
              | r :: tl when k > 0 -> take (k - 1) (r :: acc) tl
              | tl -> (List.rev acc, tl)
            in
            take (max 1 batch) [] rs
          in
          let sts = List.map (Fleet.start fleet) now in
          while List.exists (fun st -> Fleet.result st = None) sts do
            Fleet.turn fleet
          done;
          outcomes :=
            List.rev_append (List.map (fun st -> Option.get (Fleet.result st)) sts)
              !outcomes;
          let at = now_ns () in
          Obs.Slo.tick ~now:at slo;
          let verdicts = Obs.Slo.evaluate ~now:at slo in
          incr ticks;
          if List.exists (fun v -> v.Obs.Slo.breach) verdicts then
            incr breach_ticks;
          List.iter
            (fun v ->
              let prev =
                Option.value ~default:0.0
                  (Hashtbl.find_opt peaks v.Obs.Slo.name)
              in
              Hashtbl.replace peaks v.Obs.Slo.name
                (Float.max prev v.Obs.Slo.fast_burn))
            verdicts;
          batches rest
    in
    batches reqs;
    let ok, rejected, errors =
      List.fold_left
        (fun (ok, rej, err) (o : Fleet.outcome) ->
          match o.Fleet.result with
          | Ok _ -> (ok + 1, rej, err)
          | Error Proxy.Overloaded -> (ok, rej + 1, err)
          | Error _ -> (ok, rej, err + 1))
        (0, 0, 0) !outcomes
    in
    let verdicts = Obs.Slo.evaluate ~now:(now_ns ()) slo in
    {
      sp_phase = name;
      sp_requests = List.length reqs;
      sp_ok = ok;
      sp_rejected = rejected;
      sp_errors = errors;
      sp_ticks = !ticks;
      sp_breach_ticks = !breach_ticks;
      sp_peak_fast_burn =
        List.map
          (fun v ->
            ( v.Obs.Slo.name,
              Option.value ~default:0.0
                (Hashtbl.find_opt peaks v.Obs.Slo.name) ))
          verdicts;
      sp_verdicts = verdicts;
      sp_now_ns = now_ns ();
    }
  in
  List.map
    (fun phase -> run_phase phase (requests phase))
    [ "steady"; "churn"; "recovered" ]

(* Greedy minimization: drop campaign events one at a time while the
   failure reproduces, then shorten the request stream from the back.
   [rerun] rebuilds the whole world (fresh cards, fresh fleet) for every
   candidate — determinism is what makes this sound, and what makes the
   minimized (campaign, request-count) pair replayable as a spec. *)
let minimize ~rerun campaign ~requests =
  let still_fails c n = diverged (rerun c n) in
  let events = ref (Fault.Campaign.events campaign) in
  let n = ref requests in
  let shrunk = ref true in
  while !shrunk do
    shrunk := false;
    (* one pass of single-event removal *)
    let rec pass kept = function
      | [] -> ()
      | ev :: rest ->
          let candidate =
            Fault.Campaign.of_events (List.rev_append kept rest)
          in
          if still_fails candidate !n then begin
            events := Fault.Campaign.events candidate;
            shrunk := true;
            pass kept rest
          end
          else pass (ev :: kept) rest
    in
    pass [] !events;
    (* halve the stream while the failure survives *)
    let rec cut () =
      let half = !n / 2 in
      if half >= 10 && still_fails (Fault.Campaign.of_events !events) half
      then begin
        n := half;
        shrunk := true;
        cut ()
      end
    in
    cut ()
  done;
  (Fault.Campaign.of_events !events, !n)
