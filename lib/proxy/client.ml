(* The unified client session: one API over a local card, a channel
   pool and a multi-card fleet. See client.mli for the contract. *)

module Store = Sdds_dsp.Store
module Publish = Sdds_dsp.Publish
module Card = Sdds_soe.Card
module Apdu = Sdds_soe.Apdu
module Reassembler = Sdds_core.Reassembler
module Serializer = Sdds_xml.Serializer
module Fanout = Sdds_dissem.Fanout

(* A local card behind {!Proxy.run}, presented through the streaming
   BACKEND contract. The request is synchronous, so the "stream" is the
   finished result; the served record is synthesized: channel 0 (the
   basic channel a lone terminal would use), warm_setup is the card's
   prepared-cache hit, frames and bytes are the request upload and the
   output download of the direct exchange. *)
module Direct_backend = struct
  type t = Proxy.t
  type stream = (Proxy.Pool.served, Proxy.error) result

  let served_of_outcome (o : Proxy.outcome) =
    let out_bytes = o.Proxy.card_report.Card.output_bytes in
    {
      Proxy.Pool.view = o.Proxy.view;
      xml = o.Proxy.xml;
      channel = 0;
      warm_setup = o.Proxy.card_report.Card.prepared_hit;
      command_frames = o.Proxy.request_apdu_frames;
      response_frames = Apdu.frame_count ~payload_bytes:out_bytes;
      wire_bytes = out_bytes;
      retries = 0;
    }

  let start t req = Result.map served_of_outcome (Proxy.run t req)
  let step _ _ = ()
  let result st = Some st
end

module Fleet_backend = struct
  type t = Fleet.t
  type stream = Fleet.stream

  let start = Fleet.start
  let step = Fleet.step

  let result st =
    Option.map (fun (o : Fleet.outcome) -> o.Fleet.result) (Fleet.result st)
end

type t =
  | Direct of { proxy : Proxy.t; store : Store.t; card : Card.t }
  | Pooled of Proxy.Pool.t
  | Fleeted of Fleet.t

type packed =
  | Session : (module Proxy.BACKEND with type t = 'b) * 'b -> packed

let packed = function
  | Direct { proxy; _ } -> Session ((module Direct_backend), proxy)
  | Pooled p -> Session ((module Proxy.Pool), p)
  | Fleeted f -> Session ((module Fleet_backend), f)

let direct ~store ~card =
  Direct { proxy = Proxy.create ~store ~card; store; card }

let pooled p = Pooled p
let fleet f = Fleeted f

let backend_name = function
  | Direct _ -> "direct"
  | Pooled _ -> "pool"
  | Fleeted _ -> "fleet"

let fleet_handle = function
  | Fleeted f -> Some f
  | Direct _ | Pooled _ -> None

let serve t reqs =
  let (Session ((module B), b)) = packed t in
  let streams = List.map (B.start b) reqs in
  let unfinished s = Option.is_none (B.result s) in
  while List.exists unfinished streams do
    List.iter (fun s -> if unfinished s then B.step b s) streams
  done;
  List.map (fun s -> Option.get (B.result s)) streams

let query t ?xpath ?protect ?subject doc_id =
  match serve t [ Proxy.Request.make ?xpath ?protect ?subject doc_id ] with
  | [ r ] -> r
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Dissemination                                                       *)
(* ------------------------------------------------------------------ *)

let ensure_key ~store ~card ~doc_id =
  if Card.has_key card ~doc_id then Ok ()
  else
    match Store.get_grant store ~doc_id ~subject:(Card.subject card) with
    | None -> Error Proxy.No_grant
    | Some wrapped -> (
        match Card.install_wrapped_key card ~doc_id ~wrapped with
        | Ok () -> Ok ()
        | Error e -> Error (Proxy.Card_error e))

let served_of_outputs outs =
  let view = Reassembler.run ~has_query:false outs in
  let out_bytes = Card.output_wire_bytes outs in
  {
    Proxy.Pool.view;
    xml = Option.map (Serializer.to_string ~indent:true) view;
    channel = 0;
    warm_setup = false;
    command_frames = 0;
    response_frames = Apdu.frame_count ~payload_bytes:out_bytes;
    wire_bytes = out_bytes;
    retries = 0;
  }

let deliver_direct ~store ~card ~doc_id subscribers =
  match Store.get_document store doc_id with
  | None -> Error (Proxy.Unknown_document doc_id)
  | Some published -> (
      match ensure_key ~store ~card ~doc_id with
      | Error e -> Error e
      | Ok () -> (
          let source = Publish.to_source published ~delivery:`Push in
          let blobs =
            List.map
              (fun s -> (s, Store.get_rules store ~doc_id ~subject:s))
              subscribers
          in
          let present =
            List.filter_map
              (fun (s, b) -> Option.map (fun b -> (s, b)) b)
              blobs
          in
          match Card.disseminate card source ~subscribers:present () with
          | Error e -> Error (Proxy.Card_error e)
          | Ok (results, report) ->
              let per =
                List.map
                  (fun (s, blob) ->
                    match blob with
                    | None -> (s, Error Proxy.No_rules)
                    | Some _ -> (
                        match List.assoc_opt s results with
                        | Some (Ok outs) -> (s, Ok (served_of_outputs outs))
                        | Some (Error e) -> (s, Error (Proxy.Card_error e))
                        | None -> (s, Error Proxy.No_rules)))
                  blobs
              in
              Ok (per, Some report.Card.sharing)))

let deliver t ~doc_id subscribers =
  match t with
  | Direct { store; card; _ } -> deliver_direct ~store ~card ~doc_id subscribers
  | Pooled _ | Fleeted _ ->
      (* Rule blobs are MAC-bound per subject, so a remote card cannot
         share one evaluation across subscribers: dissemination over the
         wire is one push stream per subscriber, interleaved by the
         backend. No sharing stats to report. *)
      let reqs =
        List.map
          (fun s -> Proxy.Request.make ~delivery:`Push ~subject:s doc_id)
          subscribers
      in
      Ok (List.combine subscribers (serve t reqs), None)
