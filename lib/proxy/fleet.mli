(** Fleet-scale sharded serving: one DSP front-end over N simulated
    cards.

    One card multiplexes at most {!Sdds_soe.Apdu.max_channels} logical
    channels, which caps a single {!Proxy.Pool} at four concurrent
    streams — nowhere near the subject population a DSP is meant to
    serve. The fleet decouples stream multiplexing from the single card:
    it fronts N cards (each with its own {!Sdds_soe.Remote_card.Host}
    transport and its own [Pool], hence its own channel pool, epoch-based
    tear recovery and warm-setup memos) behind one cooperative scheduler
    that admits, routes, interleaves and — when a card keeps failing —
    re-routes requests.

    {b Admission and queues.} Each card has a bounded FIFO queue
    ([queue_limit] covers queued plus in-flight streams). A request no
    card has room for is refused {e at admission} with
    {!Proxy.error.Overloaded} — load shedding happens before any frame is
    spent, never by silently dropping an accepted request.

    {b Affinity routing.} The default routing hashes (doc_id, digest of
    the subject's rule blob) — exactly what keys the card's
    prepared-evaluation cache — onto a consistent-hash {!Ring} of cards,
    so repeat requests for a (document, subject) pair land where the
    cache is warm; when the ring's choice is full the request falls back
    to the least-loaded card. The ring's virtual points make affinity
    survive a fleet resize: adding or removing a card only remaps the
    keys whose successor point changed. [Least_loaded] and seeded
    [Random] routing exist as baselines (the E19 bench compares their
    warm-hit rates against affinity's).

    {b Re-routing.} Transient faults and card tears are absorbed {e per
    card} by the pool's own retry budget and epoch machinery; only when
    a card exhausts a request's budget ({!Proxy.error.Link_failure})
    does the fleet move the request to another card, up to
    [max_reroutes] times, counting every move.

    {b Simulated time.} Each card advances its own clock by the wire
    time of every frame it exchanges ([link_bytes_per_s]); a request's
    [latency_s] is its serving card's clock at completion (never less
    than the time already burned on cards it was re-routed away from),
    so queueing delay surfaces as tail latency deterministically, with
    no wall clock involved.

    [obs] wiring: [fleet.request] root spans (outcome, card and re-route
    count as args), per-card [fleet.cardN.queue_depth] gauges, and the
    routing-decision counters [fleet.requests], [fleet.affinity_hits],
    [fleet.fallbacks], [fleet.reroutes], [fleet.rejected]. *)

(** The consistent-hash ring affinity routing uses, exposed for direct
    testing (resize stability) and reuse. Members are card indices. *)
module Ring : sig
  type t

  val create : ?vnodes:int -> int list -> t
  (** [vnodes] virtual points per member (default 64); duplicates in the
      member list are dropped. *)

  val members : t -> int list
  (** Sorted, unique. *)

  val add : t -> int -> t
  val remove : t -> int -> t

  val lookup : t -> string -> int
  (** The member owning the key: successor point of the key's hash on
      the circle. Raises [Invalid_argument] on an empty ring. *)

  val fnv1a64 : string -> int64
  (** The ring's hash (FNV-1a, 64-bit), exposed so callers can digest
      payloads (e.g. rule blobs) consistently with the ring. *)
end

type t

(** How requests are assigned to cards. *)
type routing =
  | Affinity  (** hash ring on (doc_id, rules digest); least-loaded fallback *)
  | Least_loaded
  | Random of int64  (** uniform, seeded — the warm-cache baseline *)

val create :
  ?obs:Sdds_obs.Obs.t ->
  ?routing:routing ->
  ?queue_limit:int ->
  ?max_reroutes:int ->
  ?channels:int ->
  ?retry:Sdds_soe.Remote_card.Retry.t ->
  ?link_bytes_per_s:float ->
  store:Sdds_dsp.Store.t ->
  subject:string ->
  Sdds_soe.Remote_card.Client.transport array ->
  t
(** [create ~store ~subject transports] fronts one card per transport
    (the caller owns the hosts and may interpose per-card fault links —
    see {!Sdds_fault.Fault.Schedule.for_card}). Defaults: [Affinity]
    routing, [queue_limit] 64 per card, [max_reroutes] 1, [channels]
    {!Sdds_soe.Apdu.max_channels} per card, the default retry budget,
    and {!Sdds_soe.Cost.fleet}'s link throughput. [subject] is the
    default subject; per-request overrides ride in
    {!Proxy.Request.t.subject}. *)

type outcome = {
  result : (Proxy.Pool.served, Proxy.error) result;
  card : int;  (** card that completed (or last tried); -1 if rejected *)
  affinity : bool;  (** served by the ring's choice, no fallback/re-route *)
  reroutes : int;
  latency_s : float;  (** simulated seconds, queueing included *)
}

val serve : t -> Proxy.Request.t list -> outcome list
(** Serve a batch (all arriving at simulated t = 0), results in request
    order. Every request ends in the exact authorized view or one typed
    {!Proxy.error} — the fleet differential property in
    [test/test_fleet.ml] holds it to the single-card golden run under
    arbitrary seeded per-card fault schedules. State (queues drained,
    channels, memos, clocks) persists across calls, so a later batch
    finds warm caches. *)

(** {2 Incremental serving}

    The {!Proxy.BACKEND} spelling of {!serve}, for the unified client:
    [start] admits and routes one request (a refusal surfaces as an
    already-finished stream with [Overloaded]), [step] runs one turn of
    the fleet's cooperative scheduler — the fleet is a shared scheduler,
    so {e every} active stream advances, which is what a caller waiting
    on its own stream wants anyway — and [result] is [Some] once the
    request finished. [serve] is admission of the whole batch followed
    by turns until done; the interleaving is identical. *)

type stream

val start : t -> Proxy.Request.t -> stream
val step : t -> stream -> unit
val result : stream -> outcome option

type stats = {
  requests : int;
  affinity_hits : int;
  fallbacks : int;  (** ring choice was full; went least-loaded *)
  reroutes : int;
  rejected : int;  (** refused at admission ([Overloaded]) *)
  served_by : int array;  (** successful completions per card *)
  queue_peak : int;  (** deepest any card's queue ever got *)
}

val stats : t -> stats
val card_count : t -> int

val clock : t -> int -> float
(** A card's simulated clock (seconds of link time it has served). *)
