(** Fleet-scale sharded serving: one DSP front-end over N simulated
    cards, surviving churn.

    One card multiplexes at most {!Sdds_soe.Apdu.max_channels} logical
    channels, which caps a single {!Proxy.Pool} at four concurrent
    streams — nowhere near the subject population a DSP is meant to
    serve. The fleet decouples stream multiplexing from the single card:
    it fronts N cards (each with its own {!Sdds_soe.Remote_card.Host}
    transport and its own [Pool], hence its own channel pool, epoch-based
    tear recovery and warm-setup memos) behind one cooperative scheduler
    that admits, routes, interleaves and — when a card keeps failing —
    re-routes requests.

    {b Admission and queues.} Each card has a bounded FIFO queue
    ([queue_limit] covers queued plus in-flight streams). A request no
    card has room for is refused {e at admission} with
    {!Proxy.error.Overloaded} — load shedding happens before any frame is
    spent, never by silently dropping an accepted request.

    {b Affinity routing.} The default routing hashes (doc_id, digest of
    the subject's rule blob) — exactly what keys the card's
    prepared-evaluation cache — onto a consistent-hash {!Ring} of cards,
    so repeat requests for a (document, subject) pair land where the
    cache is warm; when the ring's choice is full the request falls back
    to the least-loaded card. The ring's virtual points make affinity
    survive a fleet resize: adding or removing a card only remaps the
    keys whose successor point changed. [Least_loaded] and seeded
    [Random] routing exist as baselines (the E19 bench compares their
    warm-hit rates against affinity's).

    {b Re-routing.} Transient faults and card tears are absorbed {e per
    card} by the pool's own retry budget and epoch machinery; only when
    a card exhausts a request's budget ({!Proxy.error.Link_failure})
    does the fleet move the request to another card, up to
    [max_reroutes] times, counting every move.

    {b Card lifecycle.} Every card is in one {!lifecycle} state. A
    request ending in [Link_failure] triggers a health probe cycle: an
    unimplemented instruction on the basic channel, answered by any live
    card with the [bad_ins] status word and by a dead link with the
    transient transport word. A card failing [probe_budget] consecutive
    probes is declared [Dead] {e once} — [probe_budget] tiny frames,
    instead of every subsequent request burning its full retry budget —
    leaves the ring, and is evacuated. {!remove_card} drains a card
    gracefully ([Draining]); {!add_card} and {!revive_card} bring
    capacity in as [Joining], promoted to [Up] on the first successful
    serve.

    {b Session migration.} Evacuating a card (death or drain) re-plans
    its queued streams in FIFO order and aborts its in-flight pool
    streams ({!Proxy.Pool.abort} — their channel state dies with the
    card anyway), re-planning them after. The target is the ring's
    successor for the request's affinity key — the ring no longer
    contains the evacuated card, so a migrated hot key lands exactly on
    its pre-warmed standby. Re-establishment on the target is the normal
    warm path (re-SELECT, rules re-upload, prepared-cache hit), and the
    re-uploaded policy is the one pinned at first admission
    ({!Proxy.Pool.pin}): a store rollback mid-flight can never downgrade
    a migrated session. Migration does not spend the request's re-route
    allowance; a stream with nowhere to go (every surviving queue full,
    or no survivor) is refused with the typed [Overloaded], never hung.

    {b Hot-key standby.} With [standby_k] > 0, the [standby_k] hottest
    affinity keys (by request count — the zipf head) are replicated: the
    key's {e standby} is [Ring.lookup (Ring.remove ring primary) key],
    i.e. precisely the card that will inherit the key if the primary
    dies, and every 4th request for a hot key routes there to keep its
    session cache warm. The primary's death then fails over warm — no
    client-visible [Link_failure], no cold re-upload storm.

    {b Simulated time.} Each card advances its own clock by the wire
    time of every frame it exchanges ([link_bytes_per_s]) — health
    probes included; a request's [latency_s] is its serving card's clock
    at completion (never less than the time already burned on cards it
    was re-routed or migrated away from), so queueing delay surfaces as
    tail latency deterministically, with no wall clock involved.

    [obs] wiring: [fleet.request] root spans (outcome, card, re-route
    and migration counts as args) with [fleet.migrate] child spans
    (from/to/reason) per migration; per-card [fleet.cardN.queue_depth]
    and [fleet.cardN.state] gauges (0 = up, 1 = draining, 2 = dead,
    3 = joining); and counters [fleet.requests], [fleet.affinity_hits],
    [fleet.fallbacks], [fleet.reroutes], [fleet.rejected],
    [fleet.migrations], [fleet.deaths], [fleet.revives], [fleet.drains],
    [fleet.cards_added], [fleet.probes], [fleet.standby_hits]. The
    registry is the source of truth: {!stats} mirrors the same counters,
    and the reconciliation test holds them equal. *)

(** The consistent-hash ring affinity routing uses, exposed for direct
    testing (resize stability) and reuse. Members are card indices. *)
module Ring : sig
  type t

  val create : ?vnodes:int -> int list -> t
  (** [vnodes] virtual points per member (default 64); duplicates in the
      member list are dropped. *)

  val members : t -> int list
  (** Sorted, unique. *)

  val add : t -> int -> t
  val remove : t -> int -> t

  val lookup : t -> string -> int
  (** The member owning the key: successor point of the key's hash on
      the circle. Raises [Invalid_argument] on an empty ring. *)

  val fnv1a64 : string -> int64
  (** The ring's hash (FNV-1a, 64-bit), exposed so callers can digest
      payloads (e.g. rule blobs) consistently with the ring. *)
end

type t

(** How requests are assigned to cards. *)
type routing =
  | Affinity  (** hash ring on (doc_id, rules digest); least-loaded fallback *)
  | Least_loaded
  | Random of int64  (** uniform, seeded — the warm-cache baseline *)

(** A card's position in the fleet. [Up] and [Joining] cards are
    routable (in the ring); [Draining] and [Dead] cards are not and hold
    no streams — evacuation is immediate, not lazy. *)
type lifecycle =
  | Up
  | Draining  (** {!remove_card}: evacuated gracefully, never declared dead *)
  | Dead  (** failed a full probe budget; revivable *)
  | Joining  (** fresh or revived; [Up] after its first successful serve *)

val lifecycle_to_string : lifecycle -> string
(** ["up"], ["draining"], ["dead"], ["joining"]. *)

val create :
  ?obs:Sdds_obs.Obs.t ->
  ?routing:routing ->
  ?queue_limit:int ->
  ?max_reroutes:int ->
  ?channels:int ->
  ?retry:Sdds_soe.Remote_card.Retry.t ->
  ?link_bytes_per_s:float ->
  ?probe_budget:int ->
  ?standby_k:int ->
  store:Sdds_dsp.Store.t ->
  subject:string ->
  Sdds_soe.Remote_card.Client.transport array ->
  t
(** [create ~store ~subject transports] fronts one card per transport
    (the caller owns the hosts and may interpose per-card fault links —
    see {!Sdds_fault.Fault.Schedule.for_card} — and power cutouts,
    {!Sdds_fault.Fault.Cutout}). Defaults: [Affinity] routing,
    [queue_limit] 64 per card, [max_reroutes] 1, [channels]
    {!Sdds_soe.Apdu.max_channels} per card, the default retry budget,
    {!Sdds_soe.Cost.fleet}'s link throughput, [probe_budget] 3, and
    [standby_k] 0 (hot-key replication off). [subject] is the default
    subject; per-request overrides ride in {!Proxy.Request.t.subject}. *)

type outcome = {
  result : (Proxy.Pool.served, Proxy.error) result;
  card : int;  (** card that completed (or last tried); -1 if rejected *)
  affinity : bool;  (** served by the ring's choice, no fallback/re-route *)
  reroutes : int;
  migrations : int;  (** times this request was evacuated off a card *)
  latency_s : float;  (** simulated seconds, queueing included *)
}

val serve : t -> Proxy.Request.t list -> outcome list
(** Serve a batch (all arriving at simulated t = 0), results in request
    order. Every request ends in the exact authorized view or one typed
    {!Proxy.error} — the fleet differential property in
    [test/test_fleet.ml] holds it to the single-card golden run under
    arbitrary seeded per-card fault schedules, and the chaos harness
    ([sdds chaos]) extends the same check across kills, revives and
    resizes. State (queues drained, channels, memos, clocks, lifecycle)
    persists across calls, so a later batch finds warm caches. *)

(** {2 Live resize and recovery}

    All three are safe mid-run, between {!turn}s of the scheduler —
    that is the point. *)

val add_card : t -> Sdds_soe.Remote_card.Client.transport -> int
(** Grow the fleet by one fresh card ([Joining], immediately routable);
    returns its index. Card indices are stable: a card never changes or
    reuses an index. *)

val remove_card : t -> int -> unit
(** Drain card [i]: it leaves the ring, its queued and in-flight streams
    migrate to the survivors, and it accepts nothing more ([Draining]).
    A no-op on a card already out of service. Raises [Invalid_argument]
    on an out-of-range index. *)

val revive_card : t -> int -> unit
(** Return a [Dead] (or [Draining]) card to service as [Joining], with a
    fresh pool (clean epoch — the card's volatile channel table died
    with it; its non-volatile state, including the prepared cache and
    anti-rollback watermarks, survived). A no-op on a live card. Raises
    [Invalid_argument] on an out-of-range index. *)

val state : t -> int -> lifecycle

(** {2 Incremental serving}

    The {!Proxy.BACKEND} spelling of {!serve}, for the unified client:
    [start] admits and routes one request (a refusal surfaces as an
    already-finished stream with [Overloaded]), [step] runs one turn of
    the fleet's cooperative scheduler — the fleet is a shared scheduler,
    so {e every} active stream advances, which is what a caller waiting
    on its own stream wants anyway — and [result] is [Some] once the
    request finished. [serve] is admission of the whole batch followed
    by turns until done; the interleaving is identical. *)

type stream

val start : t -> Proxy.Request.t -> stream
val step : t -> stream -> unit
val result : stream -> outcome option

val turn : t -> unit
(** One scheduler turn, explicitly — what {!step} runs. Chaos harnesses
    alternate [start]s and [turn]s to keep a steady stream in flight
    while killing and resizing between turns. *)

type stats = {
  requests : int;
  affinity_hits : int;
  fallbacks : int;  (** ring choice was full; went least-loaded *)
  reroutes : int;
  rejected : int;  (** refused at admission or mid-migration ([Overloaded]) *)
  served_by : int array;  (** successful completions per card *)
  queue_peak : int;  (** deepest any card's queue ever got *)
  migrations : int;  (** streams evacuated off a draining/dead card *)
  deaths : int;  (** cards declared dead after a failed probe budget *)
  revives : int;
  drains : int;  (** graceful {!remove_card} evacuations *)
  added : int;  (** cards added by {!add_card} *)
  probes : int;  (** health-probe frames sent *)
  standby_hits : int;  (** hot-key requests routed to the warm standby *)
  states : lifecycle array;  (** current lifecycle, per card *)
}

val stats : t -> stats
val card_count : t -> int

val clock : t -> int -> float
(** A card's simulated clock (seconds of link time it has served). *)
