(** The chaos soak harness: fleet survivability under a seeded,
    replayable campaign.

    One {!run} drives a steady request stream through a {!Fleet} while a
    {!Sdds_fault.Fault.Campaign} kills, revives, adds, drains and tears
    cards at pinned request indices and a
    {!Sdds_fault.Fault.Schedule} faults individual frames — then holds
    every completed request to the fault-free golden view. The
    differential invariant is the fleet one, extended across churn:
    every request ends in the {e exact} authorized view or one typed
    {!Proxy.error}; a wrong view is a divergence, full stop. After the
    stream drains, a convergence pass with frame faults disabled (dead
    cards stay dead) must reproduce every distinct golden view — the
    fleet is not merely failing safe, it has recovered.

    Everything is deterministic in the (campaign, schedule, request
    stream) triple, which is what makes {!minimize} sound: a divergence
    shrinks, by re-running fresh worlds, to a minimal replayable
    campaign and stream length — the [--campaign]/[--fault-spec] pair
    [sdds chaos --replay] accepts. *)

(** One wrong view: request [index] of the stream produced [got] where
    the fault-free single-card run produces [expected]. *)
type divergence = {
  index : int;
  doc_id : string;
  xpath : string option;
  got : string option;
  expected : string option;
}

type report = {
  requests : int;
  ok : int;  (** completed with the golden view or a correct variant *)
  rejected : int;  (** typed [Overloaded] refusals (admission control) *)
  errors : (int * string * Proxy.error) list;
      (** non-[Overloaded] typed errors: (stream index, doc_id, error) *)
  divergences : divergence list;  (** wrong views — must be empty *)
  convergence_failures : divergence list;
      (** clean-pass requests that still failed or mismatched *)
  injected : int;  (** frame faults injected across all links *)
  kills : int;  (** cutout down-edges across all cards *)
  stats : Fleet.stats;
}

val run :
  ?obs:Sdds_obs.Obs.t ->
  ?cards:int ->
  ?queue_limit:int ->
  ?max_reroutes:int ->
  ?standby_k:int ->
  ?probe_budget:int ->
  store:Sdds_dsp.Store.t ->
  subject:string ->
  make_card:(unit -> Sdds_soe.Remote_card.Client.transport * (unit -> unit)) ->
  golden:(Proxy.Request.t -> string option) ->
  schedule:Sdds_fault.Fault.Schedule.t ->
  campaign:Sdds_fault.Fault.Campaign.t ->
  Proxy.Request.t list ->
  report
(** [make_card ()] returns a fresh card's raw transport and its tear
    hook (host + card, provisioned for [subject]) — called once per
    initial card ([cards], default 3) and once per [Add_card]. Each card
    gets the stack cutout-over-fault-link-over-raw, the link's schedule
    salted per card ({!Sdds_fault.Fault.Schedule.for_card}). [golden]
    is the fault-free reference view, typically the single-card
    [Proxy.run] memoized. Defaults: [max_reroutes] 2, [standby_k] 2.
    The admission loop interleaves one {!Fleet.start} and one
    {!Fleet.turn} per request, so campaign events land while earlier
    requests are in flight. *)

val diverged : report -> bool
(** Divergences or convergence failures present. *)

val minimize :
  rerun:(Sdds_fault.Fault.Campaign.t -> int -> report) ->
  Sdds_fault.Fault.Campaign.t ->
  requests:int ->
  Sdds_fault.Fault.Campaign.t * int
(** [minimize ~rerun campaign ~requests] greedily shrinks a failing run:
    drop campaign events one at a time, then halve the stream length (not
    below 10), keeping every shrink for which [rerun candidate n] still
    {!diverged} — [rerun] must rebuild the world from scratch so each
    candidate replays deterministically. Returns the minimal
    still-failing (campaign, stream length). *)
