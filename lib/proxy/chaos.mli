(** The chaos soak harness: fleet survivability under a seeded,
    replayable campaign.

    One {!run} drives a steady request stream through a {!Fleet} while a
    {!Sdds_fault.Fault.Campaign} kills, revives, adds, drains and tears
    cards at pinned request indices and a
    {!Sdds_fault.Fault.Schedule} faults individual frames — then holds
    every completed request to the fault-free golden view. The
    differential invariant is the fleet one, extended across churn:
    every request ends in the {e exact} authorized view or one typed
    {!Proxy.error}; a wrong view is a divergence, full stop. After the
    stream drains, a convergence pass with frame faults disabled (dead
    cards stay dead) must reproduce every distinct golden view — the
    fleet is not merely failing safe, it has recovered.

    Everything is deterministic in the (campaign, schedule, request
    stream) triple, which is what makes {!minimize} sound: a divergence
    shrinks, by re-running fresh worlds, to a minimal replayable
    campaign and stream length — the [--campaign]/[--fault-spec] pair
    [sdds chaos --replay] accepts. *)

(** One wrong view: request [index] of the stream produced [got] where
    the fault-free single-card run produces [expected]. *)
type divergence = {
  index : int;
  doc_id : string;
  xpath : string option;
  got : string option;
  expected : string option;
}

type report = {
  requests : int;
  ok : int;  (** completed with the golden view or a correct variant *)
  rejected : int;  (** typed [Overloaded] refusals (admission control) *)
  errors : (int * string * Proxy.error) list;
      (** non-[Overloaded] typed errors: (stream index, doc_id, error) *)
  divergences : divergence list;  (** wrong views — must be empty *)
  convergence_failures : divergence list;
      (** clean-pass requests that still failed or mismatched *)
  injected : int;  (** frame faults injected across all links *)
  kills : int;  (** cutout down-edges across all cards *)
  stats : Fleet.stats;
}

val run :
  ?obs:Sdds_obs.Obs.t ->
  ?cards:int ->
  ?queue_limit:int ->
  ?max_reroutes:int ->
  ?standby_k:int ->
  ?probe_budget:int ->
  store:Sdds_dsp.Store.t ->
  subject:string ->
  make_card:(unit -> Sdds_soe.Remote_card.Client.transport * (unit -> unit)) ->
  golden:(Proxy.Request.t -> string option) ->
  schedule:Sdds_fault.Fault.Schedule.t ->
  campaign:Sdds_fault.Fault.Campaign.t ->
  Proxy.Request.t list ->
  report
(** [make_card ()] returns a fresh card's raw transport and its tear
    hook (host + card, provisioned for [subject]) — called once per
    initial card ([cards], default 3) and once per [Add_card]. Each card
    gets the stack cutout-over-fault-link-over-raw, the link's schedule
    salted per card ({!Sdds_fault.Fault.Schedule.for_card}). [golden]
    is the fault-free reference view, typically the single-card
    [Proxy.run] memoized. Defaults: [max_reroutes] 2, [standby_k] 2.
    The admission loop interleaves one {!Fleet.start} and one
    {!Fleet.turn} per request, so campaign events land while earlier
    requests are in flight. *)

val diverged : report -> bool
(** Divergences or convergence failures present. *)

(** {2 Phased SLO runs}

    The same fleet-under-faults world, but the deliverable is SLO
    verdicts: three phases — [steady] (clean traffic), [churn] (the
    busiest card is killed at phase start), [recovered] (every cutout
    revived) — with an {!Sdds_obs.Obs.Slo} engine ticking on fleet
    simulated time after each admitted batch. The acceptance shape:
    churn {!breached}, steady and recovered clean. *)

type slo_phase = {
  sp_phase : string;
  sp_requests : int;
  sp_ok : int;
  sp_rejected : int;
  sp_errors : int;
  sp_ticks : int;  (** SLO samples taken during the phase (one per batch) *)
  sp_breach_ticks : int;
      (** ticks at which some objective was in breach — burn-rate pages
          fire mid-phase and clear after settlement, so the phase-end
          verdict alone would miss them *)
  sp_peak_fast_burn : (string * float) list;
      (** per objective, the worst fast-window burn seen in the phase *)
  sp_verdicts : Sdds_obs.Obs.Slo.verdict list;  (** at phase end *)
  sp_now_ns : int64;  (** simulated (fleet link-time) clock at phase end *)
}

val breached : slo_phase -> bool

val slo_phase_json : slo_phase -> string

val run_slo :
  ?cards:int ->
  ?queue_limit:int ->
  ?max_reroutes:int ->
  ?standby_k:int ->
  ?probe_budget:int ->
  ?batch:int ->
  ?churn_fault_seed:int64 ->
  ?churn_fault_rate:float ->
  ?availability_target:float ->
  ?latency_target:float ->
  ?latency_threshold_us:int ->
  ?fast_window_ns:int64 ->
  ?slow_window_ns:int64 ->
  ?burn_threshold:float ->
  obs:Sdds_obs.Obs.t ->
  store:Sdds_dsp.Store.t ->
  subject:string ->
  make_card:(unit -> Sdds_soe.Remote_card.Client.transport * (unit -> unit)) ->
  requests:(string -> Proxy.Request.t list) ->
  unit ->
  slo_phase list
(** [requests phase] supplies each phase's stream. Two objectives are
    registered: [availability] ([fleet.ok] / [fleet.requests], target
    99%) and [latency] ([fleet.latency_us] ≤ [latency_threshold_us],
    which snaps to a log₂ bucket bound; default 8191 µs, target 95%).
    The fleet's retry machinery absorbs frame faults entirely — no
    typed errors surface — so the churn signature is {e latency}:
    fault-retried serves land in the 16383/32767 µs buckets that
    steady traffic (all ≤ 8191 µs) never touches. A seeded frame-fault
    schedule ([churn_fault_seed]/[churn_fault_rate], default rate 0.12)
    is armed {e only during churn}, alongside the kill, so the burn is
    attributable to the incident. Windows default to 10 ms fast / 60 ms
    slow of {e simulated} link time with burn threshold 1.0 —
    scaled-down 5m/1h analogues sized to the harness's
    millisecond-scale phases; the multi-window rule means the page
    fires mid-churn ([sp_breach_ticks] > 0) and clears once the fast
    window drains, so recovery shows as a clean [recovered] phase.
    Requests are admitted in batches of [batch] (default 3) with a
    tick and an evaluation after each batch. Returns the three phases
    in order. *)

val minimize :
  rerun:(Sdds_fault.Fault.Campaign.t -> int -> report) ->
  Sdds_fault.Fault.Campaign.t ->
  requests:int ->
  Sdds_fault.Fault.Campaign.t * int
(** [minimize ~rerun campaign ~requests] greedily shrinks a failing run:
    drop campaign events one at a time, then halve the stream length (not
    below 10), keeping every shrink for which [rerun candidate n] still
    {!diverged} — [rerun] must rebuild the world from scratch so each
    candidate replays deterministically. Returns the minimal
    still-failing (campaign, stream length). *)
