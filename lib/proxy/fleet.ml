(* Fleet-scale sharded serving: N simulated cards, each behind its own
   [Remote_card.Host] transport and [Proxy.Pool], under one cooperative
   scheduler that survives churn — cards die, drain, join and revive
   mid-run. See fleet.mli for the contract. *)

module Store = Sdds_dsp.Store
module Apdu = Sdds_soe.Apdu
module Cost = Sdds_soe.Cost
module Remote = Sdds_soe.Remote_card
module Rng = Sdds_util.Rng
module Obs = Sdds_obs.Obs

(* ------------------------------------------------------------------ *)
(* Consistent-hash ring                                                 *)
(* ------------------------------------------------------------------ *)

module Ring = struct
  (* [vnodes] virtual points per member, FNV-1a-hashed onto an unsigned
     64-bit circle. Immutable: [add]/[remove] rebuild from the member
     list, and because every member's points stay where they are, a
     resize only moves the keys whose successor point changed — the
     property test pins it. *)
  type t = { vnodes : int; members : int list; points : (int64 * int) array }

  let fnv1a64 = Sdds_util.Fnv.fnv1a64

  let create ?(vnodes = 64) members =
    if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1";
    let members = List.sort_uniq compare members in
    let points =
      Array.of_list
        (List.concat_map
           (fun m ->
             List.init vnodes (fun r ->
                 (fnv1a64 (Printf.sprintf "card-%d/%d" m r), m)))
           members)
    in
    Array.sort
      (fun (a, ma) (b, mb) ->
        match Int64.unsigned_compare a b with 0 -> compare ma mb | c -> c)
      points;
    { vnodes; members; points }

  let members t = t.members
  let add t m = create ~vnodes:t.vnodes (m :: t.members)
  let remove t m = create ~vnodes:t.vnodes (List.filter (( <> ) m) t.members)

  (* Successor point of the key's hash, wrapping past the top of the
     circle back to the first point. *)
  let lookup t key =
    let n = Array.length t.points in
    if n = 0 then invalid_arg "Ring.lookup: empty ring";
    let h = fnv1a64 key in
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then
          search (mid + 1) hi
        else search lo mid
    in
    if Int64.unsigned_compare (fst t.points.(n - 1)) h < 0 then
      snd t.points.(0)
    else snd t.points.(search 0 (n - 1))
end

(* ------------------------------------------------------------------ *)
(* Fleet                                                                *)
(* ------------------------------------------------------------------ *)

type lifecycle = Up | Draining | Dead | Joining

let lifecycle_to_string = function
  | Up -> "up"
  | Draining -> "draining"
  | Dead -> "dead"
  | Joining -> "joining"

(* The gauge encoding of a card's state (documented in the mli). *)
let lifecycle_index = function Up -> 0 | Draining -> 1 | Dead -> 2 | Joining -> 3

type routing = Affinity | Least_loaded | Random of int64

type outcome = {
  result : (Proxy.Pool.served, Proxy.error) result;
  card : int;
  affinity : bool;
  reroutes : int;
  migrations : int;
  latency_s : float;
}

(* One request in flight. [floor] carries simulated time already spent
   on a card that failed the request away (re-route or migration), so
   the reported latency never goes backwards when the request restarts
   on a less-loaded card. [key] is the affinity key, computed once at
   admission so migration re-plans onto the same ring successor the
   routing would pick. *)
type job = {
  req : Proxy.Request.t;
  key : string option;  (* [Affinity] routing only *)
  mutable j_affinity : bool;
  mutable j_reroutes : int;
  mutable j_migrations : int;
  mutable floor : float;
  span : Obs.Tracer.span;
}

(* A request admitted through the incremental API. [starts] snapshots
   every card's clock at admission: latency is measured against the
   serving card's clock then, so clocks carried over from earlier work
   do not inflate it. [pinned] is the (rules, grant) pair the stream was
   first planned with — migration re-uploads exactly this policy. *)
type stream = {
  s_job : job;
  starts : float array;
  mutable pinned : (string * string option) option;
  mutable outcome : outcome option;
}

type slot = {
  id : int;
  mutable pool : Proxy.Pool.t;  (* replaced on revive (fresh epochs) *)
  transport : Remote.Client.transport;  (* clock-wrapped; probes use it too *)
  queue : stream Queue.t;  (* admitted, waiting for a pool slot *)
  mutable active : (stream * Proxy.Pool.stream) list;
  mutable state : lifecycle;
  clock : float ref;  (* simulated seconds of link time *)
  mutable served : int;
  g_depth : Obs.Metrics.Gauge.t;
  g_state : Obs.Metrics.Gauge.t;
}

type t = {
  mutable slots : slot array;  (* grows under [add_card]; ids are stable *)
  mutable ring : Ring.t;  (* holds exactly the routable (live) cards *)
  routing : routing;
  rng : Rng.t option;  (* [Random] routing only *)
  store : Store.t;
  subject : string;
  queue_limit : int;
  max_reroutes : int;
  channels : int;
  probe_budget : int;
  standby_k : int;
  retry : Remote.Retry.t option;
  link_bytes_per_s : float;
  heat : (string, int) Hashtbl.t;  (* affinity-key request counts *)
  obs : Obs.t option;
  mutable requests : int;
  mutable affinity_hits : int;
  mutable fallbacks : int;
  mutable reroutes : int;
  mutable rejected : int;
  mutable q_peak : int;
  mutable migrations : int;
  mutable deaths : int;
  mutable revives : int;
  mutable drains : int;
  mutable added : int;
  mutable probes : int;
  mutable standby_hits : int;
}

type stats = {
  requests : int;
  affinity_hits : int;
  fallbacks : int;
  reroutes : int;
  rejected : int;
  served_by : int array;
  queue_peak : int;
  migrations : int;
  deaths : int;
  revives : int;
  drains : int;
  added : int;
  probes : int;
  standby_hits : int;
  states : lifecycle array;
}

let card_count t = Array.length t.slots
let clock t card = !(t.slots.(card).clock)
let state t card = t.slots.(card).state
let live s = match s.state with Up | Joining -> true | Draining | Dead -> false

let set_state t slot st =
  slot.state <- st;
  ignore t;
  Obs.Metrics.Gauge.set slot.g_state (lifecycle_index st)

let make_slot ?obs ?retry ~store ~subject ~channels ~link_bytes_per_s ~state
    id raw =
  let g_depth = Obs.Metrics.Gauge.create () in
  Obs.attach_gauge obs (Printf.sprintf "fleet.card%d.queue_depth" id) g_depth;
  let g_state = Obs.Metrics.Gauge.create () in
  Obs.attach_gauge obs (Printf.sprintf "fleet.card%d.state" id) g_state;
  Obs.Metrics.Gauge.set g_state (lifecycle_index state);
  let clock = ref 0.0 in
  (* Every frame exchanged with this card — requests and health probes
     alike — advances its simulated clock by its wire time: queueing
     delay shows up as tail latency without any wall clock involved. *)
  let transport cmd =
    let resp = raw cmd in
    clock :=
      !clock
      +. float_of_int
           (String.length (Apdu.encode_command cmd)
           + String.length (Apdu.encode_response resp))
         /. link_bytes_per_s;
    resp
  in
  {
    id;
    pool = Proxy.Pool.create ?obs ~store ~transport ~subject ~channels ?retry ();
    transport;
    queue = Queue.create ();
    active = [];
    state;
    clock;
    served = 0;
    g_depth;
    g_state;
  }

let create ?obs ?(routing = Affinity) ?(queue_limit = 64) ?(max_reroutes = 1)
    ?(channels = Apdu.max_channels) ?retry
    ?(link_bytes_per_s = Cost.fleet.Cost.link_bytes_per_s) ?(probe_budget = 3)
    ?(standby_k = 0) ~store ~subject transports =
  let n = Array.length transports in
  if n < 1 then invalid_arg "Fleet.create: no cards";
  if queue_limit < 1 then invalid_arg "Fleet.create: queue_limit < 1";
  if probe_budget < 1 then invalid_arg "Fleet.create: probe_budget < 1";
  if standby_k < 0 then invalid_arg "Fleet.create: standby_k < 0";
  let slots =
    Array.init n (fun i ->
        make_slot ?obs ?retry ~store ~subject ~channels ~link_bytes_per_s
          ~state:Up i transports.(i))
  in
  {
    slots;
    ring = Ring.create (List.init n Fun.id);
    routing;
    rng =
      (match routing with Random seed -> Some (Rng.create seed) | _ -> None);
    store;
    subject;
    queue_limit;
    max_reroutes;
    channels;
    probe_budget;
    standby_k;
    retry;
    link_bytes_per_s;
    heat = Hashtbl.create 64;
    obs;
    requests = 0;
    affinity_hits = 0;
    fallbacks = 0;
    reroutes = 0;
    rejected = 0;
    q_peak = 0;
    migrations = 0;
    deaths = 0;
    revives = 0;
    drains = 0;
    added = 0;
    probes = 0;
    standby_hits = 0;
  }

let load s = Queue.length s.queue + List.length s.active
let room t s = load s < t.queue_limit

let set_depth s = Obs.Metrics.Gauge.set s.g_depth (load s)

let note_depth t s =
  t.q_peak <- max t.q_peak (load s);
  set_depth s

(* A stream admitted before [add_card] has no clock snapshot for the new
   card; the new card's clock started at 0, which is exactly the right
   baseline for it. *)
let start_of st (slot : slot) =
  if slot.id < Array.length st.starts then st.starts.(slot.id) else 0.0

(* The affinity key: the document and the digest of this subject's rule
   blob — exactly what keys the card's prepared-evaluation cache, so
   repeat requests for a (document, subject) pair land on the card whose
   cache is already warm for them. *)
let affinity_key t (r : Proxy.Request.t) =
  let subject = Option.value ~default:t.subject r.Proxy.Request.subject in
  let digest =
    match
      Store.get_rules t.store ~doc_id:r.Proxy.Request.doc_id ~subject
    with
    | Some rules -> Printf.sprintf "%Lx" (Ring.fnv1a64 rules)
    | None -> subject  (* no rules: routing is moot, stay deterministic *)
  in
  r.Proxy.Request.doc_id ^ "\x00" ^ digest

let least_loaded ?excluding t =
  let best = ref None in
  Array.iter
    (fun s ->
      if Some s.id <> excluding && live s && room t s then
        match !best with
        | Some b when load b <= load s -> ()
        | _ -> best := Some s)
    t.slots;
  !best

(* ------------------------------------------------------------------ *)
(* Hot-key standby                                                      *)
(* ------------------------------------------------------------------ *)

let bump_heat (t : t) key =
  let h = 1 + Option.value ~default:0 (Hashtbl.find_opt t.heat key) in
  Hashtbl.replace t.heat key h;
  h

(* A key is hot when it has real traffic and fewer than [standby_k] keys
   are hotter — the zipf head. The scan is over distinct affinity keys
   (documents × subjects), which is small compared to request volume. *)
let is_hot t key heat =
  t.standby_k > 0 && heat >= 4
  && Hashtbl.fold
       (fun k h n -> if k <> key && h > heat then n + 1 else n)
       t.heat 0
     < t.standby_k

(* The standby for a key is the ring's answer once the primary is gone —
   the card that *will* inherit the key on the primary's death. Keeping
   it warm (a fraction of the hot key's traffic routes there) turns the
   primary's death into a warm failover instead of a cold cache miss. *)
let standby_of t key ~primary =
  match Ring.members t.ring with
  | [] | [ _ ] -> None
  | _ -> (
      let r' = Ring.remove t.ring primary in
      match Ring.members r' with [] -> None | _ -> Some (Ring.lookup r' key))

(* ------------------------------------------------------------------ *)
(* Routing                                                              *)
(* ------------------------------------------------------------------ *)

(* Pick the serving card, or refuse: [None] means no live card has queue
   room — admission control in action. Affinity consults the hash ring
   (which holds exactly the live cards) and falls back to the
   least-loaded live card when the ring's choice has no room; a hot
   key's standby takes every 4th request to stay warm. All decisions are
   counted so the routing mix is observable. *)
let route (t : t) (job : job) =
  match t.routing with
  | Least_loaded -> (
      match least_loaded t with
      | Some s -> Some (s, false)
      | None -> None)
  | Random _ -> (
      let rng = Option.get t.rng in
      let s = t.slots.(Rng.int rng (Array.length t.slots)) in
      if live s && room t s then Some (s, false)
      else
        match least_loaded t with
        | Some s -> Some (s, false)
        | None -> None)
  | Affinity -> (
      let fallback () =
        match least_loaded t with
        | Some s ->
            t.fallbacks <- t.fallbacks + 1;
            Obs.inc t.obs "fleet.fallbacks" 1;
            Some (s, false)
        | None -> None
      in
      match (Ring.members t.ring, job.key) with
      | [], _ | _, None -> fallback ()
      | _ :: _, Some key -> (
          let heat = bump_heat t key in
          let primary = Ring.lookup t.ring key in
          let choice, is_standby =
            match
              if is_hot t key heat then standby_of t key ~primary else None
            with
            | Some sb when heat mod 4 = 0 -> (sb, true)
            | _ -> (primary, false)
          in
          let s = t.slots.(choice) in
          if room t s then
            if is_standby then begin
              t.standby_hits <- t.standby_hits + 1;
              Obs.inc t.obs "fleet.standby_hits" 1;
              Some (s, false)
            end
            else begin
              t.affinity_hits <- t.affinity_hits + 1;
              Obs.inc t.obs "fleet.affinity_hits" 1;
              Some (s, true)
            end
          else fallback ()))

let finish (t : t) st card latency result outcome_tag =
  let job = st.s_job in
  st.outcome <-
    Some
      {
        result;
        card;
        affinity = job.j_affinity;
        reroutes = job.j_reroutes;
        migrations = job.j_migrations;
        latency_s = latency;
      };
  (* SLO feed: before the root span stops, so the latency exemplar can
     still resolve (and pin) the owning trace. *)
  if outcome_tag = "ok" then Obs.inc t.obs "fleet.ok" 1;
  Obs.observe ~span:job.span t.obs "fleet.latency_us"
    (int_of_float (latency *. 1e6));
  Obs.Tracer.stop (Obs.tracer t.obs)
    ~args:
      [ ("outcome", outcome_tag);
        ("card", string_of_int card);
        ("reroutes", string_of_int job.j_reroutes);
        ("migrations", string_of_int job.j_migrations) ]
    job.span

(* A budget-exhausted request (its card kept tearing or its link kept
   faulting past the pool's per-card epoch recovery) is re-routed to
   another card rather than failed, while the allowance lasts. *)
let reroute (t : t) st failed =
  let job = st.s_job in
  if job.j_reroutes >= t.max_reroutes then false
  else
    match least_loaded ~excluding:failed t with
    | Some s ->
        job.j_reroutes <- job.j_reroutes + 1;
        job.j_affinity <- false;
        t.reroutes <- t.reroutes + 1;
        Obs.inc t.obs "fleet.reroutes" 1;
        Queue.add st s.queue;
        note_depth t s;
        true
    | None -> false

(* ------------------------------------------------------------------ *)
(* Lifecycle: probing, migration, resize                                *)
(* ------------------------------------------------------------------ *)

(* Liveness probe: an instruction no card implements, on the basic
   channel. A live card answers the [bad_ins] word — proof of life that
   touches no session state; only a dead link (or a frame fault) yields
   the transient transport word. The typed budget bounds what a dead
   card can cost: [probe_budget] tiny frames once, instead of every
   subsequent request's full retry budget. *)
let probe_frame =
  { Apdu.cla = Apdu.base_cla; ins = 0xEE; p1 = 0; p2 = 0; data = "" }

let probe_alive (t : t) slot =
  let rec go left =
    if left <= 0 then false
    else begin
      t.probes <- t.probes + 1;
      Obs.inc t.obs "fleet.probes" 1;
      let resp = slot.transport probe_frame in
      let sw = (resp.Apdu.sw1, resp.Apdu.sw2) in
      if sw = Remote.Sw.transport || sw = Remote.Sw.internal then go (left - 1)
      else true
    end
  in
  go t.probe_budget

(* Re-plan one stream away from [from] (dying or draining): the ring —
   which no longer contains [from] — names the successor that inherits
   the request's affinity key, so a migrated hot key lands exactly on
   its (pre-warmed) standby. The move is a migration, not a re-route: it
   does not spend the job's re-route allowance, and the re-planned
   stream re-uploads the policy pinned at admission. *)
let migrate_stream (t : t) st ~(from : slot) ~reason =
  let job = st.s_job in
  job.floor <- max job.floor (!(from.clock) -. start_of st from);
  let target =
    match job.key with
    | Some key when Ring.members t.ring <> [] -> (
        let s = t.slots.(Ring.lookup t.ring key) in
        if room t s then Some s else least_loaded ~excluding:from.id t)
    | _ -> least_loaded ~excluding:from.id t
  in
  match target with
  | None ->
      (* Nowhere to go: every surviving queue is full (or no card
         survives). The refusal is typed, never a hang. *)
      t.rejected <- t.rejected + 1;
      Obs.inc t.obs "fleet.rejected" 1;
      finish t st from.id job.floor (Error Proxy.Overloaded) "migration-refused"
  | Some target ->
      job.j_migrations <- job.j_migrations + 1;
      t.migrations <- t.migrations + 1;
      Obs.inc t.obs "fleet.migrations" 1;
      let tr = Obs.tracer t.obs in
      Obs.Tracer.with_parent tr job.span (fun () ->
          Obs.Tracer.with_span tr
            ~args:
              [ ("from", string_of_int from.id);
                ("to", string_of_int target.id);
                ("reason", reason) ]
            "fleet.migrate"
            (fun () -> ()));
      Queue.add st target.queue;
      note_depth t target

(* Evacuate a card: queued streams re-plan in FIFO order; in-flight pool
   streams are aborted (their channel state dies with the card anyway)
   and re-plan after them. Warm re-establishment happens on the target:
   re-SELECT, rules re-upload — against the pinned policy — and the
   card-side prepared cache make the replay cheap when the target is the
   key's pre-warmed standby. *)
let migrate_all t slot ~reason =
  let queued = List.rev (Queue.fold (fun acc st -> st :: acc) [] slot.queue) in
  Queue.clear slot.queue;
  let actives = slot.active in
  slot.active <- [];
  List.iter (fun (_, ps) -> Proxy.Pool.abort slot.pool ps) actives;
  List.iter
    (fun st -> migrate_stream t st ~from:slot ~reason)
    (queued @ List.map fst actives);
  set_depth slot

let mark_dead (t : t) slot =
  set_state t slot Dead;
  t.ring <- Ring.remove t.ring slot.id;
  t.deaths <- t.deaths + 1;
  Obs.inc t.obs "fleet.deaths" 1

let add_card (t : t) raw =
  let id = Array.length t.slots in
  let slot =
    make_slot ?obs:t.obs ?retry:t.retry ~store:t.store ~subject:t.subject
      ~channels:t.channels ~link_bytes_per_s:t.link_bytes_per_s ~state:Joining
      id raw
  in
  t.slots <- Array.append t.slots [| slot |];
  t.ring <- Ring.add t.ring id;
  t.added <- t.added + 1;
  Obs.inc t.obs "fleet.cards_added" 1;
  id

let remove_card (t : t) i =
  if i < 0 || i >= Array.length t.slots then
    invalid_arg "Fleet.remove_card: no such card";
  let slot = t.slots.(i) in
  if live slot then begin
    set_state t slot Draining;
    t.ring <- Ring.remove t.ring i;
    t.drains <- t.drains + 1;
    Obs.inc t.obs "fleet.drains" 1;
    migrate_all t slot ~reason:"drain"
  end

let revive_card (t : t) i =
  if i < 0 || i >= Array.length t.slots then
    invalid_arg "Fleet.revive_card: no such card";
  let slot = t.slots.(i) in
  if not (live slot) then begin
    (* The card's non-volatile state (keys, watermarks, prepared cache)
       survived; its volatile channel table did not. A fresh pool starts
       from a clean epoch — the first requests re-establish sessions and
       hit the surviving prepared cache warm. *)
    slot.pool <-
      Proxy.Pool.create ?obs:t.obs ~store:t.store ~transport:slot.transport
        ~subject:t.subject ~channels:t.channels ?retry:t.retry ();
    set_state t slot Joining;
    t.ring <- Ring.add t.ring i;
    t.revives <- t.revives + 1;
    Obs.inc t.obs "fleet.revives" 1
  end

(* ------------------------------------------------------------------ *)
(* Scheduling                                                           *)
(* ------------------------------------------------------------------ *)

(* Admission: route the request now (it "arrives" at the current
   simulated time); a request no live card has queue room for is refused
   immediately with a typed error — the bounded per-card queues are the
   admission control. *)
let start (t : t) req =
  t.requests <- t.requests + 1;
  Obs.inc t.obs "fleet.requests" 1;
  let span =
    Obs.Tracer.start (Obs.tracer t.obs) ~parent:Obs.Tracer.none
      ~args:
        [ ("doc_id", req.Proxy.Request.doc_id);
          ( "subject",
            Option.value ~default:t.subject req.Proxy.Request.subject ) ]
      "fleet.request"
  in
  let key =
    match t.routing with
    | Affinity -> Some (affinity_key t req)
    | Least_loaded | Random _ -> None
  in
  let job =
    {
      req;
      key;
      j_affinity = false;
      j_reroutes = 0;
      j_migrations = 0;
      floor = 0.0;
      span;
    }
  in
  let st =
    {
      s_job = job;
      starts = Array.map (fun s -> !(s.clock)) t.slots;
      pinned = None;
      outcome = None;
    }
  in
  (match route t job with
  | None ->
      t.rejected <- t.rejected + 1;
      Obs.inc t.obs "fleet.rejected" 1;
      finish t st (-1) 0.0 (Error Proxy.Overloaded) "rejected"
  | Some (slot, aff) ->
      job.j_affinity <- aff;
      Queue.add st slot.queue;
      note_depth t slot);
  st

(* One scheduler turn: round-robin over the live cards; each feeds its
   pool up to [channels] concurrent streams from its FIFO queue and
   advances every active stream by one frame — the same frame
   interleaving N independent terminals would produce, except across N
   cards at once. A request finishing in [Link_failure] triggers the
   probe cycle: a card that fails every probe is declared dead once and
   evacuated, instead of burning every later request's retry budget. *)
let turn t =
  Array.iter
    (fun slot ->
      if live slot then begin
        while
          List.length slot.active < t.channels
          && not (Queue.is_empty slot.queue)
        do
          let st = Queue.take slot.queue in
          let stream = Proxy.Pool.start slot.pool st.s_job.req in
          (match st.pinned with
          | None ->
              (* First planning: pin the policy this request will carry
                 through any migration. Streams that failed admission
                 inside the pool (no rules, unknown doc) finish before
                 ever uploading — nothing to pin. *)
              if Proxy.Pool.result stream = None then
                st.pinned <- Some (Proxy.Pool.session_state stream)
          | Some (rules, grant) -> Proxy.Pool.pin stream ~rules ~grant);
          slot.active <- slot.active @ [ (st, stream) ]
        done;
        set_depth slot;
        List.iter
          (fun (_, stream) -> Proxy.Pool.step slot.pool stream)
          slot.active;
        let died = ref false in
        let still_active =
          List.filter
            (fun (st, stream) ->
              match Proxy.Pool.result stream with
              | None -> true
              | Some result ->
                  let job = st.s_job in
                  let latency =
                    max job.floor (!(slot.clock) -. start_of st slot)
                  in
                  (match result with
                  | Error (Proxy.Link_failure _ as e) ->
                      job.floor <- latency;
                      let alive = (not !died) && probe_alive t slot in
                      if not alive then begin
                        (* Mark the death immediately so this victim's
                           migration (and its ring lookup) already
                           excludes the dead card; the remaining streams
                           evacuate after the scan. *)
                        if not !died then begin
                          died := true;
                          mark_dead t slot
                        end;
                        migrate_stream t st ~from:slot ~reason:"death"
                      end
                      else if not (reroute t st slot.id) then
                        finish t st slot.id latency (Error e) "error"
                  | Ok served ->
                      slot.served <- slot.served + 1;
                      if slot.state = Joining then set_state t slot Up;
                      finish t st slot.id latency (Ok served) "ok"
                  | Error e -> finish t st slot.id latency (Error e) "error");
                  false)
            slot.active
        in
        slot.active <- still_active;
        if !died then migrate_all t slot ~reason:"death";
        set_depth slot
      end)
    t.slots

(* The fleet is a shared scheduler: advancing one stream means running a
   whole turn — every active stream moves, which is exactly what any
   single caller waiting on its own stream wants anyway. *)
let step t (_ : stream) = turn t
let result st = st.outcome

let serve t reqs =
  let streams = List.map (start t) reqs in
  while List.exists (fun st -> st.outcome = None) streams do
    turn t
  done;
  List.map
    (fun st -> match st.outcome with Some o -> o | None -> assert false)
    streams

let stats (t : t) =
  {
    requests = t.requests;
    affinity_hits = t.affinity_hits;
    fallbacks = t.fallbacks;
    reroutes = t.reroutes;
    rejected = t.rejected;
    served_by = Array.map (fun s -> s.served) t.slots;
    queue_peak = t.q_peak;
    migrations = t.migrations;
    deaths = t.deaths;
    revives = t.revives;
    drains = t.drains;
    added = t.added;
    probes = t.probes;
    standby_hits = t.standby_hits;
    states = Array.map (fun s -> s.state) t.slots;
  }
