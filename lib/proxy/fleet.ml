(* Fleet-scale sharded serving: N simulated cards, each behind its own
   [Remote_card.Host] transport and [Proxy.Pool], under one cooperative
   scheduler. See fleet.mli for the contract. *)

module Store = Sdds_dsp.Store
module Apdu = Sdds_soe.Apdu
module Cost = Sdds_soe.Cost
module Rng = Sdds_util.Rng
module Obs = Sdds_obs.Obs

(* ------------------------------------------------------------------ *)
(* Consistent-hash ring                                                 *)
(* ------------------------------------------------------------------ *)

module Ring = struct
  (* [vnodes] virtual points per member, FNV-1a-hashed onto an unsigned
     64-bit circle. Immutable: [add]/[remove] rebuild from the member
     list, and because every member's points stay where they are, a
     resize only moves the keys whose successor point changed — the
     property test pins it. *)
  type t = { vnodes : int; members : int list; points : (int64 * int) array }

  let fnv1a64 = Sdds_util.Fnv.fnv1a64

  let create ?(vnodes = 64) members =
    if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1";
    let members = List.sort_uniq compare members in
    let points =
      Array.of_list
        (List.concat_map
           (fun m ->
             List.init vnodes (fun r ->
                 (fnv1a64 (Printf.sprintf "card-%d/%d" m r), m)))
           members)
    in
    Array.sort
      (fun (a, ma) (b, mb) ->
        match Int64.unsigned_compare a b with 0 -> compare ma mb | c -> c)
      points;
    { vnodes; members; points }

  let members t = t.members
  let add t m = create ~vnodes:t.vnodes (m :: t.members)
  let remove t m = create ~vnodes:t.vnodes (List.filter (( <> ) m) t.members)

  (* Successor point of the key's hash, wrapping past the top of the
     circle back to the first point. *)
  let lookup t key =
    let n = Array.length t.points in
    if n = 0 then invalid_arg "Ring.lookup: empty ring";
    let h = fnv1a64 key in
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then
          search (mid + 1) hi
        else search lo mid
    in
    if Int64.unsigned_compare (fst t.points.(n - 1)) h < 0 then
      snd t.points.(0)
    else snd t.points.(search 0 (n - 1))
end

(* ------------------------------------------------------------------ *)
(* Fleet                                                                *)
(* ------------------------------------------------------------------ *)

type routing = Affinity | Least_loaded | Random of int64

type outcome = {
  result : (Proxy.Pool.served, Proxy.error) result;
  card : int;
  affinity : bool;
  reroutes : int;
  latency_s : float;
}

(* One request in flight. [floor] carries simulated time already spent
   on a card that failed the request away (re-route), so the reported
   latency never goes backwards when the request restarts on a
   less-loaded card. *)
type job = {
  req : Proxy.Request.t;
  mutable j_affinity : bool;
  mutable j_reroutes : int;
  mutable floor : float;
  span : Obs.Tracer.span;
}

(* A request admitted through the incremental API. [starts] snapshots
   every card's clock at admission: latency is measured against the
   serving card's clock then, so clocks carried over from earlier work
   do not inflate it. Admission exchanges no frames, so for a batch the
   per-stream snapshots all equal the batch-entry clocks. *)
type stream = {
  s_job : job;
  starts : float array;
  mutable outcome : outcome option;
}

type slot = {
  id : int;
  pool : Proxy.Pool.t;
  queue : stream Queue.t;  (* admitted, waiting for a pool slot *)
  mutable active : (stream * Proxy.Pool.stream) list;
  clock : float ref;  (* simulated seconds of link time *)
  mutable served : int;
  g_depth : Obs.Metrics.Gauge.t;
}

type t = {
  slots : slot array;
  ring : Ring.t;
  routing : routing;
  rng : Rng.t option;  (* [Random] routing only *)
  store : Store.t;
  subject : string;
  queue_limit : int;
  max_reroutes : int;
  channels : int;
  obs : Obs.t option;
  mutable requests : int;
  mutable affinity_hits : int;
  mutable fallbacks : int;
  mutable reroutes : int;
  mutable rejected : int;
  mutable q_peak : int;
}

type stats = {
  requests : int;
  affinity_hits : int;
  fallbacks : int;
  reroutes : int;
  rejected : int;
  served_by : int array;
  queue_peak : int;
}

let card_count t = Array.length t.slots
let clock t card = !(t.slots.(card).clock)

let create ?obs ?(routing = Affinity) ?(queue_limit = 64) ?(max_reroutes = 1)
    ?(channels = Apdu.max_channels) ?retry
    ?(link_bytes_per_s = Cost.fleet.Cost.link_bytes_per_s) ~store ~subject
    transports =
  let n = Array.length transports in
  if n < 1 then invalid_arg "Fleet.create: no cards";
  if queue_limit < 1 then invalid_arg "Fleet.create: queue_limit < 1";
  let slots =
    Array.init n (fun i ->
        let g_depth = Obs.Metrics.Gauge.create () in
        Obs.attach_gauge obs
          (Printf.sprintf "fleet.card%d.queue_depth" i)
          g_depth;
        let clock = ref 0.0 in
        (* Every frame the pool exchanges with card [i] advances that
           card's simulated clock by its wire time: queueing delay then
           shows up as tail latency without any wall clock involved. *)
        let transport cmd =
          let resp = transports.(i) cmd in
          clock :=
            !clock
            +. float_of_int
                 (String.length (Apdu.encode_command cmd)
                 + String.length (Apdu.encode_response resp))
               /. link_bytes_per_s;
          resp
        in
        {
          id = i;
          pool =
            Proxy.Pool.create ?obs ~store ~transport ~subject ~channels
              ?retry ();
          queue = Queue.create ();
          active = [];
          clock;
          served = 0;
          g_depth;
        })
  in
  {
    slots;
    ring = Ring.create (List.init n Fun.id);
    routing;
    rng =
      (match routing with Random seed -> Some (Rng.create seed) | _ -> None);
    store;
    subject;
    queue_limit;
    max_reroutes;
    channels;
    obs;
    requests = 0;
    affinity_hits = 0;
    fallbacks = 0;
    reroutes = 0;
    rejected = 0;
    q_peak = 0;
  }

let load s = Queue.length s.queue + List.length s.active
let room t s = load s < t.queue_limit

let set_depth s = Obs.Metrics.Gauge.set s.g_depth (load s)

let note_depth t s =
  t.q_peak <- max t.q_peak (load s);
  set_depth s

(* The affinity key: the document and the digest of this subject's rule
   blob — exactly what keys the card's prepared-evaluation cache, so
   repeat requests for a (document, subject) pair land on the card whose
   cache is already warm for them. *)
let affinity_key t (r : Proxy.Request.t) =
  let subject = Option.value ~default:t.subject r.Proxy.Request.subject in
  let digest =
    match
      Store.get_rules t.store ~doc_id:r.Proxy.Request.doc_id ~subject
    with
    | Some rules -> Printf.sprintf "%Lx" (Ring.fnv1a64 rules)
    | None -> subject  (* no rules: routing is moot, stay deterministic *)
  in
  r.Proxy.Request.doc_id ^ "\x00" ^ digest

let least_loaded ?excluding t =
  let best = ref None in
  Array.iter
    (fun s ->
      if Some s.id <> excluding && room t s then
        match !best with
        | Some b when load b <= load s -> ()
        | _ -> best := Some s)
    t.slots;
  !best

(* Pick the serving card, or refuse: [None] means every bounded queue is
   full — admission control in action. Affinity consults the hash ring
   first and falls back to the least-loaded card when the ring's choice
   has no room; both decisions are counted so the routing mix is
   observable. *)
let route t req =
  match t.routing with
  | Least_loaded -> (
      match least_loaded t with
      | Some s -> Some (s, false)
      | None -> None)
  | Random _ -> (
      let rng = Option.get t.rng in
      let s = t.slots.(Rng.int rng (Array.length t.slots)) in
      if room t s then Some (s, false)
      else
        match least_loaded t with
        | Some s -> Some (s, false)
        | None -> None)
  | Affinity -> (
      let s = t.slots.(Ring.lookup t.ring (affinity_key t req)) in
      if room t s then begin
        t.affinity_hits <- t.affinity_hits + 1;
        Obs.inc t.obs "fleet.affinity_hits" 1;
        Some (s, true)
      end
      else
        match least_loaded t with
        | Some s ->
            t.fallbacks <- t.fallbacks + 1;
            Obs.inc t.obs "fleet.fallbacks" 1;
            Some (s, false)
        | None -> None)

let finish t st card latency result outcome_tag =
  let job = st.s_job in
  st.outcome <-
    Some
      {
        result;
        card;
        affinity = job.j_affinity;
        reroutes = job.j_reroutes;
        latency_s = latency;
      };
  Obs.Tracer.stop (Obs.tracer t.obs)
    ~args:
      [ ("outcome", outcome_tag);
        ("card", string_of_int card);
        ("reroutes", string_of_int job.j_reroutes) ]
    job.span

(* A budget-exhausted request (its card kept tearing or its link kept
   faulting past the pool's per-card epoch recovery) is re-routed to
   another card rather than failed, while the allowance lasts. *)
let reroute t st failed =
  let job = st.s_job in
  if job.j_reroutes >= t.max_reroutes then false
  else
    match least_loaded ~excluding:failed t with
    | Some s ->
        job.j_reroutes <- job.j_reroutes + 1;
        job.j_affinity <- false;
        t.reroutes <- t.reroutes + 1;
        Obs.inc t.obs "fleet.reroutes" 1;
        Queue.add st s.queue;
        note_depth t s;
        true
    | None -> false

(* Admission: route the request now (it "arrives" at the current
   simulated time); a request no card has queue room for is refused
   immediately with a typed error — the bounded per-card queues are the
   admission control. *)
let start (t : t) req =
  t.requests <- t.requests + 1;
  Obs.inc t.obs "fleet.requests" 1;
  let span =
    Obs.Tracer.start (Obs.tracer t.obs) ~parent:Obs.Tracer.none
      ~args:
        [ ("doc_id", req.Proxy.Request.doc_id);
          ( "subject",
            Option.value ~default:t.subject req.Proxy.Request.subject ) ]
      "fleet.request"
  in
  let job = { req; j_affinity = false; j_reroutes = 0; floor = 0.0; span } in
  let st =
    {
      s_job = job;
      starts = Array.map (fun s -> !(s.clock)) t.slots;
      outcome = None;
    }
  in
  (match route t req with
  | None ->
      t.rejected <- t.rejected + 1;
      Obs.inc t.obs "fleet.rejected" 1;
      finish t st (-1) 0.0 (Error Proxy.Overloaded) "rejected"
  | Some (slot, aff) ->
      job.j_affinity <- aff;
      Queue.add st slot.queue;
      note_depth t slot);
  st

(* One scheduler turn: round-robin over the cards; each card feeds its
   pool up to [channels] concurrent streams from its FIFO queue and
   advances every active stream by one frame — the same frame
   interleaving N independent terminals would produce, except across N
   cards at once. *)
let turn t =
  Array.iter
    (fun slot ->
      while
        List.length slot.active < t.channels
        && not (Queue.is_empty slot.queue)
      do
        let st = Queue.take slot.queue in
        let stream = Proxy.Pool.start slot.pool st.s_job.req in
        slot.active <- slot.active @ [ (st, stream) ]
      done;
      set_depth slot;
      List.iter
        (fun (_, stream) -> Proxy.Pool.step slot.pool stream)
        slot.active;
      let still_active =
        List.filter
          (fun (st, stream) ->
            match Proxy.Pool.result stream with
            | None -> true
            | Some result ->
                let job = st.s_job in
                let latency =
                  max job.floor (!(slot.clock) -. st.starts.(slot.id))
                in
                (match result with
                | Error (Proxy.Link_failure _ as e) ->
                    job.floor <- latency;
                    if not (reroute t st slot.id) then
                      finish t st slot.id latency (Error e) "error"
                | Ok served ->
                    slot.served <- slot.served + 1;
                    finish t st slot.id latency (Ok served) "ok"
                | Error e -> finish t st slot.id latency (Error e) "error");
                false)
          slot.active
      in
      slot.active <- still_active;
      set_depth slot)
    t.slots

(* The fleet is a shared scheduler: advancing one stream means running a
   whole turn — every active stream moves, which is exactly what any
   single caller waiting on its own stream wants anyway. *)
let step t (_ : stream) = turn t
let result st = st.outcome

let serve t reqs =
  let streams = List.map (start t) reqs in
  while List.exists (fun st -> st.outcome = None) streams do
    turn t
  done;
  List.map
    (fun st -> match st.outcome with Some o -> o | None -> assert false)
    streams

let stats (t : t) =
  {
    requests = t.requests;
    affinity_hits = t.affinity_hits;
    fallbacks = t.fallbacks;
    reroutes = t.reroutes;
    rejected = t.rejected;
    served_by = Array.map (fun s -> s.served) t.slots;
    queue_peak = t.q_peak;
  }
