module Store = Sdds_dsp.Store
module Publish = Sdds_dsp.Publish
module Card = Sdds_soe.Card
module Apdu = Sdds_soe.Apdu
module Remote = Sdds_soe.Remote_card
module Reassembler = Sdds_core.Reassembler
module Serializer = Sdds_xml.Serializer

type t = { store : Store.t; card : Card.t }

let create ~store ~card = { store; card }

module Request = struct
  type t = {
    doc_id : string;
    xpath : string option;
    protect : bool;
    delivery : [ `Pull | `Push ];
    use_index : bool;
  }

  let make ?xpath ?(protect = false) ?(delivery = `Pull) ?(use_index = true)
      doc_id =
    { doc_id; xpath; protect; delivery; use_index }
end

type outcome = {
  view : Sdds_xml.Dom.t option;
  xml : string option;
  card_report : Card.report;
  request_apdu_frames : int;
}

type error =
  | Unknown_document of string
  | No_grant
  | No_rules
  | Card_error of Card.error
  | Protocol of string

let pp_error ppf = function
  | Unknown_document id -> Format.fprintf ppf "unknown document %s" id
  | No_grant -> Format.pp_print_string ppf "no key grant for this subject"
  | No_rules -> Format.pp_print_string ppf "no access rules for this subject"
  | Card_error e -> Card.pp_error ppf e
  | Protocol msg -> Format.fprintf ppf "protocol error: %s" msg

let ( let* ) = Result.bind

let ensure_key t ~doc_id =
  if Card.has_key t.card ~doc_id then Ok ()
  else
    match
      Store.get_grant t.store ~doc_id ~subject:(Card.subject t.card)
    with
    | None -> Error No_grant
    | Some wrapped -> (
        match Card.install_wrapped_key t.card ~doc_id ~wrapped with
        | Ok () -> Ok ()
        | Error e -> Error (Card_error e))

(* Shared prelude of every request: locate the document, make sure the
   card holds its key, fetch the encrypted policy, parse the query, then
   hand (source, rules, query) to the evaluation strategy, which returns
   the view and the card report. *)
let with_context t ~doc_id ~delivery ~xpath run =
  let subject = Card.subject t.card in
  match Store.get_document t.store doc_id with
  | None -> Error (Unknown_document doc_id)
  | Some published -> (
      let* () = ensure_key t ~doc_id in
      match Store.get_rules t.store ~doc_id ~subject with
      | None -> Error No_rules
      | Some encrypted_rules -> (
          let query = Option.map Sdds_xpath.Parser.parse xpath in
          let source = Publish.to_source published ~delivery in
          match run ~source ~encrypted_rules ~query with
          | Error e -> Error (Card_error e)
          | Ok (view, card_report) ->
              let xml = Option.map (Serializer.to_string ~indent:true) view in
              let request_bytes =
                String.length encrypted_rules
                + (match xpath with Some q -> String.length q | None -> 0)
              in
              Ok
                {
                  view;
                  xml;
                  card_report;
                  request_apdu_frames =
                    Apdu.frame_count ~payload_bytes:request_bytes;
                }))

let evaluate_protected_inner t ~doc_id ~delivery ~xpath ~use_index =
  with_context t ~doc_id ~delivery ~xpath
    (fun ~source ~encrypted_rules ~query ->
      match
        Card.evaluate_protected t.card source ~encrypted_rules ?query
          ~use_index ()
      with
      | Error e -> Error e
      | Ok (messages, card_report) ->
          let unsealer =
            Sdds_soe.Guard.Unsealer.create ~has_query:(query <> None) ()
          in
          List.iter (Sdds_soe.Guard.Unsealer.feed unsealer) messages;
          Ok (Sdds_soe.Guard.Unsealer.finish unsealer, card_report))

let evaluate t ~doc_id ~delivery ~xpath ~use_index =
  with_context t ~doc_id ~delivery ~xpath
    (fun ~source ~encrypted_rules ~query ->
      match Card.evaluate t.card source ~encrypted_rules ?query ~use_index () with
      | Error e -> Error e
      | Ok (outputs, card_report) ->
          Ok (Reassembler.run ~has_query:(query <> None) outputs, card_report))

let run t (r : Request.t) =
  if r.Request.protect then
    evaluate_protected_inner t ~doc_id:r.Request.doc_id
      ~delivery:r.Request.delivery ~xpath:r.Request.xpath
      ~use_index:r.Request.use_index
  else
    evaluate t ~doc_id:r.Request.doc_id ~delivery:r.Request.delivery
      ~xpath:r.Request.xpath ~use_index:r.Request.use_index

let query t ~doc_id ?(protect = false) ?xpath () =
  run t { Request.doc_id; xpath; protect; delivery = `Pull; use_index = true }

let receive_push t ~doc_id = run t (Request.make ~delivery:`Push doc_id)

module Pool = struct
  type served = {
    view : Sdds_xml.Dom.t option;
    xml : string option;
    channel : int;
    warm_setup : bool;
    command_frames : int;
    response_frames : int;
    wire_bytes : int;
  }

  (* What the channel's card-side session holds after a completed setup;
     a request that matches can skip straight to EVALUATE. *)
  type memo = { m_doc : string; m_rules : string; m_xpath : string option }

  type t = {
    store : Store.t;
    transport : Remote.Client.transport;
    subject : string;
    mutable free : int list;  (* open channels not serving a stream *)
    mutable opened : int;  (* channels opened so far, basic included *)
    limit : int;  (* channels the pool may open *)
    memos : (int, memo) Hashtbl.t;
    granted : (string, unit) Hashtbl.t;  (* grants already installed *)
  }

  let create ~store ~transport ~subject ?(channels = Apdu.max_channels) () =
    if channels < 1 || channels > Apdu.max_channels then
      invalid_arg "Pool.create: channels out of range";
    {
      store;
      transport;
      subject;
      free = [ 0 ];
      opened = 1;
      limit = channels;
      memos = Hashtbl.create 4;
      granted = Hashtbl.create 8;
    }

  type phase =
    | Wait_channel
    | Setup of Apdu.command list  (* frames still to send *)
    | Eval
    | Drain
    | Finished of (served, error) result

  type stream = {
    req : Request.t;
    mutable rules : string;
    mutable grant : string option;
    mutable channel : int;  (* -1 until assigned *)
    mutable warm : bool;
    mutable phase : phase;
    mutable cmds : int;
    mutable resps : int;
    mutable bytes : int;
    buf : Buffer.t;  (* response accumulation *)
  }

  let send t st cmd =
    st.cmds <- st.cmds + 1;
    st.bytes <- st.bytes + String.length (Apdu.encode_command cmd);
    let resp = t.transport cmd in
    st.resps <- st.resps + 1;
    st.bytes <- st.bytes + String.length (Apdu.encode_response resp);
    resp

  let release t st =
    if st.channel >= 0 then begin
      t.free <- t.free @ [ st.channel ];
      st.channel <- -1
    end

  let finish t st result =
    let result =
      match result with
      | Ok () ->
          let encoded = Buffer.contents st.buf in
          (match Sdds_core.Output_codec.decode_list encoded with
          | outputs ->
              let view =
                Reassembler.run
                  ~has_query:(st.req.Request.xpath <> None)
                  outputs
              in
              Ok
                {
                  view;
                  xml = Option.map (Serializer.to_string ~indent:true) view;
                  channel = st.channel;
                  warm_setup = st.warm;
                  command_frames = st.cmds;
                  response_frames = st.resps;
                  wire_bytes = st.bytes;
                }
          | exception Invalid_argument msg ->
              Error (Protocol ("bad response stream: " ^ msg)))
      | Error e -> Error e
    in
    release t st;
    st.phase <- Finished result

  let sw_error st (resp : Apdu.response) =
    let sw = (resp.Apdu.sw1, resp.Apdu.sw2) in
    match Remote.of_sw ~doc_id:st.req.Request.doc_id sw with
    | Some e -> Card_error e
    | None ->
        Protocol
          (Printf.sprintf "SW %02X%02X" resp.Apdu.sw1 resp.Apdu.sw2)

  (* Take a free channel, or open one with MANAGE CHANNEL if the pool is
     still under its limit. The open frames are charged to the stream
     that triggered them — amortized away once the channel is reused. *)
  let acquire t st =
    match t.free with
    | ch :: rest ->
        t.free <- rest;
        Some (Ok ch)
    | [] ->
        if t.opened >= t.limit then None
        else begin
          let resp =
            send t st
              {
                Apdu.cla = Apdu.base_cla;
                ins = Remote.Ins.manage_channel;
                p1 = 0;
                p2 = 0;
                data = "";
              }
          in
          if
            (resp.Apdu.sw1, resp.Apdu.sw2) = Remote.Sw.ok
            && String.length resp.Apdu.payload = 1
          then begin
            t.opened <- t.opened + 1;
            Some (Ok (Char.code resp.Apdu.payload.[0]))
          end
          else Some (Error (sw_error st resp))
        end

  let setup_frames t st =
    let cla = Apdu.cla_of_channel st.channel in
    let warm =
      match Hashtbl.find_opt t.memos st.channel with
      | Some m ->
          String.equal m.m_doc st.req.Request.doc_id
          && String.equal m.m_rules st.rules
          && m.m_xpath = st.req.Request.xpath
      | None -> false
    in
    st.warm <- warm;
    if warm then []
    else begin
      let sel =
        {
          Apdu.cla;
          ins = Remote.Ins.select;
          p1 = 0;
          p2 = 0;
          data = st.req.Request.doc_id;
        }
      in
      let grant =
        match st.grant with
        | Some w when not (Hashtbl.mem t.granted st.req.Request.doc_id) ->
            [ { Apdu.cla; ins = Remote.Ins.grant; p1 = 0; p2 = 0; data = w } ]
        | _ -> []
      in
      let rules = Apdu.segment ~cla ~ins:Remote.Ins.rules st.rules in
      let query =
        match st.req.Request.xpath with
        | None -> []
        | Some q -> Apdu.segment ~cla ~ins:Remote.Ins.query q
      in
      (sel :: grant) @ rules @ query
    end

  let eval_frame st =
    {
      Apdu.cla = Apdu.cla_of_channel st.channel;
      ins = Remote.Ins.evaluate;
      p1 = (match st.req.Request.delivery with `Push -> 1 | `Pull -> 0);
      p2 = (if st.req.Request.use_index then 0 else 1);
      data = "";
    }

  let handle_drain t st (resp : Apdu.response) =
    Buffer.add_string st.buf resp.Apdu.payload;
    if (resp.Apdu.sw1, resp.Apdu.sw2) = Remote.Sw.ok then finish t st (Ok ())
    else if resp.Apdu.sw1 = fst Remote.Sw.more_data then st.phase <- Drain
    else
      (* An EVALUATE failure leaves the channel's setup intact — the memo
         stays valid for the next request. *)
      finish t st (Error (sw_error st resp))

  (* Advance a stream by exactly one frame (or one channel-table action):
     the serve loop round-robins over the streams, so frames from the N
     requests interleave on the shared transport the way N independent
     terminals would interleave on a shared card. *)
  let step t st =
    match st.phase with
    | Finished _ -> ()
    | Wait_channel -> (
        match acquire t st with
        | None -> ()  (* every channel busy: wait for a release *)
        | Some (Error e) -> finish t st (Error e)
        | Some (Ok ch) ->
            st.channel <- ch;
            st.phase <-
              (match setup_frames t st with [] -> Eval | fs -> Setup fs))
    | Setup [] -> st.phase <- Eval
    | Setup (cmd :: rest) ->
        let resp = send t st cmd in
        if (resp.Apdu.sw1, resp.Apdu.sw2) = Remote.Sw.ok then begin
          if cmd.Apdu.ins = Remote.Ins.grant then
            Hashtbl.replace t.granted st.req.Request.doc_id ();
          match rest with
          | [] ->
              Hashtbl.replace t.memos st.channel
                {
                  m_doc = st.req.Request.doc_id;
                  m_rules = st.rules;
                  m_xpath = st.req.Request.xpath;
                };
              st.phase <- Eval
          | _ -> st.phase <- Setup rest
        end
        else begin
          (* Half-done setup: whatever the channel session holds no longer
             matches any memo. *)
          Hashtbl.remove t.memos st.channel;
          finish t st (Error (sw_error st resp))
        end
    | Eval -> handle_drain t st (send t st (eval_frame st))
    | Drain ->
        handle_drain t st
          (send t st
             {
               Apdu.cla = Apdu.cla_of_channel st.channel;
               ins = Remote.Ins.get_response;
               p1 = 0;
               p2 = 0;
               data = "";
             })

  let init t (r : Request.t) =
    let fresh phase =
      {
        req = r;
        rules = "";
        grant = None;
        channel = -1;
        warm = false;
        phase;
        cmds = 0;
        resps = 0;
        bytes = 0;
        buf = Buffer.create 256;
      }
    in
    let fail e = fresh (Finished (Error e)) in
    if r.Request.protect then
      fail
        (Protocol
           "protect requires a local card: Guard messages have no wire codec")
    else
      match Store.get_document t.store r.Request.doc_id with
      | None -> fail (Unknown_document r.Request.doc_id)
      | Some _ -> (
          match
            Store.get_rules t.store ~doc_id:r.Request.doc_id
              ~subject:t.subject
          with
          | None -> fail No_rules
          | Some rules ->
              (* Malformed queries are the application's bug, reported
                 synchronously — same contract as [run]. *)
              (match r.Request.xpath with
              | Some q -> ignore (Sdds_xpath.Parser.parse q)
              | None -> ());
              let st = fresh Wait_channel in
              st.rules <- rules;
              st.grant <-
                Store.get_grant t.store ~doc_id:r.Request.doc_id
                  ~subject:t.subject;
              st)

  let serve t reqs =
    let streams = List.map (init t) reqs in
    let active st =
      match st.phase with Finished _ -> false | _ -> true
    in
    let rec loop () =
      let live = List.filter active streams in
      if live <> [] then begin
        List.iter (step t) live;
        loop ()
      end
    in
    loop ();
    List.map
      (fun st ->
        match st.phase with Finished r -> r | _ -> assert false)
      streams
end
