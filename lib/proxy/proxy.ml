module Store = Sdds_dsp.Store
module Publish = Sdds_dsp.Publish
module Card = Sdds_soe.Card
module Apdu = Sdds_soe.Apdu
module Remote = Sdds_soe.Remote_card
module Reassembler = Sdds_core.Reassembler
module Serializer = Sdds_xml.Serializer
module Obs = Sdds_obs.Obs

type t = { store : Store.t; card : Card.t }

let create ~store ~card = { store; card }

module Request = struct
  type t = {
    doc_id : string;
    xpath : string option;
    protect : bool;
    delivery : [ `Pull | `Push ];
    use_index : bool;
    subject : string option;
  }

  let make ?xpath ?(protect = false) ?(delivery = `Pull) ?(use_index = true)
      ?subject doc_id =
    { doc_id; xpath; protect; delivery; use_index; subject }
end

type outcome = {
  view : Sdds_xml.Dom.t option;
  xml : string option;
  card_report : Card.report;
  request_apdu_frames : int;
}

type error =
  | Unknown_document of string
  | No_grant
  | No_rules
  | Card_error of Card.error
  | Link_failure of { attempts : int }
  | Overloaded
  | Protocol of string

let pp_error ppf = function
  | Unknown_document id -> Format.fprintf ppf "unknown document %s" id
  | No_grant -> Format.pp_print_string ppf "no key grant for this subject"
  | No_rules -> Format.pp_print_string ppf "no access rules for this subject"
  | Card_error e -> Card.pp_error ppf e
  | Link_failure { attempts } ->
      Format.fprintf ppf
        "link failure: retry budget exhausted after %d retries" attempts
  | Overloaded ->
      Format.pp_print_string ppf
        "overloaded: admission control refused the request (every queue full)"
  | Protocol msg -> Format.fprintf ppf "protocol error: %s" msg

let ( let* ) = Result.bind

let ensure_key t ~doc_id ~subject =
  if Card.has_key t.card ~doc_id then Ok ()
  else
    match Store.get_grant t.store ~doc_id ~subject with
    | None -> Error No_grant
    | Some wrapped -> (
        match Card.install_wrapped_key t.card ~doc_id ~wrapped with
        | Ok () -> Ok ()
        | Error e -> Error (Card_error e))

(* Shared prelude of every request: locate the document, make sure the
   card holds its key, fetch the encrypted policy, parse the query, then
   hand (source, rules, query) to the evaluation strategy, which returns
   the view and the card report. *)
let with_context t ~doc_id ~subject ~delivery ~xpath run =
  match Store.get_document t.store doc_id with
  | None -> Error (Unknown_document doc_id)
  | Some published -> (
      let* () = ensure_key t ~doc_id ~subject in
      match Store.get_rules t.store ~doc_id ~subject with
      | None -> Error No_rules
      | Some encrypted_rules -> (
          let query = Option.map Sdds_xpath.Parser.parse xpath in
          let source = Publish.to_source published ~delivery in
          match run ~source ~encrypted_rules ~query with
          | Error e -> Error (Card_error e)
          | Ok (view, card_report) ->
              let xml = Option.map (Serializer.to_string ~indent:true) view in
              let request_bytes =
                String.length encrypted_rules
                + (match xpath with Some q -> String.length q | None -> 0)
              in
              Ok
                {
                  view;
                  xml;
                  card_report;
                  request_apdu_frames =
                    Apdu.frame_count ~payload_bytes:request_bytes;
                }))

let evaluate_protected_inner t ~doc_id ~subject ~delivery ~xpath ~use_index =
  with_context t ~doc_id ~subject ~delivery ~xpath
    (fun ~source ~encrypted_rules ~query ->
      match
        Card.evaluate_protected t.card source ~encrypted_rules ?query
          ~use_index ()
      with
      | Error e -> Error e
      | Ok (messages, card_report) ->
          let unsealer =
            Sdds_soe.Guard.Unsealer.create ~has_query:(query <> None) ()
          in
          List.iter (Sdds_soe.Guard.Unsealer.feed unsealer) messages;
          Ok (Sdds_soe.Guard.Unsealer.finish unsealer, card_report))

let evaluate t ~doc_id ~subject ~delivery ~xpath ~use_index =
  with_context t ~doc_id ~subject ~delivery ~xpath
    (fun ~source ~encrypted_rules ~query ->
      match Card.evaluate t.card source ~encrypted_rules ?query ~use_index () with
      | Error e -> Error e
      | Ok (outputs, card_report) ->
          Ok (Reassembler.run ~has_query:(query <> None) outputs, card_report))

(* The request's subject defaults to the card's own identity; a fleet
   front-end serving a whole population overrides it per request (the
   store's rules and grants are per (document, subject), but every
   subject's grant wraps the same document key, so any card can serve any
   subject it holds a usable grant for). *)
let request_subject t (r : Request.t) =
  Option.value ~default:(Card.subject t.card) r.Request.subject

let run_once t (r : Request.t) =
  let subject = request_subject t r in
  if r.Request.protect then
    evaluate_protected_inner t ~doc_id:r.Request.doc_id ~subject
      ~delivery:r.Request.delivery ~xpath:r.Request.xpath
      ~use_index:r.Request.use_index
  else
    evaluate t ~doc_id:r.Request.doc_id ~subject
      ~delivery:r.Request.delivery ~xpath:r.Request.xpath
      ~use_index:r.Request.use_index

(* Force-refresh the card's key from the DSP. [ensure_key] skips the
   install when the card already holds *a* key for the document, so after
   the publisher rotates (revocation) the card would keep failing with
   [Stale_key] forever even though a fresh grant sits in the store. *)
let stale_evidence = function
  | Card.Stale_key _ -> true
  (* A rotation re-keys the rule blob too; decrypting the fresh blob
     with the outdated key is a MAC failure, indistinguishable on the
     card from tampering — so it is treated as possible staleness and
     given the same one refresh. *)
  | Card.Bad_rules _ -> true
  | _ -> false

let refresh_key t ~doc_id ~subject =
  match Store.get_grant t.store ~doc_id ~subject with
  | None -> Error ()
  | Some wrapped -> (
      match Card.install_wrapped_key t.card ~doc_id ~wrapped with
      | Ok () -> Ok ()
      | Error _ -> Error ())

let run t (r : Request.t) =
  let obs = Card.obs t.card in
  Obs.inc obs "proxy.requests" 1;
  Obs.Tracer.with_span (Obs.tracer obs)
    ~args:
      [ ("doc_id", r.Request.doc_id);
        ("xpath", Option.value ~default:"" r.Request.xpath) ]
    "proxy.request"
  @@ fun () ->
  match run_once t r with
  | Error (Card_error e) as stale when stale_evidence e -> (
      (* Revocation in action: re-fetch the wrapped key and retry once.
         If the store has no usable fresh grant (this subject was cut
         off), report the original staleness, not the refresh's own
         failure. *)
      match
        refresh_key t ~doc_id:r.Request.doc_id ~subject:(request_subject t r)
      with
      | Ok () ->
          Obs.inc obs "proxy.rekeys" 1;
          run_once t r
      | Error () -> stale)
  | result -> result

module Pool = struct
  type served = {
    view : Sdds_xml.Dom.t option;
    xml : string option;
    channel : int;
    warm_setup : bool;
    command_frames : int;
    response_frames : int;
    wire_bytes : int;
    retries : int;
  }

  (* What the channel's card-side session holds after a completed setup;
     a request that matches can skip straight to EVALUATE. *)
  type memo = { m_doc : string; m_rules : string; m_xpath : string option }

  type t = {
    store : Store.t;
    transport : Remote.Client.transport;
    subject : string;
    retry : Remote.Retry.t;
    mutable free : int list;  (* open channels not serving a stream *)
    mutable opened : int;  (* channels opened so far, basic included *)
    limit : int;  (* channels the pool may open *)
    mutable epoch : int;  (* bumped on evidence of a card tear *)
    memos : (int, memo) Hashtbl.t;
    granted : (string, unit) Hashtbl.t;  (* grants already installed *)
    obs : Obs.t option;
  }

  let create ?obs ~store ~transport ~subject ?(channels = Apdu.max_channels)
      ?(retry = Remote.Retry.default) () =
    if channels < 1 || channels > Apdu.max_channels then
      invalid_arg "Pool.create: channels out of range";
    {
      store;
      transport;
      subject;
      retry;
      free = [ 0 ];
      opened = 1;
      limit = channels;
      epoch = 0;
      memos = Hashtbl.create 4;
      granted = Hashtbl.create 8;
      obs;
    }

  type phase =
    | Wait_channel
    | Setup of Apdu.command list  (* frames still to send *)
    | Eval
    | Drain
    | Finished of (served, error) result

  type stream = {
    req : Request.t;
    mutable rules : string;
    mutable grant : string option;
    mutable channel : int;  (* -1 until assigned *)
    mutable epoch : int;  (* pool epoch when the channel was assigned *)
    mutable warm : bool;
    mutable phase : phase;
    mutable budget : int;  (* transient-fault retries left *)
    mutable rekeyed : bool;  (* one grant refresh per request *)
    mutable resp_block : int;  (* next GET RESPONSE block to ask for *)
    span : Obs.Tracer.span;  (* per-request root span; stopped in finish *)
    cmds : Obs.Metrics.Counter.t;
    resps : Obs.Metrics.Counter.t;
    bytes : Obs.Metrics.Counter.t;
    retries : Obs.Metrics.Counter.t;
    buf : Buffer.t;  (* response accumulation *)
  }

  let stream_subject t (r : Request.t) =
    Option.value ~default:t.subject r.Request.subject

  (* The serve loop interleaves frames of many streams on one transport,
     so the implicit span stack cannot know which request a frame belongs
     to: re-root it at the stream's span for the duration of the
     exchange — host-side APDU spans then nest under the right request. *)
  let send t st cmd =
    Obs.Metrics.Counter.inc st.cmds;
    Obs.Metrics.Counter.add st.bytes
      (String.length (Apdu.encode_command cmd));
    let resp =
      Obs.Tracer.with_parent (Obs.tracer t.obs) st.span (fun () ->
          t.transport cmd)
    in
    Obs.Metrics.Counter.inc st.resps;
    Obs.Metrics.Counter.add st.bytes
      (String.length (Apdu.encode_response resp));
    resp

  let release t st =
    if st.channel >= 0 then begin
      t.free <- t.free @ [ st.channel ];
      st.channel <- -1
    end

  (* Discard any partially accumulated response: recovery always replays
     from EVALUATE, so the application can never see a view stitched
     together across a tear. *)
  let reset_partial st =
    Buffer.clear st.buf;
    st.resp_block <- 0

  let finish t st result =
    let result =
      match result with
      | Ok () ->
          let encoded = Buffer.contents st.buf in
          (match Sdds_core.Output_codec.decode_list encoded with
          | outputs ->
              let view =
                Reassembler.run
                  ~has_query:(st.req.Request.xpath <> None)
                  outputs
              in
              Ok
                {
                  view;
                  xml = Option.map (Serializer.to_string ~indent:true) view;
                  channel = st.channel;
                  warm_setup = st.warm;
                  command_frames = Obs.Metrics.Counter.value st.cmds;
                  response_frames = Obs.Metrics.Counter.value st.resps;
                  wire_bytes = Obs.Metrics.Counter.value st.bytes;
                  retries = Obs.Metrics.Counter.value st.retries;
                }
          | exception Invalid_argument msg ->
              Error (Protocol ("bad response stream: " ^ msg)))
      | Error e -> Error e
    in
    release t st;
    Obs.Tracer.stop (Obs.tracer t.obs)
      ~args:
        [ ( "outcome",
            match result with Ok _ -> "ok" | Error _ -> "error" );
          ("warm", string_of_bool st.warm) ]
      st.span;
    st.phase <- Finished result

  let sw_error st (resp : Apdu.response) =
    let sw = (resp.Apdu.sw1, resp.Apdu.sw2) in
    match Remote.of_sw ~doc_id:st.req.Request.doc_id sw with
    | Some e -> Card_error e
    | None ->
        Protocol
          (Printf.sprintf "SW %02X%02X" resp.Apdu.sw1 resp.Apdu.sw2)

  (* Spend one unit of the stream's retry budget on a recovery action, or
     fail the stream with a typed [Link_failure] once it is gone — the
     pool can always say how the request ended. *)
  let charge t st k =
    if st.budget <= 0 then
      finish t st (Error (Link_failure { attempts = t.retry.Remote.Retry.budget }))
    else begin
      st.budget <- st.budget - 1;
      Obs.Metrics.Counter.inc st.retries;
      k ()
    end

  (* Evidence that the card lost all volatile state (a frame answered
     [channel_closed]: only a reset closes channels under the pool).
     Everything channel-shaped the pool believed is now false: channels
     1–3 are gone (only the basic channel survives a reset, fresh), every
     memoized session is void. Bumping the epoch makes every stream still
     holding a pre-tear channel re-acquire before its next frame — two
     streams can never end up sharing a reassigned channel, which could
     serve one of them the other's view. *)
  let tear_evidence (t : t) =
    Obs.inc t.obs "pool.tear_evidence" 1;
    t.epoch <- t.epoch + 1;
    Hashtbl.reset t.memos;
    t.free <- (if List.mem 0 t.free then [ 0 ] else []);
    t.opened <- 1

  let cold_setup t st setup_frames =
    Hashtbl.remove t.memos st.channel;
    reset_partial st;
    st.phase <-
      (match setup_frames t st with [] -> Eval | fs -> Setup fs)

  let session_lost t st (resp : Apdu.response) setup_frames =
    if (resp.Apdu.sw1, resp.Apdu.sw2) = Remote.Sw.channel_closed then begin
      tear_evidence t;
      (* The channel is dead — it must not go back to the free list. *)
      st.channel <- -1;
      reset_partial st;
      charge t st (fun () -> st.phase <- Wait_channel)
    end
    else
      (* [bad_state]: the channel is open but its session is fresh (a
         tear took the basic channel's state, or a stale continuation) —
         replay the whole setup on the same channel. *)
      charge t st (fun () -> cold_setup t st setup_frames)

  let fatal t st ~clear_memo e setup_frames =
    match e with
    | (Card.Stale_key _ | Card.Bad_rules _) when not st.rekeyed -> (
        (* Revocation: the card's cached key predates a rotation. Fetch
           the fresh wrapped grant and replay cold; without a usable
           fresh grant the staleness is the real answer. *)
        match
          Store.get_grant t.store ~doc_id:st.req.Request.doc_id
            ~subject:(stream_subject t st.req)
        with
        | None -> finish t st (Error (Card_error e))
        | Some w ->
            st.rekeyed <- true;
            st.grant <- Some w;
            Obs.inc t.obs "pool.rekeys" 1;
            Hashtbl.remove t.granted st.req.Request.doc_id;
            cold_setup t st setup_frames)
    | _ ->
        if clear_memo then Hashtbl.remove t.memos st.channel;
        finish t st (Error (Card_error e))

  type acquired = Got of int | Wait | Soft | Hard of error

  (* Take a free channel, or open one with MANAGE CHANNEL if the pool is
     still under its limit. The open frames are charged to the stream
     that triggered them — amortized away once the channel is reused. *)
  let acquire t st =
    match t.free with
    | ch :: rest ->
        t.free <- rest;
        Got ch
    | [] ->
        if t.opened >= t.limit then Wait
        else begin
          let resp =
            send t st
              {
                Apdu.cla = Apdu.base_cla;
                ins = Remote.Ins.manage_channel;
                p1 = 0;
                p2 = 0;
                data = "";
              }
          in
          let sw = (resp.Apdu.sw1, resp.Apdu.sw2) in
          if sw = Remote.Sw.ok && String.length resp.Apdu.payload = 1 then begin
            let ch = Char.code resp.Apdu.payload.[0] in
            if ch < 1 || ch >= Apdu.max_channels then
              (* No real card answers a channel number outside 1..3: the
                 response payload was corrupted in flight. *)
              Soft
            else begin
              (* The pool opens channels sequentially and never closes
                 them, so a healthy open always returns exactly
                 [t.opened]. A lower number means the card's channel
                 table reset underneath us (a tear the pool has not yet
                 observed through [channel_closed]) and the card is
                 re-issuing a number some stream still believes it
                 holds. Without the epoch bump here, two streams would
                 interleave well-formed frames on one channel and one
                 could be served the other's view. A higher number
                 (a duplicated open consumed an extra slot) is merely
                 leaked capacity — account past it. *)
              if ch < t.opened then tear_evidence t;
              t.opened <- max t.opened (ch + 1);
              Obs.inc t.obs "pool.channels_opened" 1;
              Got ch
            end
          end
          else if
            sw = Remote.Sw.transport || sw = Remote.Sw.internal
            || sw = Remote.Sw.no_channel
          then Soft
          else Hard (sw_error st resp)
        end

  let setup_frames t st =
    let cla = Apdu.cla_of_channel st.channel in
    let warm =
      match Hashtbl.find_opt t.memos st.channel with
      | Some m ->
          String.equal m.m_doc st.req.Request.doc_id
          && String.equal m.m_rules st.rules
          && m.m_xpath = st.req.Request.xpath
      | None -> false
    in
    st.warm <- warm;
    if warm then begin
      Obs.inc t.obs "pool.warm_setups" 1;
      []
    end
    else begin
      let sel =
        {
          Apdu.cla;
          ins = Remote.Ins.select;
          p1 = 0;
          p2 = 0;
          data = st.req.Request.doc_id;
        }
      in
      let grant =
        match st.grant with
        | Some w when not (Hashtbl.mem t.granted st.req.Request.doc_id) ->
            [ { Apdu.cla; ins = Remote.Ins.grant; p1 = 0; p2 = 0; data = w } ]
        | _ -> []
      in
      let rules = Apdu.segment ~cla ~ins:Remote.Ins.rules st.rules in
      let query =
        match st.req.Request.xpath with
        | None -> []
        | Some q -> Apdu.segment ~cla ~ins:Remote.Ins.query q
      in
      (sel :: grant) @ rules @ query
    end

  let eval_frame st =
    {
      Apdu.cla = Apdu.cla_of_channel st.channel;
      ins = Remote.Ins.evaluate;
      p1 = (match st.req.Request.delivery with `Push -> 1 | `Pull -> 0);
      p2 = (if st.req.Request.use_index then 0 else 1);
      data = "";
    }

  (* Advance a stream by exactly one frame (or one channel-table action):
     the serve loop round-robins over the streams, so frames from the N
     requests interleave on the shared transport the way N independent
     terminals would interleave on a shared card.

     Recovery is woven into the same state machine: a [Transient] word
     leaves the phase unchanged (the identical frame is resent on the
     next step — the host's duplicate-ack and block-retransmission make
     that safe), a lost session replays the setup, and both spend from
     the stream's bounded retry budget. *)
  let step (t : t) st =
    (* A channel assigned before the last observed tear may since have
       been reassigned by the card: drop it before sending anything. *)
    (match st.phase with
    | Finished _ | Wait_channel -> ()
    | Setup _ | Eval | Drain ->
        if st.channel >= 0 && st.epoch <> t.epoch then begin
          if st.channel = 0 then t.free <- t.free @ [ 0 ];
          st.channel <- -1;
          reset_partial st;
          st.phase <- Wait_channel
        end);
    match st.phase with
    | Finished _ -> ()
    | Wait_channel -> (
        match acquire t st with
        | Wait -> ()  (* every channel busy: wait for a release *)
        | Soft -> charge t st (fun () -> ())
        | Hard e -> finish t st (Error e)
        | Got ch ->
            st.channel <- ch;
            st.epoch <- t.epoch;
            st.phase <-
              (match setup_frames t st with [] -> Eval | fs -> Setup fs))
    | Setup [] -> st.phase <- Eval
    | Setup (cmd :: rest) -> (
        let resp = send t st cmd in
        match Remote.classify ~doc_id:st.req.Request.doc_id resp with
        | Remote.Done -> (
            if cmd.Apdu.ins = Remote.Ins.grant then
              Hashtbl.replace t.granted st.req.Request.doc_id ();
            match rest with
            | [] ->
                Hashtbl.replace t.memos st.channel
                  {
                    m_doc = st.req.Request.doc_id;
                    m_rules = st.rules;
                    m_xpath = st.req.Request.xpath;
                  };
                st.phase <- Eval
            | _ -> st.phase <- Setup rest)
        | Remote.Transient -> charge t st (fun () -> ())
        | Remote.Session_lost -> session_lost t st resp setup_frames
        | Remote.Fatal e -> fatal t st ~clear_memo:true e setup_frames
        | Remote.More _ | Remote.Unknown _ ->
            (* Half-done setup: whatever the channel session holds no
               longer matches any memo. *)
            Hashtbl.remove t.memos st.channel;
            finish t st (Error (sw_error st resp)))
    | Eval -> (
        let resp = send t st (eval_frame st) in
        match Remote.classify ~doc_id:st.req.Request.doc_id resp with
        | Remote.Done ->
            Buffer.add_string st.buf resp.Apdu.payload;
            finish t st (Ok ())
        | Remote.More _ ->
            Buffer.add_string st.buf resp.Apdu.payload;
            st.resp_block <- 1;
            st.phase <- Drain
        | Remote.Transient -> charge t st (fun () -> reset_partial st)
        | Remote.Session_lost -> session_lost t st resp setup_frames
        | Remote.Fatal e ->
            (* An EVALUATE failure leaves the channel's setup intact —
               the memo stays valid for the next request. *)
            fatal t st ~clear_memo:false e setup_frames
        | Remote.Unknown _ -> finish t st (Error (sw_error st resp)))
    | Drain -> (
        let resp =
          send t st
            {
              Apdu.cla = Apdu.cla_of_channel st.channel;
              ins = Remote.Ins.get_response;
              p1 = 0;
              p2 = st.resp_block land 0xff;
              data = "";
            }
        in
        match Remote.classify ~doc_id:st.req.Request.doc_id resp with
        | Remote.Done ->
            Buffer.add_string st.buf resp.Apdu.payload;
            finish t st (Ok ())
        | Remote.More _ ->
            Buffer.add_string st.buf resp.Apdu.payload;
            st.resp_block <- st.resp_block + 1;
            st.phase <- Drain
        | Remote.Transient ->
            (* Re-ask for the same block: the host retransmits it
               byte-identically if it had already been served. *)
            charge t st (fun () -> ())
        | Remote.Session_lost -> session_lost t st resp setup_frames
        | Remote.Fatal e -> fatal t st ~clear_memo:false e setup_frames
        | Remote.Unknown _ -> finish t st (Error (sw_error st resp)))

  let init (t : t) (r : Request.t) =
    let fresh phase =
      let cmds = Obs.Metrics.Counter.create () in
      let resps = Obs.Metrics.Counter.create () in
      let bytes = Obs.Metrics.Counter.create () in
      let retries = Obs.Metrics.Counter.create () in
      Obs.attach_counter t.obs "pool.command_frames" cmds;
      Obs.attach_counter t.obs "pool.response_frames" resps;
      Obs.attach_counter t.obs "pool.wire_bytes" bytes;
      Obs.attach_counter t.obs "pool.retries" retries;
      Obs.inc t.obs "pool.requests" 1;
      let span =
        Obs.Tracer.start (Obs.tracer t.obs) ~parent:Obs.Tracer.none
          ~args:
            [ ("doc_id", r.Request.doc_id);
              ("xpath", Option.value ~default:"" r.Request.xpath) ]
          "proxy.request"
      in
      {
        req = r;
        rules = "";
        grant = None;
        channel = -1;
        epoch = t.epoch;
        warm = false;
        phase;
        budget = t.retry.Remote.Retry.budget;
        rekeyed = false;
        resp_block = 0;
        span;
        cmds;
        resps;
        bytes;
        retries;
        buf = Buffer.create 256;
      }
    in
    let fail e =
      let st = fresh (Finished (Error e)) in
      (* Rejected before any frame: close the root span here, since the
         stream never reaches [finish]. *)
      Obs.Tracer.stop (Obs.tracer t.obs)
        ~args:[ ("outcome", "rejected") ]
        st.span;
      st
    in
    if r.Request.protect then
      fail
        (Protocol
           "protect requires a local card: Guard messages have no wire codec")
    else
      match Store.get_document t.store r.Request.doc_id with
      | None -> fail (Unknown_document r.Request.doc_id)
      | Some _ -> (
          let subject = stream_subject t r in
          match
            Store.get_rules t.store ~doc_id:r.Request.doc_id ~subject
          with
          | None -> fail No_rules
          | Some rules ->
              (* Malformed queries are the application's bug, reported
                 synchronously — same contract as [run]. *)
              (match r.Request.xpath with
              | Some q -> ignore (Sdds_xpath.Parser.parse q)
              | None -> ());
              let st = fresh Wait_channel in
              st.rules <- rules;
              st.grant <-
                Store.get_grant t.store ~doc_id:r.Request.doc_id ~subject;
              st)

  let serve t reqs =
    let streams = List.map (init t) reqs in
    let active st =
      match st.phase with Finished _ -> false | _ -> true
    in
    let rec loop () =
      let live = List.filter active streams in
      if live <> [] then begin
        List.iter (step t) live;
        loop ()
      end
    in
    loop ();
    List.map
      (fun st ->
        match st.phase with Finished r -> r | _ -> assert false)
      streams

  (* Incremental spelling of [serve], for external schedulers (the
     {!Fleet}) that interleave this pool's streams with other pools':
     [start] admits a request, each [step] advances it by at most one
     frame, [result] is [Some] once it finished. *)
  let start = init
  let result st = match st.phase with Finished r -> Some r | _ -> None

  (* Migration hooks ({!Fleet}): a stream abandoned on a dying card is
     re-planned on another card's pool, re-uploading the same policy
     blob it was admitted with. *)

  let session_state st = (st.rules, st.grant)

  let pin st ~rules ~grant =
    st.rules <- rules;
    st.grant <- grant

  let abort t st =
    match st.phase with
    | Finished _ -> ()
    | phase ->
        (* A half-done setup left the channel's card-side session in a
           state no memo describes. *)
        (match phase with
        | Setup _ -> Hashtbl.remove t.memos st.channel
        | _ -> ());
        (if st.channel >= 0 then
           if st.epoch = t.epoch then release t st
           else begin
             (* Stale channel: gone from the card, except the basic
                channel, which always survives (same rule as [step]). *)
             if st.channel = 0 then t.free <- t.free @ [ 0 ];
             st.channel <- -1
           end);
        reset_partial st;
        Obs.Tracer.stop (Obs.tracer t.obs)
          ~args:[ ("outcome", "aborted") ]
          st.span;
        st.phase <- Finished (Error (Protocol "aborted"))
end

(* The executor contract {!Sdds_proxy.Client} dispatches over: admit a
   request, advance it, collect its result. {!Pool} satisfies it
   directly; the single-card and fleet executors adapt to it. *)
module type BACKEND = sig
  type t
  type stream

  val start : t -> Request.t -> stream
  val step : t -> stream -> unit
  val result : stream -> (Pool.served, error) result option
end
