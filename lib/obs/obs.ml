module Clock = struct
  type t = unit -> int64

  let system () = Int64.of_float (Unix.gettimeofday () *. 1e9)

  let manual ?(start_ns = 0L) ?(step_ns = 1000L) () =
    let t = ref start_ns in
    fun () ->
      let v = !t in
      t := Int64.add !t step_ns;
      v
end

(* ------------------------------------------------------------------ *)
(* JSON helpers (no dependency on the analysis writer: obs sits below
   every other library).                                               *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let json_args args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) args)
  ^ "}"

module Metrics = struct
  module Counter = struct
    type t = { mutable n : int; mutable registered : bool }

    let create () = { n = 0; registered = false }
    let inc c = c.n <- c.n + 1
    let add c k = c.n <- c.n + k
    let value c = c.n
  end

  module Gauge = struct
    type t = { mutable v : int; mutable p : int; mutable registered : bool }

    let create () = { v = 0; p = 0; registered = false }

    let set g x =
      g.v <- x;
      if x > g.p then g.p <- x

    let value g = g.v
    let peak g = g.p
  end

  module Histogram = struct
    let max_buckets = 63

    type t = {
      counts : int array;
      mutable total : int;
      mutable sum : int;
      mutable registered : bool;
    }

    let create () =
      { counts = Array.make max_buckets 0; total = 0; sum = 0;
        registered = false }

    (* Smallest [i] with [v < 2^i]: 0 -> 0, 1 -> 1, 255 -> 8, ... *)
    let bucket_of v =
      let rec go i =
        if i >= max_buckets - 1 || v < 1 lsl i then i else go (i + 1)
      in
      go 0

    let observe h v =
      let v = max 0 v in
      let i = bucket_of v in
      h.counts.(i) <- h.counts.(i) + 1;
      h.total <- h.total + 1;
      h.sum <- h.sum + v

    let count h = h.total
    let sum h = h.sum

    let last_nonempty h =
      let rec go i = if i < 0 then -1 else if h.counts.(i) > 0 then i else go (i - 1) in
      go (max_buckets - 1)

    let buckets h =
      let hi = last_nonempty h in
      List.init (hi + 1) (fun i -> ((1 lsl i) - 1, h.counts.(i)))
  end

  (* Per kind: registry-owned cells (get-or-create) and attached
     component cells (multi-bound). The hot path touches only the cell;
     the registry is read at snapshot time. *)
  type t = {
    own_c : (string, Counter.t) Hashtbl.t;
    own_g : (string, Gauge.t) Hashtbl.t;
    own_h : (string, Histogram.t) Hashtbl.t;
    att_c : (string, Counter.t list ref) Hashtbl.t;
    att_g : (string, Gauge.t list ref) Hashtbl.t;
    att_h : (string, Histogram.t list ref) Hashtbl.t;
  }

  let create () =
    {
      own_c = Hashtbl.create 32;
      own_g = Hashtbl.create 16;
      own_h = Hashtbl.create 16;
      att_c = Hashtbl.create 32;
      att_g = Hashtbl.create 16;
      att_h = Hashtbl.create 16;
    }

  let get_or_create tbl make name =
    match Hashtbl.find_opt tbl name with
    | Some c -> c
    | None ->
        let c = make () in
        Hashtbl.add tbl name c;
        c

  let counter t name = get_or_create t.own_c Counter.create name
  let gauge t name = get_or_create t.own_g Gauge.create name
  let histogram t name = get_or_create t.own_h Histogram.create name

  (* O(1): long-lived scopes attach a fresh set of cells per evaluation
     (every [Engine.create]), so a membership scan of the per-name list
     would turn the hot path quadratic over a session. The flag on the
     cell carries the only promise we need — a registered cell is never
     double-counted. *)
  let attach tbl name cell =
    match Hashtbl.find_opt tbl name with
    | Some l -> l := cell :: !l
    | None -> Hashtbl.add tbl name (ref [ cell ])

  let attach_counter t name (c : Counter.t) =
    if not c.Counter.registered then begin
      c.Counter.registered <- true;
      attach t.att_c name c
    end

  let attach_gauge t name (g : Gauge.t) =
    if not g.Gauge.registered then begin
      g.Gauge.registered <- true;
      attach t.att_g name g
    end

  let attach_histogram t name (h : Histogram.t) =
    if not h.Histogram.registered then begin
      h.Histogram.registered <- true;
      attach t.att_h name h
    end

  type value =
    | Counter_v of int
    | Gauge_v of { value : int; peak : int }
    | Histogram_v of { count : int; sum : int; buckets : (int * int) list }

  let cells tbl att name =
    Option.to_list (Hashtbl.find_opt tbl name)
    @ (match Hashtbl.find_opt att name with Some l -> !l | None -> [])

  let counter_value t name =
    List.fold_left (fun a c -> a + Counter.value c) 0 (cells t.own_c t.att_c name)

  let gauge_value t name =
    List.fold_left
      (fun (v, p) g -> (v + Gauge.value g, max p (Gauge.peak g)))
      (0, 0)
      (cells t.own_g t.att_g name)

  let histogram_value t name =
    let hs = cells t.own_h t.att_h name in
    let count = List.fold_left (fun a h -> a + Histogram.count h) 0 hs in
    let sum = List.fold_left (fun a h -> a + Histogram.sum h) 0 hs in
    let hi =
      List.fold_left (fun a h -> max a (Histogram.last_nonempty h)) (-1) hs
    in
    let buckets =
      List.init (hi + 1) (fun i ->
          ( (1 lsl i) - 1,
            List.fold_left (fun a h -> a + h.Histogram.counts.(i)) 0 hs ))
    in
    (count, sum, buckets)

  let names tbl att =
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
    @ Hashtbl.fold (fun k _ acc -> k :: acc) att []

  let snapshot t =
    let c = List.sort_uniq String.compare (names t.own_c t.att_c) in
    let g = List.sort_uniq String.compare (names t.own_g t.att_g) in
    let h = List.sort_uniq String.compare (names t.own_h t.att_h) in
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map (fun n -> (n, Counter_v (counter_value t n))) c
      @ List.map
          (fun n ->
            let value, peak = gauge_value t n in
            (n, Gauge_v { value; peak }))
          g
      @ List.map
          (fun n ->
            let count, sum, buckets = histogram_value t n in
            (n, Histogram_v { count; sum; buckets }))
          h)

  let mangle name =
    "sdds_"
    ^ String.map (fun c -> if c = '.' || c = '-' then '_' else c) name

  let to_prometheus t =
    let buf = Buffer.create 1024 in
    List.iter
      (fun (name, v) ->
        let m = mangle name in
        match v with
        | Counter_v n ->
            Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" m);
            Buffer.add_string buf (Printf.sprintf "%s %d\n" m n)
        | Gauge_v { value; peak } ->
            Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" m);
            Buffer.add_string buf (Printf.sprintf "%s %d\n" m value);
            Buffer.add_string buf (Printf.sprintf "# TYPE %s_peak gauge\n" m);
            Buffer.add_string buf (Printf.sprintf "%s_peak %d\n" m peak)
        | Histogram_v { count; sum; buckets } ->
            Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" m);
            let cum = ref 0 in
            List.iter
              (fun (le, n) ->
                cum := !cum + n;
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" m le !cum))
              buckets;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m count);
            Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" m sum);
            Buffer.add_string buf (Printf.sprintf "%s_count %d\n" m count))
      (snapshot t);
    Buffer.contents buf

  let to_json t =
    let snap = snapshot t in
    let pick f = List.filter_map f snap in
    let counters =
      pick (function
        | n, Counter_v v -> Some (Printf.sprintf "%s:%d" (json_string n) v)
        | _ -> None)
    in
    let gauges =
      pick (function
        | n, Gauge_v { value; peak } ->
            Some
              (Printf.sprintf "%s:{\"value\":%d,\"peak\":%d}" (json_string n)
                 value peak)
        | _ -> None)
    in
    let histograms =
      pick (function
        | n, Histogram_v { count; sum; buckets } ->
            let bs =
              String.concat ","
                (List.map (fun (le, c) -> Printf.sprintf "[%d,%d]" le c) buckets)
            in
            Some
              (Printf.sprintf "%s:{\"count\":%d,\"sum\":%d,\"buckets\":[%s]}"
                 (json_string n) count sum bs)
        | _ -> None)
    in
    Printf.sprintf
      "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}}"
      (String.concat "," counters)
      (String.concat "," gauges)
      (String.concat "," histograms)
end

module Tracer = struct
  type span = int

  let none = 0

  type ev = {
    e_span : bool;
    e_id : int;
    e_parent : int;
    e_name : string;
    e_start : int64;
    e_dur : int64;
    e_args : (string * string) list;
  }

  let dummy_ev =
    { e_span = false; e_id = 0; e_parent = 0; e_name = ""; e_start = 0L;
      e_dur = 0L; e_args = [] }

  type open_span = {
    o_name : string;
    o_parent : int;
    o_start : int64;
    o_args : (string * string) list;
  }

  type t = {
    on : bool;
    clock : Clock.t;
    cap : int;
    sample : int;
    ring : ev array;
    mutable head : int;  (* index of the oldest event *)
    mutable len : int;
    mutable dropped : int;
    mutable next_id : int;
    mutable stack : int list;  (* implicit current-span path *)
    opens : (int, open_span) Hashtbl.t;
    mutable roots_seen : int;  (* root candidates, for sampling *)
  }

  let disabled =
    {
      on = false;
      clock = (fun () -> 0L);
      cap = 0;
      sample = 1;
      ring = [||];
      head = 0;
      len = 0;
      dropped = 0;
      next_id = 1;
      stack = [];
      opens = Hashtbl.create 1;
      roots_seen = 0;
    }

  let create ?(clock = Clock.system) ?(capacity = 65536) ?(sample_1_in = 1) () =
    if capacity < 1 then invalid_arg "Tracer.create: capacity < 1";
    if sample_1_in < 1 then invalid_arg "Tracer.create: sample_1_in < 1";
    {
      on = true;
      clock;
      cap = capacity;
      sample = sample_1_in;
      ring = Array.make capacity dummy_ev;
      head = 0;
      len = 0;
      dropped = 0;
      next_id = 1;
      stack = [];
      opens = Hashtbl.create 64;
      roots_seen = 0;
    }

  let enabled t = t.on
  let now t = if t.on then t.clock () else 0L

  let push t ev =
    if t.len < t.cap then begin
      t.ring.((t.head + t.len) mod t.cap) <- ev;
      t.len <- t.len + 1
    end
    else begin
      t.ring.(t.head) <- ev;
      t.head <- (t.head + 1) mod t.cap;
      t.dropped <- t.dropped + 1
    end

  let current t = match t.stack with s :: _ -> s | [] -> none

  (* Negative ids are sampled-out spans: they propagate through
     [parent]/[current] so a sampled-out root suppresses its whole
     subtree, and every operation on them is a no-op. *)
  let fresh t ~parent name args =
    let id = t.next_id in
    t.next_id <- id + 1;
    Hashtbl.replace t.opens id
      { o_name = name; o_parent = parent; o_start = t.clock (); o_args = args };
    id

  let start t ?parent ?(args = []) name =
    if not t.on then none
    else
      let parent = match parent with Some p -> p | None -> current t in
      if parent < 0 then -1
      else if parent = none then begin
        let n = t.roots_seen in
        t.roots_seen <- n + 1;
        if t.sample > 1 && n mod t.sample <> 0 then -1
        else fresh t ~parent:none name args
      end
      else fresh t ~parent name args

  let stop t ?(args = []) span =
    if t.on && span > 0 then
      match Hashtbl.find_opt t.opens span with
      | None -> ()
      | Some o ->
          Hashtbl.remove t.opens span;
          let stop_ns = t.clock () in
          push t
            {
              e_span = true;
              e_id = span;
              e_parent = o.o_parent;
              e_name = o.o_name;
              e_start = o.o_start;
              e_dur = Int64.sub stop_ns o.o_start;
              e_args = o.o_args @ args;
            }

  let with_parent t span f =
    if not t.on then f ()
    else begin
      t.stack <- span :: t.stack;
      Fun.protect
        ~finally:(fun () ->
          match t.stack with _ :: rest -> t.stack <- rest | [] -> ())
        f
    end

  let with_span t ?args name f =
    if not t.on then f ()
    else begin
      let id = start t ?args name in
      t.stack <- id :: t.stack;
      Fun.protect
        ~finally:(fun () ->
          (match t.stack with _ :: rest -> t.stack <- rest | [] -> ());
          stop t id)
        f
    end

  let instant t ?(args = []) name =
    if t.on then begin
      let parent = current t in
      if parent >= 0 then begin
        let id = t.next_id in
        t.next_id <- id + 1;
        push t
          {
            e_span = false;
            e_id = id;
            e_parent = parent;
            e_name = name;
            e_start = t.clock ();
            e_dur = 0L;
            e_args = args;
          }
      end
    end

  let events t = List.init t.len (fun i -> t.ring.((t.head + i) mod t.cap))
  let recorded t = t.len
  let dropped t = t.dropped

  let root_spans t =
    List.length (List.filter (fun e -> e.e_span && e.e_parent = none) (events t))

  let to_jsonl t =
    let buf = Buffer.create 4096 in
    List.iter
      (fun e ->
        if e.e_span then
          Buffer.add_string buf
            (Printf.sprintf
               "{\"type\":\"span\",\"id\":%d,\"parent\":%d,\"name\":%s,\"ts_ns\":%Ld,\"dur_ns\":%Ld,\"args\":%s}\n"
               e.e_id e.e_parent (json_string e.e_name) e.e_start e.e_dur
               (json_args e.e_args))
        else
          Buffer.add_string buf
            (Printf.sprintf
               "{\"type\":\"instant\",\"id\":%d,\"parent\":%d,\"name\":%s,\"ts_ns\":%Ld,\"args\":%s}\n"
               e.e_id e.e_parent (json_string e.e_name) e.e_start
               (json_args e.e_args)))
      (events t);
    Buffer.contents buf

  (* Deterministic µs rendering: ns / 1000 with a 3-digit fraction, no
     float formatting involved. *)
  let us ns = Printf.sprintf "%Ld.%03Ld" (Int64.div ns 1000L) (Int64.rem ns 1000L)

  let to_chrome t =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    let first = ref true in
    List.iter
      (fun e ->
        if !first then first := false else Buffer.add_char buf ',';
        let args =
          json_args
            (e.e_args
            @ [ ("span_id", string_of_int e.e_id);
                ("parent", string_of_int e.e_parent) ])
        in
        if e.e_span then
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":%s,\"cat\":\"sdds\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%s,\"dur\":%s,\"args\":%s}"
               (json_string e.e_name) (us e.e_start) (us e.e_dur) args)
        else
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":%s,\"cat\":\"sdds\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":%s,\"args\":%s}"
               (json_string e.e_name) (us e.e_start) args))
      (events t);
    Buffer.add_string buf "]}";
    Buffer.contents buf
end

type t = { tracer : Tracer.t; metrics : Metrics.t }

let create ?clock ?(tracing = true) ?capacity ?sample_1_in () =
  {
    tracer =
      (if tracing then Tracer.create ?clock ?capacity ?sample_1_in ()
       else Tracer.disabled);
    metrics = Metrics.create ();
  }

let tracer = function None -> Tracer.disabled | Some o -> o.tracer

let inc o name by =
  match o with
  | None -> ()
  | Some o -> Metrics.Counter.add (Metrics.counter o.metrics name) by

let set_gauge o name v =
  match o with
  | None -> ()
  | Some o -> Metrics.Gauge.set (Metrics.gauge o.metrics name) v

let observe o name v =
  match o with
  | None -> ()
  | Some o -> Metrics.Histogram.observe (Metrics.histogram o.metrics name) v

let attach_counter o name c =
  match o with None -> () | Some o -> Metrics.attach_counter o.metrics name c

let attach_gauge o name g =
  match o with None -> () | Some o -> Metrics.attach_gauge o.metrics name g

let attach_histogram o name h =
  match o with None -> () | Some o -> Metrics.attach_histogram o.metrics name h
