module Clock = struct
  type t = unit -> int64

  let system () = Int64.of_float (Unix.gettimeofday () *. 1e9)

  let manual ?(start_ns = 0L) ?(step_ns = 1000L) () =
    let t = ref start_ns in
    fun () ->
      let v = !t in
      t := Int64.add !t step_ns;
      v
end

(* ------------------------------------------------------------------ *)
(* JSON helpers (no dependency on the analysis writer: obs sits below
   every other library).                                               *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let json_args args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) args)
  ^ "}"

module Metrics = struct
  module Counter = struct
    type t = { mutable n : int; mutable registered : bool }

    let create () = { n = 0; registered = false }
    let inc c = c.n <- c.n + 1
    let add c k = c.n <- c.n + k
    let value c = c.n
  end

  module Gauge = struct
    type t = { mutable v : int; mutable p : int; mutable registered : bool }

    let create () = { v = 0; p = 0; registered = false }

    let set g x =
      g.v <- x;
      if x > g.p then g.p <- x

    let value g = g.v
    let peak g = g.p
  end

  module Histogram = struct
    let max_buckets = 63

    type exemplar = { ex_value : int; ex_trace : int; ex_span : int }

    type t = {
      counts : int array;
      mutable total : int;
      mutable sum : int;
      mutable registered : bool;
      mutable ex : exemplar option array;  (* [||] until the first exemplar *)
    }

    let create () =
      { counts = Array.make max_buckets 0; total = 0; sum = 0;
        registered = false; ex = [||] }

    (* Smallest [i] with [v < 2^i]: 0 -> 0, 1 -> 1, 255 -> 8, ... *)
    let bucket_of v =
      let rec go i =
        if i >= max_buckets - 1 || v < 1 lsl i then i else go (i + 1)
      in
      go 0

    let observe h v =
      let v = max 0 v in
      let i = bucket_of v in
      h.counts.(i) <- h.counts.(i) + 1;
      h.total <- h.total + 1;
      h.sum <- h.sum + v

    (* Observe [v] and make (trace, span) the bucket's exemplar when it is
       the largest value the bucket has seen. Returns [true] exactly when
       the exemplar was installed or replaced, so the caller can pin the
       owning trace against tail-sampling. *)
    let observe_exemplar h ~trace ~span v =
      let v = max 0 v in
      let i = bucket_of v in
      h.counts.(i) <- h.counts.(i) + 1;
      h.total <- h.total + 1;
      h.sum <- h.sum + v;
      if Array.length h.ex = 0 then h.ex <- Array.make max_buckets None;
      match h.ex.(i) with
      | Some e when e.ex_value >= v -> false
      | _ ->
          h.ex.(i) <- Some { ex_value = v; ex_trace = trace; ex_span = span };
          true

    let count h = h.total
    let sum h = h.sum

    let last_nonempty h =
      let rec go i = if i < 0 then -1 else if h.counts.(i) > 0 then i else go (i - 1) in
      go (max_buckets - 1)

    let buckets h =
      let hi = last_nonempty h in
      List.init (hi + 1) (fun i -> ((1 lsl i) - 1, h.counts.(i)))

    let exemplars h =
      if Array.length h.ex = 0 then []
      else
        List.filter_map
          (fun i ->
            match h.ex.(i) with
            | Some e -> Some ((1 lsl i) - 1, e)
            | None -> None)
          (List.init max_buckets Fun.id)
  end

  (* Per kind: registry-owned cells (get-or-create) and attached
     component cells (multi-bound). The hot path touches only the cell;
     the registry is read at snapshot time. *)
  type t = {
    own_c : (string, Counter.t) Hashtbl.t;
    own_g : (string, Gauge.t) Hashtbl.t;
    own_h : (string, Histogram.t) Hashtbl.t;
    att_c : (string, Counter.t list ref) Hashtbl.t;
    att_g : (string, Gauge.t list ref) Hashtbl.t;
    att_h : (string, Histogram.t list ref) Hashtbl.t;
  }

  let create () =
    {
      own_c = Hashtbl.create 32;
      own_g = Hashtbl.create 16;
      own_h = Hashtbl.create 16;
      att_c = Hashtbl.create 32;
      att_g = Hashtbl.create 16;
      att_h = Hashtbl.create 16;
    }

  let get_or_create tbl make name =
    match Hashtbl.find_opt tbl name with
    | Some c -> c
    | None ->
        let c = make () in
        Hashtbl.add tbl name c;
        c

  let counter t name = get_or_create t.own_c Counter.create name
  let gauge t name = get_or_create t.own_g Gauge.create name
  let histogram t name = get_or_create t.own_h Histogram.create name

  (* O(1): long-lived scopes attach a fresh set of cells per evaluation
     (every [Engine.create]), so a membership scan of the per-name list
     would turn the hot path quadratic over a session. The flag on the
     cell carries the only promise we need — a registered cell is never
     double-counted. *)
  let attach tbl name cell =
    match Hashtbl.find_opt tbl name with
    | Some l -> l := cell :: !l
    | None -> Hashtbl.add tbl name (ref [ cell ])

  let attach_counter t name (c : Counter.t) =
    if not c.Counter.registered then begin
      c.Counter.registered <- true;
      attach t.att_c name c
    end

  let attach_gauge t name (g : Gauge.t) =
    if not g.Gauge.registered then begin
      g.Gauge.registered <- true;
      attach t.att_g name g
    end

  let attach_histogram t name (h : Histogram.t) =
    if not h.Histogram.registered then begin
      h.Histogram.registered <- true;
      attach t.att_h name h
    end

  type value =
    | Counter_v of int
    | Gauge_v of { value : int; peak : int }
    | Histogram_v of {
        count : int;
        sum : int;
        buckets : (int * int) list;
        exemplars : (int * Histogram.exemplar) list;
      }

  type histogram_snapshot = {
    h_count : int;
    h_sum : int;
    h_buckets : (int * int) list;
    h_exemplars : (int * Histogram.exemplar) list;
  }

  let cells tbl att name =
    Option.to_list (Hashtbl.find_opt tbl name)
    @ (match Hashtbl.find_opt att name with Some l -> !l | None -> [])

  let counter_value t name =
    List.fold_left (fun a c -> a + Counter.value c) 0 (cells t.own_c t.att_c name)

  let gauge_value t name =
    List.fold_left
      (fun (v, p) g -> (v + Gauge.value g, max p (Gauge.peak g)))
      (0, 0)
      (cells t.own_g t.att_g name)

  let histogram_snapshot t name =
    let hs = cells t.own_h t.att_h name in
    let h_count = List.fold_left (fun a h -> a + Histogram.count h) 0 hs in
    let h_sum = List.fold_left (fun a h -> a + Histogram.sum h) 0 hs in
    let hi =
      List.fold_left (fun a h -> max a (Histogram.last_nonempty h)) (-1) hs
    in
    let h_buckets =
      List.init (hi + 1) (fun i ->
          ( (1 lsl i) - 1,
            List.fold_left (fun a h -> a + h.Histogram.counts.(i)) 0 hs ))
    in
    (* Max-value exemplar per bucket across all cells bound to the name. *)
    let h_exemplars =
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (List.fold_left
           (fun acc (ub, e) ->
             match List.assoc_opt ub acc with
             | Some e' when e'.Histogram.ex_value >= e.Histogram.ex_value ->
                 acc
             | _ -> (ub, e) :: List.remove_assoc ub acc)
           []
           (List.concat_map Histogram.exemplars hs))
    in
    { h_count; h_sum; h_buckets; h_exemplars }

  let names tbl att =
    Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
    @ Hashtbl.fold (fun k _ acc -> k :: acc) att []

  let snapshot t =
    let c = List.sort_uniq String.compare (names t.own_c t.att_c) in
    let g = List.sort_uniq String.compare (names t.own_g t.att_g) in
    let h = List.sort_uniq String.compare (names t.own_h t.att_h) in
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (List.map (fun n -> (n, Counter_v (counter_value t n))) c
      @ List.map
          (fun n ->
            let value, peak = gauge_value t n in
            (n, Gauge_v { value; peak }))
          g
      @ List.map
          (fun n ->
            let s = histogram_snapshot t n in
            ( n,
              Histogram_v
                { count = s.h_count; sum = s.h_sum; buckets = s.h_buckets;
                  exemplars = s.h_exemplars } ))
          h)

  let mangle name =
    "sdds_"
    ^ String.map (fun c -> if c = '.' || c = '-' then '_' else c) name

  let to_prometheus t =
    let buf = Buffer.create 1024 in
    List.iter
      (fun (name, v) ->
        let m = mangle name in
        match v with
        | Counter_v n ->
            Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" m);
            Buffer.add_string buf (Printf.sprintf "%s %d\n" m n)
        | Gauge_v { value; peak } ->
            Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" m);
            Buffer.add_string buf (Printf.sprintf "%s %d\n" m value);
            Buffer.add_string buf (Printf.sprintf "# TYPE %s_peak gauge\n" m);
            Buffer.add_string buf (Printf.sprintf "%s_peak %d\n" m peak)
        | Histogram_v { count; sum; buckets; exemplars } ->
            Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" m);
            let cum = ref 0 in
            List.iter
              (fun (le, n) ->
                cum := !cum + n;
                let ex =
                  (* OpenMetrics exemplar: jump from the bucket to the
                     retained trace that produced its max observation. *)
                  match List.assoc_opt le exemplars with
                  | Some e ->
                      Printf.sprintf
                        " # {trace_id=\"%d\",span_id=\"%d\"} %d"
                        e.Histogram.ex_trace e.Histogram.ex_span
                        e.Histogram.ex_value
                  | None -> ""
                in
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket{le=\"%d\"} %d%s\n" m le !cum ex))
              buckets;
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m count);
            Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" m sum);
            Buffer.add_string buf (Printf.sprintf "%s_count %d\n" m count))
      (snapshot t);
    Buffer.contents buf

  let to_json ?(extra = []) t =
    let snap = snapshot t in
    let pick f = List.filter_map f snap in
    let counters =
      pick (function
        | n, Counter_v v -> Some (Printf.sprintf "%s:%d" (json_string n) v)
        | _ -> None)
    in
    let gauges =
      pick (function
        | n, Gauge_v { value; peak } ->
            Some
              (Printf.sprintf "%s:{\"value\":%d,\"peak\":%d}" (json_string n)
                 value peak)
        | _ -> None)
    in
    let histograms =
      pick (function
        | n, Histogram_v { count; sum; buckets; exemplars } ->
            let bs =
              String.concat ","
                (List.map (fun (le, c) -> Printf.sprintf "[%d,%d]" le c) buckets)
            in
            let exs =
              if exemplars = [] then ""
              else
                Printf.sprintf ",\"exemplars\":[%s]"
                  (String.concat ","
                     (List.map
                        (fun (le, e) ->
                          Printf.sprintf "[%d,%d,%d,%d]" le
                            e.Histogram.ex_value e.Histogram.ex_trace
                            e.Histogram.ex_span)
                        exemplars))
            in
            Some
              (Printf.sprintf "%s:{\"count\":%d,\"sum\":%d,\"buckets\":[%s]%s}"
                 (json_string n) count sum bs exs)
        | _ -> None)
    in
    Printf.sprintf
      "{\"counters\":{%s},\"gauges\":{%s},\"histograms\":{%s}%s}"
      (String.concat "," counters)
      (String.concat "," gauges)
      (String.concat "," histograms)
      (String.concat ""
         (List.map
            (fun (k, raw) -> Printf.sprintf ",%s:%s" (json_string k) raw)
            extra))
end

(* ------------------------------------------------------------------ *)
(* Tail-sampling retention policies.                                   *)
(* ------------------------------------------------------------------ *)

module Policy = struct
  type view = {
    v_span : bool;
    v_name : string;
    v_dur_ns : int64;
    v_args : (string * string) list;
  }

  type rule = {
    rule_name : string;
    rule_matches : root:view -> view list -> bool;
  }

  let rule ~name f = { rule_name = name; rule_matches = f }
  let name r = r.rule_name
  let matches r ~root evs = r.rule_matches ~root evs

  let error_outcome =
    rule ~name:"error" (fun ~root evs ->
        let bad v =
          match List.assoc_opt "outcome" v.v_args with
          | Some s -> s <> "ok"
          | None -> false
        in
        bad root || List.exists (fun v -> v.v_span && bad v) evs)

  let latency_at_least ns =
    rule ~name:"latency" (fun ~root _ -> Int64.compare root.v_dur_ns ns >= 0)

  let fault_instant =
    rule ~name:"fault" (fun ~root:_ evs ->
        List.exists (fun v -> (not v.v_span) && v.v_name = "fault") evs)

  let span_named n =
    rule
      ~name:("span:" ^ n)
      (fun ~root evs ->
        root.v_name = n || List.exists (fun v -> v.v_span && v.v_name = n) evs)

  type t = { rules : rule list; baseline_1_in : int }

  let v ?(baseline_1_in = 0) rules =
    if baseline_1_in < 0 then invalid_arg "Policy.v: baseline_1_in < 0";
    { rules; baseline_1_in }

  let default ?(baseline_1_in = 8) ?latency_ns () =
    v ~baseline_1_in
      (error_outcome
       :: (match latency_ns with
          | Some ns -> [ latency_at_least ns ]
          | None -> [])
      @ [ fault_instant; span_named "fleet.migrate" ])
end

module Tracer = struct
  type span = int

  let none = 0

  type ev = {
    e_span : bool;
    e_id : int;
    e_parent : int;
    e_name : string;
    e_start : int64;
    e_dur : int64;
    e_args : (string * string) list;
  }

  let dummy_ev =
    { e_span = false; e_id = 0; e_parent = 0; e_name = ""; e_start = 0L;
      e_dur = 0L; e_args = [] }

  type open_span = {
    o_name : string;
    o_parent : int;
    o_root : int;  (* root ancestor; the span's own id for roots *)
    o_start : int64;
    o_args : (string * string) list;
  }

  type mode = Head | Tail of Policy.t

  type t = {
    on : bool;
    clock : Clock.t;
    cap : int;
    sample : int;
    mode : mode;
    ring : ev array;
    mutable head : int;  (* index of the oldest event *)
    mutable len : int;
    mutable evicted : int;
    mutable next_id : int;
    mutable stack : int list;  (* implicit current-span path *)
    opens : (int, open_span) Hashtbl.t;
    mutable roots_seen : int;  (* root candidates, for head sampling *)
    (* Tail mode: finished descendants buffered per open root until the
       root finishes and the policy decides. *)
    pending : (int, ev list ref) Hashtbl.t;
    pinned : (int, unit) Hashtbl.t;  (* roots forced kept by exemplars *)
    mutable roots_done : int;  (* completed roots, for the tail baseline *)
    mutable dropped_trees : int;
    mutable kept_trees : int;
    on_keep : string -> unit;
    on_drop : unit -> unit;
    on_evict : unit -> unit;
  }

  let nop_keep (_ : string) = ()
  let nop () = ()

  let disabled =
    {
      on = false;
      clock = (fun () -> 0L);
      cap = 0;
      sample = 1;
      mode = Head;
      ring = [||];
      head = 0;
      len = 0;
      evicted = 0;
      next_id = 1;
      stack = [];
      opens = Hashtbl.create 1;
      roots_seen = 0;
      pending = Hashtbl.create 1;
      pinned = Hashtbl.create 1;
      roots_done = 0;
      dropped_trees = 0;
      kept_trees = 0;
      on_keep = nop_keep;
      on_drop = nop;
      on_evict = nop;
    }

  let create ?(clock = Clock.system) ?(capacity = 65536) ?sample_1_in ?policy
      ?(on_keep = nop_keep) ?(on_drop = nop) ?(on_evict = nop) () =
    (match (sample_1_in, policy) with
    | Some _, Some _ ->
        invalid_arg "Tracer.create: sample_1_in and policy are mutually exclusive"
    | _ -> ());
    let sample = Option.value ~default:1 sample_1_in in
    if capacity < 1 then invalid_arg "Tracer.create: capacity < 1";
    if sample < 1 then invalid_arg "Tracer.create: sample_1_in < 1";
    {
      on = true;
      clock;
      cap = capacity;
      sample;
      mode = (match policy with Some p -> Tail p | None -> Head);
      ring = Array.make capacity dummy_ev;
      head = 0;
      len = 0;
      evicted = 0;
      next_id = 1;
      stack = [];
      opens = Hashtbl.create 64;
      roots_seen = 0;
      pending = Hashtbl.create 16;
      pinned = Hashtbl.create 16;
      roots_done = 0;
      dropped_trees = 0;
      kept_trees = 0;
      on_keep;
      on_drop;
      on_evict;
    }

  let enabled t = t.on
  let now t = if t.on then t.clock () else 0L

  let push t ev =
    if t.len < t.cap then begin
      t.ring.((t.head + t.len) mod t.cap) <- ev;
      t.len <- t.len + 1
    end
    else begin
      t.ring.(t.head) <- ev;
      t.head <- (t.head + 1) mod t.cap;
      t.evicted <- t.evicted + 1;
      t.on_evict ()
    end

  let current t = match t.stack with s :: _ -> s | [] -> none

  (* Negative ids are head-sampled-out spans: they propagate through
     [parent]/[current] so a sampled-out root suppresses its whole
     subtree, and every operation on them is a no-op. Tail mode never
     produces them — every span records and the decision happens when
     the root stops. *)
  let fresh t ~parent name args =
    let id = t.next_id in
    t.next_id <- id + 1;
    let root =
      if parent = none then id
      else
        match Hashtbl.find_opt t.opens parent with
        | Some o -> o.o_root
        | None -> none
    in
    Hashtbl.replace t.opens id
      { o_name = name; o_parent = parent; o_root = root; o_start = t.clock ();
        o_args = args };
    (match t.mode with
    | Tail _ when root = id -> Hashtbl.replace t.pending id (ref [])
    | _ -> ());
    id

  let start t ?parent ?(args = []) name =
    if not t.on then none
    else
      let parent = match parent with Some p -> p | None -> current t in
      if parent < 0 then -1
      else if parent = none then begin
        match t.mode with
        | Tail _ -> fresh t ~parent:none name args
        | Head ->
            let n = t.roots_seen in
            t.roots_seen <- n + 1;
            if t.sample > 1 && n mod t.sample <> 0 then begin
              t.dropped_trees <- t.dropped_trees + 1;
              t.on_drop ();
              -1
            end
            else begin
              if t.sample > 1 then begin
                t.kept_trees <- t.kept_trees + 1;
                t.on_keep "head"
              end;
              fresh t ~parent:none name args
            end
      end
      else fresh t ~parent name args

  let view_of ev =
    { Policy.v_span = ev.e_span; v_name = ev.e_name; v_dur_ns = ev.e_dur;
      v_args = ev.e_args }

  let finish_root t policy root_ev =
    let root = root_ev.e_id in
    let buf =
      match Hashtbl.find_opt t.pending root with
      | Some r -> List.rev !r
      | None -> []
    in
    Hashtbl.remove t.pending root;
    let was_pinned = Hashtbl.mem t.pinned root in
    Hashtbl.remove t.pinned root;
    let n = t.roots_done in
    t.roots_done <- n + 1;
    let reason =
      if was_pinned then Some "exemplar"
      else
        let root_v = view_of root_ev in
        let evs_v = List.map view_of buf in
        match
          List.find_opt
            (fun r -> Policy.matches r ~root:root_v evs_v)
            policy.Policy.rules
        with
        | Some r -> Some (Policy.name r)
        | None ->
            if
              policy.Policy.baseline_1_in > 0
              && n mod policy.Policy.baseline_1_in = 0
            then Some "baseline"
            else None
    in
    match reason with
    | Some why ->
        t.kept_trees <- t.kept_trees + 1;
        List.iter (push t) buf;
        push t
          { root_ev with e_args = root_ev.e_args @ [ ("sampled.reason", why) ] };
        t.on_keep why
    | None ->
        t.dropped_trees <- t.dropped_trees + 1;
        t.on_drop ()

  let stop t ?(args = []) span =
    if t.on && span > 0 then
      match Hashtbl.find_opt t.opens span with
      | None -> ()
      | Some o -> (
          Hashtbl.remove t.opens span;
          let stop_ns = t.clock () in
          let ev =
            {
              e_span = true;
              e_id = span;
              e_parent = o.o_parent;
              e_name = o.o_name;
              e_start = o.o_start;
              e_dur = Int64.sub stop_ns o.o_start;
              e_args = o.o_args @ args;
            }
          in
          match t.mode with
          | Head -> push t ev
          | Tail policy ->
              if o.o_root = span then finish_root t policy ev
              else (
                match Hashtbl.find_opt t.pending o.o_root with
                | Some r -> r := ev :: !r
                | None ->
                    (* Root already flushed (or unknown): commit directly
                       rather than leak. *)
                    push t ev))

  let with_parent t span f =
    if not t.on then f ()
    else begin
      t.stack <- span :: t.stack;
      Fun.protect
        ~finally:(fun () ->
          match t.stack with _ :: rest -> t.stack <- rest | [] -> ())
        f
    end

  let with_span t ?args name f =
    if not t.on then f ()
    else begin
      let id = start t ?args name in
      t.stack <- id :: t.stack;
      Fun.protect
        ~finally:(fun () ->
          (match t.stack with _ :: rest -> t.stack <- rest | [] -> ());
          stop t id)
        f
    end

  let instant t ?(args = []) name =
    if t.on then begin
      let parent = current t in
      if parent >= 0 then begin
        let id = t.next_id in
        t.next_id <- id + 1;
        let ev =
          {
            e_span = false;
            e_id = id;
            e_parent = parent;
            e_name = name;
            e_start = t.clock ();
            e_dur = 0L;
            e_args = args;
          }
        in
        match t.mode with
        | Head -> push t ev
        | Tail _ -> (
            let root =
              if parent = none then none
              else
                match Hashtbl.find_opt t.opens parent with
                | Some o -> o.o_root
                | None -> none
            in
            match Hashtbl.find_opt t.pending root with
            | Some r -> r := ev :: !r
            | None -> push t ev)
      end
    end

  let root_of t span =
    if (not t.on) || span <= 0 then none
    else
      match Hashtbl.find_opt t.opens span with
      | Some o -> o.o_root
      | None -> none

  let pin t span =
    if t.on && span > 0 then
      match t.mode with
      | Head -> ()
      | Tail _ -> (
          match Hashtbl.find_opt t.opens span with
          | Some o ->
              if Hashtbl.mem t.pending o.o_root then
                Hashtbl.replace t.pinned o.o_root ()
          | None -> ())

  let events t = List.init t.len (fun i -> t.ring.((t.head + i) mod t.cap))
  let recorded t = t.len
  let evicted t = t.evicted
  let dropped_trees t = t.dropped_trees
  let kept_trees t = t.kept_trees
  let tail_mode t = match t.mode with Tail _ -> true | Head -> false

  let root_spans t =
    List.length (List.filter (fun e -> e.e_span && e.e_parent = none) (events t))

  (* Retention accounting belongs in the export: a reader of a sampled
     trace must be able to tell "nothing else happened" from "the rest
     was dropped". Only emitted once there is something to account for
     (tail mode, evictions, or head-sampled drops) so full traces stay
     byte-compatible with pre-sampling exports. *)
  let meta_wanted t =
    tail_mode t || t.evicted > 0 || t.dropped_trees > 0

  let meta_fields t =
    Printf.sprintf
      "\"recorded\":%d,\"evicted\":%d,\"kept_trees\":%d,\"dropped_trees\":%d"
      t.len t.evicted t.kept_trees t.dropped_trees

  let to_jsonl t =
    let buf = Buffer.create 4096 in
    if meta_wanted t then
      Buffer.add_string buf
        (Printf.sprintf "{\"type\":\"meta\",%s}\n" (meta_fields t));
    List.iter
      (fun e ->
        if e.e_span then
          Buffer.add_string buf
            (Printf.sprintf
               "{\"type\":\"span\",\"id\":%d,\"parent\":%d,\"name\":%s,\"ts_ns\":%Ld,\"dur_ns\":%Ld,\"args\":%s}\n"
               e.e_id e.e_parent (json_string e.e_name) e.e_start e.e_dur
               (json_args e.e_args))
        else
          Buffer.add_string buf
            (Printf.sprintf
               "{\"type\":\"instant\",\"id\":%d,\"parent\":%d,\"name\":%s,\"ts_ns\":%Ld,\"args\":%s}\n"
               e.e_id e.e_parent (json_string e.e_name) e.e_start
               (json_args e.e_args)))
      (events t);
    Buffer.contents buf

  (* Deterministic µs rendering: ns / 1000 with a 3-digit fraction, no
     float formatting involved. *)
  let us ns = Printf.sprintf "%Ld.%03Ld" (Int64.div ns 1000L) (Int64.rem ns 1000L)

  let to_chrome t =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",";
    if meta_wanted t then
      Buffer.add_string buf
        (Printf.sprintf "\"metadata\":{%s}," (meta_fields t));
    Buffer.add_string buf "\"traceEvents\":[";
    let first = ref true in
    List.iter
      (fun e ->
        if !first then first := false else Buffer.add_char buf ',';
        let args =
          json_args
            (e.e_args
            @ [ ("span_id", string_of_int e.e_id);
                ("parent", string_of_int e.e_parent) ])
        in
        if e.e_span then
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":%s,\"cat\":\"sdds\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%s,\"dur\":%s,\"args\":%s}"
               (json_string e.e_name) (us e.e_start) (us e.e_dur) args)
        else
          Buffer.add_string buf
            (Printf.sprintf
               "{\"name\":%s,\"cat\":\"sdds\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":1,\"ts\":%s,\"args\":%s}"
               (json_string e.e_name) (us e.e_start) args))
      (events t);
    Buffer.add_string buf "]}";
    Buffer.contents buf
end

(* ------------------------------------------------------------------ *)
(* SLO engine: windowed objectives and multi-window burn rates over
   registry cells, on the injected clock.                              *)
(* ------------------------------------------------------------------ *)

module Slo = struct
  type objective =
    | Availability of { good : string; total : string }
    | Latency of { histogram : string; threshold : int }

  type verdict = {
    name : string;
    target_pct : float;
    burn_threshold : float;
    good : int;
    total : int;
    current_pct : float;
    fast_burn : float;
    slow_burn : float;
    breach : bool;
  }

  type tracked = {
    t_name : string;
    t_obj : objective;
    t_target : float;
    t_fast : int64;
    t_slow : int64;
    t_burn : float;
    (* (at, good, total) cumulative samples, newest first; pruned to the
       slow window plus one base sample strictly older. *)
    mutable t_samples : (int64 * int * int) list;
  }

  type t = {
    s_metrics : Metrics.t;
    s_clock : Clock.t option;
    mutable s_objs : tracked list;
  }

  let create ?clock metrics = { s_metrics = metrics; s_clock = clock; s_objs = [] }

  let register t ~name ?(target_pct = 99.0) ?(fast_ns = 300_000_000_000L)
      ?(slow_ns = 3_600_000_000_000L) ?(burn_threshold = 14.4) obj =
    if target_pct <= 0.0 || target_pct >= 100.0 then
      invalid_arg "Slo.register: target_pct outside (0, 100)";
    if Int64.compare fast_ns slow_ns >= 0 then
      invalid_arg "Slo.register: fast_ns must be < slow_ns";
    if List.exists (fun o -> o.t_name = name) t.s_objs then
      invalid_arg ("Slo.register: duplicate objective " ^ name);
    t.s_objs <-
      t.s_objs
      @ [ { t_name = name; t_obj = obj; t_target = target_pct; t_fast = fast_ns;
            t_slow = slow_ns; t_burn = burn_threshold; t_samples = [] } ]

  let read t tr =
    match tr.t_obj with
    | Availability { good; total } ->
        ( Metrics.counter_value t.s_metrics good,
          Metrics.counter_value t.s_metrics total )
    | Latency { histogram; threshold } ->
        let s = Metrics.histogram_snapshot t.s_metrics histogram in
        let good =
          List.fold_left
            (fun a (ub, n) -> if ub <= threshold then a + n else a)
            0 s.Metrics.h_buckets
        in
        (good, s.Metrics.h_count)

  let now_of t = function
    | Some n -> n
    | None -> (
        match t.s_clock with
        | Some c -> c ()
        | None -> invalid_arg "Slo: no clock injected; pass ~now")

  let tick ?now t =
    let at = now_of t now in
    List.iter
      (fun tr ->
        let good, total = read t tr in
        let cutoff = Int64.sub at tr.t_slow in
        let rec keep = function
          | [] -> []
          | ((ts, _, _) as s) :: rest ->
              if Int64.compare ts cutoff >= 0 then s :: keep rest else [ s ]
        in
        tr.t_samples <- (at, good, total) :: keep tr.t_samples)
      t.s_objs

  (* Cumulative (good, total) at the newest sample not after [cutoff];
     (0, 0) when the window opens before the first sample. *)
  let base_at samples cutoff =
    let rec go = function
      | [] -> (0, 0)
      | (ts, g, n) :: rest ->
          if Int64.compare ts cutoff <= 0 then (g, n) else go rest
    in
    go samples

  let evaluate ?now t =
    let at = now_of t now in
    List.map
      (fun tr ->
        let good, total = read t tr in
        let over w =
          let g0, n0 = base_at tr.t_samples (Int64.sub at w) in
          let dg = good - g0 and dn = total - n0 in
          if dn <= 0 then (0.0, 100.0)
          else
            let bad = float_of_int (dn - dg) /. float_of_int dn in
            let budget = (100.0 -. tr.t_target) /. 100.0 in
            (bad /. budget, 100.0 *. float_of_int dg /. float_of_int dn)
        in
        let fast_burn, _ = over tr.t_fast in
        let slow_burn, current_pct = over tr.t_slow in
        {
          name = tr.t_name;
          target_pct = tr.t_target;
          burn_threshold = tr.t_burn;
          good;
          total;
          current_pct;
          fast_burn;
          slow_burn;
          breach = fast_burn >= tr.t_burn && slow_burn >= tr.t_burn;
        })
      t.s_objs

  let verdict_json v =
    Printf.sprintf
      "{\"name\":%s,\"target_pct\":%.3f,\"current_pct\":%.3f,\"fast_burn\":%.3f,\"slow_burn\":%.3f,\"burn_threshold\":%.3f,\"good\":%d,\"total\":%d,\"breach\":%b}"
      (json_string v.name) v.target_pct v.current_pct v.fast_burn v.slow_burn
      v.burn_threshold v.good v.total v.breach

  let to_json ?now t =
    "[" ^ String.concat "," (List.map verdict_json (evaluate ?now t)) ^ "]"
end

type t = { tracer : Tracer.t; metrics : Metrics.t }

let create ?clock ?(tracing = true) ?capacity ?sample_1_in ?policy () =
  let metrics = Metrics.create () in
  let tracer =
    if tracing then
      Tracer.create ?clock ?capacity ?sample_1_in ?policy
        ~on_keep:(fun _ ->
          Metrics.Counter.inc (Metrics.counter metrics "trace.retained"))
        ~on_drop:(fun () ->
          Metrics.Counter.inc (Metrics.counter metrics "trace.dropped"))
        ~on_evict:(fun () ->
          Metrics.Counter.inc (Metrics.counter metrics "trace.evicted"))
        ()
    else Tracer.disabled
  in
  { tracer; metrics }

let tracer = function None -> Tracer.disabled | Some o -> o.tracer

let inc o name by =
  match o with
  | None -> ()
  | Some o -> Metrics.Counter.add (Metrics.counter o.metrics name) by

let set_gauge o name v =
  match o with
  | None -> ()
  | Some o -> Metrics.Gauge.set (Metrics.gauge o.metrics name) v

let observe ?span o name v =
  match o with
  | None -> ()
  | Some o ->
      let h = Metrics.histogram o.metrics name in
      let sp =
        match span with Some s -> s | None -> Tracer.current o.tracer
      in
      if sp > 0 then begin
        let root = Tracer.root_of o.tracer sp in
        if root > 0 then begin
          (* A new bucket max pins the owning trace (tail mode), so
             every exported exemplar resolves to a retained trace. *)
          if Metrics.Histogram.observe_exemplar h ~trace:root ~span:sp v then
            Tracer.pin o.tracer root
        end
        else Metrics.Histogram.observe h v
      end
      else Metrics.Histogram.observe h v

let attach_counter o name c =
  match o with None -> () | Some o -> Metrics.attach_counter o.metrics name c

let attach_gauge o name g =
  match o with None -> () | Some o -> Metrics.attach_gauge o.metrics name g

let attach_histogram o name h =
  match o with None -> () | Some o -> Metrics.attach_histogram o.metrics name h
