(** End-to-end observability: a span tracer and a metrics registry shared
    by every layer of the SOE pipeline.

    The paper's argument is quantitative — a ~1 KB-RAM card over a 2 KB/s
    link only works because evaluation streams and the skip index prunes —
    so the pipeline needs one place that can answer "where did this
    request's bytes and milliseconds go" across host, link and card. This
    module provides it without coupling the layers to each other:

    - {!Tracer} records parent/child {e spans} (and point {e instants})
      into a bounded ring buffer, with an injected clock so traces are
      deterministic under test, and exports both JSONL and the Chrome
      [trace_event] format (opens directly in [about:tracing] / Perfetto).
      Sampling is either {e head} (1-in-N decided when the root opens) or
      {e tail}: whole span trees are buffered until the root finishes and
      a {!Policy} decides keep/drop — so the slow, faulted and migrated
      requests that matter are retained even under a tight storage budget;
    - {!Metrics} is a registry of named counters, gauges and log-bucketed
      histograms with a Prometheus-style text exporter and a JSON
      snapshot. Histogram buckets optionally carry {e exemplars} — the
      (trace id, span id, value) of the max observation per bucket — so a
      p99 bucket links straight to the retained trace that produced it.
      Components keep their own increment {e cells} (a plain mutable int —
      the hot path stays a single store) and {e attach} them to the
      registry, which aggregates at snapshot time; the legacy stats
      records ([Engine.stats], [Card.cache_stats], [Pool.served]) are thin
      views over the same cells, so there is one accounting source of
      truth;
    - {!Slo} computes windowed availability / latency objectives and
      multi-window burn rates over registry cells, on the injected clock.

    Everything takes an [Obs.t option]: [None] is the zero-overhead path —
    no registry, a disabled tracer, and observable behaviour byte-identical
    to an uninstrumented run (the qcheck tests enforce this). *)

(** Injected time source, in nanoseconds. *)
module Clock : sig
  type t = unit -> int64

  val system : t
  (** Wall clock ([Unix.gettimeofday]), in nanoseconds. *)

  val manual : ?start_ns:int64 -> ?step_ns:int64 -> unit -> t
  (** A deterministic clock for tests: the first call returns [start_ns]
      (default 0) and every call advances by [step_ns] (default 1000).
      Fixed clock + fixed seeds ⇒ byte-identical trace exports. *)
end

(** Named counters, gauges and log₂-bucketed histograms. *)
module Metrics : sig
  (** A monotonic event count. The cell is what instrumented code holds
      and increments directly; registration is separate ({!attach_counter})
      so the hot path never touches a hash table. *)
  module Counter : sig
    type t

    val create : unit -> t
    val inc : t -> unit
    val add : t -> int -> unit
    val value : t -> int
  end

  (** A sampled level (live tokens, stack depth, resident bytes): tracks
      the current value and the peak ever set. *)
  module Gauge : sig
    type t

    val create : unit -> t
    val set : t -> int -> unit
    val value : t -> int
    val peak : t -> int
  end

  (** A distribution over non-negative integers in log₂ buckets: bucket
      [i] counts observations [v] with [v < 2{^i}] (and not in a lower
      bucket), so 63 buckets cover the whole [int] range — latencies and
      byte sizes at any scale, in constant memory. *)
  module Histogram : sig
    type t

    type exemplar = { ex_value : int; ex_trace : int; ex_span : int }
    (** The max-value observation a bucket has seen, tagged with the
        trace (root span id) and span that produced it. *)

    val create : unit -> t
    val observe : t -> int -> unit
    (** Negative values are clamped to 0. *)

    val observe_exemplar : t -> trace:int -> span:int -> int -> bool
    (** Like {!observe}, but also installs (trace, span, value) as the
        bucket's exemplar when the value is the largest the bucket has
        seen. Returns [true] exactly when the exemplar was installed, so
        the caller can pin the owning trace against tail sampling.
        Exemplar storage is allocated lazily — histograms that never see
        one pay nothing. *)

    val count : t -> int
    val sum : t -> int

    val buckets : t -> (int * int) list
    (** Non-cumulative [(upper_bound, count)] pairs up to the highest
        non-empty bucket; bucket [i] reports upper bound [2{^i} - 1]. *)

    val exemplars : t -> (int * exemplar) list
    (** [(upper_bound, exemplar)] for every bucket holding one. *)
  end

  type t
  (** A registry: a mutable map from metric names (dotted lowercase, e.g.
      ["engine.token_visits"]) to cells. A name aggregates {e all} cells
      registered under it — the registry-owned cell created by
      {!counter}/{!gauge}/{!histogram} plus every attached component
      cell — at snapshot time: counters and histogram buckets sum, gauges
      sum their current values and take the max of their peaks. *)

  val create : unit -> t

  val counter : t -> string -> Counter.t
  (** Get or create the registry-owned cell for this name. *)

  val gauge : t -> string -> Gauge.t
  val histogram : t -> string -> Histogram.t

  val attach_counter : t -> string -> Counter.t -> unit
  (** Register a component-owned cell under a name. The component keeps
      incrementing its own cell; the registry only reads it at snapshot
      time. O(1): attaching a cell that is already registered (anywhere)
      is a no-op, so per-evaluation components can attach unconditionally
      without scanning. *)

  val attach_gauge : t -> string -> Gauge.t -> unit
  val attach_histogram : t -> string -> Histogram.t -> unit

  type value =
    | Counter_v of int
    | Gauge_v of { value : int; peak : int }
    | Histogram_v of {
        count : int;
        sum : int;
        buckets : (int * int) list;
        exemplars : (int * Histogram.exemplar) list;
      }

  type histogram_snapshot = {
    h_count : int;
    h_sum : int;
    h_buckets : (int * int) list;
    h_exemplars : (int * Histogram.exemplar) list;
  }
  (** Aggregated view of one histogram name: counts and buckets sum over
      every bound cell; exemplars keep the max-value entry per bucket. *)

  val snapshot : t -> (string * value) list
  (** Aggregated view of every registered name, sorted by name. *)

  val counter_value : t -> string -> int
  (** Aggregated count for one name; 0 when absent. *)

  val gauge_value : t -> string -> int * int
  (** Combined (value, peak) over every cell — owned and attached —
      registered under the name. Like {!counter_value}, this is the
      registry-as-source-of-truth read path: component-owned cells
      (e.g. the fleet's per-card state gauges) are visible here without
      the component exposing its own accessor. *)

  val histogram_snapshot : t -> string -> histogram_snapshot
  (** Typed single-name histogram reader, completing the
      {!counter_value}/{!gauge_value} family (the SLO engine reads
      latency objectives through it). Empty snapshot when absent. *)

  val to_prometheus : t -> string
  (** Prometheus text exposition: names are mangled ([.] → [_], prefixed
      [sdds_]), gauges additionally export a [_peak] series, histograms
      export cumulative [_bucket{le="..."}] series plus [_sum] and
      [_count]. Buckets holding an exemplar append the OpenMetrics form
      [# {trace_id="...",span_id="..."} value]. *)

  val to_json : ?extra:(string * string) list -> t -> string
  (** One JSON object:
      [{"counters":{...},"gauges":{...},"histograms":{...}}]. Histograms
      with exemplars carry ["exemplars": [[le, value, trace, span], ...]].
      [extra] appends verbatim top-level [(key, raw_json)] members — the
      CLI uses it to embed SLO verdicts in the snapshot. *)
end

(** Tail-sampling retention policies: which finished span trees are worth
    keeping. Rules are checked in order; the first match names the
    retention reason recorded on the root span ([sampled.reason]). *)
module Policy : sig
  type view = {
    v_span : bool;  (** span, as opposed to instant *)
    v_name : string;
    v_dur_ns : int64;  (** 0 for instants *)
    v_args : (string * string) list;
  }
  (** What a rule sees of a finished event — a read-only projection, so
      policies cannot perturb the ring. *)

  type rule

  val rule : name:string -> (root:view -> view list -> bool) -> rule
  (** Custom rule: receives the finished root and every buffered
      descendant event of the tree. [name] becomes the retention
      reason. *)

  val name : rule -> string
  val matches : rule -> root:view -> view list -> bool

  val error_outcome : rule
  (** Keeps trees whose root (or any span in the tree) finished with an
      [outcome] arg other than ["ok"]. Reason ["error"]. *)

  val latency_at_least : int64 -> rule
  (** Keeps trees whose root duration is ≥ the threshold (ns on the
      injected clock). Reason ["latency"]. *)

  val fault_instant : rule
  (** Keeps trees containing a fault-injection instant (the [Fault.Link]
      correlation events). Reason ["fault"]. *)

  val span_named : string -> rule
  (** Keeps trees containing a span with this name (e.g.
      ["fleet.migrate"] for churn forensics). Reason ["span:<name>"]. *)

  type t

  val v : ?baseline_1_in:int -> rule list -> t
  (** A policy: ordered rules plus a deterministic 1-in-N baseline over
      trees no rule matched (0, the default, keeps interesting trees
      only). *)

  val default : ?baseline_1_in:int -> ?latency_ns:int64 -> unit -> t
  (** [error_outcome]; [latency_at_least latency_ns] when given;
      [fault_instant]; [span_named "fleet.migrate"]; baseline 1-in-8. *)
end

(** Spans and instants in a bounded ring buffer. *)
module Tracer : sig
  type span = int
  (** A span id. [0] ({!none}) means "no span"; negative ids are
      head-sampled-out spans — both are accepted everywhere and recorded
      nowhere, so instrumentation never branches on the sampling
      decision. *)

  val none : span

  type t

  val disabled : t
  (** The no-op tracer: every operation returns immediately, {!now} is 0.
      [Obs.tracer None] returns it, making [None] the zero-overhead
      path. *)

  val create :
    ?clock:Clock.t ->
    ?capacity:int ->
    ?sample_1_in:int ->
    ?policy:Policy.t ->
    ?on_keep:(string -> unit) ->
    ?on_drop:(unit -> unit) ->
    ?on_evict:(unit -> unit) ->
    unit ->
    t
  (** [capacity] (default 65536) bounds the ring buffer: once full, the
      oldest events are overwritten and counted in {!evicted}.

      [sample_1_in] (default 1 = keep everything) is {e head} sampling:
      every n-th root span is kept, decided when the root opens — a
      sampled-out root suppresses its whole subtree, so sampled traces
      contain only complete request trees. The decision is a
      deterministic counter, not a coin flip.

      [policy] switches to {e tail} sampling (mutually exclusive with
      [sample_1_in]): every tree records into a per-root buffer and the
      policy decides keep/drop when the root finishes, so retention can
      depend on outcome, latency, faults or tree shape. Retained roots
      carry a [sampled.reason] arg naming the rule (or ["baseline"] /
      ["exemplar"]).

      [on_keep]/[on_drop]/[on_evict] fire on tree retention, tree drop
      and ring overwrite respectively — [Obs.create] bridges them to the
      [trace.retained] / [trace.dropped] / [trace.evicted] counters. *)

  val enabled : t -> bool
  val now : t -> int64

  val start : t -> ?parent:span -> ?args:(string * string) list -> string -> span
  (** Open a span. [parent] defaults to the {!current} span; pass
      [~parent:none] to force a root (the per-request root spans of the
      pool, whose streams interleave and cannot use the implicit stack).
      Returns a non-positive id when disabled or sampled out. *)

  val stop : t -> ?args:(string * string) list -> span -> unit
  (** Close a span and commit it ([args] are appended to the start args).
      In tail mode, closing a root runs the policy over the buffered tree
      and either commits it whole or drops it whole. No-op on {!none} /
      sampled-out ids. *)

  val with_span : t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** [start] + push on the implicit stack + run + pop + [stop],
      exception-safe. Synchronous code gets parent/child nesting for
      free. *)

  val with_parent : t -> span -> (unit -> 'a) -> 'a
  (** Run with the implicit stack re-rooted at an explicit span: the
      pool's frame-interleaved streams wrap each transport exchange so
      card spans and fault instants attach to the right request. *)

  val current : t -> span
  (** Innermost span of the implicit stack ({!none} when empty). *)

  val instant : t -> ?args:(string * string) list -> string -> unit
  (** A point event attached to the current span (fault injections,
      prune decisions). *)

  val root_of : t -> span -> span
  (** Root ancestor of an {e open} span (itself for roots); {!none} for
      closed, sampled-out or unknown ids. Exemplars use it as the trace
      id. *)

  val pin : t -> span -> unit
  (** Tail mode: force the (open) tree containing this span to be
      retained regardless of policy, with reason ["exemplar"]. No-op in
      head mode or after the root closed. *)

  val recorded : t -> int
  (** Events currently resident in the ring. *)

  val evicted : t -> int
  (** Events overwritten after the ring filled (surfaced as
      [trace.evicted] and in both exporters' metadata). *)

  val dropped_trees : t -> int
  (** Whole trees discarded by sampling — head-sampled-out roots and
      tail-policy drops. *)

  val kept_trees : t -> int
  (** Trees retained by an explicit sampling decision (tail policy, or
      head sampling with [sample_1_in > 1]). *)

  val tail_mode : t -> bool

  val root_spans : t -> int
  (** Completed spans with no parent currently in the ring. *)

  val to_jsonl : t -> string
  (** One JSON object per line, oldest first; spans commit on [stop], so
      children precede their parent. Span lines carry
      [type/id/parent/name/ts_ns/dur_ns/args], instants the same minus
      [dur_ns]. When anything was sampled or evicted, the first line is
      [{"type":"meta",...}] with
      [recorded]/[evicted]/[kept_trees]/[dropped_trees]. *)

  val to_chrome : t -> string
  (** Chrome [trace_event] JSON ([{"traceEvents":[...]}]): spans as
      complete ([ph:"X"]) events with microsecond [ts]/[dur], instants as
      [ph:"i"]. Sampling/eviction accounting appears as a top-level
      ["metadata"] object. Load the file in [about:tracing] or
      {{:https://ui.perfetto.dev}Perfetto}. *)
end

(** Windowed service-level objectives with multi-window burn-rate alerts,
    computed over registry cells on the injected clock (simulated
    nanoseconds — windows scale to simulated time, so tests and the chaos
    harness get 5m/1h-style pairs in milliseconds). *)
module Slo : sig
  type objective =
    | Availability of { good : string; total : string }
        (** Two counter names: fraction good/total must meet the target
            (e.g. [fleet.ok] / [fleet.requests]). *)
    | Latency of { histogram : string; threshold : int }
        (** A histogram name: observations in buckets with upper bound ≤
            [threshold] are good. The threshold effectively snaps to a
            log₂ bucket boundary (2{^i} - 1). *)

  type verdict = {
    name : string;
    target_pct : float;
    burn_threshold : float;
    good : int;  (** cumulative good events *)
    total : int;  (** cumulative total events *)
    current_pct : float;  (** compliance over the slow window *)
    fast_burn : float;  (** error-budget burn rate over the fast window *)
    slow_burn : float;
    breach : bool;  (** both burns ≥ [burn_threshold] *)
  }

  type t

  val create : ?clock:Clock.t -> Metrics.t -> t
  (** An engine reading objectives from this registry. Without a clock,
      every {!tick}/{!evaluate} must pass [~now]. *)

  val register :
    t ->
    name:string ->
    ?target_pct:float ->
    ?fast_ns:int64 ->
    ?slow_ns:int64 ->
    ?burn_threshold:float ->
    objective ->
    unit
  (** Track an objective. Defaults: target 99%, fast window 5 min, slow
      window 1 h (in clock nanoseconds — pass scaled-down windows under a
      simulated clock), burn threshold 14.4 (the classic page-worthy
      multi-window pair). Burn rate is bad-fraction / error-budget over a
      window; a breach requires {e both} windows to burn ≥ the threshold,
      so a long-settled incident stops alerting as soon as the fast
      window recovers. *)

  val tick : ?now:int64 -> t -> unit
  (** Record a cumulative sample per objective at [now]. Call at
      request/batch granularity; samples are pruned to the slow window. *)

  val evaluate : ?now:int64 -> t -> verdict list
  (** Verdicts at [now], in registration order, against live registry
      values. Windows reaching before the first sample treat the start of
      history as zero. *)

  val verdict_json : verdict -> string

  val to_json : ?now:int64 -> t -> string
  (** JSON array of verdicts (embed via [Metrics.to_json ~extra]). *)
end

val json_string : string -> string
(** Escape + quote one JSON string — shared by the hand-rolled JSON
    writers sitting above this library. *)

type t = { tracer : Tracer.t; metrics : Metrics.t }
(** One observability scope — typically one per CLI invocation or test,
    threaded as [?obs] through card, engine, proxy and fault layers so
    all of them share a trace and a registry. *)

val create :
  ?clock:Clock.t ->
  ?tracing:bool ->
  ?capacity:int ->
  ?sample_1_in:int ->
  ?policy:Policy.t ->
  unit ->
  t
(** Fresh scope. [tracing:false] pairs a {e disabled} tracer with a live
    registry — metrics without trace overhead. [sample_1_in] enables head
    sampling, [policy] tail sampling (mutually exclusive); either way the
    sampling outcome is accounted in the [trace.retained] /
    [trace.dropped] / [trace.evicted] counters. *)

(** {2 [Obs.t option] conveniences}

    Instrumented code holds an [t option] and calls these; all of them
    are no-ops on [None]. *)

val tracer : t option -> Tracer.t
val inc : t option -> string -> int -> unit
val set_gauge : t option -> string -> int -> unit

val observe : ?span:Tracer.span -> t option -> string -> int -> unit
(** Observe into the registry-owned histogram. When the observation
    happens under an open span ([span] overrides {!Tracer.current}), it
    is recorded with an exemplar pointing at the span's root trace, and a
    new bucket max {!Tracer.pin}s that trace so the exemplar always
    resolves to a retained trace. *)

val attach_counter : t option -> string -> Metrics.Counter.t -> unit
val attach_gauge : t option -> string -> Metrics.Gauge.t -> unit
val attach_histogram : t option -> string -> Metrics.Histogram.t -> unit
