(** End-to-end observability: a span tracer and a metrics registry shared
    by every layer of the SOE pipeline.

    The paper's argument is quantitative — a ~1 KB-RAM card over a 2 KB/s
    link only works because evaluation streams and the skip index prunes —
    so the pipeline needs one place that can answer "where did this
    request's bytes and milliseconds go" across host, link and card. This
    module provides it without coupling the layers to each other:

    - {!Tracer} records parent/child {e spans} (and point {e instants})
      into a bounded ring buffer, with an injected clock so traces are
      deterministic under test, and exports both JSONL and the Chrome
      [trace_event] format (opens directly in [about:tracing] / Perfetto);
    - {!Metrics} is a registry of named counters, gauges and log-bucketed
      histograms with a Prometheus-style text exporter and a JSON
      snapshot. Components keep their own increment {e cells} (a plain
      mutable int — the hot path stays a single store) and {e attach} them
      to the registry, which aggregates at snapshot time; the legacy stats
      records ([Engine.stats], [Card.cache_stats], [Pool.served]) are thin
      views over the same cells, so there is one accounting source of
      truth.

    Everything takes an [Obs.t option]: [None] is the zero-overhead path —
    no registry, a disabled tracer, and observable behaviour byte-identical
    to an uninstrumented run (the qcheck tests enforce this). *)

(** Injected time source, in nanoseconds. *)
module Clock : sig
  type t = unit -> int64

  val system : t
  (** Wall clock ([Unix.gettimeofday]), in nanoseconds. *)

  val manual : ?start_ns:int64 -> ?step_ns:int64 -> unit -> t
  (** A deterministic clock for tests: the first call returns [start_ns]
      (default 0) and every call advances by [step_ns] (default 1000).
      Fixed clock + fixed seeds ⇒ byte-identical trace exports. *)
end

(** Named counters, gauges and log₂-bucketed histograms. *)
module Metrics : sig
  (** A monotonic event count. The cell is what instrumented code holds
      and increments directly; registration is separate ({!attach_counter})
      so the hot path never touches a hash table. *)
  module Counter : sig
    type t

    val create : unit -> t
    val inc : t -> unit
    val add : t -> int -> unit
    val value : t -> int
  end

  (** A sampled level (live tokens, stack depth, resident bytes): tracks
      the current value and the peak ever set. *)
  module Gauge : sig
    type t

    val create : unit -> t
    val set : t -> int -> unit
    val value : t -> int
    val peak : t -> int
  end

  (** A distribution over non-negative integers in log₂ buckets: bucket
      [i] counts observations [v] with [v < 2{^i}] (and not in a lower
      bucket), so 63 buckets cover the whole [int] range — latencies and
      byte sizes at any scale, in constant memory. *)
  module Histogram : sig
    type t

    val create : unit -> t
    val observe : t -> int -> unit
    (** Negative values are clamped to 0. *)

    val count : t -> int
    val sum : t -> int

    val buckets : t -> (int * int) list
    (** Non-cumulative [(upper_bound, count)] pairs up to the highest
        non-empty bucket; bucket [i] reports upper bound [2{^i} - 1]. *)
  end

  type t
  (** A registry: a mutable map from metric names (dotted lowercase, e.g.
      ["engine.token_visits"]) to cells. A name aggregates {e all} cells
      registered under it — the registry-owned cell created by
      {!counter}/{!gauge}/{!histogram} plus every attached component
      cell — at snapshot time: counters and histogram buckets sum, gauges
      sum their current values and take the max of their peaks. *)

  val create : unit -> t

  val counter : t -> string -> Counter.t
  (** Get or create the registry-owned cell for this name. *)

  val gauge : t -> string -> Gauge.t
  val histogram : t -> string -> Histogram.t

  val attach_counter : t -> string -> Counter.t -> unit
  (** Register a component-owned cell under a name. The component keeps
      incrementing its own cell; the registry only reads it at snapshot
      time. O(1): attaching a cell that is already registered (anywhere)
      is a no-op, so per-evaluation components can attach unconditionally
      without scanning. *)

  val attach_gauge : t -> string -> Gauge.t -> unit
  val attach_histogram : t -> string -> Histogram.t -> unit

  type value =
    | Counter_v of int
    | Gauge_v of { value : int; peak : int }
    | Histogram_v of { count : int; sum : int; buckets : (int * int) list }

  val snapshot : t -> (string * value) list
  (** Aggregated view of every registered name, sorted by name. *)

  val counter_value : t -> string -> int
  (** Aggregated count for one name; 0 when absent. *)

  val gauge_value : t -> string -> int * int
  (** Combined (value, peak) over every cell — owned and attached —
      registered under the name. Like {!counter_value}, this is the
      registry-as-source-of-truth read path: component-owned cells
      (e.g. the fleet's per-card state gauges) are visible here without
      the component exposing its own accessor. *)

  val to_prometheus : t -> string
  (** Prometheus text exposition: names are mangled ([.] → [_], prefixed
      [sdds_]), gauges additionally export a [_peak] series, histograms
      export cumulative [_bucket{le="..."}] series plus [_sum] and
      [_count]. *)

  val to_json : t -> string
  (** One JSON object:
      [{"counters":{...},"gauges":{...},"histograms":{...}}]. *)
end

(** Spans and instants in a bounded ring buffer. *)
module Tracer : sig
  type span = int
  (** A span id. [0] ({!none}) means "no span"; negative ids are
      sampled-out spans — both are accepted everywhere and recorded
      nowhere, so instrumentation never branches on the sampling
      decision. *)

  val none : span

  type t

  val disabled : t
  (** The no-op tracer: every operation returns immediately, {!now} is 0.
      [Obs.tracer None] returns it, making [None] the zero-overhead
      path. *)

  val create : ?clock:Clock.t -> ?capacity:int -> ?sample_1_in:int -> unit -> t
  (** [capacity] (default 65536) bounds the ring buffer: once full, the
      oldest events are overwritten and counted in {!dropped}.
      [sample_1_in] (default 1 = keep everything) keeps every n-th {e root}
      span — a sampled-out root suppresses its whole subtree, so sampled
      traces contain only complete request trees. The decision is a
      deterministic counter, not a coin flip. *)

  val enabled : t -> bool
  val now : t -> int64

  val start : t -> ?parent:span -> ?args:(string * string) list -> string -> span
  (** Open a span. [parent] defaults to the {!current} span; pass
      [~parent:none] to force a root (the per-request root spans of the
      pool, whose streams interleave and cannot use the implicit stack).
      Returns a non-positive id when disabled or sampled out. *)

  val stop : t -> ?args:(string * string) list -> span -> unit
  (** Close a span and commit it to the ring ([args] are appended to the
      start args). No-op on {!none} / sampled-out ids. *)

  val with_span : t -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** [start] + push on the implicit stack + run + pop + [stop],
      exception-safe. Synchronous code gets parent/child nesting for
      free. *)

  val with_parent : t -> span -> (unit -> 'a) -> 'a
  (** Run with the implicit stack re-rooted at an explicit span: the
      pool's frame-interleaved streams wrap each transport exchange so
      card spans and fault instants attach to the right request. *)

  val current : t -> span
  (** Innermost span of the implicit stack ({!none} when empty). *)

  val instant : t -> ?args:(string * string) list -> string -> unit
  (** A point event attached to the current span (fault injections,
      prune decisions). *)

  val recorded : t -> int
  (** Events currently resident in the ring. *)

  val dropped : t -> int
  (** Events overwritten after the ring filled. *)

  val root_spans : t -> int
  (** Completed spans with no parent currently in the ring. *)

  val to_jsonl : t -> string
  (** One JSON object per line, oldest first; spans commit on [stop], so
      children precede their parent. Span lines carry
      [type/id/parent/name/ts_ns/dur_ns/args], instants the same minus
      [dur_ns]. *)

  val to_chrome : t -> string
  (** Chrome [trace_event] JSON ([{"traceEvents":[...]}]): spans as
      complete ([ph:"X"]) events with microsecond [ts]/[dur], instants as
      [ph:"i"]. Load the file in [about:tracing] or
      {{:https://ui.perfetto.dev}Perfetto}. *)
end

type t = { tracer : Tracer.t; metrics : Metrics.t }
(** One observability scope — typically one per CLI invocation or test,
    threaded as [?obs] through card, engine, proxy and fault layers so
    all of them share a trace and a registry. *)

val create :
  ?clock:Clock.t ->
  ?tracing:bool ->
  ?capacity:int ->
  ?sample_1_in:int ->
  unit ->
  t
(** Fresh scope. [tracing:false] pairs a {e disabled} tracer with a live
    registry — metrics without trace overhead. *)

(** {2 [Obs.t option] conveniences}

    Instrumented code holds an [t option] and calls these; all of them
    are no-ops on [None]. *)

val tracer : t option -> Tracer.t
val inc : t option -> string -> int -> unit
val set_gauge : t option -> string -> int -> unit
val observe : t option -> string -> int -> unit
val attach_counter : t option -> string -> Metrics.Counter.t -> unit
val attach_gauge : t option -> string -> Metrics.Gauge.t -> unit
val attach_histogram : t option -> string -> Metrics.Histogram.t -> unit
