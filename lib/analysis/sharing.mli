(** Cross-rule-set sharing analysis, for the dissemination clusterer.

    Two subscribers whose rule sets are not byte-identical may still be
    related: one set can {e subsume} the other (every rule of A is
    contained, same-signed, in a rule of B). The clusterer only merges
    identical sets — subsumption is not equivalence of authorized views,
    because suppression boundaries differ — but the relation is exactly
    the "how much latent overlap does this population carry" statistic
    the dissemination plan reports, and the analyzer's containment test
    ({!Sdds_xpath.Containment}) already decides it soundly. *)

val subsumes : Sdds_core.Rule.t list -> Sdds_core.Rule.t list -> bool
(** [subsumes a b]: every rule of [b] is contained (same sign, object
    containment per {!Sdds_xpath.Containment.contains}) in some rule of
    [a]. Sound and incomplete, like the underlying homomorphism test;
    reflexive. Subjects are ignored — the caller compares rule sets
    already filtered per subscriber. *)

val related_pairs : Sdds_core.Rule.t list array -> int
(** Number of unordered pairs [(i, j)], [i < j], of distinct rule sets
    where one subsumes the other — the population's latent-overlap count
    reported by the dissemination plan. *)
