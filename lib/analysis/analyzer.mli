(** The static policy analyzer: one call, all passes.

    Runs over a rule set and whatever context is available — an optional
    DTD-lite schema ({!Sdds_core.Schema}), an optional document tag
    dictionary, an optional RAM budget — and produces structured
    diagnostics ({!Diag}) plus the static memory bound
    ({!Memory_bound}). Each pass is isolated: if one raises, its failure
    becomes an [Internal_error] diagnostic and the other passes still
    report. *)

type report = {
  rules : Sdds_core.Rule.t array;  (** the analyzed rules, by index *)
  diagnostics : Diag.t list;  (** severity-ordered (errors first) *)
  bound : Memory_bound.t;  (** static worst-case SOE memory *)
  kept : int;  (** rules surviving dead-rule pruning *)
}

val run :
  ?schema:Sdds_core.Schema.t ->
  ?dictionary:string list ->
  ?depth:int ->
  ?chunk_plain_bytes:int ->
  ?budget_bytes:int ->
  ?query:Sdds_xpath.Ast.t ->
  Sdds_core.Rule.t list ->
  report
(** The evaluation depth for the memory bound is, in order of
    preference: [depth] if given, the schema's {!Sdds_core.Schema.depth_bound}
    if finite, else {!Memory_bound.default_depth}. [dictionary] is a
    document's tag list (e.g. {!Sdds_index.Dict.tags}): literal tags
    outside it yield [Unknown_tag] diagnostics and truncate the automata
    in the memory bound, exactly as the skip index would at runtime.
    [budget_bytes] turns the [Memory_bound] diagnostic into an error when
    exceeded. [query], when given, is compiled alongside the rules (as
    the SOE does) so the bound covers the query automaton too. *)

val has_errors : report -> bool
(** True when any diagnostic has severity [Error] — the admission
    criterion and the CLI's exit status. *)

val to_json : report -> Json.t

val pp : Format.formatter -> report -> unit
(** Human-readable multi-line report. *)
