module Rule = Sdds_core.Rule
module Containment = Sdds_xpath.Containment

let rule_covers (a : Rule.t) (b : Rule.t) =
  a.Rule.sign = b.Rule.sign && Containment.contains a.Rule.path b.Rule.path

let subsumes a b =
  List.for_all (fun rb -> List.exists (fun ra -> rule_covers ra rb) a) b

let related_pairs sets =
  let n = Array.length sets in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if subsumes sets.(i) sets.(j) || subsumes sets.(j) sets.(i) then
        incr count
    done
  done;
  !count
