(** Allow/deny overlap detection with synthesized witnesses.

    Two same-subject rules of opposite sign {e overlap} when some
    document has a node both reach — the situation the conflict
    resolution policies (Denial-Takes-Precedence on the same node,
    Most-Specific-Object across depths) exist to arbitrate. The analyzer
    does not decide the winner from first principles: it synthesizes a
    candidate document from the two patterns' canonical instantiations,
    finds a contested node on it, and asks the declarative oracle which
    sign the policy actually produces there. The witness ships in the
    diagnostic, so a reader (or a test) can replay it.

    Detection is best-effort: canonical instantiations do not enumerate
    every joint structure two patterns admit, so absence of a reported
    overlap is not a disjointness proof. Every {e reported} overlap is
    real — the oracle confirmed it on a concrete document. *)

val find :
  allow:Sdds_core.Rule.t ->
  deny:Sdds_core.Rule.t ->
  (Diag.overlap_relation * Sdds_core.Rule.sign * Sdds_xml.Dom.t * int) option
(** [find ~allow ~deny] is [Some (relation, winner, witness, node)] when a
    synthesized document exhibits the overlap: both rules apply at (or
    above, per [relation]) preorder node [node] of [witness], and the
    oracle's decision there is [winner]. Rules must share a subject and
    have the advertised signs. *)
