(** Static worst-case SOE memory bounds by abstract interpretation of the
    compiled automata.

    The streaming engine's state is, at any instant, a stack of per-depth
    frames (tokens, text watchers, anchored predicate instances), a table
    of live predicate instances with their candidate conjunctions, and
    the reverse-dependency table — all sized in the same abstract
    field-words {!Sdds_core.Engine.state_words} counts at runtime. Every
    component is depth-bounded:

    - a token at position [i] exists only in frames at depth at least
      [i]; when no descendant axis precedes the position (and, for a
      predicate path, the anchor's own depth is unambiguous) its frame
      depth is {e exactly} known, and only descendant-axis-waiting
      tokens replicate into deeper frames;
    - distinct condition sets per token position multiply only at
      predicate-bearing steps whose match depth is ambiguous, by at most
      the number of open ancestors;
    - live instances of a predicate number one per possible anchor depth;
    - candidate conjunctions are distinct subsets of live condition
      variables (the engine dedups at insert {e and} after shortening),
      so each predicate-bearing step contributes its depth choices plus
      one for "already resolved".

    Summing over frame depths [0..depth] yields a bound that dominates
    every reachable [state_words] on documents of that element depth —
    the property the differential tests check against the engine, and the
    admission check {!Sdds_soe.Card} runs at rule-upload time. *)

type t = {
  depth : int;  (** element depth the bound is evaluated at *)
  state_words : int;  (** dominates [Engine.peak_state_words] *)
  reader_words : int;  (** dominates the index reader's stack peak *)
  bound_bytes : int;
      (** packed RAM: [2 * (state + reader) + chunk buffer + slack],
          mirroring the card's dynamic accounting *)
}

val compute :
  ?tag_possible:(string -> bool) ->
  ?chunk_plain_bytes:int ->
  ?dict_size:int ->
  depth:int ->
  Sdds_core.Compile.t ->
  t
(** [tag_possible] restricts the tag alphabet (schema-declared tags, or a
    document dictionary): steps naming impossible tags never match, which
    truncates their paths' reachable positions. Defaults: all tags
    possible, [chunk_plain_bytes = 240] (the publisher's default),
    [dict_size = 64]. Arithmetic saturates — a huge bound stays a huge
    bound instead of wrapping. *)

val fits : t -> ram_bytes:int -> bool

val default_depth : int
(** Assumed element depth when no schema bounds it: 16. *)
