(** A minimized, replayable counterexample.

    The fault [spec] is a {!Sdds_fault.Fault.Schedule} spec string
    (guaranteed to re-parse through [Schedule.of_spec]): pass it to
    [sdds query --fault-spec] to drive the {e real} stack through the
    same adversary schedule the checker used. *)

module Fault = Sdds_fault.Fault

type t = {
  violation : Invariant.violation;
  steps : int;  (** frames in the schedule, faulty and clean *)
  events : Fault.event list;  (** the injected faults, by frame *)
  spec : string;  (** [Fault.Schedule.to_spec] of [events] *)
  trace : string list;  (** one narrated line per frame *)
}

val events_of_choices : Fault.kind option list -> Fault.event list
(** Per-frame adversary choices → the fault events, frame numbers being
    list positions. *)

val make :
  violation:Invariant.violation ->
  choices:Fault.kind option list ->
  trace:string list ->
  t

val pp : Format.formatter -> t -> unit
