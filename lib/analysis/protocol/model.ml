(* The finite host × card × fault product the checker explores. The card
   half is the *production* transition function ({!Sdds_soe.Protocol.step})
   over a synthetic string-handle backend; the host half is a downscaled
   but faithful rendition of the terminal driver's triage loop
   ({!Sdds_soe.Remote_card.classify} is the real one); the adversary
   half mirrors {!Sdds_fault.Fault.Link}'s delivery semantics exactly, so
   a counterexample's fault schedule means the same thing to the checker
   and to [sdds query --fault-spec]. *)

module Apdu = Sdds_soe.Apdu
module Protocol = Sdds_soe.Protocol
module Remote = Sdds_soe.Remote_card
module Fault = Sdds_fault.Fault

type config = {
  semantics : Protocol.chain_semantics;
  modulus : int;
  block : int;
  rules_frames : int;
  with_query : bool;
  response_blocks : int;
  versions : int list;
  retry_budget : int;
  fault_budget : int;
  alphabet : Fault.kind list;
  bystander : bool;
}

let current =
  {
    semantics = Protocol.Identity_marker;
    modulus = 4;
    block = 3;
    rules_frames = 3;
    with_query = false;
    response_blocks = 2;
    versions = [ 2 ];
    retry_budget = 3;
    fault_budget = 2;
    alphabet = Array.to_list Fault.all_kinds;
    bystander = true;
  }

(* The preserved pre-fix model: P2-keyed completion markers, and a chain
   long enough that the final frame's sequence number wraps to 0 mod the
   (downscaled) modulus — the exact shape of the PR 6 hole, reachable at
   tiny depth. *)
let pre_fix =
  { current with semantics = Protocol.P2_marker; rules_frames = 5 }

let doc_id = "doc"
let query_payload = "q"

let rules_payload config v =
  String.init config.rules_frames (fun i ->
      if i = 0 then Char.chr (Char.code '0' + (v mod 10)) else 'r')

let intents config =
  List.map (rules_payload config) config.versions @ [ query_payload ]

let version_of rules =
  if String.length rules > 0 && rules.[0] >= '0' && rules.[0] <= '9' then
    Some (Char.code rules.[0] - Char.code '0')
  else None

let valid_rules config rules =
  String.length rules = config.rules_frames
  && version_of rules <> None
  && (let ok = ref true in
      String.iteri (fun i c -> if i > 0 && c <> 'r' then ok := false) rules;
      !ok)

let view config ~version ~query =
  let base =
    Printf.sprintf "v%d%s" version
      (match query with None -> "" | Some q -> "+" ^ q)
  in
  String.init
    (config.response_blocks * config.block)
    (fun i -> base.[i mod String.length base])

(* The synthetic card backend: rule blobs are "<version digit>rr…r";
   admission refuses anything else (what a fragment re-executed from a
   duplicated final frame looks like); evaluation enforces anti-rollback
   against the stable high-water mark [nv] and answers a deterministic
   view. [nv] is threaded as a ref so one backend value can serve the
   double delivery of a duplicated command, like the real card's stable
   state does. *)
let backend config nv =
  {
    Protocol.resolve =
      (fun id -> if String.equal id doc_id then Some id else None);
    install_grant = (fun _ ~wrapped:_ -> Ok ());
    accept_rules =
      (fun _ ~query:_ rules ->
        if valid_rules config rules then Ok () else Error Protocol.Sw.security);
    evaluate =
      (fun _ ~rules ~query ~push:_ ~use_index:_ ->
        match version_of rules with
        | None -> Error Protocol.Sw.security
        | Some v ->
            if v < !nv then Error Protocol.Sw.replayed
            else begin
              nv := v;
              Ok (view config ~version:v ~query)
            end);
  }

(* ------------------------------------------------------------------ *)
(* Host driver                                                          *)
(* ------------------------------------------------------------------ *)

type phase =
  | Select
  | Rules of int  (** next rules frame index *)
  | Query_upload
  | Evaluate
  | Drain of int  (** next response block index *)
  | Done_ok
  | Failed of string

type host = {
  phase : phase;
  exchange : int;  (** index into [config.versions] *)
  budget : int;
  drained : string;
}

let cla = Apdu.cla_of_channel 0

let command config h =
  match h.phase with
  | Done_ok | Failed _ -> None
  | Select ->
      Some { Apdu.cla; ins = Protocol.Ins.select; p1 = 0; p2 = 0; data = doc_id }
  | Rules i ->
      let payload = rules_payload config (List.nth config.versions h.exchange) in
      Some
        {
          Apdu.cla;
          ins = Protocol.Ins.rules;
          p1 = (if i = config.rules_frames - 1 then 0 else 1);
          p2 = i mod config.modulus;
          data = String.make 1 payload.[i];
        }
  | Query_upload ->
      Some
        {
          Apdu.cla;
          ins = Protocol.Ins.query;
          p1 = 0;
          p2 = 0;
          data = query_payload;
        }
  | Evaluate ->
      Some { Apdu.cla; ins = Protocol.Ins.evaluate; p1 = 0; p2 = 1; data = "" }
  | Drain b ->
      Some
        {
          Apdu.cla;
          ins = Protocol.Ins.get_response;
          p1 = 0;
          p2 = b mod config.modulus;
          data = "";
        }

let expected_view config h =
  view config
    ~version:(List.nth config.versions h.exchange)
    ~query:(if config.with_query then Some query_payload else None)

(* The host believes this exchange is complete: check what it drained
   against the authorized view, then move to the next version (or stop). *)
let finish_exchange config h =
  let expect = expected_view config h in
  let viol =
    if String.equal h.drained expect then None
    else
      Some
        {
          Invariant.which = Invariant.View_integrity;
          detail =
            Printf.sprintf
              "exchange %d completed with drained view %S, authorized view \
               is %S"
              h.exchange h.drained expect;
        }
  in
  let h =
    if h.exchange + 1 < List.length config.versions then
      { phase = Select; exchange = h.exchange + 1; budget = h.budget; drained = "" }
    else { h with phase = Done_ok }
  in
  (h, viol)

let advance config h (resp : Apdu.response) =
  let spend reset =
    if h.budget > 0 then
      if reset then
        ({ h with budget = h.budget - 1; phase = Select; drained = "" }, None)
      else ({ h with budget = h.budget - 1 }, None)
    else ({ h with phase = Failed "retry budget exhausted" }, None)
  in
  match Remote.classify resp with
  | Remote.Done -> (
      match h.phase with
      | Select -> ({ h with phase = Rules 0 }, None)
      | Rules i ->
          if i + 1 < config.rules_frames then
            ({ h with phase = Rules (i + 1) }, None)
          else if config.with_query then ({ h with phase = Query_upload }, None)
          else ({ h with phase = Evaluate }, None)
      | Query_upload -> ({ h with phase = Evaluate }, None)
      | Evaluate | Drain _ ->
          finish_exchange config
            { h with drained = h.drained ^ resp.Apdu.payload }
      | Done_ok | Failed _ -> (h, None))
  | Remote.More _ -> (
      match h.phase with
      | Evaluate ->
          ( { h with drained = h.drained ^ resp.Apdu.payload; phase = Drain 1 },
            None )
      | Drain b ->
          ( {
              h with
              drained = h.drained ^ resp.Apdu.payload;
              phase = Drain (b + 1);
            },
            None )
      | _ -> ({ h with phase = Failed "unexpected more-data status" }, None))
  | Remote.Transient -> spend false
  | Remote.Session_lost -> spend true
  | Remote.Fatal e ->
      let sw1, sw2 = Remote.to_sw e in
      ( { h with phase = Failed (Printf.sprintf "card refused (sw %02X%02X)" sw1 sw2) },
        None )
  | Remote.Unknown (sw1, sw2) ->
      ( {
          h with
          phase = Failed (Printf.sprintf "unknown status word %02X%02X" sw1 sw2);
        },
        None )

(* ------------------------------------------------------------------ *)
(* Invariant monitors                                                   *)
(* ------------------------------------------------------------------ *)

(* Sorted assoc lists, like {!Protocol.Chain}'s: one representation per
   logical content, so the canonical state encoding dedups correctly. *)
let rec set k v = function
  | [] -> [ (k, v) ]
  | (k', _) :: rest when k' = k -> (k, v) :: rest
  | (k', _) :: _ as l when k' > k -> (k, v) :: l
  | kv :: rest -> kv :: set k v rest

let rec bump k = function
  | [] -> [ (k, 1) ]
  | (k', n) :: rest when k' = k -> (k', n + 1) :: rest
  | (k', _) :: _ as l when k' > k -> (k, 1) :: l
  | kv :: rest -> kv :: bump k rest

type mon = {
  executed : ((int * string) * int) list;
      (** (ins, payload) → completions within the current session *)
  blocks : (int * (string * (int * int))) list;
      (** response block index → (payload, sw) as first served *)
}

type t = {
  host : host;
  card : string Protocol.state;
  nv : int;  (** card stable anti-rollback high-water mark *)
  faults_left : int;
  mon : mon;
}

let halted st =
  match st.host.phase with
  | Done_ok -> Some (Ok ())
  | Failed msg -> Some (Error msg)
  | _ -> None

(* An innocent session pre-seeded on channel 1: a selected document, a
   half-open chain, an undrained response. The isolation invariant says
   nothing the channel-0 exchange does — under any fault — may alter
   it. *)
let bystander_session () =
  let chain, _ =
    Protocol.Chain.feed Protocol.Chain.empty
      {
        Apdu.cla = Apdu.cla_of_channel 1;
        ins = Protocol.Ins.rules;
        p1 = 1;
        p2 = 0;
        data = "b";
      }
  in
  let sw1, sw2 = Protocol.Sw.ok in
  {
    Protocol.doc = Some doc_id;
    chain;
    pending_rules = None;
    pending_query = None;
    response = "B";
    resp_block = 1;
    resp_last = Some { Apdu.sw1; sw2; payload = "B" };
    resp_ready = true;
  }

let start config =
  let card = Protocol.initial () in
  let card =
    if config.bystander then
      {
        Protocol.sessions =
          List.mapi
            (fun i s -> if i = 1 then Some (bystander_session ()) else s)
            card.Protocol.sessions;
      }
    else card
  in
  {
    host =
      { phase = Select; exchange = 0; budget = config.retry_budget; drained = "" };
    card;
    nv = 0;
    faults_left = config.fault_budget;
    mon = { executed = []; blocks = [] };
  }

let sw (sw1, sw2) = { Apdu.sw1; sw2; payload = "" }

(* One delivery of [cmd] to the card: run the production [step], then
   judge the transition against every invariant monitor. *)
let deliver config nv st (cmd : Apdu.command) =
  let pre = st.card in
  let nv_before = !nv in
  let card, actions =
    Protocol.step ~backend:(backend config nv) ~semantics:config.semantics
      ~modulus:config.modulus ~block:config.block pre (Protocol.Command cmd)
  in
  let reply =
    match Protocol.response_of actions with
    | Some r -> r
    | None -> sw Protocol.Sw.internal
  in
  let viols = ref [] in
  let viol which detail = viols := { Invariant.which; detail } :: !viols in
  let ch = Apdu.channel_of_cla cmd.Apdu.cla in
  if cmd.Apdu.ins <> Protocol.Ins.manage_channel then
    List.iteri
      (fun i (a, b) ->
        if i <> ch && a <> b then
          viol Invariant.Isolation
            (Printf.sprintf "%s on channel %d altered channel %d's session"
               (Protocol.Ins.name cmd.Apdu.ins) ch i))
      (List.combine pre.Protocol.sessions card.Protocol.sessions);
  let executed = ref st.mon.executed and blocks = ref st.mon.blocks in
  List.iter
    (function
      | Protocol.Selected _ ->
          (* A successful SELECT restarts the session: the exactly-once
             and retransmission windows restart with it. *)
          executed := [];
          blocks := []
      | Protocol.Executed { channel = _; ins; payload } ->
          executed := bump (ins, payload) !executed;
          let n = List.assoc (ins, payload) !executed in
          if n > 1 then
            viol Invariant.Exactly_once
              (Printf.sprintf "%s payload %S executed %d times in one session"
                 (Protocol.Ins.name ins) payload n)
          else if not (List.exists (String.equal payload) (intents config)) then
            viol Invariant.Exactly_once
              (Printf.sprintf
                 "%s executed fragment %S, which the host never uploaded"
                 (Protocol.Ins.name ins) payload)
      | Protocol.Evaluated { rules; _ } ->
          (match version_of rules with
          | Some v when v < nv_before ->
              viol Invariant.Anti_rollback
                (Printf.sprintf
                   "evaluated policy version %d below the high-water mark %d"
                   v nv_before)
          | _ -> ());
          (* A fresh response stream: block 0 is what this reply served. *)
          blocks :=
            [ (0, (reply.Apdu.payload, (reply.Apdu.sw1, reply.Apdu.sw2))) ]
      | Protocol.Reply _ | Protocol.Torn -> ())
    actions;
  let evaluated =
    List.exists (function Protocol.Evaluated _ -> true | _ -> false) actions
  in
  (match (Protocol.session pre ch, Protocol.session card ch) with
  | Some p, Some q when not evaluated ->
      if q.Protocol.resp_block = p.Protocol.resp_block + 1 then
        blocks :=
          set p.Protocol.resp_block
            (reply.Apdu.payload, (reply.Apdu.sw1, reply.Apdu.sw2))
            !blocks
      else if
        cmd.Apdu.ins = Protocol.Ins.get_response
        && q.Protocol.resp_block = p.Protocol.resp_block
        && p.Protocol.resp_block > 0
        && cmd.Apdu.p2 = (p.Protocol.resp_block - 1) mod config.modulus
        && (reply.Apdu.sw1 = fst Protocol.Sw.ok
           || reply.Apdu.sw1 = fst Protocol.Sw.more_data)
      then begin
        match List.assoc_opt (p.Protocol.resp_block - 1) !blocks with
        | Some (payload, swp)
          when String.equal payload reply.Apdu.payload
               && swp = (reply.Apdu.sw1, reply.Apdu.sw2) ->
            ()
        | Some (payload, _) ->
            viol Invariant.Retransmission
              (Printf.sprintf "block %d first served as %S, re-served as %S"
                 (p.Protocol.resp_block - 1)
                 payload reply.Apdu.payload)
        | None -> ()
      end
  | _ -> ());
  ( { st with card; mon = { executed = !executed; blocks = !blocks } },
    List.rev !viols,
    reply )

let deliver_tear config nv st =
  let card, _ =
    Protocol.step ~backend:(backend config nv) ~semantics:config.semantics
      ~modulus:config.modulus ~block:config.block st.card Protocol.Tear
  in
  (* Volatile sessions are gone, monitors restart with them; stable state
     ([nv]) survives — exactly the real card's tear semantics. *)
  { st with card; mon = { executed = []; blocks = [] } }

type transition = {
  state : t;
  reply : Apdu.response;  (** what the host saw for this frame *)
  violations : Invariant.violation list;
}

(* One frame sent by the host, under one adversary choice. The delivery
   semantics mirror {!Fault.Link.send}: command-side faults never reach
   the card; response-side faults mean the card processed the command
   but the host saw only the transient word; a duplicate is answered
   twice with the host reading the second answer; a tear kills every
   volatile session and loses the frame. *)
let apply config st fault =
  match command config st.host with
  | None -> None
  | Some cmd ->
      let nv = ref st.nv in
      let st', viols, reply =
        match fault with
        | None -> deliver config nv st cmd
        | Some (Fault.Drop_command | Fault.Corrupt_command) ->
            (st, [], sw Protocol.Sw.transport)
        | Some Fault.Spurious_status -> (st, [], sw Protocol.Sw.internal)
        | Some (Fault.Drop_response | Fault.Corrupt_response) ->
            let st, vs, _ = deliver config nv st cmd in
            (st, vs, sw Protocol.Sw.transport)
        | Some Fault.Duplicate_command ->
            let st, vs1, _ = deliver config nv st cmd in
            let st, vs2, reply = deliver config nv st cmd in
            (st, vs1 @ vs2, reply)
        | Some Fault.Tear ->
            (deliver_tear config nv st, [], sw Protocol.Sw.transport)
      in
      let host, hviol = advance config st'.host reply in
      let faults_left =
        match fault with None -> st.faults_left | Some _ -> st.faults_left - 1
      in
      Some
        {
          state = { st' with host; nv = !nv; faults_left };
          reply;
          violations = viols @ Option.to_list hviol;
        }

(* Canonical encoding for visited-set dedup: everything behaviorally
   relevant (host, card sessions, stable nv, remaining fault budget,
   monitor windows) and nothing path-dependent — the frame counter lives
   in the exploration path, not the state, so runs that converge to the
   same configuration by different routes dedup. *)
let key st =
  Marshal.to_string
    (st.host, st.card.Protocol.sessions, st.nv, st.faults_left, st.mon)
    [ Marshal.No_sharing ]
