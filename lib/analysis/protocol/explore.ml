(* Bounded breadth-first exploration of the {!Model} product, with
   FNV-hashed canonical-state dedup, a memoized fault-free-closure
   convergence check, and greedy counterexample minimization. *)

module Protocol = Sdds_soe.Protocol
module Fault = Sdds_fault.Fault
module Fnv = Sdds_util.Fnv

module Keytbl = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash k = Int64.to_int (Fnv.fnv1a64 k) land max_int
end)

type stats = {
  expanded : int;  (** states dequeued and expanded *)
  transitions : int;  (** apply calls that produced a successor *)
  dedup_hits : int;  (** successors already in the visited set *)
  terminal_ok : int;
  terminal_failed : int;
  max_depth : int;  (** deepest frame count reached *)
  truncated : bool;  (** the state cap stopped the search early *)
}

type result = { cex : Cex.t option; stats : stats }

(* How long a fault-free run may take from anywhere before we call it a
   livelock: every exchange costs its frames plus restart slack, once
   per budget unit the host may burn on recovering. *)
let convergence_cap config =
  let per_exchange =
    config.Model.rules_frames + config.Model.response_blocks + 8
  in
  (List.length config.Model.versions * per_exchange)
  * (config.Model.retry_budget + 1)
  + 16

(* The fault-free closure from [st]: [None] if it reaches a terminal
   state, [Some reason] if it cycles or exceeds the cap — a violation of
   the convergence invariant. Memoized across the whole search in
   [cache] (key → verdict); states on the current path are tracked for
   cycle detection. *)
let converges config cache st =
  let cap = convergence_cap config in
  let rec go seen st n =
    match Model.halted st with
    | Some _ -> None
    | None ->
        if n > cap then
          Some
            (Printf.sprintf
               "fault-free continuation still running after %d frames \
                (livelock)"
               cap)
        else
          let k = Model.key st in
          match Hashtbl.find_opt cache k with
          | Some verdict -> verdict
          | None ->
              if List.exists (String.equal k) seen then
                Some "fault-free continuation cycles (livelock)"
              else
                let verdict =
                  match Model.apply config st None with
                  | None -> None
                  | Some tr -> go (k :: seen) tr.Model.state (n + 1)
                in
                Hashtbl.replace cache k verdict;
                verdict
  in
  go [] st 0

(* Replay a per-frame choice list from the initial state: the first
   invariant violation it produces, or — if the run survives the whole
   schedule — a convergence verdict on where it ended up. This is the
   predicate minimization shrinks against, and the oracle the tests use
   to confirm an emitted counterexample actually violates. *)
let replay config choices =
  let rec go st = function
    | [] -> (
        match converges config (Hashtbl.create 64) st with
        | None -> None
        | Some reason ->
            Some { Invariant.which = Invariant.Convergence; detail = reason })
    | c :: rest -> (
        match Model.apply config st c with
        | None -> None
        | Some tr -> (
            match tr.Model.violations with
            | v :: _ -> Some v
            | [] -> go tr.Model.state rest))
  in
  go (Model.start config) choices

(* Greedy minimization: drop each injected fault if the violation (any
   violation) survives without it, then trim clean trailing frames. The
   result replays deterministically, so what [sdds check] prints is the
   smallest schedule this greedy pass can reach, not just the BFS
   witness. *)
let minimize config choices =
  let arr = Array.of_list choices in
  Array.iteri
    (fun i c ->
      match c with
      | None -> ()
      | Some _ ->
          arr.(i) <- None;
          if replay config (Array.to_list arr) = None then arr.(i) <- c)
    arr;
  let choices = ref (Array.to_list arr) in
  let shorter l = List.filteri (fun i _ -> i < List.length l - 1) l in
  let continue = ref true in
  while !continue do
    let cand = shorter !choices in
    if List.length cand < List.length !choices && replay config cand <> None
    then choices := cand
    else continue := false
  done;
  !choices

(* One narrated line per frame of a schedule, for humans reading a
   counterexample. *)
let narrate config choices =
  let lines = ref [] in
  let rec go st frame = function
    | [] -> ()
    | c :: rest -> (
        match Model.command config st.Model.host with
        | None -> ()
        | Some cmd -> (
            match Model.apply config st c with
            | None -> ()
            | Some tr ->
                let line =
                  Printf.sprintf "frame %d: %s p1=%02X p2=%02X%s%s -> sw %02X%02X%s"
                    frame
                    (Protocol.Ins.name cmd.Sdds_soe.Apdu.ins)
                    cmd.Sdds_soe.Apdu.p1 cmd.Sdds_soe.Apdu.p2
                    (if String.equal cmd.Sdds_soe.Apdu.data "" then ""
                     else Printf.sprintf " data=%S" cmd.Sdds_soe.Apdu.data)
                    (match c with
                    | None -> ""
                    | Some k -> " [" ^ Fault.kind_to_string k ^ "]")
                    tr.Model.reply.Sdds_soe.Apdu.sw1
                    tr.Model.reply.Sdds_soe.Apdu.sw2
                    (match tr.Model.violations with
                    | [] -> ""
                    | v :: _ ->
                        Printf.sprintf "  !! %s" (Invariant.name v.Invariant.which))
                in
                lines := line :: !lines;
                if tr.Model.violations = [] then go tr.Model.state (frame + 1) rest))
  in
  go (Model.start config) 0 choices;
  List.rev !lines

let default_max_states = 2_000_000

let run ?(max_states = default_max_states) ~depth config =
  let visited = Keytbl.create 4096 in
  let conv_cache = Hashtbl.create 1024 in
  let expanded = ref 0
  and transitions = ref 0
  and dedup_hits = ref 0
  and terminal_ok = ref 0
  and terminal_failed = ref 0
  and max_depth = ref 0
  and truncated = ref false in
  let found = ref None in
  let q = Queue.create () in
  let st0 = Model.start config in
  Keytbl.replace visited (Model.key st0) ();
  Queue.add (st0, [], 0) q;
  while !found = None && not (Queue.is_empty q) do
    if !expanded >= max_states then begin
      truncated := true;
      Queue.clear q
    end
    else begin
      let st, rev_choices, d = Queue.pop q in
      incr expanded;
      if d > !max_depth then max_depth := d;
      (match converges config conv_cache st with
      | Some reason ->
          found :=
            Some
              ( List.rev rev_choices,
                { Invariant.which = Invariant.Convergence; detail = reason } )
      | None -> ());
      match Model.halted st with
      | Some (Ok ()) -> incr terminal_ok
      | Some (Error _) -> incr terminal_failed
      | None ->
          if d < depth && !found = None then
            let choices =
              None
              ::
              (if st.Model.faults_left > 0 then
                 List.map Option.some config.Model.alphabet
               else [])
            in
            List.iter
              (fun c ->
                if !found = None then
                  match Model.apply config st c with
                  | None -> ()
                  | Some tr -> (
                      incr transitions;
                      match tr.Model.violations with
                      | v :: _ ->
                          found := Some (List.rev (c :: rev_choices), v)
                      | [] ->
                          let k = Model.key tr.Model.state in
                          if Keytbl.mem visited k then incr dedup_hits
                          else begin
                            Keytbl.replace visited k ();
                            Queue.add (tr.Model.state, c :: rev_choices, d + 1) q
                          end))
              choices
    end
  done;
  let cex =
    Option.map
      (fun (choices, violation) ->
        let choices = minimize config choices in
        (* Re-judge on the minimized schedule: shrinking may surface the
           violation earlier or as a different (still real) invariant. *)
        let violation =
          match replay config choices with Some v -> v | None -> violation
        in
        Cex.make ~violation ~choices ~trace:(narrate config choices))
      !found
  in
  {
    cex;
    stats =
      {
        expanded = !expanded;
        transitions = !transitions;
        dedup_hits = !dedup_hits;
        terminal_ok = !terminal_ok;
        terminal_failed = !terminal_failed;
        max_depth = !max_depth;
        truncated = !truncated;
      };
  }
