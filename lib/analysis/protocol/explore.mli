(** Bounded exhaustive exploration of the protocol × fault product.

    Breadth-first over per-frame adversary choices (fault-free plus every
    kind in the config's alphabet while budget remains), deduplicating on
    {!Model.key} hashed with {!Sdds_util.Fnv}. At every expanded state
    the fault-free continuation is checked to terminate (the convergence
    invariant); every other invariant is judged per transition by
    {!Model.apply}. The first violation stops the search and is shrunk by
    greedy fault-dropping and tail-trimming into a minimized,
    deterministically-replayable {!Cex.t}. *)

module Fault = Sdds_fault.Fault

type stats = {
  expanded : int;  (** states dequeued and expanded *)
  transitions : int;  (** successor transitions taken *)
  dedup_hits : int;  (** successors already visited *)
  terminal_ok : int;  (** distinct halted-Ok states reached *)
  terminal_failed : int;  (** distinct typed-failure states reached *)
  max_depth : int;  (** deepest frame count explored *)
  truncated : bool;  (** stopped by the state cap, not exhaustion *)
}

type result = { cex : Cex.t option; stats : stats }

val default_max_states : int

val run : ?max_states:int -> depth:int -> Model.config -> result
(** Explore to [depth] frames. [cex = None] means no reachable
    interleaving within the bounds violates any invariant. *)

val replay : Model.config -> Fault.kind option list -> Invariant.violation option
(** Deterministically re-run a per-frame choice list from the initial
    state: the first violation it produces (with a convergence check on
    the final state), or [None] if every invariant holds — the oracle
    counterexample tests and minimization both use. *)

val narrate : Model.config -> Fault.kind option list -> string list
(** One human-readable line per frame of a schedule. *)
