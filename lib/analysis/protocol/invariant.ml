type t =
  | Exactly_once
  | Isolation
  | Retransmission
  | Convergence
  | Anti_rollback
  | View_integrity

let all =
  [
    Exactly_once;
    Isolation;
    Retransmission;
    Convergence;
    Anti_rollback;
    View_integrity;
  ]

let name = function
  | Exactly_once -> "exactly-once"
  | Isolation -> "channel-isolation"
  | Retransmission -> "retransmission"
  | Convergence -> "convergence"
  | Anti_rollback -> "anti-rollback"
  | View_integrity -> "view-integrity"

let describe = function
  | Exactly_once ->
      "every chained upload executes exactly once per session, and only \
       payloads the host actually sent"
  | Isolation ->
      "a frame addressed to one logical channel never alters another \
       channel's session"
  | Retransmission ->
      "a re-asked response block is retransmitted byte-identically, status \
       word included"
  | Convergence ->
      "once faults stop, every exchange reaches the exact view or a typed \
       failure — no livelock"
  | Anti_rollback ->
      "the card never evaluates a policy version below its high-water mark"
  | View_integrity ->
      "an exchange that completes drains exactly the authorized view"

type violation = { which : t; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "%s: %s" (name v.which) v.detail
