(** The finite host × card × fault product the checker explores.

    The card half is the {e production} transition function
    ({!Sdds_soe.Protocol.step}) instantiated with a synthetic
    string-handle backend — what the checker verifies is the code that
    runs. The host half is a downscaled terminal driver whose status-word
    triage is the real {!Sdds_soe.Remote_card.classify}. The adversary
    half reproduces {!Sdds_fault.Fault.Link}'s delivery semantics
    fault-kind by fault-kind, so counterexample schedules replay through
    [--fault-spec] with the same meaning.

    Downscaling: the sequence/block modulus and the response block size
    are shrunk (defaults 4 and 3) so the mod-N wraparound states — where
    the PR 6 duplicate-final-frame hole lives — are reachable within a
    handful of frames instead of 257. *)

module Protocol = Sdds_soe.Protocol
module Fault = Sdds_fault.Fault

type config = {
  semantics : Protocol.chain_semantics;
      (** chain completion-marker semantics under test *)
  modulus : int;  (** downscaled sequence/block modulus *)
  block : int;  (** downscaled response block size, bytes *)
  rules_frames : int;  (** frames per rules upload (1 byte per frame) *)
  with_query : bool;  (** upload a query chain too *)
  response_blocks : int;  (** view length in blocks *)
  versions : int list;  (** policy versions uploaded, in exchange order *)
  retry_budget : int;  (** host retries/re-establishments *)
  fault_budget : int;  (** adversary faults per explored trace *)
  alphabet : Fault.kind list;  (** fault kinds the adversary may pick *)
  bystander : bool;  (** pre-seed an innocent session on channel 1 *)
}

val current : config
(** The production protocol ({!Protocol.Identity_marker}), full fault
    alphabet, 3-frame uploads: the configuration [sdds check] must find
    clean. *)

val pre_fix : config
(** The preserved pre-fix fixture: {!Protocol.P2_marker} completion
    markers and a 5-frame upload whose final frame wraps to sequence 0
    mod 4 — the PR 6 hole's exact shape, downscaled. The checker must
    find a violation here. *)

val doc_id : string
val query_payload : string

val rules_payload : config -> int -> string
(** The rules blob for one policy version: a version digit followed by
    filler, one byte per chain frame. *)

val intents : config -> string list
(** Every payload the host legitimately uploads: the exactly-once
    monitor flags any executed payload outside this set. *)

val version_of : string -> int option
val view : config -> version:int -> query:string option -> string

(** The model host driver: the terminal side of one (or several,
    for multi-version anti-rollback runs) select → rules → [query] →
    evaluate → drain exchanges, triaging replies with the production
    {!Sdds_soe.Remote_card.classify}. *)
type phase =
  | Select
  | Rules of int
  | Query_upload
  | Evaluate
  | Drain of int
  | Done_ok
  | Failed of string

type host = {
  phase : phase;
  exchange : int;
  budget : int;
  drained : string;
}

val command : config -> host -> Sdds_soe.Apdu.command option
(** The next frame the host sends, [None] once halted. *)

(** Monitor windows for the trace-local invariants. *)
type mon = {
  executed : ((int * string) * int) list;
  blocks : (int * (string * (int * int))) list;
}

type t = {
  host : host;
  card : string Protocol.state;
  nv : int;
  faults_left : int;
  mon : mon;
}

val start : config -> t

val halted : t -> (unit, string) result option
(** [Some (Ok ())] once the host believes every exchange completed,
    [Some (Error reason)] on a typed failure, [None] while running. *)

type transition = {
  state : t;
  reply : Sdds_soe.Apdu.response;
  violations : Invariant.violation list;
}

val apply : config -> t -> Fault.kind option -> transition option
(** One host frame under one adversary choice ([None] = fault-free
    delivery). Returns [None] iff the host has halted. Violations are
    judged on this single transition; an empty list means every
    invariant held. *)

val key : t -> string
(** Canonical encoding of everything behaviorally relevant (host, card
    sessions, stable high-water mark, fault budget, monitor windows) —
    the visited set hashes this with {!Sdds_util.Fnv}. *)
