(** The safety properties the protocol checker monitors.

    Each invariant is judged on the observable {!Sdds_soe.Protocol.action}
    alphabet of the pure card machine plus the model host's bookkeeping,
    never on internal card state — what the checker flags is what a
    terminal or an auditor could actually witness. *)

type t =
  | Exactly_once
      (** A completed chained upload (RULES/QUERY) executes exactly once
          per session, and only with a payload the host uploaded — the
          property the PR 6 duplicate-final-frame holes violated. *)
  | Isolation
      (** A frame addressed to one logical channel leaves every other
          channel's session untouched. *)
  | Retransmission
      (** A GET RESPONSE re-asking for the block just served gets a
          byte-identical retransmission (payload and status word). *)
  | Convergence
      (** From every reachable state, the fault-free continuation
          terminates (exact view or typed failure) within a bounded
          number of steps: the retry/restart machinery cannot livelock. *)
  | Anti_rollback
      (** The card never evaluates a policy version below its stable
          high-water mark. *)
  | View_integrity
      (** When the host driver believes the exchange completed, the bytes
          it drained are exactly the authorized view for the uploaded
          policy version. *)

val all : t list

val name : t -> string
(** Stable kebab-case names ([exactly-once], [channel-isolation], ...):
    they appear in [sdds check] output, JSON reports and ci gates. *)

val describe : t -> string

type violation = { which : t; detail : string }

val pp_violation : Format.formatter -> violation -> unit
