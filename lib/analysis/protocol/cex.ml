module Fault = Sdds_fault.Fault

type t = {
  violation : Invariant.violation;
  steps : int;
  events : Fault.event list;
  spec : string;
  trace : string list;
}

let events_of_choices choices =
  List.concat
    (List.mapi
       (fun frame c ->
         match c with None -> [] | Some kind -> [ { Fault.frame; kind } ])
       choices)

let make ~violation ~choices ~trace =
  let events = events_of_choices choices in
  {
    violation;
    steps = List.length choices;
    events;
    spec = Fault.Schedule.to_spec (Fault.Schedule.of_events events);
    trace;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>violation: %a@,fault spec: %s (%d frames)@,@[<v>%a@]@]"
    Invariant.pp_violation t.violation t.spec t.steps
    (Format.pp_print_list Format.pp_print_string)
    t.trace
