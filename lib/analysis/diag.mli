(** Structured diagnostics of the static policy analyzer.

    Every diagnostic carries a machine-checkable {e witness} where one
    exists: the covering rule of a dead rule, a counterexample candidate
    document for an unresolved shadowing claim, a synthesized document
    exhibiting an allow/deny overlap together with the sign that wins on
    it. Tests replay these witnesses through the declarative oracle
    ({!Sdds_core.Oracle}) and the streaming engine, so an analyzer claim
    is never just the analyzer's word. *)

type severity = Error | Warning | Info

type overlap_relation =
  | Same_node  (** both rules select a common node: Denial-Takes-Precedence *)
  | Allow_below_deny
      (** the allow rule selects a node below a denied one:
          Most-Specific-Object lets the allow win there *)
  | Deny_below_allow  (** the deny wins below, under either policy *)

type kind =
  | Dead_rule of { rule : int; covered_by : int; kept : int }
      (** [rule] is provably subsumed by [covered_by] (containment
          witness); [kept] is the surviving representative at the end of
          the subsumption chain. Indices are into the input rule list. *)
  | Unsure_shadow of {
      rule : int;
      by : int;
      candidate : Sdds_xml.Dom.t option;
    }
      (** No subsumption homomorphism was found, but no canonical
          counterexample document refutes containment either — the
          fragment's known incompleteness corner. [candidate] is the
          canonical document that failed to refute (tests confirm it
          indeed fails: every node [rule] selects on it, [by] selects
          too). *)
  | Unsat_schema of { rule : int }
      (** The rule's path matches no document admitted by the declared
          schema: the rule can never apply. *)
  | Unknown_tag of { rule : int; tag : string }
      (** A literal tag of the rule's path is absent from the analyzed
          document's skip-index dictionary: the rule cannot match {e this}
          document (the skip index will suppress its automaton outright). *)
  | Overlap of {
      allow : int;
      deny : int;
      relation : overlap_relation;
      winner : Sdds_core.Rule.sign;
      witness : Sdds_xml.Dom.t;
      node : int;
    }
      (** Rules [allow] (positive) and [deny] (negative), same subject,
          both reach node [node] (preorder id) of the synthesized
          [witness] document — directly for [Same_node], via an
          ancestor/descendant pair otherwise. [winner] is the decision the
          conflict-resolution policy produces at that node, computed by
          the oracle on the witness itself. *)
  | Memory_bound of {
      bound_bytes : int;
      budget_bytes : int option;
      depth : int;
      depth_from_schema : bool;
    }
      (** Static worst-case SOE RAM for the compiled rule set at document
          depth [depth] (derived from the schema when
          [depth_from_schema]). An [Error] when a budget is given and
          exceeded, [Info] otherwise. *)
  | Internal_error of { pass : string; message : string }
      (** An analysis pass raised — reported instead of propagated so one
          broken pass cannot hide the others' findings. CI fails on it. *)

type t = kind

val severity : t -> severity

val slug : t -> string
(** Stable machine identifier of the kind — the ["kind"] field of
    {!to_json} (["dead-rule"], ["overlap"], ...). *)

val message : rules:Sdds_core.Rule.t array -> t -> string
(** One-line human rendering; [rules] supplies the text of the rules the
    indices point at. *)

val to_json : rules:Sdds_core.Rule.t array -> t -> Json.t
(** Machine rendering. Witness documents are embedded as serialized XML
    strings under ["witness"]/["candidate"] keys. *)

val pp : rules:Sdds_core.Rule.t array -> Format.formatter -> t -> unit
(** [SEVERITY kind: message] — the text-mode report line. *)
