(** Minimal JSON values, printing and parsing.

    The analyzer's machine-readable output and the benchmark driver's
    [BENCH_*.json] exports share this value type with no external
    dependency. {!parse} exists for the consumers of those files inside
    the repo itself — the perf-regression gate reads a committed
    baseline back, and tests round-trip CLI snapshots. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. Strings are escaped per RFC 8259;
    floats render with the shortest round-trippable decimal and
    non-finite values become [null]. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering, two spaces per level. *)

val parse : string -> (t, string) result
(** Full-document RFC 8259 parser: string escapes including [\uXXXX]
    surrogate pairs, numbers as {!Int} when the lexeme is integral and
    fits, {!Float} otherwise. Rejects trailing garbage. The error
    carries a byte offset. *)

(** {2 Walking parsed documents} *)

val member : string -> t -> t option
(** [member k j] is field [k] of object [j], [None] on non-objects. *)

val to_float_opt : t -> float option
(** Numeric coercion: both {!Int} and {!Float} succeed. *)

val to_int_opt : t -> int option

val to_string_opt : t -> string option

val to_list_opt : t -> t list option
