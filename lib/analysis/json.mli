(** Minimal JSON values and printing.

    The analyzer's machine-readable output needs no parsing and no
    external dependency; this is the same hand-rolled approach the
    benchmark driver uses for its [BENCH_*.json] exports, packaged as a
    value type so diagnostics can be composed before serialization. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. Strings are escaped per RFC 8259. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering, two spaces per level. *)
