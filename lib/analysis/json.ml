type t =
  | Null
  | Bool of bool
  | Int of int
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | String s -> escape buf s
    | List l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          l;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            go x)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let rec pp ppf = function
  | List (_ :: _ as l) ->
      Format.fprintf ppf "[@[<v 1>";
      List.iteri
        (fun i x ->
          if i > 0 then Format.fprintf ppf ",";
          Format.fprintf ppf "@,%a" pp x)
        l;
      Format.fprintf ppf "@]@,]"
  | Obj (_ :: _ as fields) ->
      Format.fprintf ppf "{@[<v 1>";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Format.fprintf ppf ",";
          let buf = Buffer.create 16 in
          escape buf k;
          Format.fprintf ppf "@,%s: %a" (Buffer.contents buf) pp x)
        fields;
      Format.fprintf ppf "@]@,}"
  | v -> Format.pp_print_string ppf (to_string v)
