type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        (* Shortest round-trippable decimal; never "nan"/"inf" (invalid
           JSON) — clamp those to null like most serializers. *)
        if Float.is_finite f then
          let s = Printf.sprintf "%.12g" f in
          Buffer.add_string buf
            (if float_of_string s = f then s else Printf.sprintf "%.17g" f)
        else Buffer.add_string buf "null"
    | String s -> escape buf s
    | List l ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          l;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            escape buf k;
            Buffer.add_char buf ':';
            go x)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

let rec pp ppf = function
  | List (_ :: _ as l) ->
      Format.fprintf ppf "[@[<v 1>";
      List.iteri
        (fun i x ->
          if i > 0 then Format.fprintf ppf ",";
          Format.fprintf ppf "@,%a" pp x)
        l;
      Format.fprintf ppf "@]@,]"
  | Obj (_ :: _ as fields) ->
      Format.fprintf ppf "{@[<v 1>";
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Format.fprintf ppf ",";
          let buf = Buffer.create 16 in
          escape buf k;
          Format.fprintf ppf "@,%s: %a" (Buffer.contents buf) pp x)
        fields;
      Format.fprintf ppf "@]@,}"
  | v -> Format.pp_print_string ppf (to_string v)

(* A recursive-descent RFC 8259 parser, sized for the benchmark
   baselines and CLI snapshots this repo emits: full string escapes
   (including \uXXXX with surrogate pairs), numbers split into [Int]
   when the lexeme is integral and in range, [Float] otherwise. *)

exception Parse_error of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "truncated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
          | 'b' ->
              Buffer.add_char buf '\b';
              go ()
          | 'f' ->
              Buffer.add_char buf '\012';
              go ()
          | 'n' ->
              Buffer.add_char buf '\n';
              go ()
          | 'r' ->
              Buffer.add_char buf '\r';
              go ()
          | 't' ->
              Buffer.add_char buf '\t';
              go ()
          | 'u' ->
              let cp = hex4 () in
              let cp =
                if cp >= 0xD800 && cp <= 0xDBFF then begin
                  (* high surrogate: require \uXXXX low surrogate *)
                  if
                    !pos + 2 <= n
                    && s.[!pos] = '\\'
                    && s.[!pos + 1] = 'u'
                  then begin
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo >= 0xDC00 && lo <= 0xDFFF then
                      0x10000
                      + ((cp - 0xD800) lsl 10)
                      + (lo - 0xDC00)
                    else fail "unpaired surrogate"
                  end
                  else fail "unpaired surrogate"
                end
                else cp
              in
              add_utf8 buf cp;
              go ()
          | _ -> fail "bad escape")
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let integral = ref true in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
          advance ();
          digits ()
      | _ -> ()
    in
    digits ();
    (match peek () with
    | Some '.' ->
        integral := false;
        advance ();
        digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
        integral := false;
        advance ();
        (match peek () with
        | Some ('+' | '-') -> advance ()
        | _ -> ());
        digits ()
    | _ -> ());
    let lexeme = String.sub s start (!pos - start) in
    if lexeme = "" || lexeme = "-" then fail "expected number";
    if !integral then
      match int_of_string_opt lexeme with
      | Some i -> Int i
      | None -> Float (float_of_string lexeme)
    else Float (float_of_string lexeme)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    | None -> fail "unexpected end of input"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* Typed accessors for walking parsed documents. *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float_opt = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
