module Dom = Sdds_xml.Dom
module Eval = Sdds_xpath.Eval
module Containment = Sdds_xpath.Containment
module Rule = Sdds_core.Rule
module Oracle = Sdds_core.Oracle

(* Preorder-id -> parent-id map of an indexed document (root maps to no
   entry). *)
let parents indexed =
  let tbl = Hashtbl.create 16 in
  let rec walk (n : Eval.node) =
    List.iter
      (fun (c : Eval.node) ->
        Hashtbl.replace tbl c.Eval.id n.Eval.id;
        walk c)
      n.Eval.children
  in
  walk indexed;
  tbl

let is_ancestor tbl ~anc id =
  let rec up id =
    match Hashtbl.find_opt tbl id with
    | None -> false
    | Some p -> p = anc || up p
  in
  up id

(* Contested node on one candidate document, most direct conflict first:
   a node both rules select beats an ancestor/descendant pair. *)
let classify doc ~allow ~deny =
  let indexed = Eval.index doc in
  let ids_a = Eval.select allow.Rule.path indexed in
  let ids_d = Eval.select deny.Rule.path indexed in
  if ids_a = [] || ids_d = [] then None
  else
    match List.find_opt (fun id -> List.mem id ids_d) ids_a with
    | Some id -> Some (Diag.Same_node, id)
    | None -> (
        let tbl = parents indexed in
        let below anc_ids ids =
          List.find_opt
            (fun id -> List.exists (fun anc -> is_ancestor tbl ~anc id) anc_ids)
            ids
        in
        match below ids_d ids_a with
        | Some id -> Some (Diag.Allow_below_deny, id)
        | None -> (
            match below ids_a ids_d with
            | Some id -> Some (Diag.Deny_below_allow, id)
            | None -> None))

(* Every document obtained by adding [sub] as an extra child of one
   element of [doc]. Canonical instantiations of a single pattern cannot
   exhibit cross-depth overlaps between two patterns (each instantiates
   only its own structure); grafting one instantiation inside the other
   covers the ancestor/descendant cases — e.g. an allow for
   [//prescription/drug] under a deny for [//patient/prescription] only
   conflicts on a document containing both shapes nested. *)
let rec grafts sub = function
  | Dom.Text _ -> []
  | Dom.Element (tag, kids) ->
      Dom.Element (tag, kids @ [ sub ])
      :: List.concat
           (List.mapi
              (fun i k ->
                List.map
                  (fun k' ->
                    Dom.Element
                      (tag, List.mapi (fun j kj -> if j = i then k' else kj) kids))
                  (grafts sub k))
              kids)

(* Candidate documents for one rule pair: each pattern's own canonical
   instantiations first (they find same-node overlaps on the smallest
   witness), then all cross-grafts. Capped — every candidate is verified
   through the oracle, so dropping some only loses best-effort recall. *)
let candidate_docs pa pd =
  let da = Containment.canonical_docs pa in
  let dd = Containment.canonical_docs pd in
  let crossed =
    List.concat_map
      (fun a -> List.concat_map (fun d -> grafts a d @ grafts d a) dd)
      da
  in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  da @ dd @ take 256 crossed

let find ~allow ~deny =
  if not (String.equal allow.Rule.subject deny.Rule.subject) then None
  else
    let docs = candidate_docs allow.Rule.path deny.Rule.path in
    let rec try_docs = function
      | [] -> None
      | doc :: rest -> (
          match classify doc ~allow ~deny with
          | None -> try_docs rest
          | Some (relation, node) ->
              let decisions =
                Oracle.decisions ~rules:[ allow; deny ] doc
              in
              Some (relation, decisions.(node), doc, node))
    in
    try_docs docs
