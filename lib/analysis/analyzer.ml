module Ast = Sdds_xpath.Ast
module Containment = Sdds_xpath.Containment
module Rule = Sdds_core.Rule
module Rule_opt = Sdds_core.Rule_opt
module Schema = Sdds_core.Schema
module Compile = Sdds_core.Compile

type report = {
  rules : Rule.t array;
  diagnostics : Diag.t list;
  bound : Memory_bound.t;
  kept : int;
}

(* Run one pass, converting an escape into a diagnostic instead of
   aborting the whole analysis. *)
let guarded ~pass f =
  try f () with
  | exn -> [ Diag.Internal_error { pass; message = Printexc.to_string exn } ]

(* All literal tag names a path mentions, predicates included. *)
let rec step_tags acc (s : Ast.step) =
  let acc =
    match s.Ast.test with Ast.Name n -> n :: acc | Ast.Any -> acc
  in
  List.fold_left
    (fun acc (p : Ast.pred) -> List.fold_left step_tags acc p.Ast.ppath)
    acc s.Ast.preds

let path_tags (p : Ast.t) =
  List.sort_uniq String.compare (List.fold_left step_tags [] p.Ast.steps)

(* ------------------------------------------------------------------ *)
(* Passes                                                              *)
(* ------------------------------------------------------------------ *)

let dead_rules rules verdicts =
  let diags = ref [] in
  Array.iteri
    (fun i v ->
      match v with
      | Rule_opt.Kept -> ()
      | Rule_opt.Subsumed { by } ->
          diags :=
            Diag.Dead_rule
              { rule = i; covered_by = by; kept = Rule_opt.representative verdicts i }
            :: !diags)
    verdicts;
  ignore rules;
  List.rev !diags

(* Pairs where the homomorphism test failed but no canonical
   counterexample refutes containment either: the sound-but-incomplete
   test's blind spot, surfaced honestly. Only pairs whose signs would
   make the shadowing meaningful are checked, and pairs already reported
   dead are skipped. *)
let unsure_shadows rules verdicts =
  let n = Array.length rules in
  let sign_compatible r by =
    match (r.Rule.sign, by.Rule.sign) with
    | Rule.Allow, Rule.Allow | Rule.Deny, Rule.Deny | Rule.Allow, Rule.Deny ->
        true
    | Rule.Deny, Rule.Allow -> false
  in
  let diags = ref [] in
  for i = 0 to n - 1 do
    if verdicts.(i) = Rule_opt.Kept then
      for j = 0 to n - 1 do
        if
          j <> i
          && String.equal rules.(i).Rule.subject rules.(j).Rule.subject
          && sign_compatible rules.(i) rules.(j)
        then
          match Containment.decide rules.(j).Rule.path rules.(i).Rule.path with
          | Containment.Contained | Containment.Not_contained _ -> ()
          | Containment.Unknown candidate ->
              diags :=
                Diag.Unsure_shadow { rule = i; by = j; candidate } :: !diags
      done
  done;
  List.rev !diags

let unsat_under_schema schema rules =
  let diags = ref [] in
  Array.iteri
    (fun i r ->
      if not (Schema.satisfiable schema r.Rule.path) then
        diags := Diag.Unsat_schema { rule = i } :: !diags)
    rules;
  List.rev !diags

let unknown_tags dictionary rules =
  let known tag = List.mem tag dictionary in
  let diags = ref [] in
  Array.iteri
    (fun i r ->
      List.iter
        (fun tag ->
          if not (known tag) then
            diags := Diag.Unknown_tag { rule = i; tag } :: !diags)
        (path_tags r.Rule.path))
    rules;
  List.rev !diags

let overlaps rules =
  let n = Array.length rules in
  let diags = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if rules.(i).Rule.sign = Rule.Allow && rules.(j).Rule.sign = Rule.Deny
      then
        match Overlap.find ~allow:rules.(i) ~deny:rules.(j) with
        | None -> ()
        | Some (relation, winner, witness, node) ->
            diags :=
              Diag.Overlap
                { allow = i; deny = j; relation; winner; witness; node }
              :: !diags
    done
  done;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let severity_rank = function
  | Diag.Error -> 0
  | Diag.Warning -> 1
  | Diag.Info -> 2

let run ?schema ?dictionary ?depth ?chunk_plain_bytes ?budget_bytes ?query
    rules_list =
  let rules = Array.of_list rules_list in
  let verdicts =
    try Rule_opt.analyze rules_list
    with _ -> Array.map (fun _ -> Rule_opt.Kept) rules
  in
  let kept =
    Array.fold_left
      (fun acc v -> if v = Rule_opt.Kept then acc + 1 else acc)
      0 verdicts
  in
  let depth, depth_from_schema =
    match depth with
    | Some d -> (d, false)
    | None -> (
        match schema with
        | Some s -> (
            match Schema.depth_bound s with
            | Some d -> (d, true)
            | None -> (Memory_bound.default_depth, false))
        | None -> (Memory_bound.default_depth, false))
  in
  let tag_possible =
    match (schema, dictionary) with
    | _, Some tags -> Some (fun t -> List.mem t tags)
    | Some s, None -> Some (fun t -> Schema.declared s t)
    | None, None -> None
  in
  let compiled = Compile.compile ?query rules_list in
  let bound =
    Memory_bound.compute ?tag_possible ?chunk_plain_bytes
      ?dict_size:(Option.map List.length dictionary)
      ~depth compiled
  in
  let diagnostics =
    guarded ~pass:"dead-rules" (fun () -> dead_rules rules verdicts)
    @ guarded ~pass:"unsure-shadows" (fun () -> unsure_shadows rules verdicts)
    @ (match schema with
      | None -> []
      | Some s ->
          guarded ~pass:"schema-satisfiability" (fun () ->
              unsat_under_schema s rules))
    @ (match dictionary with
      | None -> []
      | Some tags ->
          guarded ~pass:"dictionary-tags" (fun () -> unknown_tags tags rules))
    @ guarded ~pass:"overlaps" (fun () -> overlaps rules)
    @ [
        Diag.Memory_bound
          {
            bound_bytes = bound.Memory_bound.bound_bytes;
            budget_bytes;
            depth;
            depth_from_schema;
          };
      ]
  in
  let diagnostics =
    List.stable_sort
      (fun a b ->
        compare (severity_rank (Diag.severity a)) (severity_rank (Diag.severity b)))
      diagnostics
  in
  { rules; diagnostics; bound; kept }

let has_errors report =
  List.exists (fun d -> Diag.severity d = Diag.Error) report.diagnostics

let to_json report =
  Json.Obj
    [
      ("rules", Json.Int (Array.length report.rules));
      ("kept", Json.Int report.kept);
      ( "bound",
        Json.Obj
          [
            ("depth", Json.Int report.bound.Memory_bound.depth);
            ("state_words", Json.Int report.bound.Memory_bound.state_words);
            ("reader_words", Json.Int report.bound.Memory_bound.reader_words);
            ("bound_bytes", Json.Int report.bound.Memory_bound.bound_bytes);
          ] );
      ( "diagnostics",
        Json.List
          (List.map (Diag.to_json ~rules:report.rules) report.diagnostics) );
    ]

let pp ppf report =
  Format.fprintf ppf "%d rule(s), %d kept after pruning@."
    (Array.length report.rules) report.kept;
  Format.fprintf ppf
    "static memory bound at depth %d: %d state words, %d reader words, %dB@."
    report.bound.Memory_bound.depth report.bound.Memory_bound.state_words
    report.bound.Memory_bound.reader_words
    report.bound.Memory_bound.bound_bytes;
  List.iter
    (fun d -> Format.fprintf ppf "%a@." (Diag.pp ~rules:report.rules) d)
    report.diagnostics
