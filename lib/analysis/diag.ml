module Dom = Sdds_xml.Dom
module Serializer = Sdds_xml.Serializer
module Rule = Sdds_core.Rule

type severity = Error | Warning | Info

type overlap_relation = Same_node | Allow_below_deny | Deny_below_allow

type kind =
  | Dead_rule of { rule : int; covered_by : int; kept : int }
  | Unsure_shadow of {
      rule : int;
      by : int;
      candidate : Dom.t option;
    }
  | Unsat_schema of { rule : int }
  | Unknown_tag of { rule : int; tag : string }
  | Overlap of {
      allow : int;
      deny : int;
      relation : overlap_relation;
      winner : Rule.sign;
      witness : Dom.t;
      node : int;
    }
  | Memory_bound of {
      bound_bytes : int;
      budget_bytes : int option;
      depth : int;
      depth_from_schema : bool;
    }
  | Internal_error of { pass : string; message : string }

type t = kind

let severity = function
  | Dead_rule _ | Unsat_schema _ | Unknown_tag _ -> Warning
  | Unsure_shadow _ | Overlap _ -> Info
  | Memory_bound { budget_bytes = Some b; bound_bytes; _ } when bound_bytes > b
    ->
      Error
  | Memory_bound _ -> Info
  | Internal_error _ -> Error

let kind_slug = function
  | Dead_rule _ -> "dead-rule"
  | Unsure_shadow _ -> "unsure-shadow"
  | Unsat_schema _ -> "unsat-schema"
  | Unknown_tag _ -> "unknown-tag"
  | Overlap _ -> "overlap"
  | Memory_bound _ -> "memory-bound"
  | Internal_error _ -> "internal-error"

let slug = kind_slug

let relation_slug = function
  | Same_node -> "same-node"
  | Allow_below_deny -> "allow-below-deny"
  | Deny_below_allow -> "deny-below-allow"

let sign_slug = function Rule.Allow -> "allow" | Rule.Deny -> "deny"

let rule_text rules i =
  if i >= 0 && i < Array.length rules then Rule.to_string rules.(i)
  else Printf.sprintf "#%d" i

let message ~rules = function
  | Dead_rule { rule; covered_by; kept } ->
      Printf.sprintf "rule %d (%s) is dead: subsumed by rule %d (%s)%s" rule
        (rule_text rules rule) covered_by
        (rule_text rules covered_by)
        (if kept = covered_by then ""
         else Printf.sprintf ", ultimately covered by kept rule %d" kept)
  | Unsure_shadow { rule; by; candidate } ->
      Printf.sprintf
        "rule %d (%s) may be shadowed by rule %d (%s): no homomorphism, but \
         no canonical counterexample refutes containment%s"
        rule (rule_text rules rule) by (rule_text rules by)
        (match candidate with
        | None -> ""
        | Some d -> "; candidate " ^ Serializer.to_string d)
  | Unsat_schema { rule } ->
      Printf.sprintf
        "rule %d (%s) is unsatisfiable: its path matches no document the \
         schema admits"
        rule (rule_text rules rule)
  | Unknown_tag { rule; tag } ->
      Printf.sprintf
        "rule %d (%s) cannot match this document: tag '%s' is not in its \
         dictionary"
        rule (rule_text rules rule) tag
  | Overlap { allow; deny; relation; winner; witness; node } ->
      Printf.sprintf
        "rules %d (%s) and %d (%s) overlap (%s): on witness %s, %s wins at \
         node %d"
        allow (rule_text rules allow) deny (rule_text rules deny)
        (match relation with
        | Same_node -> "same node, denial takes precedence"
        | Allow_below_deny -> "allow below deny, most-specific wins"
        | Deny_below_allow -> "deny below allow")
        (Serializer.to_string witness)
        (sign_slug winner) node
  | Memory_bound { bound_bytes; budget_bytes; depth; depth_from_schema } -> (
      let base =
        Printf.sprintf "static worst-case SOE RAM at depth %d%s: %dB" depth
          (if depth_from_schema then " (from schema)" else " (assumed)")
          bound_bytes
      in
      match budget_bytes with
      | None -> base
      | Some b when bound_bytes > b ->
          Printf.sprintf "%s exceeds the %dB budget" base b
      | Some b -> Printf.sprintf "%s fits the %dB budget" base b)
  | Internal_error { pass; message } ->
      Printf.sprintf "analysis pass '%s' failed: %s" pass message

let to_json ~rules d =
  let rule_field name i =
    [ (name, Json.Int i); (name ^ "_text", Json.String (rule_text rules i)) ]
  in
  let fields =
    match d with
    | Dead_rule { rule; covered_by; kept } ->
        rule_field "rule" rule
        @ rule_field "covered_by" covered_by
        @ [ ("kept", Json.Int kept) ]
    | Unsure_shadow { rule; by; candidate } ->
        rule_field "rule" rule @ rule_field "by" by
        @ [
            ( "candidate",
              match candidate with
              | None -> Json.Null
              | Some doc -> Json.String (Serializer.to_string doc) );
          ]
    | Unsat_schema { rule } -> rule_field "rule" rule
    | Unknown_tag { rule; tag } ->
        rule_field "rule" rule @ [ ("tag", Json.String tag) ]
    | Overlap { allow; deny; relation; winner; witness; node } ->
        rule_field "allow" allow @ rule_field "deny" deny
        @ [
            ("relation", Json.String (relation_slug relation));
            ("winner", Json.String (sign_slug winner));
            ("witness", Json.String (Serializer.to_string witness));
            ("node", Json.Int node);
          ]
    | Memory_bound { bound_bytes; budget_bytes; depth; depth_from_schema } ->
        [
          ("bound_bytes", Json.Int bound_bytes);
          ( "budget_bytes",
            match budget_bytes with None -> Json.Null | Some b -> Json.Int b );
          ("depth", Json.Int depth);
          ("depth_from_schema", Json.Bool depth_from_schema);
        ]
    | Internal_error { pass; message } ->
        [ ("pass", Json.String pass); ("message", Json.String message) ]
  in
  Json.Obj
    (("kind", Json.String (kind_slug d))
    :: ( "severity",
         Json.String
           (match severity d with
           | Error -> "error"
           | Warning -> "warning"
           | Info -> "info") )
    :: fields)

let pp ~rules ppf d =
  let sev =
    match severity d with
    | Error -> "ERROR"
    | Warning -> "WARN"
    | Info -> "INFO"
  in
  Format.fprintf ppf "%-5s %-14s %s" sev (kind_slug d) (message ~rules d)
