module Ast = Sdds_xpath.Ast
module Compile = Sdds_core.Compile

type t = {
  depth : int;
  state_words : int;
  reader_words : int;
  bound_bytes : int;
}

let default_depth = 16

(* Saturating arithmetic over a cap far above any plausible RAM budget:
   an adversarial rule set must yield "too big", never a wrapped small
   number. *)
let cap = 0x3FFFFFFF
let sat_add a b = if a >= cap - b then cap else a + b
let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a >= (cap + b - 1) / b then cap else a * b

(* ------------------------------------------------------------------ *)
(* Path contexts                                                       *)
(* ------------------------------------------------------------------ *)

(* Everything the per-frame sums need to know about one compiled path
   (a spine, or the path of a live predicate). Frame depths: 0 is the
   engine's virtual-root frame, an element at document depth d (root =
   1) owns frame d. *)
type ctx = {
  is_pred : bool;
  owner_amb : bool;  (* anchor depth ambiguous (preds under // sites) *)
  anchor_lo : int;  (* minimal anchor frame depth (0 for spines) *)
  steps : Compile.cstep array;
  first_blocked : int;
      (* index of the first step that can never match under
         [tag_possible] ([length] when all can); token positions beyond
         it are unreachable *)
}

let max_pos ctx = min (Array.length ctx.steps - 1) ctx.first_blocked

(* Minimal frame depth where a position-[i] token can wait. *)
let lo ctx i = ctx.anchor_lo + i

(* Whether the frame depth of a position-[i] token is ambiguous: some
   earlier step used the descendant axis, or the anchor itself floats. *)
let amb_before ctx i =
  ctx.owner_amb
  || begin
       let rec scan j =
         j < i
         && (ctx.steps.(j).Compile.axis = Ast.Descendant || scan (j + 1))
       in
       scan 0
     end

(* Match-depth ambiguity of step [j] (where its predicates anchor). *)
let amb_at_match ctx j =
  amb_before ctx j || ctx.steps.(j).Compile.axis = Ast.Descendant

let n_preds ctx j = List.length ctx.steps.(j).Compile.step_preds

(* Distinct condition sets a position-[i] token can carry in a frame at
   depth [d]: each predicate-bearing matched step contributes one
   variable, identified by the step's match depth. *)
let conds_combos ctx ~upto ~d =
  let acc = ref 1 in
  for j = 0 to upto - 1 do
    if n_preds ctx j > 0 && amb_at_match ctx j then
      acc := sat_mul !acc (max 1 (d - lo ctx j))
  done;
  !acc

(* Length bound of those condition sets (words per token above 3). *)
let conds_len ctx ~upto =
  let acc = ref 0 in
  for j = 0 to min upto ctx.first_blocked - 1 do
    acc := sat_add !acc (n_preds ctx j)
  done;
  !acc

(* Simultaneously live instances anchored shallow enough to reach frame
   [d] (one per open anchor depth). *)
let owner_mult ctx ~d =
  if not ctx.is_pred then 1
  else if ctx.owner_amb then max 1 (min d (cap - 1) - ctx.anchor_lo + 1)
  else 1

(* ------------------------------------------------------------------ *)
(* Activity / ambiguity propagation                                    *)
(* ------------------------------------------------------------------ *)

type pred_state = {
  mutable active : bool;
  mutable p_owner_amb : bool;
  mutable p_anchor_lo : int;
}

(* Mark every predicate reachable from the spines with the weakest
   (largest) anchor ambiguity and smallest anchor depth over its
   reference sites, recursively. The site graph is acyclic (predicates
   nest), so the recursion terminates; re-walking on a weakened update
   keeps multi-site references sound. *)
let propagate compiled ~tag_possible =
  let preds =
    Array.map
      (fun _ -> { active = false; p_owner_amb = false; p_anchor_lo = cap })
      compiled.Compile.preds
  in
  let possible step =
    match step.Compile.test with
    | Ast.Any -> true
    | Ast.Name tag -> tag_possible tag
  in
  let first_blocked steps =
    let n = Array.length steps in
    let rec scan j = if j >= n || not (possible steps.(j)) then j else scan (j + 1) in
    scan 0
  in
  let rec walk ctx =
    let fb = ctx.first_blocked in
    Array.iteri
      (fun j step ->
        if j < fb then
          List.iter
            (fun pid ->
              let st = preds.(pid) in
              let site_amb = amb_at_match ctx j in
              let site_lo = lo ctx j + 1 in
              let weakened =
                (not st.active)
                || (site_amb && not st.p_owner_amb)
                || site_lo < st.p_anchor_lo
              in
              if weakened then begin
                st.active <- true;
                st.p_owner_amb <- st.p_owner_amb || site_amb;
                st.p_anchor_lo <- min st.p_anchor_lo site_lo;
                let ppath = compiled.Compile.preds.(pid).Compile.ppath in
                walk
                  {
                    is_pred = true;
                    owner_amb = st.p_owner_amb;
                    anchor_lo = st.p_anchor_lo;
                    steps = ppath;
                    first_blocked = first_blocked ppath;
                  }
              end)
            step.Compile.step_preds)
      ctx.steps
  in
  Array.iter
    (fun sp ->
      let steps = sp.Compile.cpath in
      walk
        {
          is_pred = false;
          owner_amb = false;
          anchor_lo = 0;
          steps;
          first_blocked = first_blocked steps;
        })
    compiled.Compile.spines;
  let spine_ctxs =
    Array.to_list compiled.Compile.spines
    |> List.map (fun sp ->
           let steps = sp.Compile.cpath in
           {
             is_pred = false;
             owner_amb = false;
             anchor_lo = 0;
             steps;
             first_blocked = first_blocked steps;
           })
  in
  let pred_ctxs =
    List.filter_map
      (fun (pid, st) ->
        if not st.active then None
        else
          let ppath = compiled.Compile.preds.(pid).Compile.ppath in
          Some
            ( pid,
              {
                is_pred = true;
                owner_amb = st.p_owner_amb;
                anchor_lo = st.p_anchor_lo;
                steps = ppath;
                first_blocked = first_blocked ppath;
              } ))
      (List.mapi (fun i st -> (i, st)) (Array.to_list preds))
  in
  (spine_ctxs, pred_ctxs)

(* ------------------------------------------------------------------ *)
(* The bound                                                           *)
(* ------------------------------------------------------------------ *)

let compute ?(tag_possible = fun _ -> true) ?(chunk_plain_bytes = 240)
    ?(dict_size = 64) ~depth compiled =
  let spine_ctxs, pred_ctxs = propagate compiled ~tag_possible in
  let all_ctxs = spine_ctxs @ List.map snd pred_ctxs in
  let k ctx = Array.length ctx.steps in
  let complete ctx = ctx.first_blocked >= k ctx in
  let comp_lo ctx = ctx.anchor_lo + k ctx in
  let comp_amb ctx = amb_before ctx (k ctx) in
  (* Token words of one frame at depth [d]. A position-[i] token sits
     there when the depth is reachable and either exactly pinned, blurred
     by an earlier descendant axis, or the position itself waits on a
     descendant axis (those self-replicate into every deeper frame). *)
  let frame_tokens d =
    List.fold_left
      (fun acc ctx ->
        let mp = max_pos ctx in
        let words = ref 0 in
        for i = 0 to mp do
          let present =
            d >= lo ctx i
            && (d = lo ctx i
               || amb_before ctx i
               || ctx.steps.(i).Compile.axis = Ast.Descendant)
          in
          if present then
            words :=
              sat_add !words
                (sat_mul
                   (sat_mul (owner_mult ctx ~d) (conds_combos ctx ~upto:i ~d))
                   (3 + conds_len ctx ~upto:i))
        done;
        sat_add acc !words)
      0 all_ctxs
  in
  (* Text watchers at depth [d]: value-target predicates whose path can
     complete there; one watcher per (instance, condition-set)
     completion. *)
  let frame_watchers d =
    List.fold_left
      (fun acc (pid, ctx) ->
        let cpred = compiled.Compile.preds.(pid) in
        match cpred.Compile.target with
        | Ast.Exists -> acc
        | Ast.Value _ ->
            if not (complete ctx) then acc
            else if d >= comp_lo ctx && (comp_amb ctx || d = comp_lo ctx) then
              sat_add acc
                (sat_mul
                   (sat_mul (owner_mult ctx ~d)
                      (conds_combos ctx ~upto:(k ctx) ~d))
                   (2 + conds_len ctx ~upto:(k ctx)))
            else acc)
      0 pred_ctxs
  in
  (* Instances anchored at depth [d] (one word each in the frame). *)
  let frame_anchored d =
    List.fold_left
      (fun acc (_, ctx) ->
        if d >= ctx.anchor_lo && (ctx.owner_amb || d = ctx.anchor_lo) then
          acc + 1
        else acc)
      0 pred_ctxs
  in
  let frames = ref 0 in
  for d = 0 to depth do
    !frames
    |> sat_add (4 + frame_anchored d)
    |> sat_add (frame_tokens d)
    |> sat_add (frame_watchers d)
    |> fun w -> frames := w
  done;
  (* Live instances and their candidate conjunctions: candidates are
     distinct subsets of live condition variables — per predicate-bearing
     step, its depth choices plus one for "already resolved away". *)
  let insts =
    List.fold_left
      (fun acc (_, ctx) ->
        let cand_words =
          if (not (complete ctx)) || comp_lo ctx > depth then 0
          else
            let full = conds_len ctx ~upto:(k ctx) in
            if full = 0 then 0
            else begin
              let combos = ref 1 in
              for j = 0 to k ctx - 1 do
                if n_preds ctx j > 0 then
                  combos :=
                    sat_mul !combos
                      (1
                      +
                      if amb_at_match ctx j then max 1 (depth - lo ctx j)
                      else 1)
              done;
              sat_mul !combos (1 + full)
            end
        in
        sat_add acc (sat_mul (owner_mult ctx ~d:depth) (4 + cand_words)))
      0 pred_ctxs
  in
  let rdeps =
    sat_mul 2
      (List.fold_left
         (fun acc (_, ctx) -> sat_add acc (owner_mult ctx ~d:depth))
         0 pred_ctxs)
  in
  let state_words = sat_add (sat_add !frames insts) rdeps in
  let reader_words = sat_mul (depth + 1) (3 + ((dict_size + 31) / 32)) in
  let packed_bytes_per_word = 2 in
  let bound_bytes =
    sat_add
      (sat_mul packed_bytes_per_word (sat_add state_words reader_words))
      (chunk_plain_bytes + 16 + 128)
  in
  { depth; state_words; reader_words; bound_bytes }

let fits t ~ram_bytes = t.bound_bytes <= ram_bytes
