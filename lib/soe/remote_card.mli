(** The card behind a real APDU transport.

    {!Card} exposes an OCaml API; on the demo platform, however, "the
    complexity of the access control, query and security management is
    confined in the smart card and its proxy", and everything crosses an
    ISO 7816 link in 255-byte frames. This module provides both ends:

    - {!Host} is the card-resident command dispatcher: it decodes
      {!Apdu.command} frames (select document, install grant, load rules,
      set query, evaluate, drain response), drives {!Card}, and encodes
      status words + response frames;
    - {!Client} is the terminal-side stub: it marshals a query into
      command chains, feeds them to a transport function, reassembles the
      response stream and decodes it with [Output_codec].

    A [Client] talking to a [Host] over a direct function call must be
    indistinguishable from calling {!Card.evaluate} — the tests enforce
    it — while every byte that would cross the wire is visible and
    countable.

    {b Logical channels.} The two low CLA bits address one of
    {!Apdu.max_channels} logical channels (ISO 7816-4). Each open channel
    is an independent session — its own selected document, chained-upload
    accumulators, pending rules/query and undrained response — so one
    card serves several terminals (or several requests multiplexed by one
    proxy) with their frames interleaved at will. Channel 0 is always
    open; MANAGE CHANNEL opens and closes 1–3. Card-level state (the key
    store, the anti-rollback version high-water marks and the prepared-
    evaluation cache) is deliberately shared across channels: a policy
    version enforced on one channel binds every other.

    {b Fault tolerance.} The link is not assumed reliable: the protocol
    is designed so every fault is either {e detected} (the modeled link
    layer checksums frames, so corruption and truncation surface as the
    transient {!Sw.transport} word, never as silently altered payload) or
    {e idempotent} (retransmitted chain frames are recognized by sequence
    number and re-acked without appending; GET RESPONSE names the block
    it wants, so a re-ask after a lost answer gets a byte-identical
    retransmission). A card tear — power loss wiping all volatile
    sessions, modeled by {!Host.tear} — surfaces as
    [bad_state]/[channel_closed], and {!Client.evaluate} recovers by
    replaying the whole session setup, which the card's stable
    prepared-evaluation cache makes cheap. The net effect, enforced by
    the qcheck harness in [test/test_fault.ml]: the client returns either
    the exact authorized view or one typed {!Client.error} — never a
    truncated or corrupted view. *)

(** Instruction bytes of the command set: [manage_channel] (p1 = 0 open,
    assigned channel returned in the payload; p1 = 0x80 close, target in
    p2), [select] a document by id, install a wrapped key [grant], load
    the encrypted [rules] blob (chained frames), set the optional XPath
    [query] (chained), [evaluate] (p1 = 0 pull / 1 push; p2 = 0 with
    index / 1 without), and [get_response] to drain the pending response
    (p2 = requested block index mod 256). *)
module Ins : sig
  val manage_channel : int
  val select : int
  val grant : int
  val rules : int
  val query : int
  val evaluate : int
  val get_response : int
end

(** Status words: [ok] (0x9000), [more_data] (0x61xx — response bytes
    remain), and one word per {!Card.error} constructor (see {!to_sw}),
    plus [bad_state] (command out of sequence on this channel), [bad_ins]
    (unknown instruction or class), [channel_closed] (frame addressed to a
    channel that is not open) and [no_channel] (MANAGE CHANNEL open with
    every channel in use), and two {e transient} words: [transport]
    (0x6400 — the link layer detected loss or corruption; the frame was
    not processed and may safely be resent) and [internal] (0x6F00 — the
    card hiccuped before processing; equally safe to resend). *)
module Sw : sig
  val ok : int * int
  val more_data : int * int
  val not_found : int * int  (** [No_key] *)

  val stale_key : int * int  (** [Stale_key] — revocation in action *)

  val bad_grant : int * int
  val bad_signature : int * int
  val security : int * int  (** [Bad_rules] (0x6982) *)

  val replayed : int * int  (** [Replayed_rules] — anti-rollback *)

  val memory : int * int  (** [Memory_exceeded] *)

  val rules_too_large : int * int
      (** [Rules_too_large] — static admission refused the policy *)

  val integrity_sw1 : int
      (** [Integrity_failure]: sw1 = 0x66, sw2 = failing chunk mod 256 *)

  val bad_state : int * int
  val bad_ins : int * int
  val channel_closed : int * int
  val no_channel : int * int

  val transport : int * int
      (** Transient: link-layer loss/corruption, nothing processed. *)

  val internal : int * int
      (** Transient: card-side hiccup before processing. *)
end

val to_sw : Card.error -> int * int
(** The single error-surface mapping: every layer ({!Host} replies,
    {!Sdds_proxy.Proxy} decoding) goes through this one function, so a
    card failure means the same thing on every path. *)

val of_sw : ?doc_id:string -> int * int -> Card.error option
(** Left inverse of {!to_sw} up to payloads: the constructor always
    round-trips, and [to_sw (of_sw (to_sw e))] = [to_sw e]. String
    payloads do not cross the wire — pass [doc_id] to rebuild
    [No_key]/[Stale_key] from context (default ["?"]); the
    [Replayed_rules]/[Memory_exceeded] counters come back zeroed. [None]
    for protocol-level words ([bad_state], [channel_closed],
    [transport], [internal], ...). *)

(** Triage of a response status word into the action it calls for. *)
type verdict =
  | Done  (** 0x9000 — command succeeded *)
  | More of int  (** 0x61xx — response bytes remain (hint in the arg) *)
  | Transient
      (** {!Sw.transport} or {!Sw.internal} — resend the same frame *)
  | Session_lost
      (** [bad_state]/[channel_closed] — volatile session gone (tear or
          eviction): replay the session setup *)
  | Fatal of Card.error  (** a card-level refusal; retrying won't help *)
  | Unknown of int * int  (** a status word outside the protocol *)

val classify : ?doc_id:string -> Apdu.response -> verdict
(** The one decision point both {!Client} and {!Sdds_proxy.Proxy} use to
    tell transient faults from fatal refusals. [doc_id] feeds {!of_sw}'s
    payload reconstruction. *)

(** Retry policy for transient faults and session re-establishment. *)
module Retry : sig
  type t = {
    budget : int;  (** total retries across the whole exchange *)
    base_backoff_ms : float;
    max_backoff_ms : float;
  }

  val default : t
  (** budget 16, backoff 1 ms doubling to a 64 ms cap. *)

  val backoff : t -> consec:int -> float
  (** Simulated exponential backoff for the [consec]-th consecutive
      retry of one frame: [min max (base * 2^consec)]. Accumulated as a
      cost figure, never slept. *)
end

(** The host-side chained-command reassembly state machine (one per
    channel session), exposed so its retransmission semantics are
    directly testable: the regression properties drive {!Chain.feed} with
    frame counts spanning the 256-frame sequence-number wraparound.

    The invariant the fault tolerance rests on: feeding the frames of one
    {!Apdu.segment} run, with any frame retransmitted any number of times
    (adjacent duplicates — the link layer's failure mode), completes the
    chain {e exactly once} with the exact payload. The completion marker
    records the final frame's identity — sequence number {e and} payload
    — not just its p2: a single-frame chain finishes at p2 = 0, and a
    257-frame chain finishes at p2 ≡ 0 (mod 256), both of which a
    p2-keyed marker would confuse with a fresh chain opener, silently
    re-executing the instruction on a duplicate. *)
module Chain : sig
  type t

  type verdict =
    | Accepted  (** continuation frame appended *)
    | Completed of string  (** final frame arrived: the whole payload *)
    | Duplicate
        (** retransmitted frame recognized: ack again, execute nothing *)
    | Rejected  (** sequence gap or stale continuation *)

  val create : unit -> t

  val reset : t -> unit
  (** Forget every open chain and completion marker (what a SELECT does). *)

  val forget : t -> int -> unit
  (** Drop the completion marker for one instruction: the completed
      upload was refused for good (e.g. static admission), so a
      retransmitted final frame must not be re-acked as a success. *)

  val feed : t -> Apdu.command -> verdict
  (** Feed one chained frame (sequence number in p2 mod 256; p1 = 1
      continuation, 0 final), keyed by the command's instruction byte. *)
end

module Host : sig
  type t

  val create :
    ?obs:Sdds_obs.Obs.t ->
    ?semantics:Protocol.chain_semantics ->
    card:Card.t ->
    resolve:(string -> Card.doc_source option) ->
    unit ->
    t
  (** [resolve] maps a selected document id to its (DSP-served) source.
      The basic channel (0) starts open; the session table is bounded by
      {!Apdu.max_channels}.

      [semantics] (default {!Protocol.Identity_marker}) selects the chain
      completion-marker semantics; {!Protocol.P2_marker} resurrects the
      pre-fix duplicate-final-frame hole and exists only so the protocol
      checker's counterexamples can be replayed against a real host that
      actually has the bug. Never use it in production.

      [obs] wraps every processed frame in an [apdu] span (instruction
      name and channel as args) nested under whatever request span is
      current, counts [apdu.commands] and [card.tears], and feeds the
      [apdu.frame_bytes] and (when tracing) [apdu.rtt_ns] histograms.
      Pass the same scope to {!Card.create} so card and engine spans
      nest inside the APDU exchanges. *)

  val process : t -> Apdu.command -> Apdu.response
  (** Never raises: protocol violations map to status words. Frames on a
      never-opened (or closed) channel get [Sw.channel_closed]; any
      RULES/QUERY frame — first, continuation or stale — on a channel
      with no document selected gets [Sw.bad_state]; a GET RESPONSE
      before any EVALUATE on the session gets [Sw.bad_state] (never a
      silent empty view). *)

  val tear : t -> unit
  (** Card tear (power loss / extraction): every volatile session dies —
      logical channels 1–3 close, the basic channel restarts fresh.
      Card-level stable state (key store, anti-rollback marks, the
      prepared-evaluation cache) survives. *)

  val open_channels : t -> int
  (** Channels currently open (≥ 1: the basic channel). *)
end

module Client : sig
  type transport = Apdu.command -> Apdu.response

  (** What an exchange can fail with — exactly one of: *)
  type error =
    | Card of Card.error  (** the card refused; retrying won't help *)
    | Link of { attempts : int; sw1 : int; sw2 : int }
        (** the retry budget ran out; [sw1]/[sw2] is the last transient
            word seen *)
    | Protocol of string
        (** the peer broke the protocol (undecodable response stream,
            unknown status word) *)

  val pp_error : Format.formatter -> error -> unit
  val string_of_error : error -> string

  type result = {
    outputs : Sdds_core.Output.t list;
    command_frames : int;  (** frames sent terminal to card *)
    response_frames : int;  (** frames received card to terminal *)
    wire_bytes : int;  (** total bytes both ways, headers included *)
    retries : int;  (** frames resent after a transient fault *)
    reestablished : int;  (** sessions replayed after a tear/eviction *)
    backoff_ms : float;  (** simulated backoff accumulated over retries *)
  }

  val open_channel : transport -> (int, string) Result.t
  (** MANAGE CHANNEL open on the basic channel; returns the assigned
      channel number. *)

  val close_channel : transport -> int -> (unit, string) Result.t

  val evaluate :
    transport ->
    doc_id:string ->
    ?wrapped_grant:string ->
    encrypted_rules:string ->
    ?xpath:string ->
    ?push:bool ->
    ?use_index:bool ->
    ?channel:int ->
    ?retry:Retry.t ->
    unit ->
    (result, error) Result.t
  (** Full exchange: select, (grant), rules, (query), evaluate, drain —
      all frames addressed to [channel] (default 0, the basic channel).

      Resilient: transient faults ({!Sw.transport}, {!Sw.internal}) are
      absorbed by resending the frame; a lost session ([bad_state] /
      [channel_closed] — card tear or channel eviction) discards any
      partial response and replays the whole setup, reopening a logical
      channel if ours died with the card's volatile state. Both spend
      from [retry]'s budget (a re-establishment costs one unit plus its
      frames' own retries); when it runs out the exchange fails with
      [Link]. The guarantee: [Ok r] carries exactly the authorized view
      — bit-for-bit what a fault-free run returns — and any [Error] is
      typed. *)
end
