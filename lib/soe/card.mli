(** The smart-card runtime — everything that executes inside the SOE.

    Per §2.1 the SOE "is in charge of decrypting the input document,
    checking its integrity and evaluating the access control policy
    corresponding to a given (document, subject) pair". The card holds the
    subject's private key and the document keys granted to it; on a query
    or a pushed stream it:

    + unwraps the document key (once per grant, through the simulated PKI),
    + checks the publisher's signature over the Merkle root,
    + decrypts only the chunks the skip index cannot discard, verifying
      each consumed chunk against the Merkle root,
    + runs the streaming access-control engine over them, and
    + returns the annotated output stream to the terminal proxy.

    Every byte moved, block decrypted, hash computed and automaton
    transition taken is charged to a {!Cost.meter}, and the evaluator's
    working set is checked against the card's RAM budget after processing
    ({!Memory}): evaluations that would not fit the paper's 1 KB card fail
    with [Memory_exceeded].

    Simulation note: the simulator decrypts all chunks up front and
    replays the byte ranges the skip index actually touched for
    accounting — behaviourally identical to on-demand fetching because
    skip decisions depend only on consumed data, and integrity failures on
    consumed chunks are still rejected (tampering on chunks the index
    skips is invisible, exactly as on the real card). *)

type t

val create :
  ?obs:Sdds_obs.Obs.t ->
  ?profile:Cost.profile ->
  ?cache_budget_bytes:int ->
  ?preflight_depth:int ->
  subject:string ->
  Sdds_crypto.Rsa.keypair ->
  t
(** A personalized card: the subject's identity and keypair live in secure
    stable storage. Default profile: {!Cost.egate}.

    [obs] attaches the card's cache counters to the metrics registry
    ([card.cache.hits]/[misses]/[evictions] — {!cache_stats} is a view
    over the same cells), wraps each {!evaluate} in a [card.evaluate]
    span, and threads the scope into the engine run, so engine spans and
    metrics land in the same trace.

    [cache_budget_bytes] bounds the prepared-evaluation cache (see
    {!cache_stats}); it defaults to a quarter of the profile's RAM and
    [0] disables caching. Resident entries are charged against the card's
    RAM, so on the 1 KB e-gate the cache can hold at most a couple of
    small policies — the {!Cost.fleet} profile is what lifts the
    constraint for multi-client serving.

    [preflight_depth] turns on static admission: rule sets whose
    analyzer memory bound ({!Sdds_analysis.Memory_bound}) at that
    document depth exceeds the profile's RAM are refused with
    {!Rules_too_large} — at upload time through {!preflight}, and again
    when an unprepared blob reaches {!evaluate}. Off by default: the
    bound is a worst case over every document of that depth, so tight
    budgets (the 1 KB e-gate) would refuse policies that evaluate fine
    on shallow real documents. *)

val subject : t -> string
val public_key : t -> Sdds_crypto.Rsa.public
val profile : t -> Cost.profile

val obs : t -> Sdds_obs.Obs.t option
(** The observability scope the card was created with, so co-located
    layers (the terminal proxy) can join the same trace and registry
    without being handed the scope separately. *)

type cache_stats = {
  entries : int;  (** resident prepared evaluations *)
  resident_bytes : int;  (** RAM currently held by the cache *)
  cache_budget_bytes : int;  (** cache bound carved out of the RAM budget *)
  hits : int;
  misses : int;
  evictions : int;
      (** LRU displacements plus invalidations (re-key, version bump) *)
}

val cache_stats : t -> cache_stats
(** Counters of the prepared-evaluation cache: entries are keyed by
    (document, rule-blob digest, query) and hold the subject-filtered
    rules, the compiled automata and the verified Merkle root, so a warm
    {!evaluate} skips the blob MAC/decrypt/parse, the automaton
    compilation and the root signature check. Eviction is LRU; an entry
    never survives a policy-version bump (anti-rollback) or a re-grant
    under a different document key. *)

type error =
  | No_key of string  (** no document key installed for this id *)
  | Stale_key of string
      (** the chunks are authentic (proofs pass) but do not decrypt under
          the installed key: the document was re-keyed — the revocation
          mechanism working as intended *)
  | Bad_grant  (** wrapped key failed to unwrap *)
  | Bad_signature  (** publisher signature check failed *)
  | Integrity_failure of { chunk : int }
      (** a consumed chunk failed decryption or its Merkle proof *)
  | Memory_exceeded of { need_bytes : int; budget_bytes : int }
  | Bad_rules of string  (** rule blob failed integrity or parsing *)
  | Replayed_rules of { seen : int; offered : int }
      (** anti-rollback: a genuinely-signed but older policy version was
          offered after a newer one had been enforced — the DSP replaying
          a stale blob to restore withdrawn access *)
  | Rules_too_large of { bound_bytes : int; budget_bytes : int }
      (** static admission refusal: the analyzer's worst-case memory
          bound for the compiled rule set exceeds the card's RAM budget
          (only with [preflight_depth], see {!create}) *)

val pp_error : Format.formatter -> error -> unit

val install_wrapped_key :
  t -> doc_id:string -> wrapped:string -> (unit, error) result
(** Unwrap a document-key grant with the card's private key and store it
    (charges one RSA operation on the next evaluation's meter is not
    meaningful here; key installation is out of the per-query path). *)

val has_key : t -> doc_id:string -> bool

val preflight :
  t ->
  doc_id:string ->
  publisher:Sdds_crypto.Rsa.public ->
  ?query:Sdds_xpath.Ast.t ->
  ?chunk_plain_bytes:int ->
  encrypted_rules:string ->
  unit ->
  (unit, error) result
(** Upload-time static admission of a rule blob: decrypt, compile, and
    check the analyzer memory bound against the profile's RAM, without
    touching any document or cache state. Returns [Ok ()] when admission
    is off ([preflight_depth] not set at {!create}), when no key for
    [doc_id] is installed yet, or when the blob does not decrypt — those
    cases keep their existing failure points in {!evaluate}. The only
    error is {!Rules_too_large}. [chunk_plain_bytes] defaults to the
    publisher's default chunk size. *)

type doc_source = {
  doc_id : string;
  chunks : string array;  (** ciphertext chunks as served by the DSP *)
  chunk_plain_bytes : int;  (** plaintext bytes per chunk (last may be short) *)
  plain_length : int;  (** total encoded-plaintext length *)
  prove : int -> Sdds_crypto.Merkle.proof;
      (** inclusion proofs, served by the (untrusted) DSP; the card only
          trusts them as far as they reach the signed root *)
  leaf_count : int;  (** leaf count of the publisher's tree *)
  merkle_root : string;
  root_signature : string;
  publisher : Sdds_crypto.Rsa.public;
  delivery : [ `Pull | `Push ];
      (** [`Pull]: the card requests chunks, skipped chunks are never
          transferred. [`Push]: the stream flows past the card, all chunks
          cross the link but skipped ones are not decrypted. *)
}

type report = {
  breakdown : Cost.breakdown;
  ram_peak_bytes : int;
  ram_budget_bytes : int;
  chunks_consumed : int;
  chunks_total : int;
  consumed_mask : bool array;
      (** per-chunk: was it transferred-and-decrypted (pull) /
          decrypted (push)? *)
  skipped_bytes : int;
  events : int;
  suppressed_events : int;
  token_visits : int;  (** automaton transitions the engine actually ran *)
  output_bytes : int;
  prepared_hit : bool;
      (** this evaluation reused a resident prepared entry: no rule-blob
          transfer/MAC/decrypt/parse, no automaton compilation, and no
          root signature RSA (unless the root changed) were charged *)
}

val evaluate :
  t ->
  doc_source ->
  encrypted_rules:string ->
  ?query:Sdds_xpath.Ast.t ->
  ?use_index:bool ->
  unit ->
  (Sdds_core.Output.t list * report, error) result
(** Evaluate the (document, subject) policy, optionally composed with a
    query. [use_index] (default true) disables skipping for the no-index
    baseline. *)

val output_wire_bytes : Sdds_core.Output.t list -> int
(** Serialized size of the output stream crossing the card → terminal
    link ([Sdds_core.Output_codec]). *)

type dissem_report = {
  dissem_breakdown : Cost.breakdown;
  sharing : Sdds_dissem.Fanout.stats;
      (** clustering and shared-evaluation accounting *)
  dissem_output_bytes : int;
      (** sum of every subscriber's serialized output stream — sharing
          saves evaluations, not uploads *)
  dissem_events : int;  (** events in the single decode pass *)
  rejected : int;
      (** subscribers refused individually (bad blob, stale version)
          before clustering *)
}

val disseminate :
  t ->
  doc_source ->
  subscribers:(string * string) list ->
  unit ->
  ( (string * (Sdds_core.Output.t list, error) result) list * dissem_report,
    error )
  result
(** One encrypted stream, N subscribers — the dissemination gateway. The
    card (holding the document key) verifies the root signature and
    decrypts/proof-checks every chunk {e once}, decrypts each
    subscriber's [(subject, encrypted rule blob)] independently, clusters
    identical rule sets by digest ({!Sdds_dissem.Cluster}) and drives the
    predicate-free clusters through one merged walk
    ({!Sdds_dissem.Mux}), then demultiplexes: each subscriber's output
    equals a private {!evaluate} under its own rules.

    Per-subscriber failures (undecryptable blob → [Bad_rules], version
    rollback → [Replayed_rules]) reject that subscriber only; results
    come back in listing order. Global failures — no key, bad signature,
    integrity, a rules-digest collision or a subject listed with two
    different rule sets (both reported as [Bad_rules] with the planner's
    message naming the offenders) — fail the whole publish, and
    watermarks only advance when the publish goes through. Dissemination
    targets gateway-class profiles ({!Cost.fleet}); it does not enforce
    the per-evaluation RAM budget of the 1 KB e-gate path. *)

val evaluate_protected :
  t ->
  doc_source ->
  encrypted_rules:string ->
  ?query:Sdds_xpath.Ast.t ->
  ?use_index:bool ->
  unit ->
  (Guard.message list * report, error) result
(** Like {!evaluate}, but the output stream is run through
    {!Guard.Protector}: text of pending regions leaves the card sealed
    under one-time keys, released only on positive resolution. The
    report's [output_bytes] is the guarded stream's wire size. *)
