module Rsa = Sdds_crypto.Rsa
module Sha256 = Sdds_crypto.Sha256
module Merkle = Sdds_crypto.Merkle
module Rule = Sdds_core.Rule
module Compile = Sdds_core.Compile
module Output = Sdds_core.Output

module Indexed_engine = Sdds_index.Indexed_engine
module Memory_bound = Sdds_analysis.Memory_bound
module Obs = Sdds_obs.Obs

(* A resident prepared evaluation: everything the card derives from one
   (rule blob, query) pair before any document byte is processed. Keyed by
   (doc_id, blob digest, query); keeping it across evaluations is what the
   session layer amortizes. *)
type prepared = {
  p_key : string;  (* document key the entry was prepared under *)
  p_version : int;  (* policy version parsed from the blob *)
  p_rules : Rule.t list;  (* subject-filtered *)
  p_compiled : Compile.t;
  mutable p_root : string;  (* Merkle root whose signature was verified *)
  p_bytes : int;  (* residency charge against the cache budget *)
  mutable p_tick : int;  (* LRU clock at last use *)
}

type cache_stats = {
  entries : int;
  resident_bytes : int;
  cache_budget_bytes : int;
  hits : int;
  misses : int;
  evictions : int;
}

type t = {
  prof : Cost.profile;
  subj : string;
  preflight_depth : int option;
      (* static-admission document depth: when set, rule sets whose
         analyzer memory bound at this depth exceeds the profile's RAM
         are refused before any document byte is processed *)
  keypair : Rsa.keypair;
  doc_keys : (string, string) Hashtbl.t;
  rule_versions : (string, int) Hashtbl.t;
      (* per document: highest policy version enforced so far (secure
         stable storage) — the anti-rollback high-water mark *)
  cache : (string, prepared) Hashtbl.t;
  cache_mem : Memory.t option;  (* None: caching disabled *)
  mutable cache_clock : int;
  obs : Obs.t option;
  c_hits : Obs.Metrics.Counter.t;
  c_misses : Obs.Metrics.Counter.t;
  c_evictions : Obs.Metrics.Counter.t;
}

let create ?obs ?(profile = Cost.egate) ?cache_budget_bytes ?preflight_depth
    ~subject keypair =
  let cache_budget =
    match cache_budget_bytes with
    | Some b -> b
    | None -> profile.Cost.ram_bytes / 4
  in
  let c_hits = Obs.Metrics.Counter.create () in
  let c_misses = Obs.Metrics.Counter.create () in
  let c_evictions = Obs.Metrics.Counter.create () in
  Obs.attach_counter obs "card.cache.hits" c_hits;
  Obs.attach_counter obs "card.cache.misses" c_misses;
  Obs.attach_counter obs "card.cache.evictions" c_evictions;
  {
    prof = profile;
    subj = subject;
    preflight_depth;
    keypair;
    doc_keys = Hashtbl.create 8;
    rule_versions = Hashtbl.create 8;
    cache = Hashtbl.create 8;
    cache_mem =
      (if cache_budget <= 0 then None
       else Some (Memory.create ~budget_bytes:cache_budget));
    cache_clock = 0;
    obs;
    c_hits;
    c_misses;
    c_evictions;
  }

let cache_stats t =
  {
    entries = Hashtbl.length t.cache;
    resident_bytes =
      (match t.cache_mem with Some m -> Memory.used_bytes m | None -> 0);
    cache_budget_bytes =
      (match t.cache_mem with Some m -> Memory.budget_bytes m | None -> 0);
    hits = Obs.Metrics.Counter.value t.c_hits;
    misses = Obs.Metrics.Counter.value t.c_misses;
    evictions = Obs.Metrics.Counter.value t.c_evictions;
  }

let subject t = t.subj
let public_key t = t.keypair.Rsa.public
let profile t = t.prof
let obs t = t.obs

type error =
  | No_key of string
  | Stale_key of string
  | Bad_grant
  | Bad_signature
  | Integrity_failure of { chunk : int }
  | Memory_exceeded of { need_bytes : int; budget_bytes : int }
  | Bad_rules of string
  | Replayed_rules of { seen : int; offered : int }
  | Rules_too_large of { bound_bytes : int; budget_bytes : int }

let pp_error ppf = function
  | No_key id -> Format.fprintf ppf "no key for document %s" id
  | Stale_key id ->
      Format.fprintf ppf
        "stale key for document %s (authentic data, undecryptable: the \
         document was re-keyed)" id
  | Bad_grant -> Format.pp_print_string ppf "grant failed to unwrap"
  | Bad_signature -> Format.pp_print_string ppf "bad publisher signature"
  | Integrity_failure { chunk } ->
      Format.fprintf ppf "integrity failure on chunk %d" chunk
  | Memory_exceeded { need_bytes; budget_bytes } ->
      Format.fprintf ppf "RAM exceeded: need %dB, budget %dB" need_bytes
        budget_bytes
  | Bad_rules msg -> Format.fprintf ppf "bad rule blob: %s" msg
  | Replayed_rules { seen; offered } ->
      Format.fprintf ppf
        "stale policy: version %d offered after version %d was enforced \
         (rollback attempt)"
        offered seen
  | Rules_too_large { bound_bytes; budget_bytes } ->
      Format.fprintf ppf
        "rule set refused: static memory bound %dB exceeds the %dB RAM \
         budget"
        bound_bytes budget_bytes

let install_wrapped_key t ~doc_id ~wrapped =
  match Wire.unwrap_doc_key t.keypair.Rsa.secret ~doc_id wrapped with
  | Some key ->
      Hashtbl.replace t.doc_keys doc_id key;
      Ok ()
  | None -> Error Bad_grant

let has_key t ~doc_id = Hashtbl.mem t.doc_keys doc_id

type doc_source = {
  doc_id : string;
  chunks : string array;
  chunk_plain_bytes : int;
  plain_length : int;
  prove : int -> Merkle.proof;
  leaf_count : int;
  merkle_root : string;
  root_signature : string;
  publisher : Rsa.public;
  delivery : [ `Pull | `Push ];
}

type report = {
  breakdown : Cost.breakdown;
  ram_peak_bytes : int;
  ram_budget_bytes : int;
  chunks_consumed : int;
  chunks_total : int;
  consumed_mask : bool array;
  skipped_bytes : int;
  events : int;
  suppressed_events : int;
  token_visits : int;
  output_bytes : int;
  prepared_hit : bool;
}

(* Exact wire size under the binary output codec. *)
let output_wire_bytes outs =
  String.length (Sdds_core.Output_codec.encode_list outs)

let guard_drbg t source =
  (* Guard keys are card-local secrets: seed from the card's own identity
     and the document, never shipped anywhere. *)
  Sdds_crypto.Drbg.create
    ~seed:("guard|" ^ t.subj ^ "|" ^ source.doc_id ^ "|"
          ^ Sdds_crypto.Rsa.fingerprint t.keypair.Rsa.public)

(* ------------------------------------------------------------------ *)
(* Prepared-evaluation cache                                           *)
(* ------------------------------------------------------------------ *)

let cache_key ~doc_id ~encrypted_rules query =
  doc_id ^ "\x00"
  ^ Sha256.digest encrypted_rules
  ^ "\x00"
  ^ Option.fold ~none:"" ~some:Sdds_xpath.Ast.to_string query

(* Residency charge: the packed automaton (2 bytes per state field, as the
   evaluator accounting) plus the document key and fixed entry framing. *)
let entry_bytes compiled = 64 + (2 * Compile.state_count compiled)

let drop_entry t key p =
  Hashtbl.remove t.cache key;
  match t.cache_mem with
  | Some mem -> Memory.release mem ~bytes:p.p_bytes
  | None -> ()

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k p acc ->
        match acc with
        | Some (_, best) when best.p_tick <= p.p_tick -> acc
        | _ -> Some (k, p))
      t.cache None
  in
  match victim with
  | Some (k, p) ->
      drop_entry t k p;
      Obs.Metrics.Counter.inc t.c_evictions
  | None -> ()

(* Admit a freshly prepared entry, evicting least-recently-used residents
   until it fits; an entry larger than the whole budget is simply not
   cached (the evaluation itself already succeeded). *)
let admit t ~key:ckey prepared_entry =
  match t.cache_mem with
  | None -> ()
  | Some mem ->
      let bytes = prepared_entry.p_bytes in
      if bytes <= Memory.budget_bytes mem then begin
        (match Hashtbl.find_opt t.cache ckey with
        | Some old -> drop_entry t ckey old
        | None -> ());
        while Memory.used_bytes mem + bytes > Memory.budget_bytes mem do
          evict_lru t
        done;
        Memory.alloc mem ~bytes;
        Hashtbl.replace t.cache ckey prepared_entry
      end

(* ------------------------------------------------------------------ *)
(* Static admission (analyzer memory bound)                            *)
(* ------------------------------------------------------------------ *)

(* When the card was created with a preflight depth, a compiled rule set
   is admitted only if the static worst-case bound of the analyzer fits
   the profile's RAM — the upload-time refusal of §"provable SOE memory
   bounds". Disabled by default: the bound is a worst case over ALL
   documents of that depth, far above what typical documents reach. *)
let check_bound t ~chunk_plain_bytes compiled =
  match t.preflight_depth with
  | None -> Ok ()
  | Some depth ->
      let b = Memory_bound.compute ~depth ~chunk_plain_bytes compiled in
      let budget_bytes = t.prof.Cost.ram_bytes in
      if b.Memory_bound.bound_bytes <= budget_bytes then Ok ()
      else
        Error
          (Rules_too_large
             { bound_bytes = b.Memory_bound.bound_bytes; budget_bytes })

(* Upload-time admission: decrypt, compile and bound the offered blob
   without touching any document state. Skipped silently (Ok) when
   preflight is off, the key is not yet granted, or the blob is broken —
   those paths keep their existing failure points in {!evaluate}. *)
let preflight t ~doc_id ~publisher ?query ?(chunk_plain_bytes = 240)
    ~encrypted_rules () =
  match t.preflight_depth with
  | None -> Ok ()
  | Some _ -> (
      match Hashtbl.find_opt t.doc_keys doc_id with
      | None -> Ok ()
      | Some key -> (
          match
            Wire.decrypt_rules ~key ~doc_id ~subject:t.subj ~publisher
              encrypted_rules
          with
          | Error _ -> Ok ()
          | Ok (_version, rules) ->
              let rules = Rule.for_subject t.subj rules in
              let compiled = Compile.compile ?query rules in
              check_bound t ~chunk_plain_bytes compiled))

(* Chunks fully contained in a skipped byte range are never consumed. *)
let consumed_chunks ~n_chunks ~chunk_plain_bytes ~skipped_ranges =
  let consumed = Array.make n_chunks true in
  List.iter
    (fun (start, len) ->
      let stop = start + len in
      let first = (start + chunk_plain_bytes - 1) / chunk_plain_bytes in
      let last = (stop / chunk_plain_bytes) - 1 in
      for i = max 0 first to min (n_chunks - 1) last do
        consumed.(i) <- false
      done)
    skipped_ranges;
  consumed

let evaluate t source ~encrypted_rules ?query ?(use_index = true) () =
  Obs.Tracer.with_span (Obs.tracer t.obs)
    ~args:[ ("doc_id", source.doc_id); ("subject", t.subj) ]
    "card.evaluate"
  @@ fun () ->
  match Hashtbl.find_opt t.doc_keys source.doc_id with
  | None -> Error (No_key source.doc_id)
  | Some key -> (
      let meter = Cost.meter t.prof in
      let n_chunks = Array.length source.chunks in
      (* Cache residents squeeze the evaluator's budget; entries admitted
         by THIS evaluation only count from the next one (the automaton in
         use is the evaluator's own working state either way). *)
      let resident_before =
        match t.cache_mem with Some m -> Memory.used_bytes m | None -> 0
      in
      let root_msg =
        Wire.signed_root_message ~doc_id:source.doc_id
          ~merkle_root:source.merkle_root ~plain_length:source.plain_length
      in
      let verify_root () =
        if
          Rsa.verify source.publisher root_msg
            ~signature:source.root_signature
        then begin
          Cost.charge_rsa meter ~ops:1;
          true
        end
        else false
      in
      let seen_version () =
        Option.value ~default:(-1)
          (Hashtbl.find_opt t.rule_versions source.doc_id)
      in
      (* 1+2. Prepare the evaluation: publisher signature over the Merkle
         root, then the rule blob (transferred, MAC-checked, decrypted,
         parsed, compiled). A resident prepared entry skips all of it —
         except that an unseen root still pays its signature check — while
         the anti-rollback high-water mark is enforced on both paths. *)
      let prepare () =
        let ckey =
          cache_key ~doc_id:source.doc_id ~encrypted_rules query
        in
        let resident =
          match Hashtbl.find_opt t.cache ckey with
          | Some p when String.equal p.p_key key -> Some (ckey, p)
          | Some p ->
              (* the document was re-granted under a different key: the
                 entry can never serve again *)
              drop_entry t ckey p;
              Obs.Metrics.Counter.inc t.c_evictions;
              None
          | None -> None
        in
        match resident with
        | Some (ckey, p) ->
            let seen = seen_version () in
            if p.p_version < seen then begin
              (* a version bump was enforced since this entry was built:
                 it must never serve again (rollback through the cache) *)
              drop_entry t ckey p;
              Obs.Metrics.Counter.inc t.c_evictions;
              Error (Replayed_rules { seen; offered = p.p_version })
            end
            else if
              (not (String.equal p.p_root source.merkle_root))
              && not (verify_root ())
            then Error Bad_signature
            else begin
              p.p_root <- source.merkle_root;
              Hashtbl.replace t.rule_versions source.doc_id
                (max seen p.p_version);
              Obs.Metrics.Counter.inc t.c_hits;
              t.cache_clock <- t.cache_clock + 1;
              p.p_tick <- t.cache_clock;
              Ok (p.p_rules, p.p_compiled, true)
            end
        | None ->
            if not (verify_root ()) then Error Bad_signature
            else begin
              Cost.charge_transfer meter
                ~bytes:(String.length encrypted_rules);
              Cost.charge_hash meter ~bytes:(String.length encrypted_rules);
              Cost.charge_decrypt meter
                ~bytes:(String.length encrypted_rules);
              match
                Wire.decrypt_rules ~key ~doc_id:source.doc_id ~subject:t.subj
                  ~publisher:source.publisher encrypted_rules
              with
              | Error msg -> Error (Bad_rules msg)
              | Ok (version, rules) ->
                  let seen = seen_version () in
                  if version < seen then
                    Error (Replayed_rules { seen; offered = version })
                  else begin
                    Hashtbl.replace t.rule_versions source.doc_id version;
                    let rules = Rule.for_subject t.subj rules in
                    let compiled = Compile.compile ?query rules in
                    match
                      check_bound t
                        ~chunk_plain_bytes:source.chunk_plain_bytes compiled
                    with
                    | Error e -> Error e
                    | Ok () ->
                    Cost.charge_compile meter
                      ~states:(Compile.state_count compiled);
                    Obs.Metrics.Counter.inc t.c_misses;
                    t.cache_clock <- t.cache_clock + 1;
                    admit t ~key:ckey
                      {
                        p_key = key;
                        p_version = version;
                        p_rules = rules;
                        p_compiled = compiled;
                        p_root = source.merkle_root;
                        p_bytes = entry_bytes compiled;
                        p_tick = t.cache_clock;
                      };
                    Ok (rules, compiled, false)
                  end
            end
      in
      match prepare () with
      | Error e -> Error e
      | Ok (rules, compiled, prepared_hit) ->
            (
            (* 3. Decrypt chunks (simulation: all up front; charging
               happens per consumed chunk below). *)
            let bad = ref [] in
            let plain_parts =
              Array.mapi
                (fun i cipher ->
                  match
                    Wire.decrypt_chunk ~key ~doc_id:source.doc_id ~index:i
                      cipher
                  with
                  | Some plain -> plain
                  | None ->
                      bad := i :: !bad;
                      (* Keep alignment so later chunks stay in place. *)
                      let len =
                        min source.chunk_plain_bytes
                          (source.plain_length - (i * source.chunk_plain_bytes))
                      in
                      String.make (max 0 len) '\000')
                source.chunks
            in
            let encoded = String.concat "" (Array.to_list plain_parts) in
            let integrity_check consumed =
              (* Verify each consumed chunk against the signed root, using
                 the proofs the (untrusted) server provides; charge hashing
                 for leaf + path. A tampering server can at best serve the
                 stale proofs of the original tree, which expose any
                 modified leaf it actually has to deliver. *)
              let failure = ref None in
              Array.iteri
                (fun i used ->
                  if used && !failure = None then begin
                    let proof = try source.prove i with Invalid_argument _ -> [] in
                    Cost.charge_hash meter
                      ~bytes:(String.length source.chunks.(i));
                    Cost.charge_hash meter
                      ~bytes:(64 * List.length proof);
                    if
                      not
                        (Merkle.verify ~root:source.merkle_root
                           ~leaf_count:source.leaf_count ~index:i
                           ~leaf:source.chunks.(i) proof)
                    then failure := Some (i, `Proof)
                    else if List.mem i !bad then failure := Some (i, `Decrypt)
                  end)
                consumed;
              !failure
            in
            (* Truncation shows immediately: the signed message binds the
               exact plaintext length. *)
            if String.length encoded <> source.plain_length then
              Error (Integrity_failure { chunk = n_chunks })
            else
            (* 4. Stream through the engine with skipping, reusing the
               prepared automaton. *)
            match
              Indexed_engine.run ?obs:t.obs ?query ~use_index ~compiled
                rules encoded
            with
            | exception Invalid_argument _ -> (
                (* Garbage reached the decoder: either the store tampered
                   with a chunk (its proof fails) or the chunks are
                   authentic but our key no longer opens them (the
                   document was rotated). *)
                let all = Array.make n_chunks true in
                match integrity_check all with
                | Some (chunk, `Proof) -> Error (Integrity_failure { chunk })
                | Some (_, `Decrypt) -> Error (Stale_key source.doc_id)
                | None -> (
                    match !bad with
                    | _ :: _ -> Error (Stale_key source.doc_id)
                    | [] -> Error (Integrity_failure { chunk = 0 })))
            | res -> (
                let consumed =
                  if use_index then
                    consumed_chunks ~n_chunks
                      ~chunk_plain_bytes:source.chunk_plain_bytes
                      ~skipped_ranges:res.Indexed_engine.skipped_ranges
                  else Array.make n_chunks true
                in
                match integrity_check consumed with
                | Some (chunk, `Proof) -> Error (Integrity_failure { chunk })
                | Some (_, `Decrypt) -> Error (Stale_key source.doc_id)
                | None -> (
                    (* 5. Charge transfer and decryption. *)
                    let proof_len =
                      (* ceil log2 n, digests of 32 bytes *)
                      let rec bits n acc = if n <= 1 then acc else bits ((n + 1) / 2) (acc + 1) in
                      32 * bits n_chunks 0
                    in
                    Array.iteri
                      (fun i used ->
                        let cipher_bytes = String.length source.chunks.(i) in
                        match (source.delivery, used) with
                        | `Pull, true ->
                            Cost.charge_transfer meter
                              ~bytes:(cipher_bytes + proof_len);
                            Cost.charge_decrypt meter ~bytes:cipher_bytes
                        | `Pull, false -> ()
                        | `Push, true ->
                            Cost.charge_transfer meter
                              ~bytes:(cipher_bytes + proof_len);
                            Cost.charge_decrypt meter ~bytes:cipher_bytes
                        | `Push, false ->
                            (* flows past the card, discarded without
                               decryption *)
                            Cost.charge_transfer meter ~bytes:cipher_bytes)
                      consumed;
                    (* 6. Automaton work and result upload. *)
                    let st = res.Indexed_engine.engine_stats in
                    Cost.charge_events meter
                      ~events:res.Indexed_engine.events_fed
                      ~tokens:st.Sdds_core.Engine.token_visits;
                    let out_bytes =
                      output_wire_bytes res.Indexed_engine.outputs
                    in
                    Cost.charge_transfer meter ~bytes:out_bytes;
                    (* 7. RAM budget: engine + reader + chunk buffer +
                       runtime slack. The evaluator state is counted in
                       abstract field-words (token positions, rule ids,
                       condition ids — all small integers); the on-card C
                       implementation the paper prototyped packs such a
                       field in ~2 bytes, which is the factor used here. *)
                    let packed_bytes_per_word = 2 in
                    let ram_bytes =
                      (packed_bytes_per_word
                      * (st.Sdds_core.Engine.peak_state_words
                        + res.Indexed_engine.reader_peak_words))
                      + source.chunk_plain_bytes + 16 (* chunk buffer *)
                      + 128 (* fixed runtime state *)
                    in
                    let mem =
                      Memory.create
                        ~budget_bytes:
                          (max 1 (t.prof.Cost.ram_bytes - resident_before))
                    in
                    match Memory.record_bytes mem ~bytes:ram_bytes with
                    | exception Memory.Out_of_memory
                        { need_bytes; budget_bytes } ->
                        Error (Memory_exceeded { need_bytes; budget_bytes })
                    | () ->
                        Obs.inc t.obs "card.evaluations" 1;
                        Obs.set_gauge t.obs "card.ram_peak_bytes"
                          (Memory.peak_bytes mem);
                        Obs.observe t.obs "card.output_bytes" out_bytes;
                        let report =
                          {
                            breakdown = Cost.read meter;
                            ram_peak_bytes = Memory.peak_bytes mem;
                            ram_budget_bytes = Memory.budget_bytes mem;
                            chunks_consumed =
                              Array.fold_left
                                (fun a b -> if b then a + 1 else a)
                                0 consumed;
                            chunks_total = n_chunks;
                            consumed_mask = consumed;
                            skipped_bytes = res.Indexed_engine.skipped_bytes;
                            events = res.Indexed_engine.events_fed;
                            suppressed_events =
                              st.Sdds_core.Engine.suppressed;
                            token_visits = st.Sdds_core.Engine.token_visits;
                            output_bytes = out_bytes;
                            prepared_hit;
                          }
                        in
                        Ok (res.Indexed_engine.outputs, report)))))


(* ------------------------------------------------------------------ *)
(* Dissemination: one stream, N subscribers, clustered evaluation      *)
(* ------------------------------------------------------------------ *)

type dissem_report = {
  dissem_breakdown : Cost.breakdown;
  sharing : Sdds_dissem.Fanout.stats;
  dissem_output_bytes : int;  (* sum over all subscriber streams *)
  dissem_events : int;  (* events in the single decode pass *)
  rejected : int;  (* subscribers refused before clustering *)
}

(* Dissemination watermarks live in the same stable-storage table as the
   card's own, under keys that cannot collide with a bare doc_id. *)
let dissem_version_key ~doc_id ~subject = doc_id ^ "\x00" ^ subject

let disseminate t source ~subscribers () =
  Obs.Tracer.with_span (Obs.tracer t.obs)
    ~args:
      [ ("doc_id", source.doc_id);
        ("subscribers", string_of_int (List.length subscribers)) ]
    "card.disseminate"
  @@ fun () ->
  match Hashtbl.find_opt t.doc_keys source.doc_id with
  | None -> Error (No_key source.doc_id)
  | Some key ->
      let meter = Cost.meter t.prof in
      let n_chunks = Array.length source.chunks in
      let root_msg =
        Wire.signed_root_message ~doc_id:source.doc_id
          ~merkle_root:source.merkle_root ~plain_length:source.plain_length
      in
      if
        not
          (Rsa.verify source.publisher root_msg
             ~signature:source.root_signature)
      then Error Bad_signature
      else begin
        Cost.charge_rsa meter ~ops:1;
        (* Dissemination pushes whole authorized views: every chunk is
           transferred, decrypted and proof-checked — once, for the whole
           population. *)
        let bad = ref [] in
        let plain_parts =
          Array.mapi
            (fun i cipher ->
              match
                Wire.decrypt_chunk ~key ~doc_id:source.doc_id ~index:i
                  cipher
              with
              | Some plain -> plain
              | None ->
                  bad := i :: !bad;
                  let len =
                    min source.chunk_plain_bytes
                      (source.plain_length - (i * source.chunk_plain_bytes))
                  in
                  String.make (max 0 len) '\000')
            source.chunks
        in
        let encoded = String.concat "" (Array.to_list plain_parts) in
        let integrity_failure = ref None in
        Array.iteri
          (fun i cipher ->
            if !integrity_failure = None then begin
              let proof =
                try source.prove i with Invalid_argument _ -> []
              in
              Cost.charge_transfer meter ~bytes:(String.length cipher);
              Cost.charge_decrypt meter ~bytes:(String.length cipher);
              Cost.charge_hash meter ~bytes:(String.length cipher);
              Cost.charge_hash meter ~bytes:(64 * List.length proof);
              if
                not
                  (Merkle.verify ~root:source.merkle_root
                     ~leaf_count:source.leaf_count ~index:i ~leaf:cipher
                     proof)
              then integrity_failure := Some i
            end)
          source.chunks;
        match !integrity_failure with
        | Some chunk -> Error (Integrity_failure { chunk })
        | None -> (
            if !bad <> [] then Error (Stale_key source.doc_id)
            else if String.length encoded <> source.plain_length then
              Error (Integrity_failure { chunk = n_chunks })
            else
              match Sdds_index.Reader.to_events encoded with
              | exception Invalid_argument _ ->
                  Error (Integrity_failure { chunk = 0 })
              | events -> (
                  (* Per-subscriber preparation: each blob is MAC-checked,
                     decrypted and version-gated independently; a broken
                     blob rejects its subscriber, never the publish.
                     Watermarks are read against the pre-publish snapshot
                     (listing order cannot matter) and advanced only when
                     the publish goes through. *)
                  let new_marks : (string, int) Hashtbl.t =
                    Hashtbl.create 8
                  in
                  let prepared =
                    List.map
                      (fun (subject, blob) ->
                        Cost.charge_transfer meter
                          ~bytes:(String.length blob);
                        Cost.charge_hash meter ~bytes:(String.length blob);
                        Cost.charge_decrypt meter
                          ~bytes:(String.length blob);
                        match
                          Wire.decrypt_rules ~key ~doc_id:source.doc_id
                            ~subject ~publisher:source.publisher blob
                        with
                        | Error msg -> (subject, Error (Bad_rules msg))
                        | Ok (version, rules) ->
                            let seen =
                              Option.value ~default:(-1)
                                (Hashtbl.find_opt t.rule_versions
                                   (dissem_version_key
                                      ~doc_id:source.doc_id ~subject))
                            in
                            if version < seen then
                              ( subject,
                                Error
                                  (Replayed_rules { seen; offered = version })
                              )
                            else begin
                              let cur =
                                Option.value ~default:seen
                                  (Hashtbl.find_opt new_marks subject)
                              in
                              Hashtbl.replace new_marks subject
                                (max cur version);
                              (subject, Ok (Rule.for_subject subject rules))
                            end)
                      subscribers
                  in
                  let population =
                    List.filter_map
                      (fun (s, r) ->
                        match r with
                        | Ok rules -> Some (s, rules)
                        | Error _ -> None)
                      prepared
                  in
                  match Sdds_dissem.Cluster.plan population with
                  | Error e ->
                      Error
                        (Bad_rules
                           (Format.asprintf "%a"
                              Sdds_dissem.Cluster.pp_error e))
                  | Ok plan ->
                      Hashtbl.iter
                        (fun subject v ->
                          Hashtbl.replace t.rule_versions
                            (dissem_version_key ~doc_id:source.doc_id
                               ~subject)
                            v)
                        new_marks;
                      (* Compilation is per cluster, not per subscriber —
                         the first dividend of the digest grouping. *)
                      Array.iter
                        (fun c ->
                          Cost.charge_compile meter
                            ~states:
                              (Compile.state_count
                                 c.Sdds_dissem.Cluster.compiled))
                        plan.Sdds_dissem.Cluster.clusters;
                      let delivered, stats =
                        Sdds_dissem.Fanout.run_plan ?obs:t.obs plan events
                      in
                      let n_events = List.length events in
                      (* One event pass per evaluation actually run; the
                         mux walk's trie-token work stands in for the
                         per-engine token visits it replaces. *)
                      Cost.charge_events meter
                        ~events:
                          (n_events * stats.Sdds_dissem.Fanout.evaluations)
                        ~tokens:stats.Sdds_dissem.Fanout.mux_token_visits;
                      (* Sharing saves evaluations, not uploads: every
                         subscriber's stream crosses the link. *)
                      let out_bytes =
                        List.fold_left
                          (fun acc (_, outs) ->
                            acc + output_wire_bytes outs)
                          0 delivered
                      in
                      Cost.charge_transfer meter ~bytes:out_bytes;
                      let results =
                        List.map
                          (fun (subject, r) ->
                            match r with
                            | Error e -> (subject, Error e)
                            | Ok _ ->
                                ( subject,
                                  Ok
                                    (Option.value ~default:[]
                                       (List.assoc_opt subject delivered))
                                ))
                          prepared
                      in
                      Obs.inc t.obs "card.disseminations" 1;
                      Ok
                        ( results,
                          {
                            dissem_breakdown = Cost.read meter;
                            sharing = stats;
                            dissem_output_bytes = out_bytes;
                            dissem_events = n_events;
                            rejected =
                              List.length prepared - List.length population;
                          } )))
      end

let evaluate_protected t source ~encrypted_rules ?query ?use_index () =
  match evaluate t source ~encrypted_rules ?query ?use_index () with
  | Error e -> Error e
  | Ok (outputs, report) ->
      let protector =
        Guard.Protector.create (guard_drbg t source)
          ~has_query:(query <> None) ()
      in
      let messages =
        List.concat_map (Guard.Protector.feed protector) outputs
        @ Guard.Protector.finish protector
      in
      (* The evaluate pass charged transfer for the plain output stream;
         replace that charge with the guarded stream's exact wire size so
         the breakdown and [output_bytes] agree. *)
      let plain_bytes = report.output_bytes in
      let guarded_bytes = Guard.wire_bytes messages in
      let old_ms, old_frames = Cost.transfer_cost t.prof ~bytes:plain_bytes in
      let new_ms, new_frames = Cost.transfer_cost t.prof ~bytes:guarded_bytes in
      let b = report.breakdown in
      let transfer_ms = b.Cost.transfer_ms -. old_ms +. new_ms in
      let breakdown =
        {
          b with
          Cost.transfer_ms;
          total_ms = b.Cost.total_ms -. old_ms +. new_ms;
          bytes_transferred =
            b.Cost.bytes_transferred - plain_bytes + guarded_bytes;
          apdu_frames = b.Cost.apdu_frames - old_frames + new_frames;
        }
      in
      Ok (messages, { report with breakdown; output_bytes = guarded_bytes })
