type profile = {
  name : string;
  ram_bytes : int;
  link_bytes_per_s : float;
  apdu_payload : int;
  apdu_overhead_bytes : int;
  aes_block_us : float;
  sha_block_us : float;
  event_us : float;
  token_us : float;
  rsa_op_ms : float;
  compile_state_us : float;
}

let egate =
  {
    name = "e-gate";
    ram_bytes = 1024;
    link_bytes_per_s = 2048.0;
    apdu_payload = 255;
    apdu_overhead_bytes = 10;
    aes_block_us = 40.0;
    sha_block_us = 60.0;
    event_us = 6.0;
    token_us = 1.5;
    rsa_op_ms = 120.0;
    compile_state_us = 45.0;
  }

let modern =
  {
    name = "modern-se";
    ram_bytes = 16 * 1024;
    link_bytes_per_s = 400_000.0;
    apdu_payload = 4096;
    apdu_overhead_bytes = 12;
    aes_block_us = 0.8;
    sha_block_us = 1.2;
    event_us = 0.5;
    token_us = 0.1;
    rsa_op_ms = 8.0;
    compile_state_us = 1.5;
  }

let fleet =
  {
    name = "fleet-se";
    ram_bytes = 64 * 1024;
    link_bytes_per_s = 1_000_000.0;
    apdu_payload = 4096;
    apdu_overhead_bytes = 12;
    aes_block_us = 0.8;
    sha_block_us = 1.2;
    event_us = 0.5;
    token_us = 0.1;
    rsa_op_ms = 8.0;
    compile_state_us = 1.5;
  }

type meter = {
  prof : profile;
  mutable transfer_us : float;
  mutable aes_us : float;
  mutable sha_us : float;
  mutable cpu_us : float;
  mutable rsa_us : float;
  mutable compile_us : float;
  mutable bytes_transferred : int;
  mutable bytes_decrypted : int;
  mutable apdu_frames : int;
}

let meter prof =
  {
    prof;
    transfer_us = 0.0;
    aes_us = 0.0;
    sha_us = 0.0;
    cpu_us = 0.0;
    rsa_us = 0.0;
    compile_us = 0.0;
    bytes_transferred = 0;
    bytes_decrypted = 0;
    apdu_frames = 0;
  }

let profile_of m = m.prof

let transfer_cost prof ~bytes =
  if bytes <= 0 then (0.0, 0)
  else begin
    let frames = (bytes + prof.apdu_payload - 1) / prof.apdu_payload in
    let wire = bytes + (frames * prof.apdu_overhead_bytes) in
    (1.0e3 *. float_of_int wire /. prof.link_bytes_per_s, frames)
  end

let charge_transfer m ~bytes =
  if bytes < 0 then invalid_arg "Cost.charge_transfer";
  if bytes > 0 then begin
    let ms, frames = transfer_cost m.prof ~bytes in
    m.apdu_frames <- m.apdu_frames + frames;
    m.bytes_transferred <- m.bytes_transferred + bytes;
    m.transfer_us <- m.transfer_us +. (1000.0 *. ms)
  end

let charge_decrypt m ~bytes =
  if bytes < 0 then invalid_arg "Cost.charge_decrypt";
  let blocks = (bytes + 15) / 16 in
  m.bytes_decrypted <- m.bytes_decrypted + bytes;
  m.aes_us <- m.aes_us +. (float_of_int blocks *. m.prof.aes_block_us)

let charge_hash m ~bytes =
  if bytes < 0 then invalid_arg "Cost.charge_hash";
  let blocks = (bytes + 63) / 64 in
  m.sha_us <- m.sha_us +. (float_of_int blocks *. m.prof.sha_block_us)

let charge_events m ~events ~tokens =
  m.cpu_us <-
    m.cpu_us
    +. (float_of_int events *. m.prof.event_us)
    +. (float_of_int tokens *. m.prof.token_us)

let charge_rsa m ~ops = m.rsa_us <- m.rsa_us +. (float_of_int ops *. m.prof.rsa_op_ms *. 1000.0)

let charge_compile m ~states =
  if states < 0 then invalid_arg "Cost.charge_compile";
  m.compile_us <-
    m.compile_us +. (float_of_int states *. m.prof.compile_state_us)

type breakdown = {
  transfer_ms : float;
  crypto_ms : float;
  cpu_ms : float;
  rsa_ms : float;
  compile_ms : float;
  total_ms : float;
  bytes_transferred : int;
  bytes_decrypted : int;
  apdu_frames : int;
}

let read m =
  let transfer_ms = m.transfer_us /. 1000.0 in
  let crypto_ms = (m.aes_us +. m.sha_us) /. 1000.0 in
  let cpu_ms = m.cpu_us /. 1000.0 in
  let rsa_ms = m.rsa_us /. 1000.0 in
  let compile_ms = m.compile_us /. 1000.0 in
  {
    transfer_ms;
    crypto_ms;
    cpu_ms;
    rsa_ms;
    compile_ms;
    total_ms = transfer_ms +. crypto_ms +. cpu_ms +. rsa_ms +. compile_ms;
    bytes_transferred = m.bytes_transferred;
    bytes_decrypted = m.bytes_decrypted;
    apdu_frames = m.apdu_frames;
  }

let pp_breakdown ppf b =
  Format.fprintf ppf
    "total=%.1fms (xfer=%.1f crypto=%.1f cpu=%.1f rsa=%.1f compile=%.1f) \
     bytes: xfer=%d dec=%d frames=%d"
    b.total_ms b.transfer_ms b.crypto_ms b.cpu_ms b.rsa_ms b.compile_ms
    b.bytes_transferred b.bytes_decrypted b.apdu_frames
