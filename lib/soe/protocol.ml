(* The card-side APDU session machine as a pure transition function.
   {!Remote_card.Host} is a thin imperative driver over [step]; the
   protocol model checker ([Sdds_protocol]) explores the same function
   under a fault adversary, so what is verified is what runs. *)

module Ins = struct
  let manage_channel = 0x70
  let select = 0xA0
  let grant = 0xA2
  let rules = 0xA4
  let query = 0xA6
  let evaluate = 0xB0
  let get_response = 0xC0

  let name ins =
    if ins = manage_channel then "MANAGE_CHANNEL"
    else if ins = select then "SELECT"
    else if ins = grant then "GRANT"
    else if ins = rules then "RULES"
    else if ins = query then "QUERY"
    else if ins = evaluate then "EVALUATE"
    else if ins = get_response then "GET_RESPONSE"
    else Printf.sprintf "INS_%02X" (ins land 0xff)
end

module Sw = struct
  let ok = (0x90, 0x00)
  let more_data = (0x61, 0x00)
  let not_found = (0x6A, 0x88)
  let stale_key = (0x6A, 0x82)
  let bad_grant = (0x69, 0x84)
  let bad_signature = (0x69, 0x88)
  let security = (0x69, 0x82)
  let replayed = (0x69, 0x87)
  let memory = (0x6A, 0x84)
  let rules_too_large = (0x6A, 0x80)
  let integrity_sw1 = 0x66
  let bad_state = (0x69, 0x85)
  let bad_ins = (0x6D, 0x00)
  let channel_closed = (0x68, 0x81)
  let no_channel = (0x6A, 0x81)
  let transport = (0x64, 0x00)
  let internal = (0x6F, 0x00)
end

let max_response = 255

type chain_semantics = Identity_marker | P2_marker

module Chain = struct
  type t = {
    chains : (int * (string list * int)) list;
    finished : (int * (int * string)) list;
  }

  let empty = { chains = []; finished = [] }

  type verdict = Accepted | Completed of string | Duplicate | Rejected

  (* Insertion keeps keys sorted: structurally identical chain states
     have one representation, which the model checker's canonical
     encoding (and so its visited-set dedup) relies on. *)
  let rec set k v = function
    | [] -> [ (k, v) ]
    | (k', _) :: rest when k' = k -> (k, v) :: rest
    | (k', _) :: _ as l when k' > k -> (k, v) :: l
    | kv :: rest -> kv :: set k v rest

  let forget t ins = { t with finished = List.remove_assoc ins t.finished }

  let feed ?(semantics = Identity_marker) ?(modulus = 256) t
      (cmd : Apdu.command) =
    let ins = cmd.Apdu.ins in
    let recognized_final =
      (* Is this frame the final frame of the chain we just completed,
         retransmitted because its ack was lost? Identity_marker matches
         the recorded (p2, payload) pair, so p2 = 0 — a single-frame
         chain, or a final frame aliasing to 0 mod [modulus] — cannot
         silently open a fresh chain and re-execute. P2_marker preserves
         the pre-fix semantics (marker keyed by p2 alone, p2 = 0 never
         recognized) as the model checker's power fixture. *)
      match (semantics, List.assoc_opt ins t.finished) with
      | _, None -> false
      | Identity_marker, Some (p2, data) ->
          cmd.Apdu.p1 = 0 && p2 = cmd.Apdu.p2 && String.equal data cmd.Apdu.data
      | P2_marker, Some (p2, _) -> cmd.Apdu.p2 <> 0 && p2 = cmd.Apdu.p2
    in
    match List.assoc_opt ins t.chains with
    | None when recognized_final -> (t, Duplicate)
    | None when cmd.Apdu.p2 <> 0 ->
        (* A continuation (or unrecognized final) with no chain open: a
           stale frame from before a SELECT or from an aborted upload —
           it must not start a fresh chain. *)
        (t, Rejected)
    | existing ->
        let frames, seq =
          match existing with Some fs -> fs | None -> ([], 0)
        in
        if seq > 0 && cmd.Apdu.p2 = (seq - 1) mod modulus then
          (* Duplicate of the frame just accepted: ack, don't append. *)
          (t, Duplicate)
        else if cmd.Apdu.p2 <> seq mod modulus then
          ({ t with chains = List.remove_assoc ins t.chains }, Rejected)
        else begin
          let frames = cmd.Apdu.data :: frames in
          if cmd.Apdu.p1 = 0 then
            ( {
                chains = List.remove_assoc ins t.chains;
                finished = set ins (cmd.Apdu.p2, cmd.Apdu.data) t.finished;
              },
              Completed (String.concat "" (List.rev frames)) )
          else
            ({ t with chains = set ins (frames, seq + 1) t.chains }, Accepted)
        end
end

type 'd session = {
  doc : 'd option;
  chain : Chain.t;
  pending_rules : string option;
  pending_query : string option;
  response : string;
  resp_block : int;
  resp_last : Apdu.response option;
  resp_ready : bool;
}

let fresh_session =
  {
    doc = None;
    chain = Chain.empty;
    pending_rules = None;
    pending_query = None;
    response = "";
    resp_block = 0;
    resp_last = None;
    resp_ready = false;
  }

type 'd state = { sessions : 'd session option list }

let initial () =
  {
    sessions =
      Some fresh_session :: List.init (Apdu.max_channels - 1) (fun _ -> None);
  }

let open_channels state =
  List.fold_left
    (fun n -> function None -> n | Some _ -> n + 1)
    0 state.sessions

let session state ch =
  if ch < 0 || ch >= Apdu.max_channels then None
  else List.nth state.sessions ch

type 'd backend = {
  resolve : string -> 'd option;
  install_grant : 'd -> wrapped:string -> (unit, int * int) result;
  accept_rules : 'd -> query:string option -> string -> (unit, int * int) result;
  evaluate :
    'd ->
    rules:string ->
    query:string option ->
    push:bool ->
    use_index:bool ->
    (string, int * int) result;
}

type event = Command of Apdu.command | Tear

type action =
  | Reply of Apdu.response
  | Selected of { channel : int; doc_id : string }
  | Executed of { channel : int; ins : int; payload : string }
  | Evaluated of {
      channel : int;
      rules : string;
      query : string option;
      push : bool;
      use_index : bool;
    }
  | Torn

let reply ?(payload = "") (sw1, sw2) = { Apdu.sw1; sw2; payload }

let response_of actions =
  List.fold_left
    (fun acc a -> match a with Reply r -> Some r | _ -> acc)
    None actions

let set_session state ch s =
  { sessions = List.mapi (fun i x -> if i = ch then s else x) state.sessions }

(* Serve the next block of the response stream and remember it: a GET
   RESPONSE re-asking for the block just served (its response was lost on
   the wire) gets a byte-identical retransmission instead of silently
   skipping ahead — a dropped frame can cost time, never payload
   integrity. *)
let serve_block ~block s =
  let n = String.length s.response in
  let take = min block n in
  let payload = String.sub s.response 0 take in
  let response = String.sub s.response take (n - take) in
  let resp =
    if String.length response = 0 then reply ~payload Sw.ok
    else reply ~payload (fst Sw.more_data, min 0xff (String.length response))
  in
  ( { s with response; resp_last = Some resp; resp_block = s.resp_block + 1 },
    resp )

let manage_channel state (cmd : Apdu.command) =
  if cmd.Apdu.p1 = 0x00 && cmd.Apdu.p2 = 0x00 then begin
    (* Open: allocate the lowest free channel and return its number. *)
    let rec find i =
      if i >= Apdu.max_channels then None
      else
        match List.nth state.sessions i with
        | None -> Some i
        | Some _ -> find (i + 1)
    in
    match find 1 with
    | None -> (state, reply Sw.no_channel)
    | Some i ->
        ( set_session state i (Some fresh_session),
          reply ~payload:(String.make 1 (Char.chr i)) Sw.ok )
  end
  else if cmd.Apdu.p1 = 0x80 then begin
    (* Close: the target channel is in p2; the basic channel cannot be
       closed. Everything the session held (chains, pending response)
       dies with it. *)
    let target = cmd.Apdu.p2 in
    if target <= 0 || target >= Apdu.max_channels then
      (state, reply Sw.bad_state)
    else
      match List.nth state.sessions target with
      | None -> (state, reply Sw.bad_state)
      | Some _ -> (set_session state target None, reply Sw.ok)
  end
  else (state, reply Sw.bad_state)

let dispatch ~backend ~semantics ~modulus ~block ch s (cmd : Apdu.command) =
  if cmd.Apdu.ins = Ins.select then begin
    match backend.resolve cmd.Apdu.data with
    | Some doc ->
        (* A SELECT starts a fresh session on this channel: half-uploaded
           chains from an aborted rules/query upload must not be
           concatenated with a later upload for this (or any)
           document. *)
        ( { fresh_session with doc = Some doc },
          reply Sw.ok,
          [ Selected { channel = ch; doc_id = cmd.Apdu.data } ] )
    | None -> (s, reply Sw.not_found, [])
  end
  else if cmd.Apdu.ins = Ins.grant then begin
    match s.doc with
    | None -> (s, reply Sw.bad_state, [])
    | Some doc -> (
        match backend.install_grant doc ~wrapped:cmd.Apdu.data with
        | Ok () -> (s, reply Sw.ok, [])
        | Error sw -> (s, reply sw, []))
  end
  else if cmd.Apdu.ins = Ins.rules then begin
    match s.doc with
    | None -> (s, reply Sw.bad_state, [])
    | Some doc -> (
        let chain, verdict = Chain.feed ~semantics ~modulus s.chain cmd in
        let s = { s with chain } in
        match verdict with
        | Chain.Rejected -> (s, reply Sw.bad_state, [])
        | Chain.Accepted | Chain.Duplicate -> (s, reply Sw.ok, [])
        | Chain.Completed blob -> (
            (* The chain consumed its frames and ran — whether admission
               then accepts the blob or not. The [Executed] action is the
               exactly-once witness the model checker monitors. *)
            let executed =
              Executed { channel = ch; ins = cmd.Apdu.ins; payload = blob }
            in
            match backend.accept_rules doc ~query:s.pending_query blob with
            | Error sw ->
                (* The upload failed for good: a retransmitted final
                   frame must not be acked as if it had succeeded. *)
                ( { s with chain = Chain.forget s.chain Ins.rules },
                  reply sw,
                  [ executed ] )
            | Ok () ->
                ({ s with pending_rules = Some blob }, reply Sw.ok, [ executed ])
            ))
  end
  else if cmd.Apdu.ins = Ins.query then begin
    match s.doc with
    | None -> (s, reply Sw.bad_state, [])
    | Some _ -> (
        let chain, verdict = Chain.feed ~semantics ~modulus s.chain cmd in
        let s = { s with chain } in
        match verdict with
        | Chain.Rejected -> (s, reply Sw.bad_state, [])
        | Chain.Accepted | Chain.Duplicate -> (s, reply Sw.ok, [])
        | Chain.Completed q ->
            ( { s with pending_query = Some q },
              reply Sw.ok,
              [ Executed { channel = ch; ins = cmd.Apdu.ins; payload = q } ] ))
  end
  else if cmd.Apdu.ins = Ins.evaluate then begin
    match (s.doc, s.pending_rules) with
    | None, _ | _, None -> (s, reply Sw.bad_state, [])
    | Some doc, Some rules -> (
        let push = cmd.Apdu.p1 = 1 in
        let use_index = cmd.Apdu.p2 = 0 in
        let query = s.pending_query in
        match backend.evaluate doc ~rules ~query ~push ~use_index with
        | Ok encoded ->
            let s =
              {
                s with
                response = encoded;
                resp_block = 0;
                resp_last = None;
                resp_ready = true;
              }
            in
            let s, resp = serve_block ~block s in
            (s, resp, [ Evaluated { channel = ch; rules; query; push; use_index } ])
        | Error sw -> (s, reply sw, []))
  end
  else if cmd.Apdu.ins = Ins.get_response then begin
    (* Block-sequenced drain (block index in p2, mod [modulus]): a
       terminal can only read forward one block at a time or re-read the
       block it just received. Draining a session that never evaluated —
       e.g. after a tear wiped the stream — is a state error, never a
       silent empty success the terminal could mistake for a whole
       view. *)
    if not s.resp_ready then (s, reply Sw.bad_state, [])
    else if cmd.Apdu.p2 = s.resp_block mod modulus then
      let s, resp = serve_block ~block s in
      (s, resp, [])
    else if s.resp_block > 0 && cmd.Apdu.p2 = (s.resp_block - 1) mod modulus
    then
      match s.resp_last with
      | Some r -> (s, r, [])
      | None -> (s, reply Sw.bad_state, [])
    else (s, reply Sw.bad_state, [])
  end
  else (s, reply Sw.bad_ins, [])

let step ~backend ?(semantics = Identity_marker) ?(modulus = 256)
    ?(block = max_response) state event =
  match event with
  | Tear -> (initial (), [ Torn ])
  | Command cmd ->
      if not (Apdu.valid_cla cmd.Apdu.cla) then
        (state, [ Reply (reply Sw.bad_ins) ])
      else begin
        let ch = Apdu.channel_of_cla cmd.Apdu.cla in
        match List.nth state.sessions ch with
        | None -> (state, [ Reply (reply Sw.channel_closed) ])
        | Some s ->
            if cmd.Apdu.ins = Ins.manage_channel then
              let state, resp = manage_channel state cmd in
              (state, [ Reply resp ])
            else
              let s, resp, actions =
                dispatch ~backend ~semantics ~modulus ~block ch s cmd
              in
              (set_session state ch (Some s), actions @ [ Reply resp ])
      end
