(** The card-side APDU session machine as a pure transition function.

    Everything the card does with a frame — channel management, document
    selection, chained rules/query reassembly, evaluation, block-sequenced
    response draining — is the deterministic function {!step} over an
    immutable {!state}. Card-level effects (key installation, rule-blob
    admission, policy evaluation) are abstracted behind a {!backend}
    record, so the machine is polymorphic in the document handle ['d]:

    - {!Remote_card.Host} instantiates it with ['d = Card.doc_source] and
      a backend that drives the real {!Card} — the production host is a
      thin imperative shell (observability, a [state ref]) over [step];
    - the protocol model checker ([Sdds_protocol]) instantiates it with a
      synthetic backend and explores [step] exhaustively under a fault
      adversary.

    One function, two drivers: what the checker verifies is what runs.

    The sequence/block moduli and the response block size are parameters
    (defaulting to the wire's 256 and {!max_response}) so the checker can
    downscale them and reach the mod-256 wraparound states at tiny
    exploration depths. *)

(** Instruction bytes of the command set: [manage_channel] (p1 = 0 open,
    assigned channel returned in the payload; p1 = 0x80 close, target in
    p2), [select] a document by id, install a wrapped key [grant], load
    the encrypted [rules] blob (chained frames), set the optional XPath
    [query] (chained), [evaluate] (p1 = 0 pull / 1 push; p2 = 0 with
    index / 1 without), and [get_response] to drain the pending response
    (p2 = requested block index mod 256). *)
module Ins : sig
  val manage_channel : int
  val select : int
  val grant : int
  val rules : int
  val query : int
  val evaluate : int
  val get_response : int

  val name : int -> string
  (** Mnemonic for traces and counterexamples ([INS_xx] if unknown). *)
end

(** Status words (see {!Remote_card.Sw} for the classification layer). *)
module Sw : sig
  val ok : int * int
  val more_data : int * int
  val not_found : int * int
  val stale_key : int * int
  val bad_grant : int * int
  val bad_signature : int * int
  val security : int * int
  val replayed : int * int
  val memory : int * int
  val rules_too_large : int * int
  val integrity_sw1 : int
  val bad_state : int * int
  val bad_ins : int * int
  val channel_closed : int * int
  val no_channel : int * int
  val transport : int * int
  val internal : int * int
end

val max_response : int
(** Wire response block size (255 bytes). *)

(** Which completion marker the chain reassembler keeps. *)
type chain_semantics =
  | Identity_marker
      (** Production semantics: the marker records the final frame's
          (p2, payload) identity, so a retransmitted final frame is
          recognized whatever its sequence number — including p2 = 0,
          where a single-frame chain and a chain wrapping at the modulus
          both finish. *)
  | P2_marker
      (** The preserved pre-fix semantics (marker keyed by p2 alone,
          p2 = 0 never recognized): a retransmitted final frame whose
          p2 ≡ 0 (mod modulus) silently opens a fresh chain and
          re-executes. Kept as the model checker's power fixture — the
          checker must find this hole — and never used in production. *)

(** The chained-command reassembly automaton, pure: one value per
    channel session, keyed by instruction byte. *)
module Chain : sig
  type t

  val empty : t

  type verdict =
    | Accepted  (** continuation frame appended *)
    | Completed of string  (** final frame arrived: the whole payload *)
    | Duplicate  (** retransmission recognized: ack again, execute nothing *)
    | Rejected  (** sequence gap or stale continuation *)

  val feed :
    ?semantics:chain_semantics ->
    ?modulus:int ->
    t ->
    Apdu.command ->
    t * verdict
  (** Feed one chained frame (sequence number in p2 mod [modulus],
      default 256; p1 = 1 continuation, 0 final). *)

  val forget : t -> int -> t
  (** Drop the completion marker for one instruction: the completed
      upload was refused for good (e.g. static admission), so a
      retransmitted final frame must not be re-acked as a success. *)
end

(** The per-channel slice of the protocol state: everything a SELECT
    resets lives here, so channels cannot observe (or corrupt) each
    other's half-uploaded chains or undrained responses. *)
type 'd session = {
  doc : 'd option;
  chain : Chain.t;
  pending_rules : string option;
  pending_query : string option;
  response : string;  (** bytes not yet drained *)
  resp_block : int;  (** next response block to serve *)
  resp_last : Apdu.response option;  (** for retransmission *)
  resp_ready : bool;  (** an EVALUATE produced the stream *)
}

type 'd state = { sessions : 'd session option list }
(** Slot index = channel number; length {!Apdu.max_channels}. *)

val initial : unit -> 'd state
(** The basic channel (0) open and fresh, channels 1–3 closed. *)

val open_channels : 'd state -> int
val session : 'd state -> int -> 'd session option

(** Card-level effects, injected: the machine never touches the card
    directly. Errors are status words ([sw1, sw2]). *)
type 'd backend = {
  resolve : string -> 'd option;  (** SELECT: document id → handle *)
  install_grant : 'd -> wrapped:string -> (unit, int * int) result;
  accept_rules :
    'd -> query:string option -> string -> (unit, int * int) result;
      (** upload-time admission of a completed rules chain *)
  evaluate :
    'd ->
    rules:string ->
    query:string option ->
    push:bool ->
    use_index:bool ->
    (string, int * int) result;
      (** policy evaluation; [Ok] carries the encoded response stream *)
}

type event = Command of Apdu.command | Tear

(** What a step did, beyond the wire reply — the observable alphabet the
    model checker's invariant monitors consume. A [Command] event always
    yields exactly one [Reply]. *)
type action =
  | Reply of Apdu.response
  | Selected of { channel : int; doc_id : string }
      (** a SELECT succeeded: the channel's session restarted fresh *)
  | Executed of { channel : int; ins : int; payload : string }
      (** a chained command (rules/query) completed and consumed its
          payload — emitted even if admission then refuses the blob,
          because the chain ran regardless; the exactly-once invariant
          counts these *)
  | Evaluated of {
      channel : int;
      rules : string;
      query : string option;
      push : bool;
      use_index : bool;
    }  (** an EVALUATE ran the backend and armed the response stream *)
  | Torn  (** a tear reset every volatile session *)

val response_of : action list -> Apdu.response option
(** The [Reply] of a step's actions, if any ([Tear] steps have none). *)

val step :
  backend:'d backend ->
  ?semantics:chain_semantics ->
  ?modulus:int ->
  ?block:int ->
  'd state ->
  event ->
  'd state * action list
(** One transition. [modulus] (default 256) scales the chain sequence and
    response block numbering; [block] (default {!max_response}) the
    response block size; both exist so the checker can downscale. Never
    raises: protocol violations map to status-word replies. *)
