type command = { cla : int; ins : int; p1 : int; p2 : int; data : string }
type response = { sw1 : int; sw2 : int; payload : string }

let sw_ok = (0x90, 0x00)
let max_data = 255
let base_cla = 0x80
let max_channels = 4

let channel_of_cla cla = cla land 0x03

let cla_of_channel ch =
  if ch < 0 || ch >= max_channels then invalid_arg "Apdu.cla_of_channel";
  base_cla lor ch

let valid_cla cla = cla land lnot 0x03 = base_cla

let check_byte name v =
  if v < 0 || v > 0xff then invalid_arg ("Apdu: " ^ name ^ " out of range")

let encode_command c =
  check_byte "cla" c.cla;
  check_byte "ins" c.ins;
  check_byte "p1" c.p1;
  check_byte "p2" c.p2;
  if String.length c.data > max_data then invalid_arg "Apdu: data too long";
  let b = Buffer.create (5 + String.length c.data) in
  Buffer.add_char b (Char.chr c.cla);
  Buffer.add_char b (Char.chr c.ins);
  Buffer.add_char b (Char.chr c.p1);
  Buffer.add_char b (Char.chr c.p2);
  Buffer.add_char b (Char.chr (String.length c.data));
  Buffer.add_string b c.data;
  Buffer.contents b

let decode_command s =
  if String.length s < 5 then None
  else begin
    let lc = Char.code s.[4] in
    if String.length s <> 5 + lc then None
    else
      Some
        {
          cla = Char.code s.[0];
          ins = Char.code s.[1];
          p1 = Char.code s.[2];
          p2 = Char.code s.[3];
          data = String.sub s 5 lc;
        }
  end

let encode_response r =
  check_byte "sw1" r.sw1;
  check_byte "sw2" r.sw2;
  r.payload ^ String.init 2 (fun i -> Char.chr (if i = 0 then r.sw1 else r.sw2))

let decode_response s =
  let n = String.length s in
  if n < 2 then None
  else
    Some
      {
        payload = String.sub s 0 (n - 2);
        sw1 = Char.code s.[n - 2];
        sw2 = Char.code s.[n - 1];
      }

let segment ~cla ~ins payload =
  let n = String.length payload in
  if n = 0 then [ { cla; ins; p1 = 0; p2 = 0; data = "" } ]
  else begin
    let frames = (n + max_data - 1) / max_data in
    List.init frames (fun i ->
        let start = i * max_data in
        let len = min max_data (n - start) in
        {
          cla;
          ins;
          p1 = (if i = frames - 1 then 0 else 1);
          p2 = i land 0xff;
          data = String.sub payload start len;
        })
  end

let reassemble commands =
  let rec go acc i = function
    | [] -> invalid_arg "Apdu.reassemble: missing final frame"
    | [ c ] ->
        if c.p1 <> 0 then invalid_arg "Apdu.reassemble: missing final frame";
        if c.p2 <> i land 0xff then
          invalid_arg "Apdu.reassemble: bad sequence number";
        String.concat "" (List.rev (c.data :: acc))
    | c :: rest ->
        if c.p1 <> 1 then invalid_arg "Apdu.reassemble: early final frame";
        if c.p2 <> i land 0xff then
          invalid_arg "Apdu.reassemble: bad sequence number";
        go (c.data :: acc) (i + 1) rest
  in
  go [] 0 commands

let frame_count ~payload_bytes =
  if payload_bytes <= 0 then 1
  else (payload_bytes + max_data - 1) / max_data
