(** Secure-RAM budget accountant.

    The paper's hard constraint: "only 1 KB of RAM available for on-board
    applications". The card runtime reports the evaluator's working-set
    size after every event; exceeding the budget aborts the evaluation
    ({!Out_of_memory}), exactly as the real card would fail — experiment
    E5 sweeps depth and rule count to chart the head-room. *)

type t

exception Out_of_memory of { need_bytes : int; budget_bytes : int }

val create : budget_bytes:int -> t

val record : t -> words:int -> unit
(** Record a working-set observation (in machine words, 4 bytes each on
    the card's 32-bit CPU). Raises {!Out_of_memory} when it exceeds the
    budget. *)

val record_bytes : t -> bytes:int -> unit

val alloc : t -> bytes:int -> unit
(** Allocate [bytes] of long-lived state (e.g. a resident cache entry),
    raising {!Out_of_memory} — without charging — if it would overflow the
    budget. Unlike {!record}, allocations accumulate until {!release}d. *)

val release : t -> bytes:int -> unit
(** Return an earlier {!alloc}. Raises [Invalid_argument] if more is
    released than is currently held. *)

val used_bytes : t -> int
(** Bytes currently held by {!alloc}s. *)

val peak_bytes : t -> int
val budget_bytes : t -> int

val headroom : t -> float
(** [1.0 - peak/budget]. *)
