type t = { budget : int; mutable peak : int; mutable used : int }

exception Out_of_memory of { need_bytes : int; budget_bytes : int }

let word_bytes = 4 (* the card CPU is 32-bit *)

let create ~budget_bytes =
  if budget_bytes <= 0 then invalid_arg "Memory.create";
  { budget = budget_bytes; peak = 0; used = 0 }

let record_bytes t ~bytes =
  if bytes > t.peak then t.peak <- bytes;
  if bytes > t.budget then
    raise (Out_of_memory { need_bytes = bytes; budget_bytes = t.budget })

let record t ~words = record_bytes t ~bytes:(words * word_bytes)

let alloc t ~bytes =
  if bytes < 0 then invalid_arg "Memory.alloc";
  let need = t.used + bytes in
  if need > t.budget then
    raise (Out_of_memory { need_bytes = need; budget_bytes = t.budget });
  t.used <- need;
  if need > t.peak then t.peak <- need

let release t ~bytes =
  if bytes < 0 || bytes > t.used then invalid_arg "Memory.release";
  t.used <- t.used - bytes

let used_bytes t = t.used
let peak_bytes t = t.peak
let budget_bytes t = t.budget
let headroom t = 1.0 -. (float_of_int t.peak /. float_of_int t.budget)
