(** Calibrated cost model of the smart-card platform.

    The demonstration ran on Axalto e-gate cards: "a powerful CPU and
    strong security features but still … only 1 KB of RAM available for
    on-board applications and a low bandwidth (2 KB/s)". The two limiting
    factors the paper names — decryption inside the SOE and communication
    between SOE, client and server — are charged per byte/block here;
    every experiment that reports time does so through this model, so
    results are deterministic and hardware-independent. The constants for
    {!egate} follow the card generation the demo used (software AES in the
    tens of microseconds per block, 2 KB/s half-duplex T=0 link); a
    {!modern} profile shows how the trade-offs move with faster secure
    elements. *)

type profile = {
  name : string;
  ram_bytes : int;  (** secure working memory available to the evaluator *)
  link_bytes_per_s : float;  (** terminal <-> card throughput *)
  apdu_payload : int;  (** max data bytes per APDU frame *)
  apdu_overhead_bytes : int;  (** header/status bytes per frame *)
  aes_block_us : float;  (** decrypt one 16-byte block *)
  sha_block_us : float;  (** hash one 64-byte block *)
  event_us : float;  (** fixed automaton cost per parsing event *)
  token_us : float;  (** cost per live token touched by an event *)
  rsa_op_ms : float;  (** private-key operation (session opening) *)
  compile_state_us : float;
      (** building one automaton state while preparing a rule set
          (parse + NFA construction) — the fixed per-query setup the
          prepared-evaluation cache amortizes *)
}

val egate : profile
(** The demo's Axalto e-gate card (1 KB RAM, 2 KB/s). *)

val modern : profile
(** A contemporary secure element (hardware AES, USB-CCID link, 16 KB
    RAM) — used to show where the crossovers move. *)

val fleet : profile
(** A serving-oriented secure element: {!modern}'s engine constants with a
    64 KB RAM budget and a 1 MB/s link, sized so a prepared-evaluation
    cache can hold many (document, policy, query) automata at once — the
    profile the multi-client session experiments run on. *)

(** Mutable meter accumulating charges, one per evaluation run. *)
type meter

val meter : profile -> meter
val profile_of : meter -> profile

val charge_transfer : meter -> bytes:int -> unit
(** Framed transfer: charges link time for payload plus APDU overhead of
    [ceil (bytes / apdu_payload)] frames. *)

val charge_decrypt : meter -> bytes:int -> unit
(** AES time for [ceil (bytes / 16)] blocks. *)

val charge_hash : meter -> bytes:int -> unit
val charge_events : meter -> events:int -> tokens:int -> unit
val charge_rsa : meter -> ops:int -> unit

val charge_compile : meter -> states:int -> unit
(** Automaton construction: [states] compiled states
    ({!Sdds_core.Compile.state_count}) at [compile_state_us] each. Charged
    once per prepared-cache miss; a warm hit skips it. *)

type breakdown = {
  transfer_ms : float;
  crypto_ms : float;  (** AES + SHA *)
  cpu_ms : float;  (** automaton work *)
  rsa_ms : float;
  compile_ms : float;  (** automaton construction (cache misses only) *)
  total_ms : float;
  bytes_transferred : int;
  bytes_decrypted : int;
  apdu_frames : int;
}

val read : meter -> breakdown

val transfer_cost :
  profile -> bytes:int -> float * int
(** [(milliseconds, frames)] that {!charge_transfer} would account for a
    framed transfer of [bytes] — for adjusting a breakdown after the
    fact (e.g. when the guarded output stream replaces the plain one). *)

val pp_breakdown : Format.formatter -> breakdown -> unit
