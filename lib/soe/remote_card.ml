module Output_codec = Sdds_core.Output_codec
module Obs = Sdds_obs.Obs

(* Ins, Sw and the chain automaton live in {!Protocol}: the protocol
   logic is a pure transition function there, and this module is the
   imperative production driver over it. The aliases keep this module's
   public face (and every call site) unchanged. *)
module Ins = Protocol.Ins
module Sw = Protocol.Sw

let cla = Apdu.base_cla

(* One status word per {!Card.error} constructor, so the terminal can act on
   the failure (retry the grant, refetch the document, surface revocation)
   without a side channel. [Integrity_failure] carries the failing chunk in
   sw2; the string payloads ([No_key]/[Stale_key] document ids, [Bad_rules]
   diagnostics) do not cross the wire — [of_sw] reconstructs them from the
   caller's context. *)
let to_sw = function
  | Card.No_key _ -> Sw.not_found
  | Card.Stale_key _ -> Sw.stale_key
  | Card.Bad_grant -> Sw.bad_grant
  | Card.Bad_signature -> Sw.bad_signature
  | Card.Bad_rules _ -> Sw.security
  | Card.Replayed_rules _ -> Sw.replayed
  | Card.Memory_exceeded _ -> Sw.memory
  | Card.Rules_too_large _ -> Sw.rules_too_large
  | Card.Integrity_failure { chunk } -> (Sw.integrity_sw1, chunk land 0xff)

let of_sw ?(doc_id = "?") (sw1, sw2) =
  let sw = (sw1, sw2) in
  if sw = Sw.not_found then Some (Card.No_key doc_id)
  else if sw = Sw.stale_key then Some (Card.Stale_key doc_id)
  else if sw = Sw.bad_grant then Some Card.Bad_grant
  else if sw = Sw.bad_signature then Some Card.Bad_signature
  else if sw = Sw.security then Some (Card.Bad_rules "rule blob rejected")
  else if sw = Sw.replayed then
    Some (Card.Replayed_rules { seen = 0; offered = 0 })
  else if sw = Sw.memory then
    Some (Card.Memory_exceeded { need_bytes = 0; budget_bytes = 0 })
  else if sw = Sw.rules_too_large then
    Some (Card.Rules_too_large { bound_bytes = 0; budget_bytes = 0 })
  else if sw1 = Sw.integrity_sw1 then
    Some (Card.Integrity_failure { chunk = sw2 })
  else None

type verdict =
  | Done
  | More of int
  | Transient
  | Session_lost
  | Fatal of Card.error
  | Unknown of int * int

(* The single triage point for a response status word. [Transient] words
   ([Sw.transport], [Sw.internal]) mean the frame may not have reached the
   card — the link layer detected loss or corruption, or the card hiccuped
   before processing — so resending the same frame is always safe.
   [Session_lost] means the channel's volatile session state is gone (card
   tear, or a continuation arriving on a fresh session): the setup must be
   replayed before anything else can succeed. *)
let classify ?doc_id (resp : Apdu.response) =
  let sw = (resp.Apdu.sw1, resp.Apdu.sw2) in
  if sw = Sw.ok then Done
  else if resp.Apdu.sw1 = fst Sw.more_data then More resp.Apdu.sw2
  else if sw = Sw.transport || sw = Sw.internal then Transient
  else if sw = Sw.bad_state || sw = Sw.channel_closed then Session_lost
  else
    match of_sw ?doc_id sw with
    | Some e -> Fatal e
    | None -> Unknown (resp.Apdu.sw1, resp.Apdu.sw2)

module Retry = struct
  type t = { budget : int; base_backoff_ms : float; max_backoff_ms : float }

  let default = { budget = 16; base_backoff_ms = 1.0; max_backoff_ms = 64.0 }

  (* Simulated, not slept: retries on a deterministic harness must not
     stall the test clock, so the exponential backoff is accumulated as a
     cost figure the caller can report. *)
  let backoff t ~consec =
    min t.max_backoff_ms (t.base_backoff_ms *. (2.0 ** float_of_int consec))
end

(* The chained-command reassembly state machine, one per channel session:
   a mutable facade over the pure {!Protocol.Chain}, kept because the
   regression properties drive [feed] directly with frame counts spanning
   the 256-frame sequence-number wraparound, which would need >64 KiB
   observable uploads through the full card stack otherwise. *)
module Chain = struct
  type t = { mutable state : Protocol.Chain.t }

  type verdict =
    | Accepted  (* continuation frame appended *)
    | Completed of string  (* final frame arrived: the whole payload *)
    | Duplicate  (* retransmission recognized: ack again, execute nothing *)
    | Rejected  (* sequence gap or stale continuation *)

  let create () = { state = Protocol.Chain.empty }
  let reset t = t.state <- Protocol.Chain.empty
  let forget t ins = t.state <- Protocol.Chain.forget t.state ins

  let feed t (cmd : Apdu.command) =
    let state, verdict = Protocol.Chain.feed t.state cmd in
    t.state <- state;
    match verdict with
    | Protocol.Chain.Accepted -> Accepted
    | Protocol.Chain.Completed payload -> Completed payload
    | Protocol.Chain.Duplicate -> Duplicate
    | Protocol.Chain.Rejected -> Rejected
end

module Host = struct
  type t = {
    backend : Card.doc_source Protocol.backend;
    semantics : Protocol.chain_semantics;
    mutable state : Card.doc_source Protocol.state;
    obs : Obs.t option;
    c_cmds : Obs.Metrics.Counter.t;
    c_tears : Obs.Metrics.Counter.t;
    h_frame_bytes : Obs.Metrics.Histogram.t;
    h_rtt_ns : Obs.Metrics.Histogram.t;
  }

  let parse_query = function
    | None -> None
    | Some q -> (
        match Sdds_xpath.Parser.parse q with
        | ast -> Some ast
        | exception Sdds_xpath.Parser.Error _ -> None)

  (* The card-level effects behind the pure machine: SELECT resolution,
     grant installation, upload-time static admission (a no-op unless the
     card enables preflight) and policy evaluation, each mapped to its
     status word through [to_sw]. *)
  let backend ~card ~resolve : Card.doc_source Protocol.backend =
    {
      Protocol.resolve;
      install_grant =
        (fun doc ~wrapped ->
          match
            Card.install_wrapped_key card ~doc_id:doc.Card.doc_id ~wrapped
          with
          | Ok () -> Ok ()
          | Error e -> Error (to_sw e));
      accept_rules =
        (fun doc ~query blob ->
          match
            Card.preflight card ~doc_id:doc.Card.doc_id
              ~publisher:doc.Card.publisher ?query:(parse_query query)
              ~chunk_plain_bytes:doc.Card.chunk_plain_bytes
              ~encrypted_rules:blob ()
          with
          | Ok () -> Ok ()
          | Error e -> Error (to_sw e));
      evaluate =
        (fun doc ~rules ~query ~push ~use_index ->
          let delivery = if push then `Push else `Pull in
          match
            Card.evaluate card { doc with Card.delivery }
              ~encrypted_rules:rules ?query:(parse_query query) ~use_index ()
          with
          | Ok (outputs, _report) -> Ok (Output_codec.encode_list outputs)
          | Error e -> Error (to_sw e));
    }

  let create ?obs ?(semantics = Protocol.Identity_marker) ~card ~resolve () =
    let c_cmds = Obs.Metrics.Counter.create () in
    let c_tears = Obs.Metrics.Counter.create () in
    let h_frame_bytes = Obs.Metrics.Histogram.create () in
    let h_rtt_ns = Obs.Metrics.Histogram.create () in
    Obs.attach_counter obs "apdu.commands" c_cmds;
    Obs.attach_counter obs "card.tears" c_tears;
    Obs.attach_histogram obs "apdu.frame_bytes" h_frame_bytes;
    Obs.attach_histogram obs "apdu.rtt_ns" h_rtt_ns;
    {
      backend = backend ~card ~resolve;
      semantics;
      state = Protocol.initial ();
      obs;
      c_cmds;
      c_tears;
      h_frame_bytes;
      h_rtt_ns;
    }

  let open_channels t = Protocol.open_channels t.state

  (* Power loss / card extraction: every volatile session dies — logical
     channels 1–3 close, the basic channel restarts fresh. Card-level
     state (the key store, the anti-rollback high-water marks, the
     prepared-evaluation cache) lives in non-volatile memory and
     survives, which is what makes warm recovery after a tear cheap. *)
  let tear t =
    Obs.Metrics.Counter.inc t.c_tears;
    Obs.Tracer.instant (Obs.tracer t.obs) "card.tear";
    let state, _ = Protocol.step ~backend:t.backend t.state Protocol.Tear in
    t.state <- state

  let process t (cmd : Apdu.command) =
    let tr = Obs.tracer t.obs in
    Obs.Metrics.Counter.inc t.c_cmds;
    let t0 = Obs.Tracer.now tr in
    let resp =
      Obs.Tracer.with_span tr
        ~args:
          [ ("ins", Ins.name cmd.Apdu.ins);
            ( "channel",
              if Apdu.valid_cla cmd.Apdu.cla then
                string_of_int (Apdu.channel_of_cla cmd.Apdu.cla)
              else "?" ) ]
        "apdu"
      @@ fun () ->
      let state, actions =
        Protocol.step ~backend:t.backend ~semantics:t.semantics t.state
          (Protocol.Command cmd)
      in
      t.state <- state;
      match Protocol.response_of actions with
      | Some resp -> resp
      | None ->
          (* Unreachable: a [Command] step always replies. *)
          { Apdu.sw1 = fst Sw.internal; sw2 = snd Sw.internal; payload = "" }
    in
    Obs.Metrics.Histogram.observe t.h_frame_bytes
      (String.length (Apdu.encode_command cmd)
      + String.length (Apdu.encode_response resp));
    if Obs.Tracer.enabled tr then
      Obs.Metrics.Histogram.observe t.h_rtt_ns
        (Int64.to_int (Int64.sub (Obs.Tracer.now tr) t0));
    resp
end


module Client = struct
  type transport = Apdu.command -> Apdu.response

  type error =
    | Card of Card.error
    | Link of { attempts : int; sw1 : int; sw2 : int }
    | Protocol of string

  let pp_error ppf = function
    | Card e -> Card.pp_error ppf e
    | Link { attempts; sw1; sw2 } ->
        Format.fprintf ppf
          "link failure: retry budget exhausted after %d retries (last SW \
           %02X%02X)"
          attempts sw1 sw2
    | Protocol msg -> Format.fprintf ppf "protocol error: %s" msg

  let string_of_error e = Format.asprintf "%a" pp_error e

  type result = {
    outputs : Sdds_core.Output.t list;
    command_frames : int;
    response_frames : int;
    wire_bytes : int;
    retries : int;
    reestablished : int;
    backoff_ms : float;
  }

  type counters = {
    mutable cmds : int;
    mutable resps : int;
    mutable bytes : int;
  }

  let send counters (transport : transport) cmd =
    counters.cmds <- counters.cmds + 1;
    counters.bytes <-
      counters.bytes + String.length (Apdu.encode_command cmd);
    let resp = transport cmd in
    counters.resps <- counters.resps + 1;
    counters.bytes <-
      counters.bytes + String.length (Apdu.encode_response resp);
    resp

  let open_channel (transport : transport) =
    let resp =
      transport
        { Apdu.cla; ins = Ins.manage_channel; p1 = 0; p2 = 0; data = "" }
    in
    if
      (resp.Apdu.sw1, resp.Apdu.sw2) = Sw.ok
      && String.length resp.Apdu.payload = 1
    then Ok (Char.code resp.Apdu.payload.[0])
    else
      Error
        (Printf.sprintf "open channel failed: SW %02X%02X" resp.Apdu.sw1
           resp.Apdu.sw2)

  let close_channel (transport : transport) channel =
    let resp =
      transport
        {
          Apdu.cla;
          ins = Ins.manage_channel;
          p1 = 0x80;
          p2 = channel;
          data = "";
        }
    in
    if (resp.Apdu.sw1, resp.Apdu.sw2) = Sw.ok then Ok ()
    else
      Error
        (Printf.sprintf "close channel failed: SW %02X%02X" resp.Apdu.sw1
           resp.Apdu.sw2)

  (* Internal control flow of [evaluate]; never escapes. *)
  exception Give_up of error
  exception Lost_session of int * int

  let evaluate transport ~doc_id ?wrapped_grant ~encrypted_rules ?xpath
      ?(push = false) ?(use_index = true) ?(channel = 0)
      ?(retry = Retry.default) () =
    let counters = { cmds = 0; resps = 0; bytes = 0 } in
    let budget = ref retry.Retry.budget in
    let retries = ref 0 and reest = ref 0 and backoff = ref 0.0 in
    let chan = ref channel in
    (* Send one frame, absorbing transient link faults under the retry
       budget; a lost session escapes to the re-establishment loop. *)
    let exec cmd =
      let rec go consec =
        let resp = send counters transport cmd in
        match classify ~doc_id resp with
        | Transient ->
            if !budget <= 0 then
              raise
                (Give_up
                   (Link
                      {
                        attempts = retry.Retry.budget;
                        sw1 = resp.Apdu.sw1;
                        sw2 = resp.Apdu.sw2;
                      }))
            else begin
              decr budget;
              incr retries;
              backoff := !backoff +. Retry.backoff retry ~consec;
              go (consec + 1)
            end
        | Session_lost -> raise (Lost_session (resp.Apdu.sw1, resp.Apdu.sw2))
        | Done | More _ | Fatal _ | Unknown _ -> resp
      in
      go 0
    in
    let expect_ok step resp =
      match classify ~doc_id resp with
      | Done -> ()
      | Fatal e -> raise (Give_up (Card e))
      | More _ ->
          raise (Give_up (Protocol (step ^ ": unexpected continuation status")))
      | Unknown (sw1, sw2) ->
          raise
            (Give_up
               (Protocol
                  (Printf.sprintf "%s failed: SW %02X%02X" step sw1 sw2)))
      | Transient | Session_lost -> assert false (* absorbed by [exec] *)
    in
    let frame ins ?(p1 = 0) ?(p2 = 0) data =
      { Apdu.cla = Apdu.cla_of_channel !chan; ins; p1; p2; data }
    in
    let setup () =
      expect_ok "select" (exec (frame Ins.select doc_id));
      (match wrapped_grant with
      | None -> ()
      | Some w -> expect_ok "grant" (exec (frame Ins.grant w)));
      let chained ins payload =
        List.iter
          (fun f -> expect_ok "chained command" (exec f))
          (Apdu.segment ~cla:(Apdu.cla_of_channel !chan) ~ins payload)
      in
      chained Ins.rules encrypted_rules;
      match xpath with None -> () | Some q -> chained Ins.query q
    in
    (* Drain with explicit block numbers: a retried GET RESPONSE re-asks
       for the block whose answer was lost, and the host retransmits it
       byte-identically — dropped frames never skip response bytes. *)
    let drain () =
      let buf = Buffer.create 256 in
      let rec go block (resp : Apdu.response) =
        match classify ~doc_id resp with
        | Done ->
            Buffer.add_string buf resp.Apdu.payload;
            Buffer.contents buf
        | More _ ->
            Buffer.add_string buf resp.Apdu.payload;
            go (block + 1)
              (exec (frame Ins.get_response ~p2:((block + 1) land 0xff) ""))
        | Fatal e -> raise (Give_up (Card e))
        | Unknown (sw1, sw2) ->
            raise
              (Give_up
                 (Protocol
                    (Printf.sprintf "evaluate failed: SW %02X%02X" sw1 sw2)))
        | Transient | Session_lost -> assert false (* absorbed by [exec] *)
      in
      go 0
        (exec
           (frame Ins.evaluate
              ~p1:(if push then 1 else 0)
              ~p2:(if use_index then 0 else 1)
              ""))
    in
    let reopen () =
      (* Our logical channel died with the card's volatile state (tear):
         acquire a fresh one over the always-open basic channel. *)
      let resp =
        exec
          {
            Apdu.cla = Apdu.base_cla;
            ins = Ins.manage_channel;
            p1 = 0;
            p2 = 0;
            data = "";
          }
      in
      match classify ~doc_id resp with
      | Done when String.length resp.Apdu.payload = 1 ->
          chan := Char.code resp.Apdu.payload.[0]
      | _ ->
          raise
            (Give_up
               (Protocol "cannot reopen a logical channel after card reset"))
    in
    (* Session loop: on evidence that the card lost our session (tear,
       channel eviction), discard any partial response and replay the
       whole setup — the card's stable key store and prepared-evaluation
       cache make the replay cheap — until the budget runs out. *)
    let rec session () =
      match
        setup ();
        drain ()
      with
      | encoded -> encoded
      | exception Lost_session (sw1, sw2) ->
          if !budget <= 0 then
            raise (Give_up (Link { attempts = retry.Retry.budget; sw1; sw2 }))
          else begin
            decr budget;
            incr reest;
            backoff := !backoff +. Retry.backoff retry ~consec:0;
            if (sw1, sw2) = Sw.channel_closed && !chan <> 0 then reopen ();
            session ()
          end
    in
    match session () with
    | encoded -> (
        match Output_codec.decode_list encoded with
        | outputs ->
            Ok
              {
                outputs;
                command_frames = counters.cmds;
                response_frames = counters.resps;
                wire_bytes = counters.bytes;
                retries = !retries;
                reestablished = !reest;
                backoff_ms = !backoff;
              }
        | exception Invalid_argument msg ->
            Error (Protocol ("bad response stream: " ^ msg)))
    | exception Give_up e -> Error e
end
