module Output_codec = Sdds_core.Output_codec
module Obs = Sdds_obs.Obs

module Ins = struct
  let manage_channel = 0x70
  let select = 0xA0
  let grant = 0xA2
  let rules = 0xA4
  let query = 0xA6
  let evaluate = 0xB0
  let get_response = 0xC0

  let name ins =
    if ins = manage_channel then "MANAGE_CHANNEL"
    else if ins = select then "SELECT"
    else if ins = grant then "GRANT"
    else if ins = rules then "RULES"
    else if ins = query then "QUERY"
    else if ins = evaluate then "EVALUATE"
    else if ins = get_response then "GET_RESPONSE"
    else Printf.sprintf "INS_%02X" (ins land 0xff)
end

module Sw = struct
  let ok = (0x90, 0x00)
  let more_data = (0x61, 0x00)
  let not_found = (0x6A, 0x88)
  let stale_key = (0x6A, 0x82)
  let bad_grant = (0x69, 0x84)
  let bad_signature = (0x69, 0x88)
  let security = (0x69, 0x82)
  let replayed = (0x69, 0x87)
  let memory = (0x6A, 0x84)
  let rules_too_large = (0x6A, 0x80)
  let integrity_sw1 = 0x66
  let bad_state = (0x69, 0x85)
  let bad_ins = (0x6D, 0x00)
  let channel_closed = (0x68, 0x81)
  let no_channel = (0x6A, 0x81)
  let transport = (0x64, 0x00)
  let internal = (0x6F, 0x00)
end

let cla = Apdu.base_cla
let max_response = 255

(* One status word per {!Card.error} constructor, so the terminal can act on
   the failure (retry the grant, refetch the document, surface revocation)
   without a side channel. [Integrity_failure] carries the failing chunk in
   sw2; the string payloads ([No_key]/[Stale_key] document ids, [Bad_rules]
   diagnostics) do not cross the wire — [of_sw] reconstructs them from the
   caller's context. *)
let to_sw = function
  | Card.No_key _ -> Sw.not_found
  | Card.Stale_key _ -> Sw.stale_key
  | Card.Bad_grant -> Sw.bad_grant
  | Card.Bad_signature -> Sw.bad_signature
  | Card.Bad_rules _ -> Sw.security
  | Card.Replayed_rules _ -> Sw.replayed
  | Card.Memory_exceeded _ -> Sw.memory
  | Card.Rules_too_large _ -> Sw.rules_too_large
  | Card.Integrity_failure { chunk } -> (Sw.integrity_sw1, chunk land 0xff)

let of_sw ?(doc_id = "?") (sw1, sw2) =
  let sw = (sw1, sw2) in
  if sw = Sw.not_found then Some (Card.No_key doc_id)
  else if sw = Sw.stale_key then Some (Card.Stale_key doc_id)
  else if sw = Sw.bad_grant then Some Card.Bad_grant
  else if sw = Sw.bad_signature then Some Card.Bad_signature
  else if sw = Sw.security then Some (Card.Bad_rules "rule blob rejected")
  else if sw = Sw.replayed then
    Some (Card.Replayed_rules { seen = 0; offered = 0 })
  else if sw = Sw.memory then
    Some (Card.Memory_exceeded { need_bytes = 0; budget_bytes = 0 })
  else if sw = Sw.rules_too_large then
    Some (Card.Rules_too_large { bound_bytes = 0; budget_bytes = 0 })
  else if sw1 = Sw.integrity_sw1 then
    Some (Card.Integrity_failure { chunk = sw2 })
  else None

type verdict =
  | Done
  | More of int
  | Transient
  | Session_lost
  | Fatal of Card.error
  | Unknown of int * int

(* The single triage point for a response status word. [Transient] words
   ([Sw.transport], [Sw.internal]) mean the frame may not have reached the
   card — the link layer detected loss or corruption, or the card hiccuped
   before processing — so resending the same frame is always safe.
   [Session_lost] means the channel's volatile session state is gone (card
   tear, or a continuation arriving on a fresh session): the setup must be
   replayed before anything else can succeed. *)
let classify ?doc_id (resp : Apdu.response) =
  let sw = (resp.Apdu.sw1, resp.Apdu.sw2) in
  if sw = Sw.ok then Done
  else if resp.Apdu.sw1 = fst Sw.more_data then More resp.Apdu.sw2
  else if sw = Sw.transport || sw = Sw.internal then Transient
  else if sw = Sw.bad_state || sw = Sw.channel_closed then Session_lost
  else
    match of_sw ?doc_id sw with
    | Some e -> Fatal e
    | None -> Unknown (resp.Apdu.sw1, resp.Apdu.sw2)

module Retry = struct
  type t = { budget : int; base_backoff_ms : float; max_backoff_ms : float }

  let default = { budget = 16; base_backoff_ms = 1.0; max_backoff_ms = 64.0 }

  (* Simulated, not slept: retries on a deterministic harness must not
     stall the test clock, so the exponential backoff is accumulated as a
     cost figure the caller can report. *)
  let backoff t ~consec =
    min t.max_backoff_ms (t.base_backoff_ms *. (2.0 ** float_of_int consec))
end

(* The chained-command reassembly state machine, one per channel session.
   Extracted so the retransmission semantics are testable in isolation:
   the qcheck properties drive [feed] directly with frame counts spanning
   the 256-frame sequence-number wraparound, which would need >64 KiB
   observable uploads through the full card stack otherwise. *)
module Chain = struct
  type t = {
    (* open accumulators, keyed by instruction *)
    chains : (int, Buffer.t * int ref) Hashtbl.t;
    (* ins -> (p2, data) of the last accepted final frame. This is the
       completion marker a retransmitted final frame is recognized by.
       Recording the frame's identity — not just its sequence number —
       matters: a single-frame chain finishes at p2 = 0 and a 257-frame
       chain finishes at p2 ≡ 0 (mod 256), both indistinguishable from a
       fresh chain opener by p2 alone. *)
    finished : (int, int * string) Hashtbl.t;
  }

  type verdict =
    | Accepted  (* continuation frame appended *)
    | Completed of string  (* final frame arrived: the whole payload *)
    | Duplicate  (* retransmission recognized: ack again, execute nothing *)
    | Rejected  (* sequence gap or stale continuation *)

  let create () = { chains = Hashtbl.create 4; finished = Hashtbl.create 4 }

  let reset t =
    Hashtbl.reset t.chains;
    Hashtbl.reset t.finished

  (* The completion failed for good (e.g. preflight refused the blob): a
     retransmitted final frame must not be acked as if it had
     succeeded. *)
  let forget t ins = Hashtbl.remove t.finished ins

  let feed t (cmd : Apdu.command) =
    match Hashtbl.find_opt t.chains cmd.Apdu.ins with
    | None
      when cmd.Apdu.p1 = 0
           && Hashtbl.find_opt t.finished cmd.Apdu.ins
              = Some (cmd.Apdu.p2, cmd.Apdu.data) ->
        (* The final frame of the chain we just completed, retransmitted
           because its ack was lost: re-ack it, whatever its p2 — p2 = 0
           (a single-frame chain, or a final frame aliasing to 0 mod 256)
           must not silently open a fresh chain and re-execute. *)
        Duplicate
    | None when cmd.Apdu.p2 <> 0 ->
        (* A continuation (or unrecognized final) with no chain open: a
           stale frame from before a SELECT or from an aborted upload —
           it must not start a fresh chain. *)
        Rejected
    | existing -> (
        let buf, seq =
          match existing with
          | Some bs -> bs
          | None ->
              let bs = (Buffer.create 256, ref 0) in
              Hashtbl.add t.chains cmd.Apdu.ins bs;
              bs
        in
        if !seq > 0 && cmd.Apdu.p2 = (!seq - 1) land 0xff then
          (* Duplicate of the frame just accepted: ack, don't append. *)
          Duplicate
        else if cmd.Apdu.p2 <> !seq land 0xff then begin
          Hashtbl.remove t.chains cmd.Apdu.ins;
          Rejected
        end
        else begin
          incr seq;
          Buffer.add_string buf cmd.Apdu.data;
          if cmd.Apdu.p1 = 0 then begin
            Hashtbl.remove t.chains cmd.Apdu.ins;
            Hashtbl.replace t.finished cmd.Apdu.ins
              (cmd.Apdu.p2, cmd.Apdu.data);
            Completed (Buffer.contents buf)
          end
          else Accepted
        end)
end

module Host = struct
  (* The per-channel slice of the protocol state: everything a SELECT
     resets lives here, so channels cannot observe (or corrupt) each
     other's half-uploaded chains or undrained responses. *)
  type session = {
    mutable doc : Card.doc_source option;
    chain : Chain.t;  (* chained-command accumulators *)
    mutable pending_rules : string option;
    mutable pending_query : string option;
    mutable response : string;  (* bytes not yet drained *)
    mutable resp_block : int;  (* next response block to serve *)
    mutable resp_last : Apdu.response option;  (* for retransmission *)
    mutable resp_ready : bool;  (* an EVALUATE produced the stream *)
  }

  let fresh_session () =
    {
      doc = None;
      chain = Chain.create ();
      pending_rules = None;
      pending_query = None;
      response = "";
      resp_block = 0;
      resp_last = None;
      resp_ready = false;
    }

  type t = {
    card : Card.t;
    resolve : string -> Card.doc_source option;
    sessions : session option array;  (* slot index = channel number *)
    obs : Obs.t option;
    c_cmds : Obs.Metrics.Counter.t;
    c_tears : Obs.Metrics.Counter.t;
    h_frame_bytes : Obs.Metrics.Histogram.t;
    h_rtt_ns : Obs.Metrics.Histogram.t;
  }

  let create ?obs ~card ~resolve () =
    let sessions = Array.make Apdu.max_channels None in
    (* The basic channel is always open. *)
    sessions.(0) <- Some (fresh_session ());
    let c_cmds = Obs.Metrics.Counter.create () in
    let c_tears = Obs.Metrics.Counter.create () in
    let h_frame_bytes = Obs.Metrics.Histogram.create () in
    let h_rtt_ns = Obs.Metrics.Histogram.create () in
    Obs.attach_counter obs "apdu.commands" c_cmds;
    Obs.attach_counter obs "card.tears" c_tears;
    Obs.attach_histogram obs "apdu.frame_bytes" h_frame_bytes;
    Obs.attach_histogram obs "apdu.rtt_ns" h_rtt_ns;
    { card; resolve; sessions; obs; c_cmds; c_tears; h_frame_bytes; h_rtt_ns }

  let open_channels t =
    Array.fold_left
      (fun n -> function None -> n | Some _ -> n + 1)
      0 t.sessions

  (* Power loss / card extraction: every volatile session dies — logical
     channels 1–3 close, the basic channel restarts fresh. Card-level
     state (the key store, the anti-rollback high-water marks, the
     prepared-evaluation cache) lives in non-volatile memory and
     survives, which is what makes warm recovery after a tear cheap. *)
  let tear t =
    Obs.Metrics.Counter.inc t.c_tears;
    Obs.Tracer.instant (Obs.tracer t.obs) "card.tear";
    Array.fill t.sessions 0 (Array.length t.sessions) None;
    t.sessions.(0) <- Some (fresh_session ())

  let reply ?(payload = "") (sw1, sw2) = { Apdu.sw1; sw2; payload }

  (* Serve the next 255-byte block of the response stream and remember it:
     a GET RESPONSE re-asking for the block just served (its response was
     lost on the wire) gets a byte-identical retransmission instead of
     silently skipping ahead — a dropped frame can cost time, never
     payload integrity. *)
  let serve_block s =
    let n = String.length s.response in
    let take = min max_response n in
    let payload = String.sub s.response 0 take in
    s.response <- String.sub s.response take (n - take);
    let resp =
      if String.length s.response = 0 then reply ~payload Sw.ok
      else begin
        let sw1, _ = Sw.more_data in
        reply ~payload (sw1, min 0xff (String.length s.response))
      end
    in
    s.resp_last <- Some resp;
    s.resp_block <- s.resp_block + 1;
    resp

  let manage_channel t (cmd : Apdu.command) =
    if cmd.Apdu.p1 = 0x00 && cmd.Apdu.p2 = 0x00 then begin
      (* Open: allocate the lowest free channel and return its number. *)
      let rec find i =
        if i >= Apdu.max_channels then None
        else match t.sessions.(i) with None -> Some i | Some _ -> find (i + 1)
      in
      match find 1 with
      | None -> reply Sw.no_channel
      | Some i ->
          t.sessions.(i) <- Some (fresh_session ());
          reply ~payload:(String.make 1 (Char.chr i)) Sw.ok
    end
    else if cmd.Apdu.p1 = 0x80 then begin
      (* Close: the target channel is in p2; the basic channel cannot be
         closed. Everything the session held (chains, pending response)
         dies with it. *)
      let target = cmd.Apdu.p2 in
      if target <= 0 || target >= Apdu.max_channels then reply Sw.bad_state
      else
        match t.sessions.(target) with
        | None -> reply Sw.bad_state
        | Some _ ->
            t.sessions.(target) <- None;
            reply Sw.ok
    end
    else reply Sw.bad_state

  let dispatch t s (cmd : Apdu.command) =
    if cmd.Apdu.ins = Ins.select then begin
      match t.resolve cmd.Apdu.data with
      | Some doc ->
          s.doc <- Some doc;
          (* A SELECT starts a fresh session on this channel: half-uploaded
             chains from an aborted rules/query upload must not be
             concatenated with a later upload for this (or any)
             document. *)
          Chain.reset s.chain;
          s.pending_rules <- None;
          s.pending_query <- None;
          s.response <- "";
          s.resp_block <- 0;
          s.resp_last <- None;
          s.resp_ready <- false;
          reply Sw.ok
      | None -> reply Sw.not_found
    end
    else if cmd.Apdu.ins = Ins.grant then begin
      match s.doc with
      | None -> reply Sw.bad_state
      | Some doc -> (
          match
            Card.install_wrapped_key t.card ~doc_id:doc.Card.doc_id
              ~wrapped:cmd.Apdu.data
          with
          | Ok () -> reply Sw.ok
          | Error e -> reply (to_sw e))
    end
    else if cmd.Apdu.ins = Ins.rules then begin
      match s.doc with
      | None -> reply Sw.bad_state
      | Some doc -> (
          match Chain.feed s.chain cmd with
          | Chain.Rejected -> reply Sw.bad_state
          | Chain.Accepted | Chain.Duplicate -> reply Sw.ok
          | Chain.Completed blob -> (
              (* Static admission at upload time: a blob whose analyzer
                 memory bound cannot fit this card is refused here, with
                 its own status word, before any evaluation is attempted.
                 A no-op unless the card enables preflight. *)
              let query =
                match s.pending_query with
                | None -> None
                | Some q -> (
                    match Sdds_xpath.Parser.parse q with
                    | ast -> Some ast
                    | exception Sdds_xpath.Parser.Error _ -> None)
              in
              match
                Card.preflight t.card ~doc_id:doc.Card.doc_id
                  ~publisher:doc.Card.publisher ?query
                  ~chunk_plain_bytes:doc.Card.chunk_plain_bytes
                  ~encrypted_rules:blob ()
              with
              | Error e ->
                  (* The upload failed for good: a retransmitted final
                     frame must not be acked as if it had succeeded. *)
                  Chain.forget s.chain Ins.rules;
                  reply (to_sw e)
              | Ok () ->
                  s.pending_rules <- Some blob;
                  reply Sw.ok))
    end
    else if cmd.Apdu.ins = Ins.query then begin
      if s.doc = None then reply Sw.bad_state
      else begin
        match Chain.feed s.chain cmd with
        | Chain.Rejected -> reply Sw.bad_state
        | Chain.Accepted | Chain.Duplicate -> reply Sw.ok
        | Chain.Completed q ->
            s.pending_query <- Some q;
            reply Sw.ok
      end
    end
    else if cmd.Apdu.ins = Ins.evaluate then begin
      match (s.doc, s.pending_rules) with
      | None, _ | _, None -> reply Sw.bad_state
      | Some doc, Some encrypted_rules -> (
          let delivery = if cmd.Apdu.p1 = 1 then `Push else `Pull in
          let use_index = cmd.Apdu.p2 = 0 in
          let query =
            match s.pending_query with
            | None -> None
            | Some q -> (
                match Sdds_xpath.Parser.parse q with
                | ast -> Some ast
                | exception Sdds_xpath.Parser.Error _ -> None)
          in
          match
            Card.evaluate t.card { doc with Card.delivery } ~encrypted_rules
              ?query ~use_index ()
          with
          | Ok (outputs, _report) ->
              s.response <- Output_codec.encode_list outputs;
              s.resp_block <- 0;
              s.resp_last <- None;
              s.resp_ready <- true;
              serve_block s
          | Error e -> reply (to_sw e))
    end
    else if cmd.Apdu.ins = Ins.get_response then begin
      (* Block-sequenced drain (block index in p2, mod 256): a terminal
         can only read forward one block at a time or re-read the block it
         just received. Draining a session that never evaluated — e.g.
         after a tear wiped the stream — is a state error, never a silent
         empty success the terminal could mistake for a whole view. *)
      if not s.resp_ready then reply Sw.bad_state
      else if cmd.Apdu.p2 = s.resp_block land 0xff then serve_block s
      else if s.resp_block > 0 && cmd.Apdu.p2 = (s.resp_block - 1) land 0xff
      then
        match s.resp_last with
        | Some r -> r
        | None -> reply Sw.bad_state
      else reply Sw.bad_state
    end
    else reply Sw.bad_ins

  let process t (cmd : Apdu.command) =
    let tr = Obs.tracer t.obs in
    Obs.Metrics.Counter.inc t.c_cmds;
    let t0 = Obs.Tracer.now tr in
    let resp =
      Obs.Tracer.with_span tr
        ~args:
          [ ("ins", Ins.name cmd.Apdu.ins);
            ( "channel",
              if Apdu.valid_cla cmd.Apdu.cla then
                string_of_int (Apdu.channel_of_cla cmd.Apdu.cla)
              else "?" ) ]
        "apdu"
      @@ fun () ->
      if not (Apdu.valid_cla cmd.Apdu.cla) then reply Sw.bad_ins
      else begin
        let ch = Apdu.channel_of_cla cmd.Apdu.cla in
        match t.sessions.(ch) with
        | None -> reply Sw.channel_closed
        | Some s ->
            if cmd.Apdu.ins = Ins.manage_channel then manage_channel t cmd
            else dispatch t s cmd
      end
    in
    Obs.Metrics.Histogram.observe t.h_frame_bytes
      (String.length (Apdu.encode_command cmd)
      + String.length (Apdu.encode_response resp));
    if Obs.Tracer.enabled tr then
      Obs.Metrics.Histogram.observe t.h_rtt_ns
        (Int64.to_int (Int64.sub (Obs.Tracer.now tr) t0));
    resp
end

module Client = struct
  type transport = Apdu.command -> Apdu.response

  type error =
    | Card of Card.error
    | Link of { attempts : int; sw1 : int; sw2 : int }
    | Protocol of string

  let pp_error ppf = function
    | Card e -> Card.pp_error ppf e
    | Link { attempts; sw1; sw2 } ->
        Format.fprintf ppf
          "link failure: retry budget exhausted after %d retries (last SW \
           %02X%02X)"
          attempts sw1 sw2
    | Protocol msg -> Format.fprintf ppf "protocol error: %s" msg

  let string_of_error e = Format.asprintf "%a" pp_error e

  type result = {
    outputs : Sdds_core.Output.t list;
    command_frames : int;
    response_frames : int;
    wire_bytes : int;
    retries : int;
    reestablished : int;
    backoff_ms : float;
  }

  type counters = {
    mutable cmds : int;
    mutable resps : int;
    mutable bytes : int;
  }

  let send counters (transport : transport) cmd =
    counters.cmds <- counters.cmds + 1;
    counters.bytes <-
      counters.bytes + String.length (Apdu.encode_command cmd);
    let resp = transport cmd in
    counters.resps <- counters.resps + 1;
    counters.bytes <-
      counters.bytes + String.length (Apdu.encode_response resp);
    resp

  let open_channel (transport : transport) =
    let resp =
      transport
        { Apdu.cla; ins = Ins.manage_channel; p1 = 0; p2 = 0; data = "" }
    in
    if
      (resp.Apdu.sw1, resp.Apdu.sw2) = Sw.ok
      && String.length resp.Apdu.payload = 1
    then Ok (Char.code resp.Apdu.payload.[0])
    else
      Error
        (Printf.sprintf "open channel failed: SW %02X%02X" resp.Apdu.sw1
           resp.Apdu.sw2)

  let close_channel (transport : transport) channel =
    let resp =
      transport
        {
          Apdu.cla;
          ins = Ins.manage_channel;
          p1 = 0x80;
          p2 = channel;
          data = "";
        }
    in
    if (resp.Apdu.sw1, resp.Apdu.sw2) = Sw.ok then Ok ()
    else
      Error
        (Printf.sprintf "close channel failed: SW %02X%02X" resp.Apdu.sw1
           resp.Apdu.sw2)

  (* Internal control flow of [evaluate]; never escapes. *)
  exception Give_up of error
  exception Lost_session of int * int

  let evaluate transport ~doc_id ?wrapped_grant ~encrypted_rules ?xpath
      ?(push = false) ?(use_index = true) ?(channel = 0)
      ?(retry = Retry.default) () =
    let counters = { cmds = 0; resps = 0; bytes = 0 } in
    let budget = ref retry.Retry.budget in
    let retries = ref 0 and reest = ref 0 and backoff = ref 0.0 in
    let chan = ref channel in
    (* Send one frame, absorbing transient link faults under the retry
       budget; a lost session escapes to the re-establishment loop. *)
    let exec cmd =
      let rec go consec =
        let resp = send counters transport cmd in
        match classify ~doc_id resp with
        | Transient ->
            if !budget <= 0 then
              raise
                (Give_up
                   (Link
                      {
                        attempts = retry.Retry.budget;
                        sw1 = resp.Apdu.sw1;
                        sw2 = resp.Apdu.sw2;
                      }))
            else begin
              decr budget;
              incr retries;
              backoff := !backoff +. Retry.backoff retry ~consec;
              go (consec + 1)
            end
        | Session_lost -> raise (Lost_session (resp.Apdu.sw1, resp.Apdu.sw2))
        | Done | More _ | Fatal _ | Unknown _ -> resp
      in
      go 0
    in
    let expect_ok step resp =
      match classify ~doc_id resp with
      | Done -> ()
      | Fatal e -> raise (Give_up (Card e))
      | More _ ->
          raise (Give_up (Protocol (step ^ ": unexpected continuation status")))
      | Unknown (sw1, sw2) ->
          raise
            (Give_up
               (Protocol
                  (Printf.sprintf "%s failed: SW %02X%02X" step sw1 sw2)))
      | Transient | Session_lost -> assert false (* absorbed by [exec] *)
    in
    let frame ins ?(p1 = 0) ?(p2 = 0) data =
      { Apdu.cla = Apdu.cla_of_channel !chan; ins; p1; p2; data }
    in
    let setup () =
      expect_ok "select" (exec (frame Ins.select doc_id));
      (match wrapped_grant with
      | None -> ()
      | Some w -> expect_ok "grant" (exec (frame Ins.grant w)));
      let chained ins payload =
        List.iter
          (fun f -> expect_ok "chained command" (exec f))
          (Apdu.segment ~cla:(Apdu.cla_of_channel !chan) ~ins payload)
      in
      chained Ins.rules encrypted_rules;
      match xpath with None -> () | Some q -> chained Ins.query q
    in
    (* Drain with explicit block numbers: a retried GET RESPONSE re-asks
       for the block whose answer was lost, and the host retransmits it
       byte-identically — dropped frames never skip response bytes. *)
    let drain () =
      let buf = Buffer.create 256 in
      let rec go block (resp : Apdu.response) =
        match classify ~doc_id resp with
        | Done ->
            Buffer.add_string buf resp.Apdu.payload;
            Buffer.contents buf
        | More _ ->
            Buffer.add_string buf resp.Apdu.payload;
            go (block + 1)
              (exec (frame Ins.get_response ~p2:((block + 1) land 0xff) ""))
        | Fatal e -> raise (Give_up (Card e))
        | Unknown (sw1, sw2) ->
            raise
              (Give_up
                 (Protocol
                    (Printf.sprintf "evaluate failed: SW %02X%02X" sw1 sw2)))
        | Transient | Session_lost -> assert false (* absorbed by [exec] *)
      in
      go 0
        (exec
           (frame Ins.evaluate
              ~p1:(if push then 1 else 0)
              ~p2:(if use_index then 0 else 1)
              ""))
    in
    let reopen () =
      (* Our logical channel died with the card's volatile state (tear):
         acquire a fresh one over the always-open basic channel. *)
      let resp =
        exec
          {
            Apdu.cla = Apdu.base_cla;
            ins = Ins.manage_channel;
            p1 = 0;
            p2 = 0;
            data = "";
          }
      in
      match classify ~doc_id resp with
      | Done when String.length resp.Apdu.payload = 1 ->
          chan := Char.code resp.Apdu.payload.[0]
      | _ ->
          raise
            (Give_up
               (Protocol "cannot reopen a logical channel after card reset"))
    in
    (* Session loop: on evidence that the card lost our session (tear,
       channel eviction), discard any partial response and replay the
       whole setup — the card's stable key store and prepared-evaluation
       cache make the replay cheap — until the budget runs out. *)
    let rec session () =
      match
        setup ();
        drain ()
      with
      | encoded -> encoded
      | exception Lost_session (sw1, sw2) ->
          if !budget <= 0 then
            raise (Give_up (Link { attempts = retry.Retry.budget; sw1; sw2 }))
          else begin
            decr budget;
            incr reest;
            backoff := !backoff +. Retry.backoff retry ~consec:0;
            if (sw1, sw2) = Sw.channel_closed && !chan <> 0 then reopen ();
            session ()
          end
    in
    match session () with
    | encoded -> (
        match Output_codec.decode_list encoded with
        | outputs ->
            Ok
              {
                outputs;
                command_frames = counters.cmds;
                response_frames = counters.resps;
                wire_bytes = counters.bytes;
                retries = !retries;
                reestablished = !reest;
                backoff_ms = !backoff;
              }
        | exception Invalid_argument msg ->
            Error (Protocol ("bad response stream: " ^ msg)))
    | exception Give_up e -> Error e
end
