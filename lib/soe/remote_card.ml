module Output_codec = Sdds_core.Output_codec

module Ins = struct
  let manage_channel = 0x70
  let select = 0xA0
  let grant = 0xA2
  let rules = 0xA4
  let query = 0xA6
  let evaluate = 0xB0
  let get_response = 0xC0
end

module Sw = struct
  let ok = (0x90, 0x00)
  let more_data = (0x61, 0x00)
  let not_found = (0x6A, 0x88)
  let stale_key = (0x6A, 0x82)
  let bad_grant = (0x69, 0x84)
  let bad_signature = (0x69, 0x88)
  let security = (0x69, 0x82)
  let replayed = (0x69, 0x87)
  let memory = (0x6A, 0x84)
  let rules_too_large = (0x6A, 0x80)
  let integrity_sw1 = 0x66
  let bad_state = (0x69, 0x85)
  let bad_ins = (0x6D, 0x00)
  let channel_closed = (0x68, 0x81)
  let no_channel = (0x6A, 0x81)
end

let cla = Apdu.base_cla
let max_response = 255

(* One status word per {!Card.error} constructor, so the terminal can act on
   the failure (retry the grant, refetch the document, surface revocation)
   without a side channel. [Integrity_failure] carries the failing chunk in
   sw2; the string payloads ([No_key]/[Stale_key] document ids, [Bad_rules]
   diagnostics) do not cross the wire — [of_sw] reconstructs them from the
   caller's context. *)
let to_sw = function
  | Card.No_key _ -> Sw.not_found
  | Card.Stale_key _ -> Sw.stale_key
  | Card.Bad_grant -> Sw.bad_grant
  | Card.Bad_signature -> Sw.bad_signature
  | Card.Bad_rules _ -> Sw.security
  | Card.Replayed_rules _ -> Sw.replayed
  | Card.Memory_exceeded _ -> Sw.memory
  | Card.Rules_too_large _ -> Sw.rules_too_large
  | Card.Integrity_failure { chunk } -> (Sw.integrity_sw1, chunk land 0xff)

let of_sw ?(doc_id = "?") (sw1, sw2) =
  let sw = (sw1, sw2) in
  if sw = Sw.not_found then Some (Card.No_key doc_id)
  else if sw = Sw.stale_key then Some (Card.Stale_key doc_id)
  else if sw = Sw.bad_grant then Some Card.Bad_grant
  else if sw = Sw.bad_signature then Some Card.Bad_signature
  else if sw = Sw.security then Some (Card.Bad_rules "rule blob rejected")
  else if sw = Sw.replayed then
    Some (Card.Replayed_rules { seen = 0; offered = 0 })
  else if sw = Sw.memory then
    Some (Card.Memory_exceeded { need_bytes = 0; budget_bytes = 0 })
  else if sw = Sw.rules_too_large then
    Some (Card.Rules_too_large { bound_bytes = 0; budget_bytes = 0 })
  else if sw1 = Sw.integrity_sw1 then
    Some (Card.Integrity_failure { chunk = sw2 })
  else None

module Host = struct
  (* The per-channel slice of the protocol state: everything a SELECT
     resets lives here, so channels cannot observe (or corrupt) each
     other's half-uploaded chains or undrained responses. *)
  type session = {
    mutable doc : Card.doc_source option;
    (* chained-command accumulators, keyed by instruction *)
    chains : (int, Buffer.t * int ref) Hashtbl.t;
    mutable pending_rules : string option;
    mutable pending_query : string option;
    mutable response : string;  (* bytes not yet drained *)
  }

  let fresh_session () =
    {
      doc = None;
      chains = Hashtbl.create 4;
      pending_rules = None;
      pending_query = None;
      response = "";
    }

  type t = {
    card : Card.t;
    resolve : string -> Card.doc_source option;
    sessions : session option array;  (* slot index = channel number *)
  }

  let create ~card ~resolve =
    let sessions = Array.make Apdu.max_channels None in
    (* The basic channel is always open. *)
    sessions.(0) <- Some (fresh_session ());
    { card; resolve; sessions }

  let open_channels t =
    Array.fold_left
      (fun n -> function None -> n | Some _ -> n + 1)
      0 t.sessions

  let reply ?(payload = "") (sw1, sw2) = { Apdu.sw1; sw2; payload }

  (* Accumulate a chained command; returns [Ok (Some data)] when the final
     frame arrives, [Ok None] mid-chain, [Error ()] on a sequence-number
     gap (a dropped or reordered frame must fail fast, not concatenate) or
     a continuation frame with no chain open (a stale continuation from
     before a SELECT — or from another channel — must not silently start a
     fresh chain). *)
  let chain s (cmd : Apdu.command) =
    match (Hashtbl.find_opt s.chains cmd.Apdu.ins, cmd.Apdu.p2) with
    | None, p2 when p2 <> 0 -> Error ()
    | existing, _ ->
    let buf, seq =
      match existing with
      | Some bs -> bs
      | None ->
          let bs = (Buffer.create 256, ref 0) in
          Hashtbl.add s.chains cmd.Apdu.ins bs;
          bs
    in
    if cmd.Apdu.p2 <> !seq land 0xff then begin
      Hashtbl.remove s.chains cmd.Apdu.ins;
      Error ()
    end
    else begin
      incr seq;
      Buffer.add_string buf cmd.Apdu.data;
      if cmd.Apdu.p1 = 0 then begin
        Hashtbl.remove s.chains cmd.Apdu.ins;
        Ok (Some (Buffer.contents buf))
      end
      else Ok None
    end

  let drain s =
    let n = String.length s.response in
    let take = min max_response n in
    let payload = String.sub s.response 0 take in
    s.response <- String.sub s.response take (n - take);
    if String.length s.response = 0 then reply ~payload Sw.ok
    else begin
      let sw1, _ = Sw.more_data in
      reply ~payload (sw1, min 0xff (String.length s.response))
    end

  let manage_channel t (cmd : Apdu.command) =
    if cmd.Apdu.p1 = 0x00 && cmd.Apdu.p2 = 0x00 then begin
      (* Open: allocate the lowest free channel and return its number. *)
      let rec find i =
        if i >= Apdu.max_channels then None
        else match t.sessions.(i) with None -> Some i | Some _ -> find (i + 1)
      in
      match find 1 with
      | None -> reply Sw.no_channel
      | Some i ->
          t.sessions.(i) <- Some (fresh_session ());
          reply ~payload:(String.make 1 (Char.chr i)) Sw.ok
    end
    else if cmd.Apdu.p1 = 0x80 then begin
      (* Close: the target channel is in p2; the basic channel cannot be
         closed. Everything the session held (chains, pending response)
         dies with it. *)
      let target = cmd.Apdu.p2 in
      if target <= 0 || target >= Apdu.max_channels then reply Sw.bad_state
      else
        match t.sessions.(target) with
        | None -> reply Sw.bad_state
        | Some _ ->
            t.sessions.(target) <- None;
            reply Sw.ok
    end
    else reply Sw.bad_state

  let dispatch t s (cmd : Apdu.command) =
    if cmd.Apdu.ins = Ins.select then begin
      match t.resolve cmd.Apdu.data with
      | Some doc ->
          s.doc <- Some doc;
          (* A SELECT starts a fresh session on this channel: half-uploaded
             chains from an aborted rules/query upload must not be
             concatenated with a later upload for this (or any)
             document. *)
          Hashtbl.reset s.chains;
          s.pending_rules <- None;
          s.pending_query <- None;
          s.response <- "";
          reply Sw.ok
      | None -> reply Sw.not_found
    end
    else if cmd.Apdu.ins = Ins.grant then begin
      match s.doc with
      | None -> reply Sw.bad_state
      | Some doc -> (
          match
            Card.install_wrapped_key t.card ~doc_id:doc.Card.doc_id
              ~wrapped:cmd.Apdu.data
          with
          | Ok () -> reply Sw.ok
          | Error e -> reply (to_sw e))
    end
    else if cmd.Apdu.ins = Ins.rules then begin
      match s.doc with
      | None -> reply Sw.bad_state
      | Some doc -> (
          match chain s cmd with
          | Error () -> reply Sw.bad_state
          | Ok None -> reply Sw.ok
          | Ok (Some blob) -> (
              (* Static admission at upload time: a blob whose analyzer
                 memory bound cannot fit this card is refused here, with
                 its own status word, before any evaluation is attempted.
                 A no-op unless the card enables preflight. *)
              let query =
                match s.pending_query with
                | None -> None
                | Some q -> (
                    match Sdds_xpath.Parser.parse q with
                    | ast -> Some ast
                    | exception Sdds_xpath.Parser.Error _ -> None)
              in
              match
                Card.preflight t.card ~doc_id:doc.Card.doc_id
                  ~publisher:doc.Card.publisher ?query
                  ~chunk_plain_bytes:doc.Card.chunk_plain_bytes
                  ~encrypted_rules:blob ()
              with
              | Error e -> reply (to_sw e)
              | Ok () ->
                  s.pending_rules <- Some blob;
                  reply Sw.ok))
    end
    else if cmd.Apdu.ins = Ins.query then begin
      if s.doc = None then reply Sw.bad_state
      else begin
        match chain s cmd with
        | Error () -> reply Sw.bad_state
        | Ok None -> reply Sw.ok
        | Ok (Some q) ->
            s.pending_query <- Some q;
            reply Sw.ok
      end
    end
    else if cmd.Apdu.ins = Ins.evaluate then begin
      match (s.doc, s.pending_rules) with
      | None, _ | _, None -> reply Sw.bad_state
      | Some doc, Some encrypted_rules -> (
          let delivery = if cmd.Apdu.p1 = 1 then `Push else `Pull in
          let use_index = cmd.Apdu.p2 = 0 in
          let query =
            match s.pending_query with
            | None -> None
            | Some q -> (
                match Sdds_xpath.Parser.parse q with
                | ast -> Some ast
                | exception Sdds_xpath.Parser.Error _ -> None)
          in
          match
            Card.evaluate t.card { doc with Card.delivery } ~encrypted_rules
              ?query ~use_index ()
          with
          | Ok (outputs, _report) ->
              s.response <- Output_codec.encode_list outputs;
              drain s
          | Error e -> reply (to_sw e))
    end
    else if cmd.Apdu.ins = Ins.get_response then drain s
    else reply Sw.bad_ins

  let process t (cmd : Apdu.command) =
    if not (Apdu.valid_cla cmd.Apdu.cla) then reply Sw.bad_ins
    else begin
      let ch = Apdu.channel_of_cla cmd.Apdu.cla in
      match t.sessions.(ch) with
      | None -> reply Sw.channel_closed
      | Some s ->
          if cmd.Apdu.ins = Ins.manage_channel then manage_channel t cmd
          else dispatch t s cmd
    end
end

module Client = struct
  type transport = Apdu.command -> Apdu.response

  type result = {
    outputs : Sdds_core.Output.t list;
    command_frames : int;
    response_frames : int;
    wire_bytes : int;
  }

  type counters = {
    mutable cmds : int;
    mutable resps : int;
    mutable bytes : int;
  }

  let send counters (transport : transport) cmd =
    counters.cmds <- counters.cmds + 1;
    counters.bytes <-
      counters.bytes + String.length (Apdu.encode_command cmd);
    let resp = transport cmd in
    counters.resps <- counters.resps + 1;
    counters.bytes <-
      counters.bytes + String.length (Apdu.encode_response resp);
    resp

  let ( let* ) = Result.bind

  let expect_ok step (resp : Apdu.response) =
    if (resp.Apdu.sw1, resp.Apdu.sw2) = Sw.ok then Ok ()
    else
      Error
        (Printf.sprintf "%s failed: SW %02X%02X" step resp.Apdu.sw1
           resp.Apdu.sw2)

  let send_chained counters transport ~cla ~ins payload =
    let frames = Apdu.segment ~cla ~ins payload in
    List.fold_left
      (fun acc frame ->
        let* () = acc in
        expect_ok "chained command" (send counters transport frame))
      (Ok ()) frames

  let open_channel (transport : transport) =
    let resp =
      transport
        { Apdu.cla; ins = Ins.manage_channel; p1 = 0; p2 = 0; data = "" }
    in
    if
      (resp.Apdu.sw1, resp.Apdu.sw2) = Sw.ok
      && String.length resp.Apdu.payload = 1
    then Ok (Char.code resp.Apdu.payload.[0])
    else
      Error
        (Printf.sprintf "open channel failed: SW %02X%02X" resp.Apdu.sw1
           resp.Apdu.sw2)

  let close_channel (transport : transport) channel =
    expect_ok "close channel"
      (transport
         {
           Apdu.cla;
           ins = Ins.manage_channel;
           p1 = 0x80;
           p2 = channel;
           data = "";
         })

  let evaluate transport ~doc_id ?wrapped_grant ~encrypted_rules ?xpath
      ?(push = false) ?(use_index = true) ?(channel = 0) () =
    let cla = Apdu.cla_of_channel channel in
    let counters = { cmds = 0; resps = 0; bytes = 0 } in
    let send1 ins ?(p1 = 0) ?(p2 = 0) data =
      send counters transport { Apdu.cla; ins; p1; p2; data }
    in
    let* () = expect_ok "select" (send1 Ins.select doc_id) in
    let* () =
      match wrapped_grant with
      | None -> Ok ()
      | Some w -> expect_ok "grant" (send1 Ins.grant w)
    in
    let* () =
      send_chained counters transport ~cla ~ins:Ins.rules encrypted_rules
    in
    let* () =
      match xpath with
      | None -> Ok ()
      | Some q -> send_chained counters transport ~cla ~ins:Ins.query q
    in
    let first =
      send1 Ins.evaluate
        ~p1:(if push then 1 else 0)
        ~p2:(if use_index then 0 else 1)
        ""
    in
    (* Drain: accept OK (done) or 61xx (more data). *)
    let rec drain acc (resp : Apdu.response) =
      let acc = acc ^ resp.Apdu.payload in
      if (resp.Apdu.sw1, resp.Apdu.sw2) = Sw.ok then Ok acc
      else if resp.Apdu.sw1 = fst Sw.more_data then
        drain acc (send1 Ins.get_response "")
      else
        Error
          (Printf.sprintf "evaluate failed: SW %02X%02X" resp.Apdu.sw1
             resp.Apdu.sw2)
    in
    let* encoded = drain "" first in
    match Output_codec.decode_list encoded with
    | outputs ->
        Ok
          {
            outputs;
            command_frames = counters.cmds;
            response_frames = counters.resps;
            wire_bytes = counters.bytes;
          }
    | exception Invalid_argument msg -> Error ("bad response stream: " ^ msg)
end
