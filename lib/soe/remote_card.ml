module Output_codec = Sdds_core.Output_codec

module Ins = struct
  let select = 0xA0
  let grant = 0xA2
  let rules = 0xA4
  let query = 0xA6
  let evaluate = 0xB0
  let get_response = 0xC0
end

module Sw = struct
  let ok = (0x90, 0x00)
  let more_data = (0x61, 0x00)
  let not_found = (0x6A, 0x88)
  let security = (0x69, 0x82)
  let memory = (0x6A, 0x84)
  let bad_state = (0x69, 0x85)
  let bad_ins = (0x6D, 0x00)
end

let cla = 0x80
let max_response = 255

module Host = struct
  type t = {
    card : Card.t;
    resolve : string -> Card.doc_source option;
    mutable doc : Card.doc_source option;
    (* chained-command accumulators, keyed by instruction *)
    chains : (int, Buffer.t * int ref) Hashtbl.t;
    mutable pending_rules : string option;
    mutable pending_query : string option;
    mutable response : string;  (* bytes not yet drained *)
  }

  let create ~card ~resolve =
    {
      card;
      resolve;
      doc = None;
      chains = Hashtbl.create 4;
      pending_rules = None;
      pending_query = None;
      response = "";
    }

  let reply ?(payload = "") (sw1, sw2) = { Apdu.sw1; sw2; payload }

  (* Accumulate a chained command; returns [Ok (Some data)] when the final
     frame arrives, [Ok None] mid-chain, [Error ()] on a sequence-number
     gap (a dropped or reordered frame must fail fast, not concatenate) or
     a continuation frame with no chain open (a stale continuation from
     before a SELECT must not silently start a fresh chain). *)
  let chain t (cmd : Apdu.command) =
    match (Hashtbl.find_opt t.chains cmd.Apdu.ins, cmd.Apdu.p2) with
    | None, p2 when p2 <> 0 -> Error ()
    | existing, _ ->
    let buf, seq =
      match existing with
      | Some bs -> bs
      | None ->
          let bs = (Buffer.create 256, ref 0) in
          Hashtbl.add t.chains cmd.Apdu.ins bs;
          bs
    in
    if cmd.Apdu.p2 <> !seq land 0xff then begin
      Hashtbl.remove t.chains cmd.Apdu.ins;
      Error ()
    end
    else begin
      incr seq;
      Buffer.add_string buf cmd.Apdu.data;
      if cmd.Apdu.p1 = 0 then begin
        Hashtbl.remove t.chains cmd.Apdu.ins;
        Ok (Some (Buffer.contents buf))
      end
      else Ok None
    end

  let error_sw = function
    | Card.No_key _ | Card.Stale_key _ -> Sw.not_found
    | Card.Bad_grant | Card.Bad_signature
    | Card.Integrity_failure _
    | Card.Bad_rules _ | Card.Replayed_rules _ ->
        Sw.security
    | Card.Memory_exceeded _ -> Sw.memory

  let drain t =
    let n = String.length t.response in
    let take = min max_response n in
    let payload = String.sub t.response 0 take in
    t.response <- String.sub t.response take (n - take);
    if String.length t.response = 0 then reply ~payload Sw.ok
    else begin
      let sw1, _ = Sw.more_data in
      reply ~payload (sw1, min 0xff (String.length t.response))
    end

  let process t (cmd : Apdu.command) =
    if cmd.Apdu.cla <> cla then reply Sw.bad_ins
    else if cmd.Apdu.ins = Ins.select then begin
      match t.resolve cmd.Apdu.data with
      | Some doc ->
          t.doc <- Some doc;
          (* A SELECT starts a fresh session: half-uploaded chains from an
             aborted rules/query upload must not be concatenated with a
             later upload for this (or any) document. *)
          Hashtbl.reset t.chains;
          t.pending_rules <- None;
          t.pending_query <- None;
          t.response <- "";
          reply Sw.ok
      | None -> reply Sw.not_found
    end
    else if cmd.Apdu.ins = Ins.grant then begin
      match t.doc with
      | None -> reply Sw.bad_state
      | Some doc -> (
          match
            Card.install_wrapped_key t.card ~doc_id:doc.Card.doc_id
              ~wrapped:cmd.Apdu.data
          with
          | Ok () -> reply Sw.ok
          | Error e -> reply (error_sw e))
    end
    else if cmd.Apdu.ins = Ins.rules then begin
      if t.doc = None then reply Sw.bad_state
      else begin
        match chain t cmd with
        | Error () -> reply Sw.bad_state
        | Ok None -> reply Sw.ok
        | Ok (Some blob) ->
            t.pending_rules <- Some blob;
            reply Sw.ok
      end
    end
    else if cmd.Apdu.ins = Ins.query then begin
      if t.doc = None then reply Sw.bad_state
      else begin
        match chain t cmd with
        | Error () -> reply Sw.bad_state
        | Ok None -> reply Sw.ok
        | Ok (Some q) ->
            t.pending_query <- Some q;
            reply Sw.ok
      end
    end
    else if cmd.Apdu.ins = Ins.evaluate then begin
      match (t.doc, t.pending_rules) with
      | None, _ | _, None -> reply Sw.bad_state
      | Some doc, Some encrypted_rules -> (
          let delivery = if cmd.Apdu.p1 = 1 then `Push else `Pull in
          let use_index = cmd.Apdu.p2 = 0 in
          let query =
            match t.pending_query with
            | None -> None
            | Some q -> (
                match Sdds_xpath.Parser.parse q with
                | ast -> Some ast
                | exception Sdds_xpath.Parser.Error _ -> None)
          in
          match
            Card.evaluate t.card { doc with Card.delivery } ~encrypted_rules
              ?query ~use_index ()
          with
          | Ok (outputs, _report) ->
              t.response <- Output_codec.encode_list outputs;
              drain t
          | Error e -> reply (error_sw e))
    end
    else if cmd.Apdu.ins = Ins.get_response then drain t
    else reply Sw.bad_ins
end

module Client = struct
  type transport = Apdu.command -> Apdu.response

  type result = {
    outputs : Sdds_core.Output.t list;
    command_frames : int;
    response_frames : int;
    wire_bytes : int;
  }

  type counters = {
    mutable cmds : int;
    mutable resps : int;
    mutable bytes : int;
  }

  let send counters (transport : transport) cmd =
    counters.cmds <- counters.cmds + 1;
    counters.bytes <-
      counters.bytes + String.length (Apdu.encode_command cmd);
    let resp = transport cmd in
    counters.resps <- counters.resps + 1;
    counters.bytes <-
      counters.bytes + String.length (Apdu.encode_response resp);
    resp

  let ( let* ) = Result.bind

  let expect_ok step (resp : Apdu.response) =
    if (resp.Apdu.sw1, resp.Apdu.sw2) = Sw.ok then Ok ()
    else
      Error
        (Printf.sprintf "%s failed: SW %02X%02X" step resp.Apdu.sw1
           resp.Apdu.sw2)

  let send_chained counters transport ~ins payload =
    let frames = Apdu.segment ~cla ~ins payload in
    List.fold_left
      (fun acc frame ->
        let* () = acc in
        expect_ok "chained command" (send counters transport frame))
      (Ok ()) frames

  let evaluate transport ~doc_id ?wrapped_grant ~encrypted_rules ?xpath
      ?(push = false) ?(use_index = true) () =
    let counters = { cmds = 0; resps = 0; bytes = 0 } in
    let send1 ins ?(p1 = 0) ?(p2 = 0) data =
      send counters transport { Apdu.cla; ins; p1; p2; data }
    in
    let* () = expect_ok "select" (send1 Ins.select doc_id) in
    let* () =
      match wrapped_grant with
      | None -> Ok ()
      | Some w -> expect_ok "grant" (send1 Ins.grant w)
    in
    let* () =
      send_chained counters transport ~ins:Ins.rules encrypted_rules
    in
    let* () =
      match xpath with
      | None -> Ok ()
      | Some q -> send_chained counters transport ~ins:Ins.query q
    in
    let first =
      send1 Ins.evaluate
        ~p1:(if push then 1 else 0)
        ~p2:(if use_index then 0 else 1)
        ""
    in
    (* Drain: accept OK (done) or 61xx (more data). *)
    let rec drain acc (resp : Apdu.response) =
      let acc = acc ^ resp.Apdu.payload in
      if (resp.Apdu.sw1, resp.Apdu.sw2) = Sw.ok then Ok acc
      else if resp.Apdu.sw1 = fst Sw.more_data then
        drain acc (send1 Ins.get_response "")
      else
        Error
          (Printf.sprintf "evaluate failed: SW %02X%02X" resp.Apdu.sw1
             resp.Apdu.sw2)
    in
    let* encoded = drain "" first in
    match Output_codec.decode_list encoded with
    | outputs ->
        Ok
          {
            outputs;
            command_frames = counters.cmds;
            response_frames = counters.resps;
            wire_bytes = counters.bytes;
          }
    | exception Invalid_argument msg -> Error ("bad response stream: " ^ msg)
end
