(** ISO 7816-4 style APDU framing.

    The terminal proxy talks to the card exclusively through these frames
    ("Application Protocol Data Unit: communication protocol between the
    terminal and the smart card"). Long messages are segmented into
    command chains; the functions here encode, decode and count frames —
    the counting feeds the cost model's per-frame overhead. *)

type command = {
  cla : int;  (** class byte *)
  ins : int;  (** instruction *)
  p1 : int;
  p2 : int;
  data : string;  (** up to 255 bytes in a single frame *)
}

type response = { sw1 : int; sw2 : int; payload : string }

val sw_ok : int * int
(** 0x90, 0x00. *)

(** {1 Logical channels}

    Per ISO 7816-4, the two low bits of the class byte address one of four
    logical channels, each an independent card session. Channel 0 is the
    basic channel, always open; 1–3 are opened and closed with MANAGE
    CHANNEL ({!Remote_card.Ins.manage_channel}). *)

val base_cla : int
(** The application class byte with channel bits cleared (0x80). *)

val max_channels : int
(** 4 — the CLA encoding has two channel bits. *)

val channel_of_cla : int -> int
(** The logical channel a class byte addresses (its two low bits). *)

val cla_of_channel : int -> int
(** [base_cla lor channel]. Raises [Invalid_argument] outside [0..3]. *)

val valid_cla : int -> bool
(** True iff the byte is [base_cla] with any channel bits — the host
    rejects every other class. *)

val encode_command : command -> string
(** Raises [Invalid_argument] if a field is out of range or data exceeds
    255 bytes. *)

val decode_command : string -> command option

val encode_response : response -> string
val decode_response : string -> response option

val segment : cla:int -> ins:int -> string -> command list
(** Split an arbitrarily long payload into a command chain; [p1] carries a
    more-frames flag (1 = more coming), [p2] the sequence number modulo
    256. *)

val reassemble : command list -> string
(** Inverse of {!segment}. Raises [Invalid_argument] on a broken chain
    (bad sequence numbers or missing final frame). *)

val frame_count : payload_bytes:int -> int
(** Frames needed for a payload under 255-byte segmentation. *)
